/**
 * @file
 * The artifact command line, reproduced (paper appendix A.5):
 *
 *   ./artifact_cli --warmup 30 \
 *       -lg:enable_automatic_tracing \
 *       -lg:auto_trace:min_trace_length 25 \
 *       -lg:auto_trace:max_trace_length 200 \
 *       -lg:auto_trace:batchsize 5000 \
 *       -lg:auto_trace:identifier_algorithm multi-scale \
 *       -lg:auto_trace:multi_scale_factor 500 \
 *       -lg:auto_trace:repeats_algorithm quick_matching_of_substrings \
 *       -lg:inline_transitive_reduction \
 *       -lg:window 30000
 *
 * Runs the FlexFlow/CANDLE workload under whatever configuration the
 * flags select (run with no arguments for the artifact defaults
 * above) and prints the simulated outcome. Every `-lg:` flag from the
 * paper's appendix A.7 is honored.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/flexflow.h"
#include "core/config.h"
#include "sim/harness.h"

int
main(int argc, char** argv)
{
    using namespace apo;

    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        args = {"-lg:enable_automatic_tracing",
                "-lg:auto_trace:min_trace_length", "25",
                "-lg:auto_trace:max_trace_length", "200",
                "-lg:auto_trace:batchsize", "5000",
                "-lg:auto_trace:identifier_algorithm", "multi-scale",
                "-lg:auto_trace:multi_scale_factor", "500",
                "-lg:auto_trace:repeats_algorithm",
                "quick_matching_of_substrings",
                "-lg:inline_transitive_reduction",
                "-lg:window", "30000"};
    }

    std::size_t warmup = 30;      // the artifact's --warmup
    std::size_t gpus_per_node = 8;  // -ll:gpu (Realm's machine flags)
    std::size_t nodes = 4;          // srun -N
    core::ApopheniaConfig config;
    try {
        config = core::ParseApopheniaFlags(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "flag error: %s\n", e.what());
        return 2;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto value = [&]() {
            return i + 1 < args.size()
                       ? static_cast<std::size_t>(
                             std::atoi(args[++i].c_str()))
                       : 0;
        };
        if (args[i] == "--warmup") {
            warmup = value();
        } else if (args[i] == "-ll:gpu") {
            gpus_per_node = value();
        } else if (args[i] == "-N" || args[i] == "--nodes") {
            nodes = value();
        } else if (args[i] == "-ll:util" || args[i] == "-ll:csize" ||
                   args[i] == "-ll:fsize" || args[i] == "-ll:zsize") {
            (void)value();  // accepted for artifact compatibility
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", args[i].c_str());
            return 2;
        }
    }

    apps::FlexFlowOptions app_options;
    app_options.machine.nodes = nodes;
    app_options.machine.gpus_per_node = gpus_per_node;
    apps::FlexFlowApplication app(app_options);

    sim::ExperimentOptions experiment;
    experiment.mode = config.enabled ? sim::TracingMode::kAuto
                                     : sim::TracingMode::kUntraced;
    experiment.machine = app_options.machine;
    experiment.iterations = warmup + 30;
    experiment.auto_config = config;
    const auto result = sim::RunExperiment(app, experiment);

    std::printf("configuration: automatic tracing %s, min %zu, max %zu,"
                " batchsize %zu,\n  multi-scale factor %zu, window %zu,"
                " transitive reduction %s\n",
                config.enabled ? "ON" : "OFF", config.min_trace_length,
                config.max_trace_length, config.batchsize,
                config.multi_scale_factor, config.window,
                config.inline_transitive_reduction ? "ON" : "OFF");
    std::printf("workload: CANDLE pilot1-style network, %zu GPUs (%zu"
                " nodes), %zu iterations (%zu warmup)\n",
                app_options.machine.GpuCount(), nodes,
                experiment.iterations, warmup);
    std::printf("steady-state throughput: %.2f iterations/s\n",
                result.iterations_per_second);
    std::printf("replayed fraction:       %.1f%%\n",
                100.0 * result.replayed_fraction);
    std::printf("traces recorded:         %zu (%zu replays)\n",
                result.runtime_stats.traces_recorded,
                result.runtime_stats.trace_replays);
    return 0;
}
