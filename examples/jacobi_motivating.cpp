/**
 * @file
 * The paper's section 2 motivating example, end to end.
 *
 * A cuPyNumeric-style Jacobi iteration allocates a fresh region for
 * every operation result and rebinds the loop variable x each
 * iteration. Consequences demonstrated here:
 *
 *  1. the "natural" manual annotation around one loop iteration is
 *     INVALID — the runtime rejects the second replay because the
 *     region arguments differ (TraceMismatchError);
 *  2. an expert can annotate *two* iterations (the allocator's true
 *     steady-state period) — valid but brittle;
 *  3. Apophenia traces the program automatically, discovering the
 *     2-iteration period nobody annotated.
 *
 *   $ ./examples/jacobi_motivating
 */
#include <cstdio>

#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

using namespace apo;

/** Issues tasks for `x = (b - R·x) / d`, cuPyNumeric-style: results
 * live in freshly allocated regions; dead regions are freed eagerly
 * and their ids recycled. */
class Jacobi {
  public:
    template <typename Target>
    explicit Jacobi(Target& target)
    {
        R_ = target.CreateRegion();
        b_ = target.CreateRegion();
        d_ = target.CreateRegion();
        x_ = target.CreateRegion();
    }

    template <typename Target>
    void Iteration(Target& target)
    {
        const rt::RegionId t1 = target.CreateRegion();
        target.ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("DOT"),
            {{R_, 0, rt::Privilege::kReadOnly, 0},
             {x_, 0, rt::Privilege::kReadOnly, 0},
             {t1, 0, rt::Privilege::kWriteDiscard, 0}}});
        const rt::RegionId t2 = target.CreateRegion();
        target.ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("SUB"),
            {{b_, 0, rt::Privilege::kReadOnly, 0},
             {t1, 0, rt::Privilege::kReadOnly, 0},
             {t2, 0, rt::Privilege::kWriteDiscard, 0}}});
        target.DestroyRegion(t1);
        const rt::RegionId x_new = target.CreateRegion();
        target.ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("DIV"),
            {{t2, 0, rt::Privilege::kReadOnly, 0},
             {d_, 0, rt::Privilege::kReadOnly, 0},
             {x_new, 0, rt::Privilege::kWriteDiscard, 0}}});
        target.DestroyRegion(t2);
        target.DestroyRegion(x_);
        x_ = x_new;  // the Python variable rebinds to a new region
    }

  private:
    rt::RegionId R_, b_, d_, x_;
};

}  // namespace

int
main()
{
    using namespace apo;

    // --- Attempt 1: the natural one-iteration annotation. -----------------
    std::printf("1) manual trace around ONE loop iteration:\n");
    {
        rt::Runtime runtime;
        Jacobi jacobi(runtime);
        jacobi.Iteration(runtime);  // warm the allocator up
        runtime.BeginTrace(1);
        jacobi.Iteration(runtime);
        runtime.EndTrace(1);
        try {
            runtime.BeginTrace(1);
            jacobi.Iteration(runtime);
            runtime.EndTrace(1);
            std::printf("   unexpectedly succeeded?!\n");
            return 1;
        } catch (const rt::TraceMismatchError& e) {
            std::printf("   INVALID, as the paper predicts: %s\n", e.what());
            std::printf("   (iteration i+1 issues different region"
                        " arguments than iteration i)\n\n");
        }
    }

    // --- Attempt 2: the expert's two-iteration annotation. ----------------
    std::printf("2) manual trace around TWO iterations (the allocator's"
                " steady-state period):\n");
    {
        rt::Runtime runtime;
        Jacobi jacobi(runtime);
        jacobi.Iteration(runtime);
        for (int pair = 0; pair < 50; ++pair) {
            runtime.BeginTrace(1);
            jacobi.Iteration(runtime);
            jacobi.Iteration(runtime);
            runtime.EndTrace(1);
        }
        std::printf("   valid: %zu replays, %.0f%% of tasks replayed —"
                    " but brittle:\n",
                    runtime.Stats().trace_replays,
                    100.0 * runtime.Stats().ReplayedFraction());
        std::printf("   any change to the loop body or the allocator"
                    " policy breaks it.\n\n");
    }

    // --- Attempt 3: Apophenia. ---------------------------------------------
    std::printf("3) Apophenia, no annotations:\n");
    {
        rt::Runtime runtime;
        core::ApopheniaConfig config;
        config.min_trace_length = 5;
        config.batchsize = 500;
        config.multi_scale_factor = 50;
        core::Apophenia apophenia(runtime, config);
        Jacobi jacobi(apophenia);
        for (int iter = 0; iter < 300; ++iter) {
            jacobi.Iteration(apophenia);
        }
        apophenia.Flush();
        std::printf("   %.0f%% of tasks replayed across %zu trace"
                    " replays.\n",
                    100.0 * runtime.Stats().ReplayedFraction(),
                    runtime.Stats().trace_replays);
        for (const auto& op : runtime.Log()) {
            if (op.replay_head) {
                const auto* tmpl = runtime.Traces().Find(op.trace);
                std::printf("   discovered trace length: %zu tasks = %zu"
                            " source iterations\n",
                            tmpl->Length(), tmpl->Length() / 3);
                break;
            }
        }
        std::printf("   Apophenia found the multi-iteration period"
                    " automatically.\n");
        return runtime.Stats().trace_replays > 0 ? 0 : 1;
    }
}
