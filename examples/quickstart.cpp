/**
 * @file
 * Quickstart: automatic tracing in five minutes.
 *
 * Build a runtime, put Apophenia in front of it, issue an iterative
 * task stream, and watch the dependence analysis get memoized without
 * a single annotation.
 *
 *   $ ./examples/quickstart
 */
#include <cstdio>

#include "core/apophenia.h"
#include "runtime/runtime.h"

int
main()
{
    using namespace apo;

    // 1. A runtime. Its dynamic dependence analysis costs ~1ms per
    //    task (the paper's Legion number); replaying a memoized trace
    //    costs ~100µs per task.
    rt::Runtime runtime;

    // 2. Apophenia sits in front. Applications call ExecuteTask here
    //    instead of on the runtime; everything else is automatic.
    core::ApopheniaConfig config;
    config.min_trace_length = 5;    // don't memoize tiny fragments
    config.batchsize = 1000;        // task-history buffer to mine
    config.multi_scale_factor = 50; // sampling granularity
    core::Apophenia apophenia(runtime, config);

    // 3. An application: a 4-point pipeline iterated 200 times. Tasks
    //    declare region requirements; the runtime works out the
    //    parallelism.
    const rt::RegionId a = apophenia.CreateRegion();
    const rt::RegionId b = apophenia.CreateRegion();
    const rt::RegionId c = apophenia.CreateRegion();
    for (int iter = 0; iter < 200; ++iter) {
        apophenia.ExecuteTask(
            rt::TaskLaunch{rt::TaskIdOf("produce"),
                           {{a, 0, rt::Privilege::kReadWrite, 0}}});
        apophenia.ExecuteTask(
            rt::TaskLaunch{rt::TaskIdOf("stage1"),
                           {{a, 0, rt::Privilege::kReadOnly, 0},
                            {b, 0, rt::Privilege::kWriteDiscard, 0}}});
        apophenia.ExecuteTask(
            rt::TaskLaunch{rt::TaskIdOf("stage2"),
                           {{b, 0, rt::Privilege::kReadOnly, 0},
                            {c, 0, rt::Privilege::kWriteDiscard, 0}}});
        apophenia.ExecuteTask(
            rt::TaskLaunch{rt::TaskIdOf("fold"),
                           {{c, 0, rt::Privilege::kReadOnly, 0},
                            {a, 0, rt::Privilege::kReduce, 1}}});
    }
    apophenia.Flush();  // end of program: drain buffered work

    // 4. What happened?
    const rt::RuntimeStats& stats = runtime.Stats();
    std::printf("tasks issued:        %zu\n", stats.TotalTasks());
    std::printf("analyzed (cost α):   %zu\n", stats.tasks_analyzed);
    std::printf("recorded (cost α_m): %zu\n", stats.tasks_recorded);
    std::printf("replayed (cost α_r): %zu\n", stats.tasks_replayed);
    std::printf("traces found:        %zu\n", runtime.Traces().Size());
    std::printf("replayed fraction:   %.1f%%\n",
                100.0 * stats.ReplayedFraction());
    std::printf("\nApophenia memoized the dependence analysis of the"
                " loop automatically —\nno tbegin/tend annotations"
                " anywhere in this file.\n");
    return stats.tasks_replayed > 0 ? 0 : 1;
}
