/**
 * @file
 * Quickstart: automatic tracing in five minutes.
 *
 * Build a runtime, put Apophenia in front of it, issue an iterative
 * task stream through the one api::Frontend surface, and watch the
 * dependence analysis get memoized without a single annotation.
 *
 * The application below is written against api::Frontend only — swap
 * `apophenia` for an api::UntracedFrontend (or a multi-node
 * sim::Cluster) and it runs unchanged in the paper's other
 * evaluation modes.
 *
 *   $ ./examples/quickstart
 */
#include <cstdio>

#include "api/launch.h"
#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

/** The application: a 4-point pipeline. Tasks declare region
 * requirements; the runtime works out the parallelism. Launches are
 * assembled in a reusable builder — the issue loop allocates
 * nothing. */
void
PipelineIteration(apo::api::Frontend& frontend,
                  apo::api::LaunchBuilder& builder, apo::rt::RegionId a,
                  apo::rt::RegionId b, apo::rt::RegionId c)
{
    using apo::rt::Privilege;
    builder.Start("produce")
        .Add({a, 0, Privilege::kReadWrite, 0})
        .LaunchOn(frontend);
    builder.Start("stage1")
        .Add({a, 0, Privilege::kReadOnly, 0})
        .Add({b, 0, Privilege::kWriteDiscard, 0})
        .LaunchOn(frontend);
    builder.Start("stage2")
        .Add({b, 0, Privilege::kReadOnly, 0})
        .Add({c, 0, Privilege::kWriteDiscard, 0})
        .LaunchOn(frontend);
    builder.Start("fold")
        .Add({c, 0, Privilege::kReadOnly, 0})
        .Add({a, 0, Privilege::kReduce, 1})
        .LaunchOn(frontend);
}

}  // namespace

int
main()
{
    using namespace apo;

    // 1. A runtime. Its dynamic dependence analysis costs ~1ms per
    //    task (the paper's Legion number); replaying a memoized trace
    //    costs ~100µs per task.
    rt::Runtime runtime;

    // 2. Apophenia sits in front, behind the api::Frontend issue
    //    surface. Applications call ExecuteTask here instead of on
    //    the runtime; everything else is automatic.
    core::ApopheniaConfig config;
    config.min_trace_length = 5;    // don't memoize tiny fragments
    config.batchsize = 1000;        // task-history buffer to mine
    config.multi_scale_factor = 50; // sampling granularity
    core::Apophenia apophenia(runtime, config);
    api::Frontend& frontend = apophenia;

    // 3. Run the pipeline 200 times.
    const rt::RegionId a = frontend.CreateRegion();
    const rt::RegionId b = frontend.CreateRegion();
    const rt::RegionId c = frontend.CreateRegion();
    api::LaunchBuilder builder;
    for (int iter = 0; iter < 200; ++iter) {
        PipelineIteration(frontend, builder, a, b, c);
    }
    frontend.Flush();  // end of program: drain buffered work

    // 4. What happened?
    const rt::RuntimeStats& stats = runtime.Stats();
    std::printf("tasks issued:        %zu\n", stats.TotalTasks());
    std::printf("analyzed (cost α):   %zu\n", stats.tasks_analyzed);
    std::printf("recorded (cost α_m): %zu\n", stats.tasks_recorded);
    std::printf("replayed (cost α_r): %zu\n", stats.tasks_replayed);
    std::printf("traces found:        %zu\n", runtime.Traces().Size());
    std::printf("replayed fraction:   %.1f%%\n",
                100.0 * stats.ReplayedFraction());
    std::printf("\nApophenia memoized the dependence analysis of the"
                " loop automatically —\nno tbegin/tend annotations"
                " anywhere in this file.\n");
    return stats.tasks_replayed > 0 ? 0 : 1;
}
