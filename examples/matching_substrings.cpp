/**
 * @file
 * Standalone demonstration of the repeated-substrings algorithm —
 * the equivalent of the paper's companion artifact ("matching-
 * substrings", linked from section 4.2), which publishes Algorithm 2
 * on its own so it can be studied outside the runtime.
 *
 * Reads a string from the command line (default: the paper's figure 4
 * example "aabcbcbaa") and prints the suffix array walk-through and
 * the selected non-overlapping repeats.
 *
 *   $ ./examples/matching_substrings aabcbcbaa
 *   $ ./examples/matching_substrings mississippi 2
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "strings/repeats.h"
#include "strings/suffix_array.h"

int
main(int argc, char** argv)
{
    using namespace apo;

    const std::string text = argc > 1 ? argv[1] : "aabcbcbaa";
    const std::size_t min_length =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2;

    strings::Sequence s;
    s.reserve(text.size());
    for (char c : text) {
        s.push_back(static_cast<unsigned char>(c));
    }

    // The suffix array and LCP array the algorithm walks (figure 4).
    const auto sa = strings::BuildSuffixArray(s);
    const auto lcp = strings::ComputeLcp(s, sa);
    std::printf("input: \"%s\" (min repeat length %zu)\n\n", text.c_str(),
                min_length);
    std::printf("%-8s %-6s %s\n", "index", "lcp", "suffix");
    for (std::size_t i = 0; i < sa.size(); ++i) {
        std::printf("%-8zu %-6s %s\n", sa[i],
                    i + 1 < sa.size() ? std::to_string(lcp[i]).c_str()
                                      : "-",
                    text.substr(sa[i]).c_str());
    }

    const auto repeats =
        strings::FindRepeats(s, {.min_length = min_length});
    std::printf("\nselected non-overlapping repeats (coverage %zu of"
                " %zu):\n",
                strings::TotalCoverage(repeats), s.size());
    for (const auto& r : repeats) {
        std::string content;
        for (auto v : r.tokens) {
            content.push_back(static_cast<char>(v));
        }
        std::printf("  \"%s\" at", content.c_str());
        for (std::size_t start : r.starts) {
            std::printf(" %zu", start);
        }
        std::printf("\n");
    }
    if (text == "aabcbcbaa" && min_length == 2) {
        std::printf("\n(the paper's figure 4 expects {aa, bc} — check!)\n");
    }
    return 0;
}
