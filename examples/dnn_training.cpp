/**
 * @file
 * Domain example: data-parallel DNN training (the FlexFlow/CANDLE
 * workload) and the effect of the maximum trace length — the paper's
 * figure 8 story in miniature.
 *
 * The training loop reads the loss back every iteration, so the
 * pipeline drains and the latency of issuing a trace replay lands on
 * the critical path. With small per-GPU batches (strong scaling),
 * replaying one monolithic whole-iteration trace is slower than
 * replaying it in bounded pieces that overlap execution.
 *
 *   $ ./examples/dnn_training
 */
#include <cstdio>

#include "apps/flexflow.h"
#include "sim/harness.h"

int
main()
{
    using namespace apo;

    apps::FlexFlowOptions app_options;
    app_options.machine.nodes = 4;
    app_options.machine.gpus_per_node = 8;  // 32 GPUs, strong scaled

    sim::ExperimentOptions options;
    options.machine = app_options.machine;
    options.iterations = 60;
    options.auto_config.min_trace_length = 25;
    options.auto_config.batchsize = 5000;
    options.auto_config.multi_scale_factor = 250;

    std::printf("CANDLE pilot1-style MLP, 32 GPUs, fixed global batch\n\n");
    std::printf("%-28s %14s %10s\n", "configuration", "iterations/s",
                "replayed");

    options.mode = sim::TracingMode::kUntraced;
    apps::FlexFlowApplication untraced_app(app_options);
    const auto untraced = sim::RunExperiment(untraced_app, options);
    std::printf("%-28s %14.2f %9.0f%%\n", "untraced",
                untraced.iterations_per_second, 0.0);

    options.mode = sim::TracingMode::kAuto;
    for (const std::size_t max_len : {5000, 1000, 200, 50}) {
        options.auto_config.max_trace_length = max_len;
        apps::FlexFlowApplication app(app_options);
        const auto result = sim::RunExperiment(app, options);
        char name[64];
        std::snprintf(name, sizeof name, "apophenia, max trace %zu",
                      max_len);
        std::printf("%-28s %14.2f %9.0f%%\n", name,
                    result.iterations_per_second,
                    100.0 * result.replayed_fraction);
    }

    std::printf("\nShorter traces replay in pieces that overlap"
                " execution, while a monolithic\ntrace serializes its"
                " whole replay behind the drained pipeline (figure 8)."
                "\nEach piece also pays the per-replay constant, which"
                " bounds how far shrinking\nthe maximum keeps paying"
                " off.\n");
    return 0;
}
