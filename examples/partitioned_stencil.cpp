/**
 * @file
 * Domain example: Legion-style region partitioning under automatic
 * tracing.
 *
 * A 1-D grid region is partitioned into per-GPU subregions; stencil
 * tasks touch their own subregion plus a neighbour, while a periodic
 * whole-grid operation (boundary conditions / checkpoint I/O) runs at
 * the *parent* level. The dependence analysis must order parent-level
 * operations against every subregion task — and Apophenia must trace
 * the mixed-level stream. The checkpoint is marked untraceable
 * (external I/O), so traces form around it.
 *
 *   $ ./examples/partitioned_stencil
 */
#include <cstdio>

#include "core/apophenia.h"
#include "runtime/graph.h"
#include "runtime/runtime.h"

int
main()
{
    using namespace apo;

    rt::Runtime runtime;
    core::ApopheniaConfig config;
    config.min_trace_length = 8;
    config.batchsize = 1000;
    config.multi_scale_factor = 50;
    core::Apophenia fe(runtime, config);

    constexpr std::uint32_t kShards = 8;
    const rt::RegionId grid = fe.CreateRegion();
    const auto shards = fe.PartitionRegion(grid, kShards);

    for (int iter = 0; iter < 200; ++iter) {
        // Per-subregion stencil sweep: siblings are disjoint, so these
        // run in parallel; each reads its left neighbour.
        for (std::uint32_t g = 0; g < kShards; ++g) {
            rt::TaskLaunch stencil;
            stencil.task = rt::TaskIdOf("stencil");
            stencil.shard = g;
            stencil.execution_us = 800.0;
            stencil.requirements.push_back(
                {shards[g], 0, rt::Privilege::kReadWrite, 0});
            if (g > 0) {
                stencil.requirements.push_back(
                    {shards[g - 1], 0, rt::Privilege::kReadOnly, 0});
            }
            fe.ExecuteTask(stencil);
        }
        // Whole-grid boundary fix-up at the parent level: aliases
        // every subregion, so it fences the sweep.
        fe.ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("boundary"),
            {{grid, 0, rt::Privilege::kReadWrite, 0}}});
        // Periodic checkpoint: external I/O, untraceable.
        if (iter % 25 == 24) {
            rt::TaskLaunch io{rt::TaskIdOf("checkpoint"),
                              {{grid, 0, rt::Privilege::kReadOnly, 0}}};
            io.traceable = false;
            fe.ExecuteTask(io);
        }
    }
    fe.Flush();

    const auto& stats = runtime.Stats();
    std::printf("grid partitioned into %u subregions (tree size %zu)\n",
                kShards, runtime.Forest().Size());
    std::printf("tasks: %zu, replayed: %.0f%%, mismatches: %zu\n",
                stats.TotalTasks(), 100.0 * stats.ReplayedFraction(),
                stats.trace_mismatches);

    // Show the parent-level fence working: the boundary task of the
    // first iteration must depend on all eight stencil tasks.
    const auto& boundary = runtime.Log()[kShards];
    std::printf("iteration 0 boundary task depends on %zu stencil"
                " tasks\n",
                boundary.dependences.size());

    // And the graph is untouched by Legion's transitive reduction
    // semantics: closure-preserving edge pruning.
    rt::OperationLog reduced = runtime.Log().Clone();
    const std::size_t removed = rt::TransitiveReduction(reduced, 5000);
    std::printf("transitive reduction removed %zu of %zu edges\n",
                removed, rt::CountEdges(runtime.Log()));
    return stats.ReplayedFraction() > 0.5 ? 0 : 1;
}
