/**
 * @file
 * Domain example: the cuPyNumeric channel-flow CFD solver under
 * automatic tracing, with the simulated performance comparison the
 * paper's figure 7a reports.
 *
 * CFD has no manually traced version — the paper explains that
 * writing one would require either removing all dynamic region
 * allocation or reverse-engineering allocator logs. This example runs
 * the same application untraced and under Apophenia on a simulated
 * 16-GPU machine and prints the steady-state throughputs and the
 * coverage trajectory.
 *
 *   $ ./examples/cfd_channel
 */
#include <cstdio>

#include "apps/cfd.h"
#include "sim/harness.h"

int
main()
{
    using namespace apo;

    apps::CfdOptions app_options;
    app_options.machine.nodes = 2;
    app_options.machine.gpus_per_node = 8;  // 16 GPUs of the Eos model
    app_options.size = apps::ProblemSize::kSmall;

    sim::ExperimentOptions options;
    options.machine = app_options.machine;
    options.iterations = 250;
    options.auto_config.min_trace_length = 25;
    options.auto_config.batchsize = 5000;
    options.auto_config.multi_scale_factor = 250;
    options.keep_coverage_series = true;
    options.coverage_window = 2000;
    options.coverage_stride = 1000;

    std::printf("CFD channel flow, 16 GPUs (simulated), size -s\n\n");

    apps::CfdApplication untraced_app(app_options);
    options.mode = sim::TracingMode::kUntraced;
    const auto untraced = sim::RunExperiment(untraced_app, options);

    apps::CfdApplication auto_app(app_options);
    options.mode = sim::TracingMode::kAuto;
    const auto traced = sim::RunExperiment(auto_app, options);

    std::printf("untraced:  %7.2f iterations/s  (every task pays the"
                " full dependence analysis)\n",
                untraced.iterations_per_second);
    std::printf("apophenia: %7.2f iterations/s  (%.0f%% of tasks replay"
                " memoized analysis)\n",
                traced.iterations_per_second,
                100.0 * traced.replayed_fraction);
    std::printf("speedup:   %7.2fx\n\n",
                traced.iterations_per_second /
                    untraced.iterations_per_second);

    std::printf("coverage trajectory (%% of the last 2000 tasks traced):\n");
    for (const auto& [index, pct] : traced.coverage_series) {
        if (index % 5000 != 0 && index != traced.coverage_series.back().first) {
            continue;  // keep the printout short
        }
        std::printf("  after %6zu tasks: %5.1f%%\n", index, pct);
    }
    std::printf("\nwarmup iterations until steady replay: %zu\n",
                traced.warmup_iterations);
    std::printf("(cuPyNumeric programs warm up slowly: the repeating"
                " unit spans several\n source iterations because result"
                " regions are recycled — section 2.)\n");
    return traced.replayed_fraction > 0.5 ? 0 : 1;
}
