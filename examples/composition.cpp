/**
 * @file
 * Domain example: tracing a program composed from independent
 * libraries — the case the paper argues manual annotation cannot
 * serve (section 1: "programmer introduced trace annotations do not
 * obey these composition principles").
 *
 * Two "libraries" (a solver and an analytics package) are developed
 * independently; neither knows the other exists, and neither could
 * place trace annotations that stay valid when the application
 * interleaves them. Apophenia sits below both and traces the
 * *composed* stream: the repeating unit spans library boundaries.
 *
 *   $ ./examples/composition
 */
#include <cstdio>

#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace {

using namespace apo;

/** Library 1: an iterative solver over its own arrays. It allocates
 * scratch regions per call (so its stream is not 1-periodic) and
 * could not be annotated from inside. */
class SolverLibrary {
  public:
    explicit SolverLibrary(core::Apophenia& rt) : rt_(&rt)
    {
        state_ = rt.CreateRegion();
        coeff_ = rt.CreateRegion();
    }

    void Step()
    {
        const rt::RegionId scratch = rt_->CreateRegion();
        rt_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("solver_apply"),
            {{coeff_, 0, rt::Privilege::kReadOnly, 0},
             {state_, 0, rt::Privilege::kReadOnly, 0},
             {scratch, 0, rt::Privilege::kWriteDiscard, 0}}});
        rt_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("solver_update"),
            {{scratch, 0, rt::Privilege::kReadOnly, 0},
             {state_, 0, rt::Privilege::kReadWrite, 0}}});
        rt_->DestroyRegion(scratch);
    }

    rt::RegionId State() const { return state_; }

  private:
    core::Apophenia* rt_;
    rt::RegionId state_, coeff_;
};

/** Library 2: analytics over data produced by *someone else*. */
class AnalyticsLibrary {
  public:
    explicit AnalyticsLibrary(core::Apophenia& rt) : rt_(&rt)
    {
        moments_ = rt.CreateRegion();
    }

    void Accumulate(rt::RegionId data)
    {
        const rt::RegionId local = rt_->CreateRegion();
        rt_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("analytics_local"),
            {{data, 0, rt::Privilege::kReadOnly, 0},
             {local, 0, rt::Privilege::kWriteDiscard, 0}}});
        rt_->ExecuteTask(rt::TaskLaunch{
            rt::TaskIdOf("analytics_fold"),
            {{local, 0, rt::Privilege::kReadOnly, 0},
             {moments_, 0, rt::Privilege::kReduce, 1}}});
        rt_->DestroyRegion(local);
    }

  private:
    core::Apophenia* rt_;
    rt::RegionId moments_;
};

}  // namespace

int
main()
{
    using namespace apo;

    rt::Runtime runtime;
    core::ApopheniaConfig config;
    config.min_trace_length = 6;
    config.batchsize = 500;
    config.multi_scale_factor = 50;
    core::Apophenia apophenia(runtime, config);

    SolverLibrary solver(apophenia);
    AnalyticsLibrary analytics(apophenia);

    // The application composes the libraries: solve, then analyze the
    // solver's data — data flows across the library boundary, and the
    // repeated fragment spans tasks from both.
    for (int iter = 0; iter < 250; ++iter) {
        solver.Step();
        solver.Step();
        analytics.Accumulate(solver.State());
    }
    apophenia.Flush();

    const auto& stats = runtime.Stats();
    std::printf("composed program: %zu tasks from two independent"
                " libraries\n",
                stats.TotalTasks());
    std::printf("replayed fraction: %.0f%%\n",
                100.0 * stats.ReplayedFraction());
    for (const auto& op : runtime.Log()) {
        if (op.replay_head) {
            const auto* tmpl = runtime.Traces().Find(op.trace);
            std::printf("discovered trace: %zu tasks spanning both"
                        " libraries' operations\n",
                        tmpl->Length());
            break;
        }
    }
    std::printf("\nNeither library could have placed tbegin/tend"
                " correctly: the repeated\nfragment only exists in the"
                " composition. Apophenia traces it from below.\n");
    return stats.ReplayedFraction() > 0.5 ? 0 : 1;
}
