/**
 * @file
 * svc::TraceService — the multi-tenant trace-finding service: many
 * applications, one finder service (ROADMAP item 2).
 *
 * Every experiment below this layer runs one application per finder.
 * The service flips that axis: M concurrent tenant streams (any mix
 * of the app skeletons and the seeded open-loop SyntheticWorkload)
 * are multiplexed through one service instance. Isolation and
 * sharing are split exactly where the paper's economics point:
 *
 *  - **Isolated per tenant** — the token namespace (a per-tenant salt
 *    folded into every launch token at the LaunchBuilder boundary /
 *    tenant session; see rt::FoldNamespace), the candidate trie, the
 *    pending buffer, the runtime with its LRU TraceCache, and the
 *    stream digest. No tenant's candidates can match — or perturb
 *    decisions about — another tenant's stream, so an M-tenant
 *    interleaved run is bit-identical per tenant to M independent
 *    runs (pinned by the differential-fuzz leg).
 *
 *  - **Shared across tenants** — the content-addressed
 *    core::MiningCache backing store. Mining is the dominant cost; a
 *    window is keyed by its *namespace-relative* content, so two
 *    tenants running the same kernel mine it once service-wide and
 *    the second adopts the first's published candidates (re-keyed
 *    into its own namespace). Cross-tenant hits are counted per
 *    tenant and service-wide.
 *
 * A tenant may itself be control-replicated
 * (TenantOptions::replicas > 1): its stream then runs on N simulated
 * nodes behind one sim::Cluster, and one per-tenant shared
 * core::DecisionEngine makes every trace decision once for all of
 * the tenant's replicas (ServiceOptions::shared_decisions) — so a
 * tenant pays mining/matching O(1) in its own width, while its
 * replicated stack still probes the service-wide mining cache for
 * cross-tenant dedup.
 *
 * Interleaving is decided by a pluggable AdmissionPolicy at the issue
 * surface (round-robin and deficit-weighted fair round-robin ship);
 * the schedulable quantum is one application iteration. Virtual time
 * is the count of tasks issued service-wide; open-loop tenants'
 * iterations *arrive* on their own virtual-time schedule and queue,
 * so per-tenant issue latency (grant time minus arrival time, in
 * virtual ticks) measures contention. Everything is deterministic
 * for a fixed tenant set, seed and policy.
 */
#ifndef APOPHENIA_SVC_SERVICE_H
#define APOPHENIA_SVC_SERVICE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/frontend.h"
#include "apps/app.h"
#include "core/apophenia.h"
#include "core/mining_cache.h"
#include "runtime/errors.h"
#include "runtime/runtime.h"
#include "sim/harness.h"
#include "support/hash.h"

namespace apo::svc {

/** Misuse of the service interface — incoherent tenant/overload
 * configurations, rejected up front with a typed error (mirroring
 * rt::RuntimeUsageError, and derived from it so existing catch sites
 * keep working). */
class ServiceUsageError : public rt::RuntimeUsageError {
  public:
    using rt::RuntimeUsageError::RuntimeUsageError;
};

/**
 * What a tenant does when its admission queue (arrived, not yet
 * granted open-loop iterations) exceeds TenantOptions::
 * max_queue_iterations. Tracing is an optimization, so under overload
 * the service can trade trace quality for liveness instead of
 * queueing without bound. Subject to the
 * `-lg:auto_trace:no_overload_control` escape hatch
 * (core::ApopheniaConfig::overload_control == false ⇒ every policy
 * behaves like kBlock and no health-monitor action fires).
 */
enum class OverloadPolicy : std::uint8_t {
    /** Closed-loop backpressure (the pre-overload behaviour): excess
     * arrivals simply queue and issue latency grows. */
    kBlock,
    /** Drop arrivals past the bound — the shed request is never
     * issued (its iteration payload is skipped) and is counted in
     * TenantStats::iterations_shed. */
    kShed,
    /** Admit everything but issue backlogged windows *untraced* (no
     * mining, no matching, no replay — core::Apophenia::SetDegraded),
     * re-enabling tracing with hysteresis once the backlog drains to
     * TenantOptions::degrade_resume_iterations. Degraded windows'
     * tokens never enter the trie or the steady ring, so re-enable is
     * bit-safe. */
    kDegrade,
};

/** One tenant of the service. */
struct TenantOptions {
    std::string name = "tenant";
    /** The tenant's workload; borrowed, must outlive the service.
     * Each tenant needs its own Application instance (applications
     * hold per-run region state). */
    apps::Application* app = nullptr;
    /** Main-loop iterations the tenant runs. */
    std::size_t iterations = 30;
    /** Deficit-weighted-fair share (ignored by round-robin). */
    double weight = 1.0;
    /** Open-loop arrival model: iteration k arrives at virtual time
     * k * arrival_gap (service virtual time = tasks issued
     * service-wide) and queues until granted. 0 = closed loop: the
     * next iteration arrives when the previous one completes. */
    std::uint64_t arrival_gap = 0;
    /** Control replication within the tenant: >1 runs the tenant's
     * stream on this many simulated nodes behind one sim::Cluster,
     * and (under ServiceOptions::shared_decisions) one shared
     * decision engine drives all of the tenant's replicas — the
     * tenant pays mining/matching once no matter how wide it is. The
     * replicated stack still probes the service-wide mining cache
     * (through ClusterOptions::external_mining_cache), so
     * cross-tenant dedup composes with replication. 1 = the plain
     * single-runtime stack. */
    std::size_t replicas = 1;
    /** Explicit token namespace; defaults to
     * TraceService::DefaultNamespace(tenant index). The differential
     * fuzz leg pins that per-tenant behaviour is independent of the
     * salt value. */
    std::optional<rt::TokenHash> name_space;
    /** Replicated tenants only: arm periodic cluster checkpoints of
     * the tenant's replication stack every this many issued tasks
     * (sim::ClusterOptions::checkpoint_interval_tasks; 0 = never).
     * Subject to the `-lg:auto_trace:no_checkpoints` escape hatch in
     * ServiceOptions::config. */
    std::uint64_t checkpoint_interval_tasks = 0;

    // -- Overload control ---------------------------------------------------

    /** Admission bound: the maximum backlog (arrived, not yet granted
     * or shed iterations) before `overload_policy` acts. 0 =
     * unbounded, legal only with kBlock. */
    std::size_t max_queue_iterations = 0;
    OverloadPolicy overload_policy = OverloadPolicy::kBlock;
    /** kDegrade hysteresis low watermark: tracing re-enables once the
     * backlog has drained to at most this many iterations. Must be
     * below max_queue_iterations (equal would re-enter degrade on the
     * very next arrival — thrashing the drain). */
    std::size_t degrade_resume_iterations = 0;
};

/** Pluggable admission policy: which ready tenant is granted the
 * next iteration. Implementations must be deterministic — the
 * interleaved stream (and therefore every digest) is a pure function
 * of (tenants, policy, seeds). */
class AdmissionPolicy {
  public:
    virtual ~AdmissionPolicy() = default;

    virtual std::string_view Name() const = 0;

    /** Called once before the run with every tenant's options. */
    virtual void Reset(const std::vector<TenantOptions>& tenants) = 0;

    /** Pick one of `ready` (ascending tenant indices, never empty). */
    virtual std::size_t Pick(const std::vector<std::size_t>& ready) = 0;

    /** Account the granted iteration's cost (tasks issued; >= 1). */
    virtual void Charge(std::size_t tenant, std::uint64_t tasks) = 0;
};

/** Cyclic round-robin over the ready tenants: equal turn counts,
 * regardless of per-iteration cost. */
class RoundRobinPolicy final : public AdmissionPolicy {
  public:
    std::string_view Name() const override { return "round-robin"; }
    void Reset(const std::vector<TenantOptions>&) override;
    std::size_t Pick(const std::vector<std::size_t>& ready) override;
    void Charge(std::size_t, std::uint64_t) override {}

  private:
    std::size_t cursor_ = 0;  ///< last granted tenant + 1
};

/** Deficit round-robin (Shreedhar & Varghese) with per-tenant
 * weights: each tenant accumulates quantum × weight of task credit
 * per refill and spends it on granted iterations, so long-run issued
 * task shares converge to the weights even when tenants' iterations
 * cost very different task counts. */
class DeficitWeightedFairPolicy final : public AdmissionPolicy {
  public:
    /** @param quantum task credit per refill for weight 1.0. */
    explicit DeficitWeightedFairPolicy(std::uint64_t quantum = 64)
        : quantum_(quantum)
    {
    }

    std::string_view Name() const override
    {
        return "deficit-weighted-fair";
    }
    void Reset(const std::vector<TenantOptions>& tenants) override;
    std::size_t Pick(const std::vector<std::size_t>& ready) override;
    void Charge(std::size_t tenant, std::uint64_t tasks) override;

  private:
    std::uint64_t quantum_;
    std::vector<double> weights_;
    std::vector<double> deficit_;
    std::size_t cursor_ = 0;
};

/**
 * Fixed-capacity percentile reservoir for latency samples. Below
 * capacity it stores every sample (so short runs report *exact*
 * percentiles — identical to the unbounded vectors it replaced);
 * past capacity it switches to Vitter's Algorithm R with a
 * deterministic SplitMix64 index stream, so an hours-long open-loop
 * run holds a memory plateau: after construction, Add() never
 * allocates (pinned by a counting-allocator test). Deterministic —
 * the k'th call with the same samples leaves identical state.
 */
class LatencyReservoir {
  public:
    explicit LatencyReservoir(std::size_t capacity = 1024)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
        samples_.reserve(capacity_);
    }

    void Add(std::uint64_t sample)
    {
        ++count_;
        if (samples_.size() < capacity_) {
            samples_.push_back(sample);
            return;
        }
        // Algorithm R: sample n replaces a resident slot with
        // probability capacity/n, uniformly — under a deterministic
        // hash of the sample index.
        const std::uint64_t slot =
            support::SplitMix64(count_ ^ 0x1a7ebc5d00c5ed1eULL) % count_;
        if (slot < capacity_) {
            samples_[static_cast<std::size_t>(slot)] = sample;
        }
    }

    /** Samples ever offered (not the resident count). */
    std::uint64_t Count() const { return count_; }

    /** q'th percentile over the resident samples (exact while count
     * <= capacity; a uniform-sample estimate beyond). */
    double Percentile(double q) const;

  private:
    std::size_t capacity_;
    std::vector<std::uint64_t> samples_;
    std::uint64_t count_ = 0;
};

/** Service construction parameters. Runtime/pipeline knobs mirror
 * sim::ExperimentOptions so a single-tenant service run is
 * configured — and behaves — exactly like the direct harness. */
struct ServiceOptions {
    core::ApopheniaConfig config;  ///< per-tenant finder tuning
    rt::CostModel costs;
    apps::MachineConfig machine;
    rt::MismatchPolicy mismatch_policy = rt::MismatchPolicy::kThrow;
    /** Per-tenant TraceCache retention bound (0 = unlimited);
     * evictions surface in TenantStats::trace_cache_evictions. */
    std::size_t max_trace_templates = 0;
    rt::OperationLog::Config log_config;
    /** Share one content-addressed MiningCache across all tenants'
     * finders (the cross-tenant dedup substrate). Off = per-tenant
     * mining, no sharing — the isolation baseline. */
    bool share_mining_cache = true;
    /** Retention bound of the shared cache (see MiningCache). */
    std::size_t max_cache_windows = 1024;
    /** Replicated tenants (TenantOptions::replicas > 1): drive every
     * replica of a tenant from one shared per-tenant decision engine
     * (sim::ClusterOptions::shared_decisions; bit-identical to
     * per-replica engines either way). */
    bool shared_decisions = true;
    /** Coordination tuning of replicated tenants (`nodes` comes from
     * TenantOptions::replicas). */
    sim::CoordinationOptions replication;
    /** Admission policy; borrowed. nullptr = internal round-robin. */
    AdmissionPolicy* policy = nullptr;
    /** Optional shared executor for every tenant's mining jobs (the
     * TSan configuration drives cross-tenant cache traffic through a
     * PooledExecutor here); nullptr = deterministic inline mining. */
    support::Executor* executor = nullptr;

    // -- Overload control / health monitor ----------------------------------

    /** Operation-log mode of unreplicated tenants:
     * sim::LogMode::kStreaming retires each tenant's log through an
     * incremental pipeline simulator + digest (the harness's
     * streaming wiring), so resident memory stays bounded on
     * unbounded streams — the sustained-driver mode. Incompatible
     * with replicated tenants (their cluster owns the node logs). */
    sim::LogMode log_mode = sim::LogMode::kRetained;
    /** Health monitor: service-wide resident-byte high watermark
     * (tenant oplogs + TraceCaches + the shared MiningCache), sampled
     * every granted iteration; 0 = monitoring off. A breach evicts
     * mining-cache entries and LRU trace templates toward
     * `memory_low_watermark_bytes` and force-degrades every kDegrade
     * tenant until resident bytes drop below the low watermark. */
    std::size_t memory_high_watermark_bytes = 0;
    /** Hysteresis low watermark; 0 = half the high watermark. */
    std::size_t memory_low_watermark_bytes = 0;
    /** Watchdog: after every grant, abandon analysis jobs stuck
     * (launched, not completed) for more than this many of their
     * tenant's observed tasks, and release mining-cache waiters
     * blocked on in-progress entries (MiningCache::AbandonInProgress)
     * so no waiter hangs on a stuck miner. 0 = watchdog off. */
    std::uint64_t analysis_timeout_tasks = 0;
    /** Virtual-time cost of a degraded task relative to a traced-path
     * task: the degraded path skips mining, matching and replay
     * bookkeeping, so a degraded iteration advances the service clock
     * by ceil(tasks × this) instead of tasks — which is exactly how
     * degrading raises the service's throughput ceiling under
     * overload. 1.0 = no capacity gain. */
    double degraded_task_cost = 0.5;
    /** Capacity of the per-tenant issue-latency reservoirs (virtual
     * and wall-clock) — the fixed memory that replaced the unbounded
     * per-iteration sample vectors. */
    std::size_t latency_reservoir_capacity = 1024;
};

/** Per-tenant accounting of one service run. */
struct TenantStats {
    std::string name;
    rt::TokenHash name_space = 0;
    std::size_t iterations_completed = 0;
    /** Launches issued through the tenant's session. */
    std::uint64_t tokens_issued = 0;
    /** Tasks whose analysis was replayed from the tenant's
     * TraceCache. */
    std::uint64_t tokens_replayed = 0;
    /** Of the tenant's trace fires, the fraction served by an
     * existing template (replay) rather than a fresh recording. */
    double trace_cache_hit_rate = 0.0;
    /** LRU evictions from the tenant's TraceCache (cache pressure;
     * nonzero only under rt::RuntimeOptions::max_trace_templates). */
    std::uint64_t trace_cache_evictions = 0;
    /** This tenant's mining jobs served by the shared cache, and the
     * subset published by a *different* tenant. */
    std::uint64_t mining_cache_hits = 0;
    std::uint64_t cross_tenant_mining_hits = 0;
    /** Issue latency (virtual ticks between an iteration's arrival
     * and its grant) percentiles over the tenant's iterations. */
    double p50_issue_latency = 0.0;
    double p99_issue_latency = 0.0;
    /** Wall-clock per-iteration service time (µs from grant to the
     * iteration's return, steady-clock) percentiles — the real-time
     * companion of the virtual-tick quantiles above, and the first
     * slice of the sustained-rate driver (ROADMAP item 3). */
    double p50_issue_wall_us = 0.0;
    double p99_issue_wall_us = 0.0;
    /** The tenant's stream identity (digest of its own runtime's
     * issued operation stream). */
    std::uint64_t stream_digest = 0;
    std::uint64_t stream_digest_ops = 0;
    /** Digest of the candidate sets the tenant's finder ingested. */
    std::uint64_t candidate_digest = 0;

    // -- Overload accounting -------------------------------------------------

    /** kShed: arrivals dropped past the admission bound (their
     * iteration payloads were never issued). */
    std::uint64_t iterations_shed = 0;
    /** kDegrade: iterations granted while the tenant was degraded
     * (issued untraced). */
    std::uint64_t iterations_degraded = 0;
    /** Distinct entries into the degraded posture (each exit went
     * through the hysteresis low watermark). */
    std::uint64_t degrade_windows = 0;
    /** Tasks issued on the engine's degraded path
     * (core::ApopheniaStats::tasks_degraded). */
    std::uint64_t tokens_degraded = 0;
    /** Peak backlog (arrived, ungranted iterations) ever observed —
     * kBlock's unbounded growth vs kShed/kDegrade's bound, in one
     * number. */
    std::uint64_t max_backlog = 0;
};

/** Service-level health-monitor accounting of one run (all zero with
 * monitoring off — no watermark, no watchdog, or the
 * `-lg:auto_trace:no_overload_control` escape hatch). */
struct HealthStats {
    /** Resident-byte samples taken (one per granted iteration). */
    std::uint64_t samples = 0;
    /** Peak sampled resident bytes (tenant oplogs + trace caches +
     * the shared mining cache). */
    std::size_t peak_resident_bytes = 0;
    /** High-watermark breaches. */
    std::uint64_t pressure_events = 0;
    /** Trace templates / mining-cache entries evicted by pressure. */
    std::uint64_t pressure_trace_evictions = 0;
    std::uint64_t pressure_cache_evictions = 0;
    /** kDegrade tenants force-degraded by memory pressure. */
    std::uint64_t forced_degrades = 0;
    /** Watchdog: analysis jobs abandoned past analysis_timeout_tasks,
     * and in-progress mining-cache entries cleared to release
     * waiters. */
    std::uint64_t watchdog_job_abandons = 0;
    std::uint64_t watchdog_cache_abandons = 0;
};

/** Everything a bench reports about one service run. */
struct ServiceResult {
    std::string policy;
    std::vector<TenantStats> tenants;
    /** Full per-tenant harness results (pipeline-simulated on the
     * tenant's own log; TenantStats threads through/extends these). */
    std::vector<sim::ExperimentResult> experiments;
    core::MiningCache::Stats mining_cache;
    /** Cross-tenant sharing ratio: fraction of all shared-cache
     * probes served by another tenant's published mining. */
    double cross_tenant_sharing = 0.0;
    /** Final virtual time (tasks issued service-wide, plus idle
     * jumps to open-loop arrivals). */
    std::uint64_t virtual_time = 0;
    /** Health-monitor accounting (see HealthStats). */
    HealthStats health;
};

/** See file comment. */
class TraceService {
  public:
    explicit TraceService(ServiceOptions options);
    ~TraceService();

    TraceService(const TraceService&) = delete;
    TraceService& operator=(const TraceService&) = delete;

    /** Default token namespace of tenant `index`: 0 for the first
     * tenant (a single-tenant service is bit-identical to the direct
     * harness), a seeded 64-bit salt for the rest. */
    static rt::TokenHash DefaultNamespace(std::size_t index);

    /** Register a tenant (builds its runtime + finder stack wired to
     * the shared cache). @return the tenant's index. */
    std::size_t AddTenant(TenantOptions tenant);

    std::size_t Tenants() const { return tenants_.size(); }

    /** The tenant's issue surface: every launch token is folded into
     * the tenant's namespace here. Tests (the differential fuzz leg)
     * drive this directly; Run() drives it through the policy. */
    api::Frontend& Session(std::size_t tenant);

    /** The tenant's decision engine: the single-stack Apophenia, or —
     * replicated — the cluster's shared decider (per-node mode:
     * replica 0's engine, identical numbers by bit-identity). */
    const core::Apophenia& TenantEngine(std::size_t tenant) const;
    /** The tenant's runtime (replica 0's when replicated). */
    const rt::Runtime& TenantRuntime(std::size_t tenant) const;
    rt::TokenHash TenantNamespace(std::size_t tenant) const;
    /** The tenant's replication cluster; nullptr when the tenant is
     * unreplicated (TenantOptions::replicas == 1). */
    const sim::Cluster* TenantCluster(std::size_t tenant) const;

    core::MiningCache::Stats MiningCacheStats() const;

    /** Drive every tenant's application to completion under the
     * admission policy and assemble the per-tenant results. */
    ServiceResult Run();

  private:
    struct Tenant;

    /** Typed up-front rejection of incoherent tenant/overload
     * configurations (see ServiceUsageError). */
    void ValidateForRun() const;
    void ApplyOverloadControl(Tenant& tenant, std::uint64_t clock);
    void RunWatchdogAndHealth(std::uint64_t clock);
    ServiceResult AssembleResults(std::uint64_t virtual_time);

    ServiceOptions options_;
    RoundRobinPolicy default_policy_;
    std::unique_ptr<core::MiningCache> cache_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    HealthStats health_;
};

}  // namespace apo::svc

#endif  // APOPHENIA_SVC_SERVICE_H
