#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <span>

#include "runtime/errors.h"
#include "sim/cluster.h"
#include "sim/metrics.h"
#include "sim/pipeline.h"
#include "support/hash.h"

namespace apo::svc {

/**
 * The tenant's issue surface: a thin api::Frontend that folds the
 * tenant's token namespace into every launch token before handing it
 * to the tenant's Apophenia instance. The fold is a single XOR on the
 * boundary-computed hash (see rt::FoldNamespace) — namespace 0 (the
 * first tenant, and every single-tenant service) forwards tokens
 * untouched, which is what makes a single-tenant service run
 * bit-identical to the direct harness.
 */
class TenantSession final : public api::Frontend {
  public:
    TenantSession(api::Frontend& inner, rt::TokenHash name_space)
        : inner_(&inner), namespace_(name_space)
    {
    }

    std::string_view Name() const override { return "svc-session"; }
    rt::RegionId CreateRegion() override { return inner_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) override
    {
        inner_->DestroyRegion(r);
    }
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t count) override
    {
        return inner_->PartitionRegion(parent, count);
    }

  protected:
    void DoExecuteTask(const rt::TaskLaunchView& launch) override
    {
        if (namespace_ == 0) {
            inner_->ExecuteTask(launch);
            return;
        }
        rt::TaskLaunchView salted = launch;
        salted.token = rt::FoldNamespace(namespace_, launch.token);
        inner_->ExecuteTask(salted);
    }

    /** The tenant engine (Apophenia) does its own tracing; manual
     * annotations are forwarded for uniform accounting but reported
     * as dropped at this surface. */
    bool DoBeginTrace(rt::TraceId id) override
    {
        inner_->BeginTrace(id);
        return false;
    }
    bool DoEndTrace(rt::TraceId id) override
    {
        inner_->EndTrace(id);
        return false;
    }
    void DoFlush() override { inner_->Flush(); }

  private:
    api::Frontend* inner_;
    rt::TokenHash namespace_;
};

/** One tenant's stack plus its run-loop state. Exactly one of
 * {runtime+engine, cluster} is populated: the single stack, or the
 * tenant's replication cluster (TenantOptions::replicas > 1). */
struct TraceService::Tenant {
    TenantOptions options;
    rt::TokenHash name_space = 0;
    std::unique_ptr<rt::Runtime> runtime;
    std::unique_ptr<core::Apophenia> engine;
    std::unique_ptr<sim::Cluster> cluster;
    std::unique_ptr<TenantSession> session;

    /** Issued-task count at the end of each completed iteration. */
    std::vector<std::size_t> boundaries;
    /** Issue-latency (virtual ticks) and wall-clock service-time
     * (nanoseconds, grant → iteration return) reservoirs: fixed
     * memory however long the run (see LatencyReservoir). */
    LatencyReservoir latencies;
    LatencyReservoir wall_ns;
    std::size_t completed = 0;
    /** Overload accounting (see OverloadPolicy / TenantStats). */
    std::uint64_t shed = 0;
    std::uint64_t degraded_iterations = 0;
    std::uint64_t degrade_windows = 0;
    std::uint64_t max_backlog = 0;
    /** Health monitor's force-degrade latch: set on a high-watermark
     * breach, cleared once resident bytes drain below the low
     * watermark (OR'd with the backlog hysteresis). */
    bool memory_degraded = false;
    /** Closed loop: virtual time the next iteration became ready. */
    std::uint64_t ready_since = 0;
    /** Open loop: virtual time of iteration 0's arrival. */
    std::uint64_t arrival_base = 0;

    /** Streaming log mode: the tenant's retire-consumer stack — the
     * harness's streaming wiring, per tenant (simulator + traced
     * flags + digest run incrementally; the log recycles its blocks
     * behind them). */
    std::optional<sim::PipelineSimulator> streaming_sim;
    std::optional<rt::WindowedTransitiveReducer> streaming_reducer;
    std::vector<rt::Dependence> reduce_scratch;
    sim::TracedFlags streaming_traced;
    sim::StreamDigest streaming_digest;

    explicit Tenant(std::size_t reservoir_capacity)
        : latencies(reservoir_capacity), wall_ns(reservoir_capacity)
    {
    }

    /** Arrivals consumed: granted iterations plus shed ones (a shed
     * request's payload is skipped, not deferred). */
    std::uint64_t Consumed() const
    {
        return static_cast<std::uint64_t>(completed) + shed;
    }

    bool Finished() const
    {
        return Consumed() >= options.iterations;
    }

    /** Arrival time of the next (not-yet-consumed) iteration. */
    std::uint64_t NextArrival() const
    {
        return options.arrival_gap == 0
                   ? ready_since
                   : arrival_base + options.arrival_gap * Consumed();
    }

    /** Backlog at `clock`: iterations that have arrived and are
     * neither granted nor shed. A closed-loop tenant queues at most
     * one. */
    std::uint64_t Backlog(std::uint64_t clock) const
    {
        if (Finished()) {
            return 0;
        }
        if (options.arrival_gap == 0) {
            return ready_since <= clock ? 1 : 0;
        }
        if (clock < arrival_base) {
            return 0;
        }
        std::uint64_t arrived =
            (clock - arrival_base) / options.arrival_gap + 1;
        arrived = std::min<std::uint64_t>(
            arrived, static_cast<std::uint64_t>(options.iterations));
        const std::uint64_t done = Consumed();
        return arrived > done ? arrived - done : 0;
    }
};

// -- Policies ---------------------------------------------------------------

void
RoundRobinPolicy::Reset(const std::vector<TenantOptions>&)
{
    cursor_ = 0;
}

std::size_t
RoundRobinPolicy::Pick(const std::vector<std::size_t>& ready)
{
    // First ready tenant at or after the cursor, cyclically.
    for (const std::size_t t : ready) {
        if (t >= cursor_) {
            cursor_ = t + 1;
            return t;
        }
    }
    cursor_ = ready.front() + 1;
    return ready.front();
}

void
DeficitWeightedFairPolicy::Reset(const std::vector<TenantOptions>& tenants)
{
    weights_.clear();
    deficit_.clear();
    for (const TenantOptions& tenant : tenants) {
        weights_.push_back(std::max(tenant.weight, 1e-6));
        deficit_.push_back(0.0);
    }
    cursor_ = 0;
}

std::size_t
DeficitWeightedFairPolicy::Pick(const std::vector<std::size_t>& ready)
{
    for (;;) {
        // Cyclic scan from the cursor for a ready tenant with credit.
        // The cursor does not advance on a grant — a tenant is served
        // until its deficit is spent (see Charge), which is what lets
        // task shares track weights across differently-sized
        // iterations.
        std::size_t begin = 0;
        while (begin < ready.size() && ready[begin] < cursor_) {
            ++begin;
        }
        for (std::size_t i = 0; i < ready.size(); ++i) {
            const std::size_t t =
                ready[(begin + i) % ready.size()];
            if (deficit_[t] > 0.0) {
                cursor_ = t;
                return t;
            }
        }
        // Everyone ready is out of credit: refill proportionally to
        // the weights and scan again (terminates — each refill adds
        // at least quantum × min-weight of credit).
        for (const std::size_t t : ready) {
            deficit_[t] += static_cast<double>(quantum_) * weights_[t];
        }
    }
}

void
DeficitWeightedFairPolicy::Charge(std::size_t tenant, std::uint64_t tasks)
{
    deficit_[tenant] -= static_cast<double>(tasks);
    if (deficit_[tenant] <= 0.0) {
        cursor_ = tenant + 1;  // spent: move on next Pick
    }
}

// -- TraceService -----------------------------------------------------------

TraceService::TraceService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(std::make_unique<core::MiningCache>(
          options_.max_cache_windows))
{
}

TraceService::~TraceService() = default;

rt::TokenHash
TraceService::DefaultNamespace(std::size_t index)
{
    if (index == 0) {
        return 0;  // bit-identical to the un-namespaced direct stack
    }
    const rt::TokenHash salt = support::SplitMix64(
        support::HashCombine(0x7e4a47ULL, index));
    return salt == 0 ? 0x7e4a47ULL : salt;
}

std::size_t
TraceService::AddTenant(TenantOptions tenant)
{
    const bool streaming = options_.log_mode == sim::LogMode::kStreaming;
    if (streaming && tenant.replicas > 1) {
        throw ServiceUsageError(
            "TraceService::AddTenant: tenant '" + tenant.name +
            "': sim::LogMode::kStreaming is incompatible with "
            "replicated tenants (the cluster owns the node logs)");
    }
    if (streaming && options_.config.inline_transitive_reduction &&
        options_.config.window == 0) {
        throw ServiceUsageError(
            "TraceService::AddTenant: the inline transitive reduction "
            "over a streaming tenant log needs a bounded window "
            "(-lg:window > 0); an unbounded reduction is a whole-log "
            "transform");
    }
    auto state =
        std::make_unique<Tenant>(options_.latency_reservoir_capacity);
    state->options = std::move(tenant);
    state->name_space = state->options.name_space.value_or(
        DefaultNamespace(tenants_.size()));

    rt::RuntimeOptions runtime_options;
    runtime_options.costs = options_.costs;
    runtime_options.nodes = options_.machine.nodes;
    runtime_options.mismatch_policy = options_.mismatch_policy;
    runtime_options.max_trace_templates = options_.max_trace_templates;
    runtime_options.log_config = options_.log_config;
    core::ApopheniaConfig config = options_.config;
    config.cache_namespace = state->name_space;

    api::Frontend* inner = nullptr;
    if (state->options.replicas > 1) {
        // Replicated tenant: N nodes behind one cluster, one shared
        // per-tenant decision engine (under shared_decisions), and
        // the *service-wide* mining cache as the cluster's backing
        // store so cross-tenant dedup composes with replication.
        // Cluster mining is always deterministic-inline — the
        // service-level executor applies to unreplicated tenants
        // only.
        sim::ClusterOptions cluster_options;
        cluster_options.coordination = options_.replication;
        cluster_options.coordination.nodes = state->options.replicas;
        cluster_options.config = config;
        cluster_options.config.enabled = true;
        cluster_options.runtime_options = runtime_options;
        cluster_options.shared_decisions = options_.shared_decisions;
        cluster_options.checkpoint_interval_tasks =
            state->options.checkpoint_interval_tasks;
        cluster_options.external_mining_cache =
            options_.share_mining_cache ? cache_.get() : nullptr;
        state->cluster = std::make_unique<sim::Cluster>(cluster_options);
        inner = state->cluster.get();
    } else {
        state->runtime = std::make_unique<rt::Runtime>(runtime_options);
        state->engine = std::make_unique<core::Apophenia>(
            *state->runtime, config, options_.executor,
            options_.share_mining_cache ? cache_.get() : nullptr);
        inner = state->engine.get();
        if (streaming) {
            // The harness's streaming wiring, per tenant: simulator,
            // traced flags and digest run as the log's retire
            // consumer; the log recycles its blocks behind them, so a
            // sustained open-loop run holds a memory plateau. The
            // inline transitive reduction streams through the
            // windowed reducer (validated above).
            sim::PipelineOptions sim_options;
            sim_options.machine = options_.machine;
            sim_options.costs = options_.costs;
            sim_options.apophenia_front_end = true;
            sim_options.window = options_.config.window;
            sim_options.inline_transitive_reduction = false;
            state->streaming_sim.emplace(sim_options);
            if (options_.config.inline_transitive_reduction) {
                state->streaming_reducer.emplace(options_.config.window);
            }
            Tenant* raw = state.get();  // heap address, stable
            state->runtime->EnableLogStreaming([raw](
                                                   const rt::OpView& op) {
                raw->streaming_traced.Consume(op);
                raw->streaming_digest.Consume(op);
                if (raw->streaming_reducer) {
                    raw->reduce_scratch.assign(op.dependences.begin(),
                                               op.dependences.end());
                    raw->streaming_reducer->Reduce(op.index,
                                                   raw->reduce_scratch);
                    rt::OpView reduced = op;
                    reduced.dependences =
                        rt::DependenceSpan(std::span<const rt::Dependence>(
                            raw->reduce_scratch));
                    raw->streaming_sim->Consume(reduced);
                } else {
                    raw->streaming_sim->Consume(op);
                }
            });
        }
    }
    state->session =
        std::make_unique<TenantSession>(*inner, state->name_space);
    tenants_.push_back(std::move(state));
    return tenants_.size() - 1;
}

api::Frontend&
TraceService::Session(std::size_t tenant)
{
    return *tenants_.at(tenant)->session;
}

const core::Apophenia&
TraceService::TenantEngine(std::size_t tenant) const
{
    const Tenant& state = *tenants_.at(tenant);
    if (state.cluster != nullptr) {
        return state.cluster->SharedDecisions() ? state.cluster->Decider()
                                                : state.cluster->Node(0);
    }
    return *state.engine;
}

const rt::Runtime&
TraceService::TenantRuntime(std::size_t tenant) const
{
    const Tenant& state = *tenants_.at(tenant);
    return state.cluster != nullptr ? state.cluster->NodeRuntime(0)
                                    : *state.runtime;
}

const sim::Cluster*
TraceService::TenantCluster(std::size_t tenant) const
{
    return tenants_.at(tenant)->cluster.get();
}

rt::TokenHash
TraceService::TenantNamespace(std::size_t tenant) const
{
    return tenants_.at(tenant)->name_space;
}

core::MiningCache::Stats
TraceService::MiningCacheStats() const
{
    return cache_->Snapshot();
}

void
TraceService::ValidateForRun() const
{
    if (tenants_.empty()) {
        throw ServiceUsageError(
            "TraceService::Run: no tenants registered");
    }
    for (const auto& tenant : tenants_) {
        const TenantOptions& opt = tenant->options;
        if (opt.app == nullptr) {
            throw ServiceUsageError(
                "TraceService::Run: tenant '" + opt.name +
                "' has no application (TenantOptions::app)");
        }
        if (opt.overload_policy != OverloadPolicy::kBlock) {
            if (opt.arrival_gap == 0) {
                throw ServiceUsageError(
                    "TraceService::Run: tenant '" + opt.name +
                    "': OverloadPolicy::kShed/kDegrade needs an "
                    "open-loop arrival model (arrival_gap > 0) — a "
                    "closed-loop tenant never queues more than one "
                    "iteration, so there is nothing to shed or "
                    "degrade");
            }
            if (opt.max_queue_iterations == 0) {
                throw ServiceUsageError(
                    "TraceService::Run: tenant '" + opt.name +
                    "': OverloadPolicy::kShed/kDegrade needs an "
                    "admission bound (max_queue_iterations > 0); 0 "
                    "means unbounded, which only OverloadPolicy::"
                    "kBlock accepts");
            }
        }
        if (opt.overload_policy == OverloadPolicy::kDegrade) {
            if (opt.replicas > 1) {
                throw ServiceUsageError(
                    "TraceService::Run: tenant '" + opt.name +
                    "': OverloadPolicy::kDegrade is incompatible with "
                    "replicated tenants (the degrade switch drives "
                    "the tenant's single decision engine)");
            }
            if (opt.degrade_resume_iterations >=
                opt.max_queue_iterations) {
                throw ServiceUsageError(
                    "TraceService::Run: tenant '" + opt.name +
                    "': degrade_resume_iterations (" +
                    std::to_string(opt.degrade_resume_iterations) +
                    ") must be below max_queue_iterations (" +
                    std::to_string(opt.max_queue_iterations) +
                    ") — an equal watermark re-enters degrade on the "
                    "very next arrival");
            }
        }
    }
}

void
TraceService::ApplyOverloadControl(Tenant& tenant, std::uint64_t clock)
{
    const TenantOptions& opt = tenant.options;
    if (opt.overload_policy == OverloadPolicy::kShed &&
        !tenant.Finished()) {
        bool any = false;
        while (!tenant.Finished() &&
               tenant.Backlog(clock) > opt.max_queue_iterations) {
            // Drop the oldest queued arrival: its iteration payload
            // is skipped, never deferred (Consumed() advances).
            tenant.shed += 1;
            any = true;
        }
        if (any && tenant.Finished()) {
            // Shedding consumed the tenant's final arrivals — the
            // grant path will never run again for it, so drain here
            // (the same tenant-local end-of-stream Flush).
            tenant.session->Flush();
        }
    }
    if (opt.overload_policy == OverloadPolicy::kDegrade &&
        tenant.engine != nullptr) {
        const std::uint64_t backlog = tenant.Backlog(clock);
        bool want = tenant.engine->Degraded();
        if (want) {
            // Hysteresis: stay degraded until the backlog has drained
            // to the low watermark, not merely below the bound.
            if (backlog <= opt.degrade_resume_iterations) {
                want = false;
            }
        } else if (backlog > opt.max_queue_iterations) {
            want = true;
        }
        if (tenant.memory_degraded) {
            want = true;  // health monitor's force-degrade latch
        }
        if (want && !tenant.engine->Degraded()) {
            tenant.degrade_windows += 1;
        }
        tenant.engine->SetDegraded(want);
    }
}

void
TraceService::RunWatchdogAndHealth(std::uint64_t clock)
{
    (void)clock;
    if (options_.analysis_timeout_tasks > 0) {
        std::size_t abandoned = 0;
        for (const auto& tenant : tenants_) {
            if (tenant->engine != nullptr) {
                abandoned += tenant->engine->AbandonStaleAnalyses(
                    options_.analysis_timeout_tasks);
            }
        }
        if (abandoned > 0) {
            health_.watchdog_job_abandons += abandoned;
            // A stuck job may hold an in-progress mining-cache entry
            // that other miners are waiting on: clear those so the
            // waiters wake, re-probe and mine for themselves.
            health_.watchdog_cache_abandons +=
                cache_->AbandonInProgress();
        }
    }
    if (options_.memory_high_watermark_bytes == 0) {
        return;
    }
    health_.samples += 1;
    std::size_t resident = cache_->ResidentBytes();
    for (const auto& tenant : tenants_) {
        if (tenant->cluster != nullptr) {
            for (std::size_t n = 0; n < tenant->cluster->Nodes(); ++n) {
                const rt::Runtime& node = tenant->cluster->NodeRuntime(n);
                resident += node.Log().ResidentBytes() +
                            node.Traces().ResidentBytes();
            }
        } else {
            resident += tenant->runtime->Log().ResidentBytes() +
                        tenant->runtime->Traces().ResidentBytes();
        }
    }
    health_.peak_resident_bytes =
        std::max(health_.peak_resident_bytes, resident);
    const std::size_t high = options_.memory_high_watermark_bytes;
    const std::size_t low = options_.memory_low_watermark_bytes != 0
                                ? options_.memory_low_watermark_bytes
                                : high / 2;
    if (resident > high) {
        health_.pressure_events += 1;
        // Shed reconstructible state first (evicted mining windows
        // re-mine, evicted templates re-record), then force the
        // kDegrade tenants off the state-accreting traced path until
        // resident bytes drain below the low watermark.
        health_.pressure_cache_evictions +=
            cache_->EvictToResidentBytes(cache_->ResidentBytes() / 2);
        for (const auto& tenant : tenants_) {
            if (tenant->runtime != nullptr) {
                health_.pressure_trace_evictions +=
                    tenant->runtime->PressureEvictTraces(
                        tenant->runtime->Traces().ResidentBytes() / 2);
            }
            if (tenant->options.overload_policy ==
                    OverloadPolicy::kDegrade &&
                !tenant->memory_degraded) {
                tenant->memory_degraded = true;
                health_.forced_degrades += 1;
            }
        }
    } else if (resident <= low) {
        for (const auto& tenant : tenants_) {
            tenant->memory_degraded = false;
        }
    }
}

ServiceResult
TraceService::Run()
{
    ValidateForRun();
    AdmissionPolicy* policy =
        options_.policy != nullptr ? options_.policy : &default_policy_;
    {
        std::vector<TenantOptions> specs;
        specs.reserve(tenants_.size());
        for (const auto& tenant : tenants_) {
            specs.push_back(tenant->options);
        }
        policy->Reset(specs);
    }

    // Setup in tenant order (deterministic; each tenant's stream
    // starts exactly as its standalone run would).
    std::uint64_t clock = 0;
    for (const auto& tenant : tenants_) {
        tenant->options.app->Setup(*tenant->session);
        clock += tenant->session->Stats().tasks_executed;
    }
    for (const auto& tenant : tenants_) {
        tenant->ready_since = clock;
        tenant->arrival_base = clock;
    }

    // The escape hatch turns every overload action off: every policy
    // behaves like kBlock, no watchdog, no health monitor.
    const bool overload_on = options_.config.overload_control;

    std::vector<std::size_t> ready;
    for (;;) {
        ready.clear();
        std::uint64_t next_arrival =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t t = 0; t < tenants_.size(); ++t) {
            Tenant& tenant = *tenants_[t];
            if (overload_on) {
                ApplyOverloadControl(tenant, clock);
            }
            if (tenant.Finished()) {
                continue;
            }
            tenant.max_backlog =
                std::max(tenant.max_backlog, tenant.Backlog(clock));
            const std::uint64_t arrival = tenant.NextArrival();
            if (arrival <= clock) {
                ready.push_back(t);
            } else {
                next_arrival = std::min(next_arrival, arrival);
            }
        }
        if (ready.empty()) {
            if (next_arrival ==
                std::numeric_limits<std::uint64_t>::max()) {
                break;  // every tenant finished
            }
            // Idle: jump virtual time to the next open-loop arrival.
            clock = next_arrival;
            continue;
        }

        const std::size_t t = policy->Pick(ready);
        Tenant& tenant = *tenants_[t];
        tenant.latencies.Add(clock - tenant.NextArrival());

        const std::uint64_t before =
            tenant.session->Stats().tasks_executed;
        const auto wall_start = std::chrono::steady_clock::now();
        tenant.options.app->Iteration(
            *tenant.session,
            static_cast<std::size_t>(tenant.Consumed()),
            /*manual_tracing=*/false);
        tenant.wall_ns.Add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count()));
        const std::uint64_t after =
            tenant.session->Stats().tasks_executed;
        const std::uint64_t tasks = after - before;
        // A degraded grant skips mining, matching and replay
        // bookkeeping, so it advances the service clock at the
        // discounted rate — the capacity a degraded tenant recovers.
        std::uint64_t charged = tasks;
        const bool degraded =
            tenant.engine != nullptr && tenant.engine->Degraded();
        if (degraded) {
            charged = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(std::llround(
                       static_cast<double>(tasks) *
                       options_.degraded_task_cost)));
            tenant.degraded_iterations += 1;
        }
        clock += charged;
        policy->Charge(t, std::max<std::uint64_t>(1, charged));

        tenant.boundaries.push_back(static_cast<std::size_t>(after));
        tenant.completed += 1;
        tenant.ready_since = clock;
        if (tenant.Finished()) {
            // End-of-stream for this tenant, at this point of the
            // interleave — a tenant-local drain, like the standalone
            // harness's final Flush.
            tenant.session->Flush();
        }
        if (overload_on) {
            RunWatchdogAndHealth(clock);
        }
    }
    return AssembleResults(clock);
}

double
LatencyReservoir::Percentile(double q) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    std::vector<std::uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t at = static_cast<std::size_t>(rank + 0.5);
    return static_cast<double>(sorted[std::min(at, sorted.size() - 1)]);
}

ServiceResult
TraceService::AssembleResults(std::uint64_t virtual_time)
{
    ServiceResult result;
    result.policy = std::string(
        (options_.policy != nullptr ? options_.policy
                                    : &default_policy_)
            ->Name());
    result.virtual_time = virtual_time;

    sim::PipelineOptions pipeline_options;
    pipeline_options.machine = options_.machine;
    pipeline_options.costs = options_.costs;
    pipeline_options.apophenia_front_end = true;
    pipeline_options.window = options_.config.window;
    pipeline_options.inline_transitive_reduction =
        options_.config.inline_transitive_reduction;

    for (const auto& tenant : tenants_) {
        const sim::Cluster* cluster = tenant->cluster.get();
        const rt::Runtime& runtime = cluster != nullptr
                                         ? cluster->NodeRuntime(0)
                                         : *tenant->runtime;
        // Replicated: the engine whose stats describe the tenant is
        // the shared decider (or replica 0's in per-node mode —
        // identical numbers by the bit-identity property).
        const core::Apophenia& engine =
            cluster != nullptr
                ? (cluster->SharedDecisions() ? cluster->Decider()
                                              : cluster->Node(0))
                : *tenant->engine;
        const core::FinderStats& finder = engine.Finder();
        const bool streaming = tenant->streaming_sim.has_value();

        sim::ExperimentResult experiment;
        sim::PipelineResult sim;
        sim::StreamDigest digest;
        if (streaming) {
            // The tenant's log streamed through its retire consumer —
            // drain the tail, finish the incremental simulator and
            // take the rolling digest (the retained log is gone).
            tenant->runtime->DrainLogStream();
            sim = tenant->streaming_sim->Finish();
            digest = tenant->streaming_digest;
            experiment.warmup_iterations = sim::WarmupIterations(
                tenant->streaming_traced, tenant->boundaries);
        } else {
            sim = SimulatePipeline(runtime.Log(), pipeline_options);
            digest = sim::StreamDigest::Of(runtime.Log());
            experiment.warmup_iterations = sim::WarmupIterations(
                runtime.Log(), tenant->boundaries);
        }
        const std::vector<double> ends =
            IterationEndTimes(sim, tenant->boundaries);
        experiment.iterations_per_second = sim::SteadyThroughput(ends);
        experiment.makespan_us = sim.makespan_us;
        experiment.total_tasks = runtime.Log().size();
        experiment.runtime_stats = runtime.Stats();
        experiment.replayed_fraction =
            runtime.Stats().ReplayedFraction();
        experiment.trace_cache_evictions =
            runtime.Stats().traces_evicted;
        experiment.frontend_stats = tenant->session->Stats();
        experiment.apophenia_stats = engine.Stats();
        experiment.mining_fast_path_hits = finder.mining_fast_path_hits;
        experiment.mining_repairs = finder.mining_repairs;
        experiment.mining_full = finder.mining_full;
        experiment.mining_cache_hits = finder.mining_cache_hits;
        experiment.log_peak_resident_bytes =
            runtime.Log().PeakResidentBytes();
        experiment.log_retired_ops = runtime.Log().RetiredCount();
        experiment.stream_digest = digest.Value();
        experiment.stream_digest_ops = digest.Count();
        if (cluster != nullptr) {
            experiment.streams_identical = cluster->StreamDigestsAgree();
            experiment.coordination = cluster->Coordination();
            experiment.node_metrics = cluster->PerNode();
            const sim::DecisionStats decisions = cluster->DecisionCost();
            experiment.shared_decisions = decisions.shared;
            experiment.decision_ns = decisions.decision_ns;
            experiment.decision_apply_ns = decisions.apply_ns;
            experiment.decision_batches = decisions.batches;
            experiment.decisions_broadcast = decisions.decisions;
            experiment.decision_fallbacks = decisions.fallbacks;
            for (std::size_t n = 0; n < cluster->Nodes(); ++n) {
                experiment.log_peak_resident_bytes = std::max(
                    experiment.log_peak_resident_bytes,
                    cluster->NodeRuntime(n).Log().PeakResidentBytes());
            }
        }

        TenantStats stats;
        stats.name = tenant->options.name;
        stats.name_space = tenant->name_space;
        stats.iterations_completed = tenant->completed;
        stats.tokens_issued =
            tenant->session->Stats().tasks_executed;
        stats.tokens_replayed = runtime.Stats().tasks_replayed;
        const core::ApopheniaStats& front = engine.Stats();
        stats.trace_cache_hit_rate =
            front.traces_fired == 0
                ? 0.0
                : static_cast<double>(front.trace_replays) /
                      static_cast<double>(front.traces_fired);
        stats.trace_cache_evictions = runtime.Stats().traces_evicted;
        stats.mining_cache_hits = finder.mining_cache_hits;
        stats.cross_tenant_mining_hits =
            finder.mining_cache_cross_hits;
        stats.p50_issue_latency = tenant->latencies.Percentile(0.50);
        stats.p99_issue_latency = tenant->latencies.Percentile(0.99);
        stats.p50_issue_wall_us =
            tenant->wall_ns.Percentile(0.50) / 1000.0;
        stats.p99_issue_wall_us =
            tenant->wall_ns.Percentile(0.99) / 1000.0;
        stats.stream_digest = digest.Value();
        stats.stream_digest_ops = digest.Count();
        stats.candidate_digest = engine.CandidateDigest();
        stats.iterations_shed = tenant->shed;
        stats.iterations_degraded = tenant->degraded_iterations;
        stats.degrade_windows = tenant->degrade_windows;
        stats.tokens_degraded = engine.Stats().tasks_degraded;
        stats.max_backlog = tenant->max_backlog;

        result.experiments.push_back(std::move(experiment));
        result.tenants.push_back(std::move(stats));
    }

    result.mining_cache = cache_->Snapshot();
    const std::uint64_t probes =
        result.mining_cache.hits + result.mining_cache.misses;
    result.cross_tenant_sharing =
        probes == 0 ? 0.0
                    : static_cast<double>(
                          result.mining_cache.cross_namespace_hits) /
                          static_cast<double>(probes);
    result.health = health_;
    return result;
}

}  // namespace apo::svc
