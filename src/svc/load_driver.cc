#include "svc/load_driver.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace apo::svc {

LoadDriver::LoadDriver(LoadDriverOptions options)
    : options_(std::move(options))
{
}

std::uint64_t
LoadDriver::DeriveArrivalGap(std::size_t tenants,
                             std::size_t kernel_tasks,
                             double offered_load)
{
    if (tenants == 0 || kernel_tasks == 0 || offered_load <= 0.0) {
        throw ServiceUsageError(
            "LoadDriver: tenants, kernel_tasks and offered_load must "
            "all be positive");
    }
    // Aggregate rate = tenants × kernel_tasks / gap tasks per tick;
    // solve for gap at the target fraction of the 1-task/tick traced
    // capacity.
    const double gap = static_cast<double>(tenants) *
                       static_cast<double>(kernel_tasks) / offered_load;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(gap)));
}

DriverResult
LoadDriver::Run()
{
    const std::uint64_t gap = DeriveArrivalGap(
        options_.tenants, options_.kernel_tasks, options_.offered_load);
    const std::uint64_t per_iteration =
        static_cast<std::uint64_t>(options_.tenants) *
        static_cast<std::uint64_t>(options_.kernel_tasks);
    const std::size_t iterations = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.task_budget / per_iteration));

    TraceService service(options_.service);
    std::vector<std::unique_ptr<SyntheticWorkload>> apps;
    apps.reserve(options_.tenants);
    for (std::size_t t = 0; t < options_.tenants; ++t) {
        SyntheticOptions synthetic;
        synthetic.machine = options_.service.machine;
        synthetic.seed = options_.seed + t;
        synthetic.kernel_tasks = options_.kernel_tasks;
        // Exactly kernel_tasks per iteration: the offered-load
        // algebra is exact, and every policy sees identical arrival
        // schedules.
        synthetic.noise_interval = 0;
        synthetic.exec_us = options_.exec_us;
        apps.push_back(
            std::make_unique<SyntheticWorkload>(std::move(synthetic)));

        TenantOptions tenant;
        tenant.name = "load-" + std::to_string(t);
        tenant.app = apps.back().get();
        tenant.iterations = iterations;
        tenant.arrival_gap = gap;
        tenant.overload_policy = options_.policy;
        tenant.max_queue_iterations = options_.max_queue_iterations;
        tenant.degrade_resume_iterations =
            options_.degrade_resume_iterations;
        service.AddTenant(std::move(tenant));
    }

    DriverResult result;
    result.arrival_gap = gap;
    result.iterations_per_tenant = iterations;
    result.service = service.Run();

    std::uint64_t offered = 0;
    std::uint64_t shed = 0;
    std::uint64_t granted = 0;
    std::uint64_t degraded = 0;
    for (const TenantStats& tenant : result.service.tenants) {
        result.tasks_issued += tenant.tokens_issued;
        offered += tenant.iterations_completed + tenant.iterations_shed;
        shed += tenant.iterations_shed;
        granted += tenant.iterations_completed;
        degraded += tenant.iterations_degraded;
        result.worst_p50_issue_latency = std::max(
            result.worst_p50_issue_latency, tenant.p50_issue_latency);
        result.worst_p99_issue_latency = std::max(
            result.worst_p99_issue_latency, tenant.p99_issue_latency);
        result.worst_p99_issue_wall_us = std::max(
            result.worst_p99_issue_wall_us, tenant.p99_issue_wall_us);
        result.max_backlog =
            std::max(result.max_backlog, tenant.max_backlog);
        result.tenant_digests.push_back(tenant.stream_digest);
    }
    result.throughput_tasks_per_tick =
        result.service.virtual_time == 0
            ? 0.0
            : static_cast<double>(result.tasks_issued) /
                  static_cast<double>(result.service.virtual_time);
    result.shed_fraction =
        offered == 0 ? 0.0
                     : static_cast<double>(shed) /
                           static_cast<double>(offered);
    result.degraded_fraction =
        granted == 0 ? 0.0
                     : static_cast<double>(degraded) /
                           static_cast<double>(granted);
    result.peak_resident_bytes = result.service.health.peak_resident_bytes;
    if (result.peak_resident_bytes == 0) {
        for (const sim::ExperimentResult& experiment :
             result.service.experiments) {
            result.peak_resident_bytes =
                std::max(result.peak_resident_bytes,
                         experiment.log_peak_resident_bytes);
        }
    }
    return result;
}

}  // namespace apo::svc
