/**
 * @file
 * Seeded synthetic workload generator for the multi-tenant service.
 *
 * The five application skeletons are closed-loop: the next iteration
 * is issued when the service grants it. A served fleet also contains
 * open-loop tenants whose requests arrive on their own schedule
 * regardless of service progress — the service models that by pairing
 * this generator with a nonzero TenantOptions::arrival_gap, so
 * iterations queue up behind a busy service and the per-tenant issue
 * latency (virtual time between arrival and grant) becomes a real,
 * contention-dependent quantity.
 *
 * The stream itself is a deterministic function of the seed: a fixed
 * random kernel of `kernel_tasks` launches repeated every iteration
 * (the traceable body), plus a short irregular burst every
 * `noise_interval` iterations (unique shapes per burst, so the finder
 * must keep re-discovering the kernel around interruptions — the same
 * structure the app skeletons use). Two generators with the same seed
 * issue bit-identical streams; different seeds give disjoint token
 * sets with probability 1 - 2^-64-ish.
 */
#ifndef APOPHENIA_SVC_WORKLOAD_H
#define APOPHENIA_SVC_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "apps/array.h"

namespace apo::svc {

/** Tuning knobs of the synthetic tenant. */
struct SyntheticOptions {
    apps::MachineConfig machine;
    /** Everything below is derived deterministically from this. */
    std::uint64_t seed = 1;
    /** Launches in the repeated per-iteration kernel. */
    std::size_t kernel_tasks = 40;
    /** Long-lived arrays the kernel reads/writes. */
    std::size_t arrays = 4;
    /** Every this-many iterations, issue an irregular burst (0 =
     * never). */
    std::size_t noise_interval = 16;
    double exec_us = 500.0;
};

/** See file comment. */
class SyntheticWorkload final : public apps::Application {
  public:
    explicit SyntheticWorkload(SyntheticOptions options);

    std::string_view Name() const override { return "synthetic"; }

    void Setup(api::Frontend& fe) override;
    void Iteration(api::Frontend& fe, std::size_t iter,
                   bool manual_tracing) override;

  private:
    /** One launch of the repeated kernel, fixed at construction. */
    struct KernelStep {
        std::uint64_t task = 0;     ///< rt::TaskId
        std::uint32_t shard = 0;
        std::uint8_t reads = 0;     ///< indices into arrays_ (packed)
        std::uint8_t read2 = 0;
        std::uint8_t writes = 0;
        double exec_scale = 1.0;
    };

    SyntheticOptions options_;
    std::vector<KernelStep> kernel_;
    std::vector<apps::DistArray> arrays_;
};

}  // namespace apo::svc

#endif  // APOPHENIA_SVC_WORKLOAD_H
