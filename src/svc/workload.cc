#include "svc/workload.h"

#include <algorithm>
#include <string>

#include "support/hash.h"

namespace apo::svc {

namespace {

/** Small deterministic generator: one SplitMix64 step per draw. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t Next()
    {
        state_ += 0x9e3779b97f4a7c15ULL;
        return support::SplitMix64(state_);
    }

    std::uint64_t Next(std::uint64_t bound)
    {
        return bound == 0 ? 0 : Next() % bound;
    }

  private:
    std::uint64_t state_;
};

}  // namespace

SyntheticWorkload::SyntheticWorkload(SyntheticOptions options)
    : options_(options)
{
    // The kernel is drawn once, at construction, from the seed: the
    // iteration loop then replays it verbatim, so the token stream is
    // periodic and a pure function of (seed, machine, knobs).
    Rng rng(support::HashCombine(0x5eedfeedULL, options_.seed));
    const std::size_t arrays = std::max<std::size_t>(2, options_.arrays);
    const std::uint64_t gpus =
        std::max<std::uint64_t>(1, options_.machine.GpuCount());
    kernel_.reserve(options_.kernel_tasks);
    for (std::size_t i = 0; i < options_.kernel_tasks; ++i) {
        KernelStep step;
        // A tenant-seeded task-id pool of 8 "kernels": repeats within
        // the body make sub-patterns, different seeds make disjoint
        // task ids (and therefore disjoint tokens).
        step.task = support::HashCombine(
            support::HashCombine(0x7a5cULL, options_.seed),
            rng.Next(8));
        step.shard = static_cast<std::uint32_t>(rng.Next(gpus));
        step.reads = static_cast<std::uint8_t>(rng.Next(arrays));
        step.read2 = static_cast<std::uint8_t>(rng.Next(arrays));
        step.writes = static_cast<std::uint8_t>(rng.Next(arrays));
        step.exec_scale = 0.5 + 0.1 * static_cast<double>(rng.Next(10));
        kernel_.push_back(step);
    }
}

void
SyntheticWorkload::Setup(api::Frontend& fe)
{
    arrays_.clear();
    const std::size_t arrays = std::max<std::size_t>(2, options_.arrays);
    arrays_.reserve(arrays);
    for (std::size_t i = 0; i < arrays; ++i) {
        arrays_.emplace_back(fe);
    }
}

void
SyntheticWorkload::Iteration(api::Frontend& fe, std::size_t iter,
                             bool /*manual_tracing*/)
{
    for (const KernelStep& step : kernel_) {
        auto& task = builder_.Start(rt::TaskId{step.task}, step.shard,
                                    options_.exec_us * step.exec_scale);
        task.Add(arrays_[step.reads].Read(step.shard));
        if (step.read2 != step.reads) {
            task.Add(arrays_[step.read2].Read(step.shard));
        }
        task.Add(arrays_[step.writes].Write(step.shard));
        task.LaunchOn(fe);
    }
    // Irregular burst: a short, per-burst-unique sequence (the
    // residual-check / region-churn structure of the app skeletons)
    // that interrupts the periodicity without dominating the stream.
    if (options_.noise_interval != 0 &&
        (iter + 1) % options_.noise_interval == 0) {
        Rng burst(support::HashCombine(
            support::HashCombine(0xb0057ULL, options_.seed), iter));
        const std::size_t tasks = 1 + burst.Next(3);
        for (std::size_t i = 0; i < tasks; ++i) {
            apps::DistArray scratch(fe);
            builder_
                .Start(rt::TaskId{burst.Next()}, 0,
                       options_.exec_us * 0.25)
                .Add(arrays_[0].Read(0))
                .Add(scratch.Write(0))
                .LaunchOn(fe);
            scratch.Destroy(fe);
        }
    }
}

}  // namespace apo::svc
