/**
 * @file
 * svc::LoadDriver — the sustained open-loop load driver (ROADMAP
 * item 3's missing half).
 *
 * The driver turns "offered load" into a concrete tenant fleet: M
 * synthetic open-loop tenants whose aggregate arrival rate is a
 * chosen fraction of the service's traced-path capacity, run for a
 * fixed total task budget under one OverloadPolicy. Service virtual
 * time advances one tick per traced-path task, so capacity is exactly
 * 1 task/tick and the arrival gap falls out of the target load:
 *
 *   gap = M × kernel_tasks / offered_load      (per tenant, in ticks)
 *
 * offered_load < 1 is sustainable: every policy digests identically
 * and sheds/degrades nothing. offered_load > 1 is *not*: kBlock's
 * backlog and issue latency grow without bound for as long as the
 * budget lasts, while kShed holds latency by dropping arrivals and
 * kDegrade holds it by issuing backlogged windows untraced at
 * ServiceOptions::degraded_task_cost per task — the capacity headroom
 * that lets a degraded fleet drain a 2× overload. The fig_overload
 * bench sweeps exactly this grid and asserts the separation.
 */
#ifndef APOPHENIA_SVC_LOAD_DRIVER_H
#define APOPHENIA_SVC_LOAD_DRIVER_H

#include <cstdint>
#include <vector>

#include "svc/service.h"
#include "svc/workload.h"

namespace apo::svc {

/** One sustained-load experiment. */
struct LoadDriverOptions {
    /** Base service configuration (machine, costs, finder tuning,
     * admission policy, log mode, health monitor, …). The driver
     * fills the tenant set itself. */
    ServiceOptions service;
    /** Fleet width: open-loop synthetic tenants. */
    std::size_t tenants = 4;
    /** Aggregate arrival rate as a fraction of the service's
     * traced-path capacity (1 task per virtual tick). 0.5 = half
     * loaded, 2.0 = offered twice what the service can issue. */
    double offered_load = 0.9;
    /** Total tasks offered across the fleet (sets the per-tenant
     * iteration count: budget / (tenants × kernel_tasks)). */
    std::uint64_t task_budget = 100000;
    /** Overload policy applied to every tenant. */
    OverloadPolicy policy = OverloadPolicy::kBlock;
    /** Admission bound / hysteresis for kShed and kDegrade. */
    std::size_t max_queue_iterations = 8;
    std::size_t degrade_resume_iterations = 2;
    /** Synthetic workload shape. noise_interval is pinned to 0 so
     * every iteration costs exactly kernel_tasks — the load algebra
     * above is then exact, not approximate. */
    std::uint64_t seed = 1;
    std::size_t kernel_tasks = 40;
    double exec_us = 500.0;
};

/** What one sustained run measured (DriverResult::service carries the
 * full per-tenant breakdown). */
struct DriverResult {
    ServiceResult service;
    /** The derived arrival schedule. */
    std::uint64_t arrival_gap = 0;
    std::size_t iterations_per_tenant = 0;
    /** Tasks issued through every tenant session (excludes shed
     * payloads — they were never issued). */
    std::uint64_t tasks_issued = 0;
    /** Delivered throughput in tasks per virtual tick. Capped at 1.0
     * on the traced path; above 1.0 only when degraded issue (at
     * degraded_task_cost per task) raised the ceiling. */
    double throughput_tasks_per_tick = 0.0;
    /** Fleet-wide overload outcome: shed arrivals over offered
     * arrivals, and degraded grants over granted iterations. */
    double shed_fraction = 0.0;
    double degraded_fraction = 0.0;
    /** Worst tenant's issue-latency percentiles (virtual ticks) and
     * wall-clock service-time p99 (µs). */
    double worst_p50_issue_latency = 0.0;
    double worst_p99_issue_latency = 0.0;
    double worst_p99_issue_wall_us = 0.0;
    /** Largest backlog any tenant ever queued. */
    std::uint64_t max_backlog = 0;
    /** Peak resident bytes: the health monitor's sample when
     * monitoring is on, else the worst tenant log high-water. */
    std::size_t peak_resident_bytes = 0;
    /** Per-tenant stream digests, in tenant order — equal digests
     * across two runs certify the tenants issued identical streams
     * (the ≤0.9× policy-equivalence check). */
    std::vector<std::uint64_t> tenant_digests;
};

/** See file comment. Owns the synthetic workload instances for the
 * duration of Run(). */
class LoadDriver {
  public:
    explicit LoadDriver(LoadDriverOptions options);

    /** Build the fleet, run it to budget exhaustion, aggregate. */
    DriverResult Run();

    /** The arrival gap (ticks) the options derive to. */
    static std::uint64_t DeriveArrivalGap(std::size_t tenants,
                                          std::size_t kernel_tasks,
                                          double offered_load);

  private:
    LoadDriverOptions options_;
};

}  // namespace apo::svc

#endif  // APOPHENIA_SVC_LOAD_DRIVER_H
