#include "support/executor.h"

#include <utility>

namespace apo::support {

WorkerPool::WorkerPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = 1;
    }
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        threads_.emplace_back([this] { WorkerLoop(); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard lock(mutex_);
        shutting_down_ = true;
    }
    work_available_.notify_all();
    for (auto& t : threads_) {
        t.join();
    }
}

void
WorkerPool::Submit(std::function<void()> job)
{
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void
WorkerPool::Drain()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void
WorkerPool::WorkerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mutex_);
            work_available_.wait(
                lock, [this] { return shutting_down_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // shutting down and no work left
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
        }
        idle_.notify_all();
    }
}

}  // namespace apo::support
