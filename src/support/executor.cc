#include "support/executor.h"

#include <utility>

namespace apo::support {

WorkerPool::WorkerPool(std::size_t num_threads, std::size_t max_queue)
    : max_queue_(max_queue)
{
    if (num_threads == 0) {
        num_threads = 1;
    }
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        threads_.emplace_back([this] { WorkerLoop(); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::unique_lock lock(mutex_);
        shutting_down_ = true;
        work_available_.notify_all();
        // Release backpressured submitters, then wait until they have
        // left Submit: the mutex and condition variables must not be
        // destroyed under a thread still blocked on them.
        space_available_.notify_all();
        space_available_.wait(lock,
                              [this] { return waiting_submitters_ == 0; });
    }
    for (auto& t : threads_) {
        t.join();
    }
}

void
WorkerPool::Submit(std::function<void()> job)
{
    {
        std::unique_lock lock(mutex_);
        if (max_queue_ != 0) {
            ++waiting_submitters_;
            space_available_.wait(lock, [this] {
                return shutting_down_ || queue_.size() < max_queue_;
            });
            --waiting_submitters_;
            idle_.notify_all();  // Drain also waits on submitters
            if (shutting_down_) {
                // Unblock the destructor, and run the job here: the
                // workers may already have observed an empty queue and
                // exited, so enqueueing could silently drop it.
                space_available_.notify_all();
                lock.unlock();
                job();
                return;
            }
        }
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void
WorkerPool::Drain()
{
    std::unique_lock lock(mutex_);
    // A backpressure-blocked submitter counts as submitted work: its
    // job must run before Drain may return.
    idle_.wait(lock, [this] {
        return queue_.empty() && in_flight_ == 0 &&
               waiting_submitters_ == 0;
    });
}

void
WorkerPool::WorkerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mutex_);
            work_available_.wait(
                lock, [this] { return shutting_down_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // shutting down and no work left
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        space_available_.notify_one();
        job();
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
        }
        idle_.notify_all();
    }
}

PooledExecutor::PooledExecutor(std::size_t num_threads, std::size_t max_queue)
    : pool_(num_threads, max_queue)
{
}

PooledExecutor::~PooledExecutor()
{
    // Jobs may still be running; wait for them and deliver the
    // remaining callbacks so no completion is silently dropped.
    Drain();
}

void
PooledExecutor::Submit(std::function<void()> job)
{
    Submit(std::move(job), [] {});
}

void
PooledExecutor::Submit(std::function<void()> job,
                       std::function<void()> on_complete)
{
    Ticket* ticket = nullptr;
    {
        std::lock_guard lock(mutex_);
        tickets_.push_back(Ticket{std::move(on_complete), false});
        // Stable address: tickets are popped only by the owner thread,
        // and a ticket is popped only after the worker marked it done
        // (i.e., after the worker's last access).
        ticket = &tickets_.back();
    }
    pool_.Submit([this, ticket, job = std::move(job)] {
        job();
        std::lock_guard lock(mutex_);
        ticket->done = true;
    });
}

std::vector<std::function<void()>>
PooledExecutor::TakeReadyPrefix()
{
    std::vector<std::function<void()>> ready;
    std::lock_guard lock(mutex_);
    while (!tickets_.empty() && tickets_.front().done) {
        ready.push_back(std::move(tickets_.front().on_complete));
        tickets_.pop_front();
    }
    return ready;
}

void
PooledExecutor::Pump()
{
    for (auto& callback : TakeReadyPrefix()) {
        callback();
    }
}

void
PooledExecutor::Drain()
{
    pool_.Drain();
    Pump();
}

}  // namespace apo::support
