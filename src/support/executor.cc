#include "support/executor.h"

#include <utility>

namespace apo::support {

WorkerPool::WorkerPool(std::size_t num_threads, std::size_t max_queue)
    : max_queue_(max_queue)
{
    if (num_threads == 0) {
        num_threads = 1;
    }
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        threads_.emplace_back([this] { WorkerLoop(); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::unique_lock lock(mutex_);
        shutting_down_ = true;
        work_available_.notify_all();
        // Release backpressured submitters, then wait until they have
        // left Submit: the mutex and condition variables must not be
        // destroyed under a thread still blocked on them.
        space_available_.notify_all();
        space_available_.wait(lock,
                              [this] { return waiting_submitters_ == 0; });
    }
    for (auto& t : threads_) {
        t.join();
    }
}

void
WorkerPool::Submit(std::function<void()> job)
{
    {
        std::unique_lock lock(mutex_);
        if (max_queue_ != 0) {
            ++waiting_submitters_;
            space_available_.wait(lock, [this] {
                return shutting_down_ || queue_.size() < max_queue_;
            });
            --waiting_submitters_;
            idle_.notify_all();  // Drain also waits on submitters
            if (shutting_down_) {
                // Unblock the destructor, and run the job here: the
                // workers may already have observed an empty queue and
                // exited, so enqueueing could silently drop it.
                space_available_.notify_all();
                lock.unlock();
                job();
                return;
            }
        }
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void
WorkerPool::Drain()
{
    std::unique_lock lock(mutex_);
    // A backpressure-blocked submitter counts as submitted work: its
    // job must run before Drain may return.
    idle_.wait(lock, [this] {
        return queue_.empty() && in_flight_ == 0 &&
               waiting_submitters_ == 0;
    });
}

void
WorkerPool::WorkerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock lock(mutex_);
            work_available_.wait(
                lock, [this] { return shutting_down_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // shutting down and no work left
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        space_available_.notify_one();
        job();
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
        }
        idle_.notify_all();
    }
}

PooledExecutor::PooledExecutor(std::size_t num_threads, std::size_t max_queue)
    : pool_(num_threads, max_queue)
{
}

PooledExecutor::~PooledExecutor()
{
    // Jobs may still be running; wait for them and deliver the
    // remaining callbacks so no completion is silently dropped.
    Drain();
}

void
PooledExecutor::Submit(std::function<void()> job)
{
    Submit(std::move(job), [] {});
}

void
PooledExecutor::Submit(std::function<void()> job,
                       std::function<void()> on_complete)
{
    Ticket* ticket = nullptr;
    {
        std::lock_guard lock(mutex_);
        tickets_.push_back(Ticket{std::move(on_complete), false});
        // Stable address: tickets are popped only by the owner thread,
        // and a ticket is popped only after the worker marked it done
        // (i.e., after the worker's last access).
        ticket = &tickets_.back();
    }
    pool_.Submit([this, ticket, job = std::move(job)] {
        job();
        std::lock_guard lock(mutex_);
        ticket->done = true;
    });
}

std::vector<std::function<void()>>
PooledExecutor::TakeReadyPrefix()
{
    std::vector<std::function<void()>> ready;
    std::lock_guard lock(mutex_);
    while (!tickets_.empty() && tickets_.front().done) {
        ready.push_back(std::move(tickets_.front().on_complete));
        tickets_.pop_front();
    }
    return ready;
}

void
PooledExecutor::Pump()
{
    for (auto& callback : TakeReadyPrefix()) {
        callback();
    }
}

void
PooledExecutor::Drain()
{
    pool_.Drain();
    Pump();
}

TaskTeam::TaskTeam(std::size_t threads)
{
    if (threads <= 1) {
        return;  // caller-only team: Run() loops inline
    }
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

TaskTeam::~TaskTeam()
{
    {
        std::lock_guard lock(mutex_);
        shutting_down_ = true;
    }
    start_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void
TaskTeam::SetBody(std::function<void(std::size_t)> body)
{
    // Workers only read body_ after observing a new epoch under the
    // same mutex, so publishing it here is race-free as long as no
    // Run() is in flight (the documented contract).
    std::lock_guard lock(mutex_);
    body_ = std::move(body);
}

void
TaskTeam::Invoke(std::size_t i)
{
    try {
        body_(i);
    } catch (...) {
        std::lock_guard lock(mutex_);
        if (!error_) {
            error_ = std::current_exception();
        }
    }
}

void
TaskTeam::Run(std::size_t count)
{
    if (count == 0) {
        return;
    }
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            body_(i);  // inline: exceptions propagate directly
        }
        return;
    }
    {
        std::lock_guard lock(mutex_);
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        running_ = workers_.size();
        error_ = nullptr;
        ++epoch_;
    }
    start_.notify_all();
    // The caller is a team member too: claim indices alongside the
    // workers instead of idling at the barrier.
    for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
            break;
        }
        Invoke(i);
    }
    std::unique_lock lock(mutex_);
    done_.wait(lock, [this] { return running_ == 0; });
    // Only past the barrier may a failure unwind the caller: every
    // worker has quiesced, so nothing still touches borrowed state.
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
TaskTeam::WorkerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::size_t count = 0;
        {
            std::unique_lock lock(mutex_);
            start_.wait(lock, [&] {
                return shutting_down_ || epoch_ != seen;
            });
            if (shutting_down_) {
                return;
            }
            seen = epoch_;
            count = count_;
        }
        for (;;) {
            const std::size_t i =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) {
                break;
            }
            Invoke(i);
        }
        {
            std::lock_guard lock(mutex_);
            --running_;
        }
        done_.notify_one();
    }
}

}  // namespace apo::support
