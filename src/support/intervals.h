/**
 * @file
 * Disjoint half-open interval set over sequence positions.
 *
 * Used by the repeat-finding algorithm (paper Algorithm 2) to greedily
 * select candidate occurrences that do not overlap previously selected
 * ones, and by the trace-coverage metrics to measure how much of a task
 * stream a matching function covers (paper section 3).
 */
#ifndef APOPHENIA_SUPPORT_INTERVALS_H
#define APOPHENIA_SUPPORT_INTERVALS_H

#include <cstddef>
#include <map>
#include <vector>

namespace apo::support {

/** A half-open interval [begin, end) of positions in a sequence. */
struct Interval {
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t Length() const { return end - begin; }
    bool Empty() const { return end <= begin; }

    friend bool operator==(const Interval&, const Interval&) = default;
};

/** True iff the two half-open intervals share at least one position. */
constexpr bool Overlaps(const Interval& a, const Interval& b)
{
    return a.begin < b.end && b.begin < a.end;
}

/**
 * A set of pairwise-disjoint half-open intervals supporting
 * O(log n) overlap queries and insertions.
 */
class IntervalSet {
  public:
    /** Returns true iff [begin, end) overlaps any stored interval. */
    bool OverlapsAny(std::size_t begin, std::size_t end) const;
    bool OverlapsAny(const Interval& i) const
    {
        return OverlapsAny(i.begin, i.end);
    }

    /**
     * Insert [begin, end) if it is disjoint from all stored intervals.
     * @return true if inserted, false if it overlapped (set unchanged).
     */
    bool InsertIfDisjoint(std::size_t begin, std::size_t end);
    bool InsertIfDisjoint(const Interval& i)
    {
        return InsertIfDisjoint(i.begin, i.end);
    }

    /** Total number of positions covered by the set. */
    std::size_t CoveredPositions() const { return covered_; }

    /** Number of stored intervals. */
    std::size_t Size() const { return by_begin_.size(); }

    bool Empty() const { return by_begin_.empty(); }

    /** All intervals in increasing position order. */
    std::vector<Interval> ToVector() const;

    void Clear();

  private:
    // Key: interval begin; value: interval end. Disjointness means the
    // map order is also the position order.
    std::map<std::size_t, std::size_t> by_begin_;
    std::size_t covered_ = 0;
};

}  // namespace apo::support

#endif  // APOPHENIA_SUPPORT_INTERVALS_H
