/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the repository (workload jitter, analysis
 * completion jitter in the replication simulation, property-test input
 * generation) flows through explicitly seeded generators so that every
 * experiment is reproducible bit-for-bit.
 */
#ifndef APOPHENIA_SUPPORT_RNG_H
#define APOPHENIA_SUPPORT_RNG_H

#include <cstdint>
#include <random>

namespace apo::support {

/** A seeded 64-bit Mersenne Twister with convenience draws. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform double in [lo, hi). */
    double UniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool Bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    std::mt19937_64& Engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace apo::support

#endif  // APOPHENIA_SUPPORT_RNG_H
