#include "support/intervals.h"

namespace apo::support {

bool
IntervalSet::OverlapsAny(std::size_t begin, std::size_t end) const
{
    if (end <= begin) {
        return false;
    }
    // Candidate: the first stored interval whose begin is >= `begin`,
    // and its predecessor. Only those two can overlap [begin, end).
    auto it = by_begin_.lower_bound(begin);
    if (it != by_begin_.end() && it->first < end) {
        return true;
    }
    if (it != by_begin_.begin()) {
        --it;
        if (it->second > begin) {
            return true;
        }
    }
    return false;
}

bool
IntervalSet::InsertIfDisjoint(std::size_t begin, std::size_t end)
{
    if (end <= begin || OverlapsAny(begin, end)) {
        return false;
    }
    by_begin_.emplace(begin, end);
    covered_ += end - begin;
    return true;
}

std::vector<Interval>
IntervalSet::ToVector() const
{
    std::vector<Interval> out;
    out.reserve(by_begin_.size());
    for (const auto& [b, e] : by_begin_) {
        out.push_back(Interval{b, e});
    }
    return out;
}

void
IntervalSet::Clear()
{
    by_begin_.clear();
    covered_ = 0;
}

}  // namespace apo::support
