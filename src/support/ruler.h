/**
 * @file
 * The ruler-function sampling schedule (paper section 4.4).
 *
 * Apophenia mines its task-history buffer at multiples of a scale
 * factor m. At the k'th sampling point it analyzes the last
 * m * 2^ruler(k) tokens, where ruler(k) is the 2-adic valuation of k
 * (the exponent of the largest power of two dividing k). Small recent
 * slices are analyzed often (responsiveness); the full buffer is
 * analyzed rarely (quality / long traces); total work over a buffer of
 * n tokens is O(n log n) slices summed, keeping the end-to-end analysis
 * cost at O(n log^2 n).
 */
#ifndef APOPHENIA_SUPPORT_RULER_H
#define APOPHENIA_SUPPORT_RULER_H

#include <cstddef>
#include <cstdint>

namespace apo::support {

/**
 * The ruler function: number of times `k` is evenly divisible by two.
 * Ruler(0) is defined as 0 for convenience (the sequence in the paper
 * is 1-indexed).
 */
constexpr unsigned Ruler(std::uint64_t k)
{
    if (k == 0) {
        return 0;
    }
    unsigned v = 0;
    while ((k & 1) == 0) {
        k >>= 1;
        ++v;
    }
    return v;
}

/**
 * Size of the buffer slice to analyze at the k'th sampling point
 * (1-indexed), in tokens: scale * 2^Ruler(k), capped at `cap`.
 *
 * With scale = 1 and k = 1, 2, 3, 4, ... this yields the paper's
 * sequence 1, 2, 1, 4, 1, 2, 1, 8, ... (figure 5).
 */
constexpr std::size_t RulerSampleLength(std::uint64_t k, std::size_t scale,
                                        std::size_t cap)
{
    const unsigned v = Ruler(k);
    // Guard the shift against overflow for adversarial k.
    std::size_t len = scale;
    for (unsigned i = 0; i < v; ++i) {
        if (len >= cap) {
            return cap;
        }
        len <<= 1;
    }
    return len < cap ? len : cap;
}

}  // namespace apo::support

#endif  // APOPHENIA_SUPPORT_RULER_H
