/**
 * @file
 * Counting replacements for the global allocation operators, for the
 * zero-allocation contracts of the api layer (the LaunchBuilder test
 * and the micro_repeats issue-path record both report allocations per
 * launch).
 *
 * Including this header REPLACES the program's global operator
 * new/delete: include it from exactly ONE translation unit of a
 * binary (it defines non-inline operators; a second inclusion is an
 * ODR violation the linker will reject). It is instrumentation for
 * tests and benches — never include it from library code.
 */
#ifndef APOPHENIA_SUPPORT_COUNTING_ALLOCATOR_H
#define APOPHENIA_SUPPORT_COUNTING_ALLOCATOR_H

#include <atomic>
#include <cstdlib>
#include <new>

namespace apo::support {

/** Total allocations observed since process start. */
inline std::atomic<std::uint64_t> g_allocation_count{0};

inline std::uint64_t AllocationCount()
{
    return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace apo::support

// GCC pairs the malloc in the replaced operator new with the free in
// operator delete just fine at runtime, but its inliner-driven
// -Wmismatched-new-delete heuristic misfires on the pair; silence it.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void*
operator new(std::size_t size)
{
    apo::support::g_allocation_count.fetch_add(1,
                                               std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

#endif  // APOPHENIA_SUPPORT_COUNTING_ALLOCATOR_H
