/**
 * @file
 * Hashing utilities used to turn task launches into 64-bit tokens.
 *
 * Apophenia converts the application's task stream into a stream of
 * hash tokens (paper section 4.1) so that trace identification becomes
 * a string analysis problem. The hashes here are deterministic across
 * runs and across simulated nodes, which the control-replication layer
 * (section 5.1) relies on.
 */
#ifndef APOPHENIA_SUPPORT_HASH_H
#define APOPHENIA_SUPPORT_HASH_H

#include <cstdint>
#include <string_view>

namespace apo::support {

/**
 * The splitmix64 finalizer. A cheap, high-quality 64-bit mixer used as
 * the basis for all token hashing.
 */
constexpr std::uint64_t SplitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Combine a new 64-bit value into an accumulated hash. Order-sensitive,
 * so permuted region-requirement lists hash differently (as required:
 * the dependence analysis is sensitive to argument order).
 */
constexpr std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value)
{
    return SplitMix64(seed ^ (value + 0x9e3779b97f4a7c15ULL +
                              (seed << 6) + (seed >> 2)));
}

/** FNV-1a over a byte string; used for hashing task names. */
constexpr std::uint64_t Fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace apo::support

#endif  // APOPHENIA_SUPPORT_HASH_H
