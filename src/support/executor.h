/**
 * @file
 * Background execution of asynchronous analysis jobs.
 *
 * Apophenia mines its task-history buffer asynchronously so that the
 * application is never stalled waiting for a string analysis (paper
 * section 4.3: "Asynchronous analysis of task histories is important to
 * avoid stalling the application"). In Legion these jobs run on the
 * runtime's background worker threads; here they run on a small worker
 * pool. An inline executor is provided for deterministic testing.
 *
 * Completion is event-driven rather than polled: every job may carry a
 * completion callback. Where and when the callback runs is the
 * executor's defining property:
 *  - InlineExecutor: immediately after the job, on the calling thread.
 *  - WorkerPool: on the worker thread that ran the job (callers that
 *    share state with the callback must synchronize).
 *  - PooledExecutor: never concurrently — callbacks are buffered and
 *    delivered in submission order on the owner's thread, at Pump()
 *    and Drain() points. After Drain() returns, every submitted job's
 *    callback has run: completion observation is deterministic at
 *    drain points even though execution is concurrent.
 */
#ifndef APOPHENIA_SUPPORT_EXECUTOR_H
#define APOPHENIA_SUPPORT_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace apo::support {

/** Abstract job executor. */
class Executor {
  public:
    virtual ~Executor() = default;

    /** Schedule `job` for execution. */
    virtual void Submit(std::function<void()> job) = 0;

    /** Schedule `job`; run `on_complete` once it has finished. See the
     * file comment for where each executor runs the callback. */
    virtual void Submit(std::function<void()> job,
                        std::function<void()> on_complete)
    {
        Submit([job = std::move(job),
                on_complete = std::move(on_complete)]() mutable {
            job();
            on_complete();
        });
    }

    /** Deliver any buffered completion callbacks (see PooledExecutor);
     * a no-op for executors that deliver completions eagerly. */
    virtual void Pump() {}

    /** Block until every submitted job has finished and, for deferred
     * executors, every completion callback has been delivered. */
    virtual void Drain() = 0;
};

/**
 * Runs each job synchronously at submission time. Deterministic; used
 * by unit tests and by the control-replication determinism checks.
 */
class InlineExecutor final : public Executor {
  public:
    using Executor::Submit;
    void Submit(std::function<void()> job) override { job(); }
    void Drain() override {}
};

/**
 * A fixed-size pool of background worker threads consuming a FIFO job
 * queue. Models Legion's background worker threads that Apophenia's
 * history-mining jobs execute on (paper section 6.3).
 *
 * Submission is optionally bounded: with `max_queue > 0`, Submit()
 * blocks while `max_queue` jobs are already waiting, providing
 * backpressure so a producer outrunning the pool cannot hoard memory.
 * A submitter blocked when the pool shuts down is released and runs
 * its job on its own thread, so no accepted job is ever dropped.
 */
class WorkerPool final : public Executor {
  public:
    explicit WorkerPool(std::size_t num_threads = 2,
                        std::size_t max_queue = 0);
    ~WorkerPool() override;

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    using Executor::Submit;
    void Submit(std::function<void()> job) override;
    void Drain() override;

    std::size_t NumThreads() const { return threads_.size(); }
    std::size_t MaxQueue() const { return max_queue_; }

    /** Submitters currently blocked on backpressure (tests use this
     * to synchronize with a Submit they expect to block). */
    std::size_t BlockedSubmitters()
    {
        std::lock_guard lock(mutex_);
        return waiting_submitters_;
    }

  private:
    void WorkerLoop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::condition_variable space_available_;
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;
    std::size_t max_queue_ = 0;  ///< 0 = unbounded
    /** Submitters blocked on backpressure; the destructor waits for
     * them to leave before tearing down the synchronization state. */
    std::size_t waiting_submitters_ = 0;
    bool shutting_down_ = false;
    std::vector<std::thread> threads_;
};

/**
 * A worker pool with deterministic completion delivery. Jobs execute
 * concurrently on an internal WorkerPool, but completion callbacks are
 * buffered and delivered on the owner's thread, always in submission
 * order: Pump() delivers callbacks for the longest prefix of submitted
 * jobs that have all finished; Drain() waits for everything and then
 * delivers every remaining callback. Because callbacks never run
 * concurrently with the owner, owner-side completion bookkeeping needs
 * no locking — this is what makes the pool usable outside tests.
 */
class PooledExecutor final : public Executor {
  public:
    explicit PooledExecutor(std::size_t num_threads = 2,
                            std::size_t max_queue = 0);
    ~PooledExecutor() override;

    PooledExecutor(const PooledExecutor&) = delete;
    PooledExecutor& operator=(const PooledExecutor&) = delete;

    void Submit(std::function<void()> job) override;
    void Submit(std::function<void()> job,
                std::function<void()> on_complete) override;

    /** Deliver completion callbacks for the longest all-done prefix of
     * submitted jobs, in submission order, on this thread. */
    void Pump() override;

    /** Wait for all jobs, then deliver every pending callback (in
     * submission order, on this thread). */
    void Drain() override;

    std::size_t NumThreads() const { return pool_.NumThreads(); }

  private:
    /** One submitted job's completion record. */
    struct Ticket {
        std::function<void()> on_complete;
        bool done = false;
    };

    /** Pop the longest done prefix under the lock; return callbacks. */
    std::vector<std::function<void()>> TakeReadyPrefix();

    WorkerPool pool_;
    std::mutex mutex_;
    std::deque<Ticket> tickets_;
};

/**
 * A fixed team of threads for data-parallel index loops, built for the
 * cluster simulation's per-node stepping: the *same* body runs over a
 * dense index range, many times, with a full barrier after each range.
 *
 * Unlike WorkerPool::Submit (one std::function allocation + queue node
 * per job), the body is installed once and each Run() merely republishes
 * an index range to the persistent workers — Run() itself performs no
 * allocation, so it can sit on a zero-allocation-per-launch issue path
 * whose batches fan out through the team.
 *
 * `threads` counts the caller: TaskTeam(1) spawns no workers and Run()
 * degenerates to an inline loop, so a jobs=1 configuration is exactly
 * the serial schedule. Indices are claimed from a shared atomic
 * counter; the body must be safe to invoke concurrently for distinct
 * indices. Run() returns only after every index has been processed and
 * every worker has quiesced (the barrier).
 */
class TaskTeam {
  public:
    explicit TaskTeam(std::size_t threads = 1);
    ~TaskTeam();

    TaskTeam(const TaskTeam&) = delete;
    TaskTeam& operator=(const TaskTeam&) = delete;

    /** Install the loop body. Must precede the first Run() and must
     * not be called while a Run() is in flight. */
    void SetBody(std::function<void(std::size_t)> body);

    /** Invoke body(i) for every i in [0, count), on the workers plus
     * the calling thread; returns after all indices completed. If any
     * invocation throws, the first exception is captured, the barrier
     * still completes (no worker outlives a Run over state it
     * borrows), and the exception is rethrown here on the caller. */
    void Run(std::size_t count);

    /** Total threads participating in a Run (workers + caller). */
    std::size_t Threads() const { return workers_.size() + 1; }

  private:
    void WorkerLoop();
    /** body_(i) with the first thrown exception captured into
     * error_ (rethrown by Run after the barrier). */
    void Invoke(std::size_t i);

    std::function<void(std::size_t)> body_;
    std::mutex mutex_;
    std::condition_variable start_;
    std::condition_variable done_;
    std::uint64_t epoch_ = 0;     ///< bumped per Run; wakes workers
    std::size_t count_ = 0;       ///< index range of the current epoch
    std::size_t running_ = 0;     ///< workers still inside the epoch
    bool shutting_down_ = false;
    std::exception_ptr error_;    ///< first failure of this epoch
    std::atomic<std::size_t> next_{0};  ///< shared index claim counter
    std::vector<std::thread> workers_;
};

}  // namespace apo::support

#endif  // APOPHENIA_SUPPORT_EXECUTOR_H
