/**
 * @file
 * Background execution of asynchronous analysis jobs.
 *
 * Apophenia mines its task-history buffer asynchronously so that the
 * application is never stalled waiting for a string analysis (paper
 * section 4.3: "Asynchronous analysis of task histories is important to
 * avoid stalling the application"). In Legion these jobs run on the
 * runtime's background worker threads; here they run on a small worker
 * pool. An inline executor is provided for deterministic testing.
 */
#ifndef APOPHENIA_SUPPORT_EXECUTOR_H
#define APOPHENIA_SUPPORT_EXECUTOR_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apo::support {

/** Abstract job executor. */
class Executor {
  public:
    virtual ~Executor() = default;

    /** Schedule `job` for execution. */
    virtual void Submit(std::function<void()> job) = 0;

    /** Block until every submitted job has finished. */
    virtual void Drain() = 0;
};

/**
 * Runs each job synchronously at submission time. Deterministic; used
 * by unit tests and by the control-replication determinism checks.
 */
class InlineExecutor final : public Executor {
  public:
    void Submit(std::function<void()> job) override { job(); }
    void Drain() override {}
};

/**
 * A fixed-size pool of background worker threads consuming a FIFO job
 * queue. Models Legion's background worker threads that Apophenia's
 * history-mining jobs execute on (paper section 6.3).
 */
class WorkerPool final : public Executor {
  public:
    explicit WorkerPool(std::size_t num_threads = 2);
    ~WorkerPool() override;

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    void Submit(std::function<void()> job) override;
    void Drain() override;

    std::size_t NumThreads() const { return threads_.size(); }

  private:
    void WorkerLoop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;
    bool shutting_down_ = false;
    std::vector<std::thread> threads_;
};

}  // namespace apo::support

#endif  // APOPHENIA_SUPPORT_EXECUTOR_H
