#include "apps/s3d.h"

namespace apo::apps {

namespace {

/** Fixed trace id used by the hand-annotated port. */
constexpr rt::TraceId kS3dManualTrace = 77001;

}  // namespace

S3dApplication::S3dApplication(S3dOptions options) : options_(options) {}

double
S3dApplication::KernelUs() const
{
    switch (options_.size) {
      case ProblemSize::kSmall:
        return options_.exec_small_us;
      case ProblemSize::kMedium:
        return options_.exec_medium_us;
      case ProblemSize::kLarge:
        return options_.exec_large_us;
    }
    return options_.exec_medium_us;
}

void
S3dApplication::Setup(api::Frontend& fe)
{
    state_ = DistArray(fe);
    halo_ = DistArray(fe);
    chem_ = DistArray(fe);
    rhs_ = DistArray(fe);
    fortran_ = DistArray(fe);
}

void
S3dApplication::RkStage(api::Frontend& fe)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    const double exec = KernelUs();
    for (std::uint32_t g = 0; g < gpus; ++g) {
        // Ghost-zone exchange: read own and neighbour state slices.
        auto& exchange = builder_.Start("s3d_exchange", g, exec * 0.2);
        exchange.Add(state_.Read(g));
        if (g > 0) {
            exchange.Add(state_.Read(g - 1));
        }
        if (g + 1 < gpus) {
            exchange.Add(state_.Read(g + 1));
        }
        exchange.Add(halo_.Write(g));
        exchange.LaunchOn(fe);
    }
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("s3d_chemistry", g, exec)
            .Add(state_.Read(g))
            .Add(chem_.Write(g))
            .LaunchOn(fe);
    }
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("s3d_diffusion", g, exec * 0.8)
            .Add(halo_.Read(g))
            .Add(chem_.Read(g))
            .Add(rhs_.Write(g))
            .LaunchOn(fe);
    }
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("s3d_update", g, exec * 0.4)
            .Add(rhs_.Read(g))
            .Add(state_.ReadWrite(g))
            .LaunchOn(fe);
    }
}

void
S3dApplication::Handoff(api::Frontend& fe)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    // Stage the state into the buffer the Fortran driver reads.
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("s3d_to_fortran", g, KernelUs() * 0.15)
            .Add(state_.Read(g))
            .Add(fortran_.Write(g))
            .LaunchOn(fe);
    }
    // The MPI driver runs as one serial operation over the buffer.
    auto& driver = builder_.Start("s3d_mpi_driver", 0,
                       KernelUs() * 0.1 *
                           static_cast<double>(options_.machine.nodes));
    for (std::uint32_t g = 0; g < gpus; ++g) {
        driver.Add(fortran_.ReadWrite(g));
    }
    driver.LaunchOn(fe);
    // The driver's results feed back into the state.
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("s3d_from_fortran", g, KernelUs() * 0.15)
            .Add(fortran_.Read(g))
            .Add(state_.ReadWrite(g))
            .LaunchOn(fe);
    }
}

void
S3dApplication::Iteration(api::Frontend& fe, std::size_t iter,
                          bool manual_tracing)
{
    // The hand-off interoperates with non-Legion code and cannot be
    // traced; the manual port keeps it outside the annotation (the
    // "relatively complicated logic" of section 6.1).
    if (NeedsHandoff(iter)) {
        Handoff(fe);
    }
    if (manual_tracing) {
        fe.BeginTrace(kS3dManualTrace);
    }
    for (std::size_t s = 0; s < options_.rk_stages; ++s) {
        RkStage(fe);
    }
    if (manual_tracing) {
        fe.EndTrace(kS3dManualTrace);
    }
}

}  // namespace apo::apps
