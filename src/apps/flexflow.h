/**
 * @file
 * FlexFlow / CANDLE-pilot1 task-stream skeleton (paper section 6.2,
 * figure 8).
 *
 * FlexFlow trains deep neural networks on Legion. The benchmarked
 * network is the largest (pilot1) network of the CANDLE initiative,
 * parallelized with data parallelism (the paper's footnote 4): every
 * GPU holds a replica of the weights and a shard of the batch; each
 * iteration runs forward and backward passes per layer per GPU and
 * reduces weight gradients across GPUs.
 *
 * Strong scaling: the global batch size is fixed, so per-GPU kernel
 * time shrinks as GPUs are added while the number of tasks per GPU
 * stays constant — runtime overhead per task is progressively
 * exposed, which is what makes tracing (and the maximum trace length)
 * matter at scale.
 */
#ifndef APOPHENIA_APPS_FLEXFLOW_H
#define APOPHENIA_APPS_FLEXFLOW_H

#include <vector>

#include "apps/app.h"
#include "apps/array.h"

namespace apo::apps {

/** Tuning knobs for the FlexFlow skeleton. */
struct FlexFlowOptions {
    MachineConfig machine;
    /** Network depth (layers of the pilot1 MLP). */
    std::size_t layers = 12;
    /** Per-layer forward kernel time when the whole batch runs on a
     * single GPU (µs); strong scaling divides this by the GPU count. */
    double batch_exec_us = 96000.0;
    /** Per-participant cost of each gradient all-reduce. */
    double allreduce_per_gpu_us = 6.0;
};

/** See file comment. */
class FlexFlowApplication final : public Application {
  public:
    explicit FlexFlowApplication(FlexFlowOptions options);

    std::string_view Name() const override { return "FlexFlow"; }
    bool SupportsManualTracing() const override { return true; }

    void Setup(api::Frontend& fe) override;
    void Iteration(api::Frontend& fe, std::size_t iter,
                   bool manual_tracing) override;

    /** Per-layer kernel time at the current GPU count. */
    double LayerExecUs() const;

  private:
    FlexFlowOptions options_;
    std::vector<DistArray> weights_;      ///< replicated per layer
    std::vector<DistArray> gradients_;    ///< reduced per layer
    std::vector<DistArray> activations_;  ///< sharded per layer
    DistArray input_;
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_FLEXFLOW_H
