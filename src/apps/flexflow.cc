#include "apps/flexflow.h"

#include <algorithm>
#include <string>

namespace apo::apps {

namespace {

// The hand-traced FlexFlow annotates *segments* of the iteration —
// thirds of the forward pass, thirds of the backward pass, the
// optimizer — so each trace is a few hundred tasks at scale (the
// paper notes the manual trace is about as long as auto-200's pieces,
// and that experts pick traces with lower replay overhead).
constexpr rt::TraceId kManualSegmentBase = 77003;

}  // namespace

FlexFlowApplication::FlexFlowApplication(FlexFlowOptions options)
    : options_(options)
{
}

double
FlexFlowApplication::LayerExecUs() const
{
    return options_.batch_exec_us /
           static_cast<double>(options_.machine.GpuCount());
}

void
FlexFlowApplication::Setup(api::Frontend& fe)
{
    weights_.clear();
    gradients_.clear();
    activations_.clear();
    for (std::size_t l = 0; l < options_.layers; ++l) {
        weights_.emplace_back(fe);
        gradients_.emplace_back(fe);
        activations_.emplace_back(fe);
    }
    input_ = DistArray(fe);
}

void
FlexFlowApplication::Iteration(api::Frontend& fe, std::size_t iter,
                               bool manual_tracing)
{
    (void)iter;
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    const double exec = LayerExecUs();
    const std::size_t layers = options_.layers;

    // Batch loading stays outside the manual trace (I/O cannot be
    // memoized).
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("ff_load_batch", g, exec * 0.05)
            .Add(input_.Write(g))
            .LaunchOn(fe);
    }

    // Forward pass: layer l reads weights (replicated: field 0) and
    // the previous activation shard.
    auto forward_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t l = lo; l < hi; ++l) {
            const std::string name = "ff_forward_" + std::to_string(l);
            const DistArray& prev = l == 0 ? input_ : activations_[l - 1];
            for (std::uint32_t g = 0; g < gpus; ++g) {
                builder_.Start(name, g, exec)
                    .Add(weights_[l].Read(0))
                    .Add(prev.Read(g))
                    .Add(activations_[l].Write(g))
                    .LaunchOn(fe);
            }
        }
    };
    // Backward pass: accumulate weight gradients with a sum reduction
    // (commutative across GPUs — Legion's reduction privilege).
    auto backward_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t l = hi; l-- > lo;) {
            const std::string name = "ff_backward_" + std::to_string(l);
            for (std::uint32_t g = 0; g < gpus; ++g) {
                builder_.Start(name, g, exec * 1.6)
                    .Add(activations_[l].Read(g))
                    .Add(weights_[l].Read(0))
                    .Add(gradients_[l].Reduce(0, /*op=*/1))
                    .LaunchOn(fe);
            }
        }
    };
    // Optimizer: one update task per layer consumes the reduced
    // gradient; its cost models the all-reduce fan-in.
    auto updates = [&] {
        for (std::size_t l = 0; l < layers; ++l) {
            builder_.Start("ff_update", static_cast<std::uint32_t>(l % gpus),
                        exec * 0.2 + options_.allreduce_per_gpu_us *
                                         static_cast<double>(gpus))
                .Add(gradients_[l].ReadWrite(0))
                .Add(weights_[l].ReadWrite(0))
                .LaunchOn(fe);
        }
    };
    auto segment = [&](rt::TraceId id, auto&& body) {
        if (manual_tracing) {
            fe.BeginTrace(id);
        }
        body();
        if (manual_tracing) {
            fe.EndTrace(id);
        }
    };
    const std::size_t third = std::max<std::size_t>(layers / 3, 1);
    std::size_t trace_id = kManualSegmentBase;
    for (std::size_t lo = 0; lo < layers; lo += third) {
        const std::size_t hi = std::min(lo + third, layers);
        segment(trace_id++, [&] { forward_range(lo, hi); });
    }
    for (std::size_t hi = layers; hi > 0;
         hi -= std::min<std::size_t>(third, hi)) {
        const std::size_t lo = hi > third ? hi - third : 0;
        segment(trace_id++, [&] { backward_range(lo, hi); });
    }
    segment(trace_id++, updates);

    // The training loop inspects the loss every iteration (early
    // stopping, logging): a blocking future read that drains the
    // pipeline — the reason replay latency is exposed under strong
    // scaling (figure 8).
    builder_.Start("ff_loss", 0, exec * 0.05)
        .Blocking()
        .Add(activations_[layers - 1].Read(0))
        .LaunchOn(fe);
}

}  // namespace apo::apps
