/**
 * @file
 * TorchSWE task-stream skeleton (paper section 6.1, figure 7b).
 *
 * TorchSWE is a cuPyNumeric port of an MPI-based shallow-water
 * equation solver and the largest cuPyNumeric application to date.
 * The properties the paper highlights, reproduced here:
 *
 *  - it maintains a large number of fields per simulated point and
 *    issues separate array operations on each field, so iterations
 *    contain many tasks (traces exceed 2000 tasks at 64 GPUs) while
 *    the per-task granularity stays small;
 *  - adding resolution grows the memory footprint faster than the
 *    average task granularity, so *no* problem size can hide untraced
 *    runtime overhead — tracing is a requirement, and only automatic
 *    tracing is practical for its code size;
 *  - like all cuPyNumeric programs, results live in freshly allocated
 *    regions recycled by the allocator, so the stream period spans
 *    multiple source iterations and no manual annotation exists.
 */
#ifndef APOPHENIA_APPS_TORCHSWE_H
#define APOPHENIA_APPS_TORCHSWE_H

#include <vector>

#include "apps/app.h"
#include "apps/array.h"

namespace apo::apps {

/** Tuning knobs for the TorchSWE skeleton. */
struct TorchSweOptions {
    MachineConfig machine;
    ProblemSize size = ProblemSize::kMedium;
    /** Conserved fields (w, hu, hv) plus auxiliary per-point fields;
     * each gets its own per-iteration operations. */
    std::size_t fields = 8;
    /** Flux/slope operations per field per iteration. */
    std::size_t ops_per_field = 4;
    double exec_small_us = 3900.0;
    double exec_medium_us = 5000.0;
    double exec_large_us = 6500.0;
    /** Per-participant cost of the global timestep (CFL) reduction. */
    double collective_per_gpu_us = 10.0;
    /** cuPyNumeric grows its allocation pool until it reaches a
     * budget before recycling buffers; until then every operation
     * result lives in a brand-new region, so the early task stream
     * never repeats. This is the dynamic behaviour behind the paper's
     * ~300-iteration TorchSWE/CFD warmups (figure 9 and section 6.3).
     * Measured in regions (roughly fields * ops_per_field + 1 per
     * iteration). */
    std::size_t allocation_pool_budget = 1600;
};

/** See file comment. */
class TorchSweApplication final : public Application {
  public:
    explicit TorchSweApplication(TorchSweOptions options);

    std::string_view Name() const override { return "TorchSWE"; }
    bool SupportsManualTracing() const override { return false; }

    void Setup(api::Frontend& fe) override;
    void Iteration(api::Frontend& fe, std::size_t iter,
                   bool manual_tracing) override;

    double KernelUs() const;

  private:
    /** Pool-aware allocation: fresh regions until the budget, then
     * LIFO reuse of released ones. */
    DistArray Alloc(api::Frontend& fe);
    void Release(DistArray dead);

    TorchSweOptions options_;
    std::vector<DistArray> state_;  ///< one array per field
    std::vector<DistArray> pool_;   ///< released arrays awaiting reuse
    std::size_t regions_created_ = 0;
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_TORCHSWE_H
