/**
 * @file
 * The application interface the scaling harness drives, plus the
 * machine and problem-size models shared by all workloads.
 *
 * Each workload (src/apps/{s3d,htr,cfd,torchswe,flexflow}.h) is a
 * task-stream skeleton of the corresponding paper application: it
 * issues the same *structure* of tasks and region arguments — stages,
 * periodicities, irregular interruptions, dynamic region allocation —
 * that drive Apophenia's trace identification, with execution times
 * standing in for the real kernels.
 *
 * Applications are written against the one api::Frontend issue
 * surface; the harness swaps the implementation (direct runtime,
 * untraced, Apophenia, replicated) without touching application
 * logic. Launches are assembled in the application's reusable
 * api::LaunchBuilder, so the steady-state issue loop allocates
 * nothing.
 */
#ifndef APOPHENIA_APPS_APP_H
#define APOPHENIA_APPS_APP_H

#include <cstddef>
#include <string_view>

#include "api/frontend.h"
#include "api/launch.h"

namespace apo::apps {

/** The simulated cluster (Perlmutter: 4 GPUs/node; Eos: 8). */
struct MachineConfig {
    std::size_t nodes = 1;
    std::size_t gpus_per_node = 4;
    /** Base latency charged on a dependence crossing nodes. */
    double comm_latency_us = 25.0;
    /** Additional cross-node latency per log2(nodes) — network
     * diameter/contention growth. */
    double comm_latency_scale_us = 4.0;

    std::size_t GpuCount() const { return nodes * gpus_per_node; }
    std::size_t NodeOf(std::uint32_t shard) const
    {
        return shard / gpus_per_node;
    }
    double CrossNodeLatencyUs() const;
};

/** Weak-scaling problem sizes ("-s", "-m", "-l" in the figures). */
enum class ProblemSize { kSmall, kMedium, kLarge };

/** Suffix used in the paper's figure legends. */
std::string_view SizeSuffix(ProblemSize size);

/** A runnable workload skeleton. */
class Application {
  public:
    virtual ~Application() = default;

    virtual std::string_view Name() const = 0;

    /** Create the long-lived regions. Called once before iterating. */
    virtual void Setup(api::Frontend& frontend) = 0;

    /**
     * Issue one main-loop iteration's task stream.
     * @param manual_tracing if true, the application places its own
     *   tbegin/tend annotations the way the paper's hand-traced ports
     *   do (only meaningful for apps that support it).
     */
    virtual void Iteration(api::Frontend& frontend, std::size_t iter,
                           bool manual_tracing) = 0;

    /** Whether a hand-traced port of this application exists. The
     * cuPyNumeric applications (CFD, TorchSWE) have none — that is
     * the paper's point. */
    virtual bool SupportsManualTracing() const { return false; }

  protected:
    /** Reusable launch arena for the workload's issue loops. */
    api::LaunchBuilder builder_;
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_APP_H
