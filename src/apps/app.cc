#include "apps/app.h"

#include <cmath>

namespace apo::apps {

double
MachineConfig::CrossNodeLatencyUs() const
{
    const double n = static_cast<double>(nodes == 0 ? 1 : nodes);
    return comm_latency_us + comm_latency_scale_us * std::log2(n);
}

std::string_view
SizeSuffix(ProblemSize size)
{
    switch (size) {
      case ProblemSize::kSmall:
        return "s";
      case ProblemSize::kMedium:
        return "m";
      case ProblemSize::kLarge:
        return "l";
    }
    return "?";
}

}  // namespace apo::apps
