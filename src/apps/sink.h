/**
 * @file
 * The task-sink interface applications are written against.
 *
 * The same application code can be driven in the paper's three
 * evaluation modes by swapping the sink:
 *  - RuntimeSink: manual tracing — the application's own tbegin/tend
 *    annotations reach the runtime;
 *  - UntracedSink: annotations are ignored, every task is analyzed;
 *  - AutoSink: all tasks flow through Apophenia, which inserts its own
 *    trace markers (annotations are ignored, as a real port would
 *    simply not have them).
 */
#ifndef APOPHENIA_APPS_SINK_H
#define APOPHENIA_APPS_SINK_H

#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace apo::apps {

/** Where an application sends its region and task operations. */
class TaskSink {
  public:
    virtual ~TaskSink() = default;

    virtual rt::RegionId CreateRegion() = 0;
    virtual void DestroyRegion(rt::RegionId r) = 0;
    virtual void ExecuteTask(const rt::TaskLaunch& launch) = 0;
    /** Manual trace annotations; ignored by non-manual sinks. */
    virtual void BeginTrace(rt::TraceId id) = 0;
    virtual void EndTrace(rt::TraceId id) = 0;
    /** End-of-program synchronization. */
    virtual void Flush() = 0;
};

/** Direct runtime access: manual annotations are honored. */
class RuntimeSink final : public TaskSink {
  public:
    explicit RuntimeSink(rt::Runtime& runtime) : runtime_(&runtime) {}

    rt::RegionId CreateRegion() override { return runtime_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) override
    {
        runtime_->DestroyRegion(r);
    }
    void ExecuteTask(const rt::TaskLaunch& launch) override
    {
        runtime_->ExecuteTask(launch);
    }
    void BeginTrace(rt::TraceId id) override { runtime_->BeginTrace(id); }
    void EndTrace(rt::TraceId id) override { runtime_->EndTrace(id); }
    void Flush() override {}

  private:
    rt::Runtime* runtime_;
};

/** Direct runtime access with annotations stripped. */
class UntracedSink final : public TaskSink {
  public:
    explicit UntracedSink(rt::Runtime& runtime) : runtime_(&runtime) {}

    rt::RegionId CreateRegion() override { return runtime_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) override
    {
        runtime_->DestroyRegion(r);
    }
    void ExecuteTask(const rt::TaskLaunch& launch) override
    {
        runtime_->ExecuteTask(launch);
    }
    void BeginTrace(rt::TraceId) override {}
    void EndTrace(rt::TraceId) override {}
    void Flush() override {}

  private:
    rt::Runtime* runtime_;
};

/** Everything flows through Apophenia; annotations are ignored. */
class AutoSink final : public TaskSink {
  public:
    explicit AutoSink(core::Apophenia& front_end) : front_end_(&front_end) {}

    rt::RegionId CreateRegion() override
    {
        return front_end_->CreateRegion();
    }
    void DestroyRegion(rt::RegionId r) override
    {
        front_end_->DestroyRegion(r);
    }
    void ExecuteTask(const rt::TaskLaunch& launch) override
    {
        front_end_->ExecuteTask(launch);
    }
    void BeginTrace(rt::TraceId) override {}
    void EndTrace(rt::TraceId) override {}
    void Flush() override { front_end_->Flush(); }

  private:
    core::Apophenia* front_end_;
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_SINK_H
