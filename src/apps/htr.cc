#include "apps/htr.h"

#include <string>

namespace apo::apps {

namespace {

constexpr rt::TraceId kHtrManualTrace = 77002;

}  // namespace

HtrApplication::HtrApplication(HtrOptions options) : options_(options) {}

double
HtrApplication::KernelUs() const
{
    switch (options_.size) {
      case ProblemSize::kSmall:
        return options_.exec_small_us;
      case ProblemSize::kMedium:
        return options_.exec_medium_us;
      case ProblemSize::kLarge:
        return options_.exec_large_us;
    }
    return options_.exec_medium_us;
}

void
HtrApplication::Setup(api::Frontend& fe)
{
    conserved_ = DistArray(fe);
    primitive_ = DistArray(fe);
    fluxes_ = DistArray(fe);
    sources_ = DistArray(fe);
    stats_ = DistArray(fe);
}

void
HtrApplication::Stage(api::Frontend& fe, std::size_t stage)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    const double exec = KernelUs();
    // Primitive recovery, then a battery of physics kernels, then the
    // conservative update. Kernel identities differ per slot so the
    // token stream distinguishes them (as distinct task ids do).
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("htr_primitives", g, exec * 0.3)
            .Add(conserved_.Read(g))
            .Add(primitive_.Write(g))
            .LaunchOn(fe);
    }
    for (std::size_t k = 0; k < options_.kernels_per_stage; ++k) {
        const std::string name =
            "htr_kernel_" + std::to_string(stage) + "_" + std::to_string(k);
        const bool stencil = k % 2 == 0;  // alternating stencil kernels
        for (std::uint32_t g = 0; g < gpus; ++g) {
            auto& kernel = builder_.Start(name, g, exec);
            kernel.Add(primitive_.Read(g));
            if (stencil && g > 0) {
                kernel.Add(primitive_.Read(g - 1));
            }
            if (stencil && g + 1 < gpus) {
                kernel.Add(primitive_.Read(g + 1));
            }
            kernel.Add(k % 3 == 2 ? sources_.ReadWrite(g)
                                  : fluxes_.ReadWrite(g));
            kernel.LaunchOn(fe);
        }
    }
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("htr_update", g, exec * 0.5)
            .Add(fluxes_.Read(g))
            .Add(sources_.Read(g))
            .Add(conserved_.ReadWrite(g))
            .LaunchOn(fe);
    }
}

void
HtrApplication::Statistics(api::Frontend& fe)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("htr_average", g, KernelUs() * 0.2)
            .Add(conserved_.Read(g))
            .Add(stats_.Reduce(g, /*op=*/1))
            .LaunchOn(fe);
    }
}

void
HtrApplication::Iteration(api::Frontend& fe, std::size_t iter,
                          bool manual_tracing)
{
    if (manual_tracing) {
        fe.BeginTrace(kHtrManualTrace);
    }
    for (std::size_t s = 0; s < options_.stages; ++s) {
        Stage(fe, s);
    }
    if (manual_tracing) {
        fe.EndTrace(kHtrManualTrace);
    }
    // Time-averaged statistics interrupt the loop irregularly; the
    // manual port leaves them untraced.
    if (options_.stats_interval != 0 &&
        iter % options_.stats_interval == options_.stats_interval - 1) {
        Statistics(fe);
    }
}

}  // namespace apo::apps
