#include "apps/cfd.h"

#include <string>

namespace apo::apps {

CfdApplication::CfdApplication(CfdOptions options) : options_(options) {}

double
CfdApplication::KernelUs() const
{
    switch (options_.size) {
      case ProblemSize::kSmall:
        return options_.exec_small_us;
      case ProblemSize::kMedium:
        return options_.exec_medium_us;
      case ProblemSize::kLarge:
        return options_.exec_large_us;
    }
    return options_.exec_small_us;
}

void
CfdApplication::Setup(TaskSink& sink)
{
    u_ = DistArray(sink);
    v_ = DistArray(sink);
    p_ = DistArray(sink);
}

DistArray
CfdApplication::PointwiseOp(TaskSink& sink, std::string_view name,
                            const DistArray& a, const DistArray& b,
                            double exec_scale)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    DistArray out(sink);  // cuPyNumeric: every result is a fresh array
    for (std::uint32_t g = 0; g < gpus; ++g) {
        TaskBuilder task(name, g, KernelUs() * exec_scale);
        task.Add(a.Read(g));
        if (b.Valid()) {
            task.Add(b.Read(g));
        }
        task.Add(out.Write(g));
        task.LaunchOn(sink);
    }
    return out;
}

DistArray
CfdApplication::StencilOp(TaskSink& sink, std::string_view name,
                          const DistArray& a, const DistArray& b,
                          double exec_scale)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    DistArray out(sink);
    for (std::uint32_t g = 0; g < gpus; ++g) {
        TaskBuilder task(name, g, KernelUs() * exec_scale);
        task.Add(a.Read(g));
        if (g > 0) {
            task.Add(a.Read(g - 1));
        }
        if (g + 1 < gpus) {
            task.Add(a.Read(g + 1));
        }
        if (b.Valid()) {
            task.Add(b.Read(g));
        }
        task.Add(out.Write(g));
        task.LaunchOn(sink);
    }
    return out;
}

void
CfdApplication::ResidualCheck(TaskSink& sink, std::size_t iter)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    // An irregular computation: its task ids vary with the checkpoint
    // index, so it never becomes part of a repeated fragment — the
    // structure that defeats tandem-repeat analysis (section 4.2).
    const std::string name =
        "cfd_residual_" + std::to_string(iter / options_.check_interval);
    DistArray norm(sink);
    for (std::uint32_t g = 0; g < gpus; ++g) {
        TaskBuilder(name, g, KernelUs() * 0.3)
            .Add(u_.Read(g))
            .Add(norm.Reduce(g, /*op=*/1))
            .LaunchOn(sink);
    }
    TaskBuilder check("cfd_check", 0, KernelUs() * 0.1);
    check.Add(norm.Read(0));
    check.LaunchOn(sink);
    norm.Destroy(sink);
}

void
CfdApplication::Iteration(TaskSink& sink, std::size_t iter,
                          bool manual_tracing)
{
    (void)manual_tracing;  // no hand-traced CFD exists (section 6.1)
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());

    // b = build_up_b(u, v): stencil of the velocity field.
    DistArray b = StencilOp(sink, "cfd_build_b", u_, v_, 0.8);
    // Pressure Poisson sub-iterations: p' = pressure(p, b).
    for (std::size_t s = 0; s < options_.pressure_iters; ++s) {
        DistArray p_new = StencilOp(sink, "cfd_pressure", p_, b, 1.0);
        p_.Destroy(sink);
        p_ = p_new;
    }
    b.Destroy(sink);
    // Velocity updates read the new pressure.
    DistArray u_new = StencilOp(sink, "cfd_vel_u", u_, p_, 1.0);
    DistArray v_new = StencilOp(sink, "cfd_vel_v", v_, p_, 1.0);
    u_.Destroy(sink);
    v_.Destroy(sink);
    u_ = u_new;
    v_ = v_new;
    // Boundary conditions + halo settlement: a collective whose cost
    // grows with the participant count; on small problems this is the
    // latency the paper says cannot be hidden at scale.
    TaskBuilder bc("cfd_boundary", 0,
                   options_.collective_per_gpu_us *
                       static_cast<double>(gpus));
    for (std::uint32_t g = 0; g < gpus; ++g) {
        bc.Add(u_.ReadWrite(g));
        bc.Add(v_.ReadWrite(g));
    }
    bc.LaunchOn(sink);

    if (options_.check_interval != 0 &&
        iter % options_.check_interval == options_.check_interval - 1) {
        ResidualCheck(sink, iter);
    }
}

}  // namespace apo::apps
