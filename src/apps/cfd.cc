#include "apps/cfd.h"

#include <string>

namespace apo::apps {

CfdApplication::CfdApplication(CfdOptions options) : options_(options) {}

double
CfdApplication::KernelUs() const
{
    switch (options_.size) {
      case ProblemSize::kSmall:
        return options_.exec_small_us;
      case ProblemSize::kMedium:
        return options_.exec_medium_us;
      case ProblemSize::kLarge:
        return options_.exec_large_us;
    }
    return options_.exec_small_us;
}

void
CfdApplication::Setup(api::Frontend& fe)
{
    u_ = DistArray(fe);
    v_ = DistArray(fe);
    p_ = DistArray(fe);
}

DistArray
CfdApplication::PointwiseOp(api::Frontend& fe, std::string_view name,
                            const DistArray& a, const DistArray& b,
                            double exec_scale)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    DistArray out(fe);  // cuPyNumeric: every result is a fresh array
    for (std::uint32_t g = 0; g < gpus; ++g) {
        auto& task = builder_.Start(name, g, KernelUs() * exec_scale);
        task.Add(a.Read(g));
        if (b.Valid()) {
            task.Add(b.Read(g));
        }
        task.Add(out.Write(g));
        task.LaunchOn(fe);
    }
    return out;
}

DistArray
CfdApplication::StencilOp(api::Frontend& fe, std::string_view name,
                          const DistArray& a, const DistArray& b,
                          double exec_scale)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    DistArray out(fe);
    for (std::uint32_t g = 0; g < gpus; ++g) {
        auto& task = builder_.Start(name, g, KernelUs() * exec_scale);
        task.Add(a.Read(g));
        if (g > 0) {
            task.Add(a.Read(g - 1));
        }
        if (g + 1 < gpus) {
            task.Add(a.Read(g + 1));
        }
        if (b.Valid()) {
            task.Add(b.Read(g));
        }
        task.Add(out.Write(g));
        task.LaunchOn(fe);
    }
    return out;
}

void
CfdApplication::ResidualCheck(api::Frontend& fe, std::size_t iter)
{
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    // An irregular computation: its task ids vary with the checkpoint
    // index, so it never becomes part of a repeated fragment — the
    // structure that defeats tandem-repeat analysis (section 4.2).
    const std::string name =
        "cfd_residual_" + std::to_string(iter / options_.check_interval);
    DistArray norm(fe);
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start(name, g, KernelUs() * 0.3)
            .Add(u_.Read(g))
            .Add(norm.Reduce(g, /*op=*/1))
            .LaunchOn(fe);
    }
    auto& check = builder_.Start("cfd_check", 0, KernelUs() * 0.1);
    check.Add(norm.Read(0));
    check.LaunchOn(fe);
    norm.Destroy(fe);
}

void
CfdApplication::Iteration(api::Frontend& fe, std::size_t iter,
                          bool manual_tracing)
{
    (void)manual_tracing;  // no hand-traced CFD exists (section 6.1)
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());

    // b = build_up_b(u, v): stencil of the velocity field.
    DistArray b = StencilOp(fe, "cfd_build_b", u_, v_, 0.8);
    // Pressure Poisson sub-iterations: p' = pressure(p, b).
    for (std::size_t s = 0; s < options_.pressure_iters; ++s) {
        DistArray p_new = StencilOp(fe, "cfd_pressure", p_, b, 1.0);
        p_.Destroy(fe);
        p_ = p_new;
    }
    b.Destroy(fe);
    // Velocity updates read the new pressure.
    DistArray u_new = StencilOp(fe, "cfd_vel_u", u_, p_, 1.0);
    DistArray v_new = StencilOp(fe, "cfd_vel_v", v_, p_, 1.0);
    u_.Destroy(fe);
    v_.Destroy(fe);
    u_ = u_new;
    v_ = v_new;
    // Boundary conditions + halo settlement: a collective whose cost
    // grows with the participant count; on small problems this is the
    // latency the paper says cannot be hidden at scale.
    auto& bc = builder_.Start("cfd_boundary", 0,
                   options_.collective_per_gpu_us *
                       static_cast<double>(gpus));
    for (std::uint32_t g = 0; g < gpus; ++g) {
        bc.Add(u_.ReadWrite(g));
        bc.Add(v_.ReadWrite(g));
    }
    bc.LaunchOn(fe);

    if (options_.check_interval != 0 &&
        iter % options_.check_interval == options_.check_interval - 1) {
        ResidualCheck(fe, iter);
    }
}

}  // namespace apo::apps
