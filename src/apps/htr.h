/**
 * @file
 * HTR task-stream skeleton (paper section 6.1, figure 6b).
 *
 * HTR is a production hypersonic aerothermodynamics solver performing
 * multi-physics simulation (convection, diffusion, chemistry,
 * radiation) of high-enthalpy flows. Structurally it is a statically
 * allocated multi-stage per-iteration pipeline like S3D but with more
 * physics kernels per stage, plus an infrequent statistics/averages
 * computation that interrupts the otherwise periodic stream.
 */
#ifndef APOPHENIA_APPS_HTR_H
#define APOPHENIA_APPS_HTR_H

#include "apps/app.h"
#include "apps/array.h"

namespace apo::apps {

/** Tuning knobs for the HTR skeleton. */
struct HtrOptions {
    MachineConfig machine;
    ProblemSize size = ProblemSize::kMedium;
    /** RK sub-steps per iteration. */
    std::size_t stages = 3;
    /** Physics kernels per stage per GPU. */
    std::size_t kernels_per_stage = 8;
    /** Statistics are gathered every this-many iterations. */
    std::size_t stats_interval = 8;
    double exec_small_us = 5600.0;
    double exec_medium_us = 7500.0;
    double exec_large_us = 10500.0;
};

/** See file comment. */
class HtrApplication final : public Application {
  public:
    explicit HtrApplication(HtrOptions options);

    std::string_view Name() const override { return "HTR"; }
    bool SupportsManualTracing() const override { return true; }

    void Setup(api::Frontend& fe) override;
    void Iteration(api::Frontend& fe, std::size_t iter,
                   bool manual_tracing) override;

    double KernelUs() const;

  private:
    void Stage(api::Frontend& fe, std::size_t stage);
    void Statistics(api::Frontend& fe);

    HtrOptions options_;
    DistArray conserved_;  ///< flow state
    DistArray primitive_;  ///< derived primitive variables
    DistArray fluxes_;     ///< face fluxes
    DistArray sources_;    ///< chemistry/radiation source terms
    DistArray stats_;      ///< time-averaged statistics
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_HTR_H
