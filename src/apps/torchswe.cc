#include "apps/torchswe.h"

#include <string>

namespace apo::apps {

TorchSweApplication::TorchSweApplication(TorchSweOptions options)
    : options_(options)
{
}

double
TorchSweApplication::KernelUs() const
{
    switch (options_.size) {
      case ProblemSize::kSmall:
        return options_.exec_small_us;
      case ProblemSize::kMedium:
        return options_.exec_medium_us;
      case ProblemSize::kLarge:
        return options_.exec_large_us;
    }
    return options_.exec_medium_us;
}

DistArray
TorchSweApplication::Alloc(api::Frontend& fe)
{
    if (regions_created_ >= options_.allocation_pool_budget &&
        !pool_.empty()) {
        const DistArray recycled = pool_.back();
        pool_.pop_back();
        return recycled;
    }
    ++regions_created_;
    return DistArray(fe);
}

void
TorchSweApplication::Release(DistArray dead)
{
    pool_.push_back(dead);
}

void
TorchSweApplication::Setup(api::Frontend& fe)
{
    state_.clear();
    for (std::size_t f = 0; f < options_.fields; ++f) {
        state_.emplace_back(fe);
    }
}

void
TorchSweApplication::Iteration(api::Frontend& fe, std::size_t iter,
                               bool manual_tracing)
{
    (void)iter;
    (void)manual_tracing;  // no hand-traced TorchSWE exists
    const std::uint32_t gpus =
        static_cast<std::uint32_t>(options_.machine.GpuCount());
    const double exec = KernelUs();

    // Per field: a chain of flux/slope/limiter array operations, each
    // producing a fresh (immediately recycled) array — the cuPyNumeric
    // allocation pattern at scale.
    for (std::size_t f = 0; f < options_.fields; ++f) {
        DistArray current = state_[f];
        for (std::size_t op = 0; op < options_.ops_per_field; ++op) {
            const std::string name =
                "swe_op_" + std::to_string(f) + "_" + std::to_string(op);
            const bool stencil = op % 2 == 0;
            DistArray out = Alloc(fe);
            for (std::uint32_t g = 0; g < gpus; ++g) {
                auto& task = builder_.Start(name, g, exec);
                task.Add(current.Read(g));
                if (stencil && g > 0) {
                    task.Add(current.Read(g - 1));
                }
                if (stencil && g + 1 < gpus) {
                    task.Add(current.Read(g + 1));
                }
                // Fields couple through the water-height field.
                if (f != 0 && op == 0) {
                    task.Add(state_[0].Read(g));
                }
                task.Add(out.Write(g));
                task.LaunchOn(fe);
            }
            Release(current);
            current = out;
        }
        state_[f] = current;
    }

    // Global CFL condition: reduce the admissible timestep across all
    // shards; its cost grows with participant count.
    DistArray dt = Alloc(fe);
    for (std::uint32_t g = 0; g < gpus; ++g) {
        builder_.Start("swe_cfl", g, exec * 0.2)
            .Add(state_[0].Read(g))
            .Add(dt.Reduce(g, /*op=*/2))
            .LaunchOn(fe);
    }
    auto& step = builder_.Start("swe_step", 0,
                     options_.collective_per_gpu_us *
                         static_cast<double>(gpus));
    step.Add(dt.Read(0));
    step.LaunchOn(fe);
    Release(dt);
}

}  // namespace apo::apps
