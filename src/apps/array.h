/**
 * @file
 * Distributed-array helpers shared by the workload skeletons.
 *
 * A DistArray models one logical array partitioned across GPUs: a
 * single region in which shard s touches field s. Stencil-style tasks
 * read their own field plus their neighbours', which creates the
 * cross-shard (and, across node boundaries, cross-node) dependences
 * the communication model charges for. Dynamically allocated arrays
 * (the cuPyNumeric pattern) are created and destroyed per operation,
 * exercising the region allocator's id reuse — the source of the
 * paper's section 2 periodicity pathology.
 */
#ifndef APOPHENIA_APPS_ARRAY_H
#define APOPHENIA_APPS_ARRAY_H

#include <cstdint>

#include "api/frontend.h"
#include "runtime/task.h"

namespace apo::apps {

/** One logical distributed array (region); shard s uses field s. */
class DistArray {
  public:
    DistArray() = default;
    explicit DistArray(api::Frontend& frontend)
        : region_(frontend.CreateRegion())
    {
    }

    rt::RegionId Region() const { return region_; }
    bool Valid() const { return region_.value != 0; }

    rt::RegionRequirement Read(std::uint32_t shard) const
    {
        return {region_, shard, rt::Privilege::kReadOnly, 0};
    }
    rt::RegionRequirement Write(std::uint32_t shard) const
    {
        return {region_, shard, rt::Privilege::kWriteDiscard, 0};
    }
    rt::RegionRequirement ReadWrite(std::uint32_t shard) const
    {
        return {region_, shard, rt::Privilege::kReadWrite, 0};
    }
    rt::RegionRequirement Reduce(std::uint32_t shard,
                                 rt::ReductionOpId op) const
    {
        return {region_, shard, rt::Privilege::kReduce, op};
    }

    void Destroy(api::Frontend& frontend)
    {
        if (Valid()) {
            frontend.DestroyRegion(region_);
            region_ = rt::RegionId{};
        }
    }

  private:
    rt::RegionId region_;
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_ARRAY_H
