/**
 * @file
 * CFD (cuPyNumeric channel flow) task-stream skeleton (paper section
 * 6.1, figure 7a).
 *
 * The application solves the Navier-Stokes equations for 2D channel
 * flow written against a NumPy-like array library ("CFD Python: the
 * 12 steps to Navier-Stokes"). Structurally, the library issues one
 * or more tasks per array operation and — crucially — allocates a
 * *fresh* region for every operation result, destroying dead arrays
 * immediately. Loop-carried variables therefore rebind to recycled
 * region ids, so the steady-state task stream is periodic with a
 * period of *several* source-level iterations (the section 2
 * pathology). That is why no manually traced CFD exists: the paper's
 * point is that Apophenia traces it anyway.
 */
#ifndef APOPHENIA_APPS_CFD_H
#define APOPHENIA_APPS_CFD_H

#include "apps/app.h"
#include "apps/array.h"

namespace apo::apps {

/** Tuning knobs for the CFD skeleton. */
struct CfdOptions {
    MachineConfig machine;
    ProblemSize size = ProblemSize::kSmall;
    /** Pressure-Poisson sub-iterations per time step. */
    std::size_t pressure_iters = 2;
    /** A residual check (an irregular, differently-shaped task
     * sequence) runs every this-many iterations. */
    std::size_t check_interval = 20;
    double exec_small_us = 3000.0;
    double exec_medium_us = 4500.0;
    double exec_large_us = 7000.0;
    /** Per-participant cost of the boundary/reduction collective —
     * the serial term that exposes communication on small problems at
     * scale. */
    double collective_per_gpu_us = 100.0;
};

/** See file comment. */
class CfdApplication final : public Application {
  public:
    explicit CfdApplication(CfdOptions options);

    std::string_view Name() const override { return "CFD"; }
    bool SupportsManualTracing() const override { return false; }

    void Setup(api::Frontend& fe) override;
    void Iteration(api::Frontend& fe, std::size_t iter,
                   bool manual_tracing) override;

    double KernelUs() const;

  private:
    /** Elementwise array operation producing a fresh array. */
    DistArray PointwiseOp(api::Frontend& fe, std::string_view name,
                          const DistArray& a, const DistArray& b,
                          double exec_scale);
    /** Stencil operation (reads neighbour shards) producing a fresh
     * array. */
    DistArray StencilOp(api::Frontend& fe, std::string_view name,
                        const DistArray& a, const DistArray& b,
                        double exec_scale);
    void ResidualCheck(api::Frontend& fe, std::size_t iter);

    CfdOptions options_;
    DistArray u_;  ///< x velocity
    DistArray v_;  ///< y velocity
    DistArray p_;  ///< pressure
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_CFD_H
