/**
 * @file
 * S3D task-stream skeleton (paper section 6.1, figure 6a).
 *
 * S3D is a production combustion-chemistry simulation; its Legion port
 * implements the right-hand-side function of a Runge-Kutta scheme and
 * interoperates with a legacy Fortran+MPI driver. Two structural
 * properties matter for tracing and are reproduced here:
 *
 *  - each iteration runs a fixed sequence of RK stages (exchange,
 *    chemistry, diffusion, update per GPU) over statically allocated
 *    regions — a perfectly periodic, traceable main loop;
 *  - a hand-off with the Fortran+MPI driver happens every iteration
 *    for the first 10 iterations and every 10th iteration afterwards,
 *    which is why the paper calls S3D's *manual* annotation logic
 *    "relatively complicated": the hand-off tasks must stay outside
 *    the trace.
 */
#ifndef APOPHENIA_APPS_S3D_H
#define APOPHENIA_APPS_S3D_H

#include <vector>

#include "apps/app.h"
#include "apps/array.h"

namespace apo::apps {

/** Tuning knobs for the S3D skeleton. */
struct S3dOptions {
    MachineConfig machine;
    ProblemSize size = ProblemSize::kMedium;
    /** Runge-Kutta stages per iteration. */
    std::size_t rk_stages = 4;
    /** Kernel durations per problem size (µs). */
    double exec_small_us = 5300.0;
    double exec_medium_us = 8000.0;
    double exec_large_us = 12000.0;
};

/** See file comment. */
class S3dApplication final : public Application {
  public:
    explicit S3dApplication(S3dOptions options);

    std::string_view Name() const override { return "S3D"; }
    bool SupportsManualTracing() const override { return true; }

    void Setup(api::Frontend& fe) override;
    void Iteration(api::Frontend& fe, std::size_t iter,
                   bool manual_tracing) override;

    /** Whether iteration `iter` requires a Fortran+MPI hand-off. */
    static bool NeedsHandoff(std::size_t iter)
    {
        return iter < 10 || iter % 10 == 0;
    }

    double KernelUs() const;

  private:
    void RkStage(api::Frontend& fe);
    void Handoff(api::Frontend& fe);

    S3dOptions options_;
    DistArray state_;    ///< conserved variables U
    DistArray halo_;     ///< exchanged ghost zones
    DistArray chem_;     ///< chemistry source terms
    DistArray rhs_;      ///< accumulated right-hand side
    DistArray fortran_;  ///< staging buffer shared with the driver
};

}  // namespace apo::apps

#endif  // APOPHENIA_APPS_S3D_H
