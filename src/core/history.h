/**
 * @file
 * Zero-copy task-history snapshots for the asynchronous miner.
 *
 * The finder's sliding history window is stored as a chain of
 * fixed-size, append-only token blocks. Launching a mining job no
 * longer copies an O(batchsize) slice of the history: the job takes a
 * HistorySnapshot — a list of refcounted views into the blocks — whose
 * construction costs O(slice / block_size) pointer bumps on the
 * application thread. Published block contents are immutable (tokens
 * are written once, before the snapshot is taken and published to the
 * worker via the executor's queue), so workers read them without
 * synchronization; blocks evicted from the window stay alive for as
 * long as any snapshot still references them.
 */
#ifndef APOPHENIA_CORE_HISTORY_H
#define APOPHENIA_CORE_HISTORY_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/task.h"

namespace apo::core {

/** One fixed-capacity, append-only run of tokens. */
class TokenBlock {
  public:
    explicit TokenBlock(std::size_t capacity)
        : tokens_(std::make_unique<rt::TokenHash[]>(capacity)),
          capacity_(capacity)
    {
    }

    std::size_t Size() const { return size_; }
    bool Full() const { return size_ == capacity_; }
    void Append(rt::TokenHash token) { tokens_[size_++] = token; }
    const rt::TokenHash* Data() const { return tokens_.get(); }

  private:
    std::unique_ptr<rt::TokenHash[]> tokens_;
    std::size_t size_ = 0;
    std::size_t capacity_;
};

/**
 * An immutable view of a contiguous history slice: shared references
 * to the blocks it spans plus the byte-exact [begin, end) range within
 * each. Cheap to construct and to destroy; safe to read from worker
 * threads for as long as the snapshot lives.
 */
class HistorySnapshot {
  public:
    /** One block's contribution to the slice. */
    struct Span {
        std::shared_ptr<const TokenBlock> block;  ///< keep-alive
        const rt::TokenHash* data = nullptr;
        std::size_t length = 0;
    };

    std::size_t Size() const { return size_; }
    bool Empty() const { return size_ == 0; }
    std::size_t NumSpans() const { return spans_.size(); }
    /** The block-aligned segments of the slice, in order (read-only;
     * lets consumers hash or compare the window without materializing
     * it — see core::MiningCache). */
    std::span<const Span> Spans() const { return spans_; }

    /** Release the block references (keeps span capacity for reuse). */
    void Clear()
    {
        spans_.clear();
        size_ = 0;
    }

    /** Materialize the slice into `out` (cleared first). Runs on the
     * worker thread, off the application's critical path. */
    void CopyTo(std::vector<rt::TokenHash>& out) const
    {
        out.clear();
        out.reserve(size_);
        for (const Span& span : spans_) {
            out.insert(out.end(), span.data, span.data + span.length);
        }
    }

  private:
    friend class HistoryRing;

    std::vector<Span> spans_;
    std::size_t size_ = 0;
};

/**
 * The sliding history window: the last `capacity` observed tokens,
 * chunked into shared blocks of `block_size` tokens.
 */
class HistoryRing {
  public:
    explicit HistoryRing(std::size_t capacity, std::size_t block_size);

    /** Record one token at the end of the window. */
    void Append(rt::TokenHash token);

    /** Tokens currently in the window (<= capacity). */
    std::size_t Size() const { return std::min(stored_, capacity_); }

    std::size_t BlockSize() const { return block_size_; }
    std::size_t NumBlocks() const { return blocks_.size(); }

    /**
     * Snapshot the last `length` tokens (length <= Size()) into `out`,
     * reusing out's span storage. O(length / block_size); copies no
     * tokens.
     */
    void SnapshotLastN(std::size_t length, HistorySnapshot& out) const;

    /** Checkpoint hooks: the live window tokens (every token still
     * held in a block). Restore re-appends them into an empty ring,
     * which reproduces the exact block layout — eviction only ever
     * drops whole blocks, so the oldest live token is block-aligned. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    std::deque<std::shared_ptr<TokenBlock>> blocks_;
    std::size_t block_size_;
    std::size_t capacity_;
    std::size_t stored_ = 0;  ///< tokens held across blocks (>= Size())
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_HISTORY_H
