/**
 * @file
 * The candidate trie and trace scoring (paper section 4.3).
 *
 * Candidate traces produced by the asynchronous history mining are
 * ingested into a trie keyed by token hash. As the application issues
 * tasks, the replayer maintains a set of pointers into the trie — one
 * per potential in-progress match — advancing each pointer by the new
 * token or discarding it. A pointer reaching a node marked as a
 * candidate has matched that candidate's full token sequence.
 *
 * The trie is stored flat: nodes live in a pooled deque (stable
 * addresses, no per-node allocation beyond candidate stats) and all
 * edges live in a single (parent id, token) -> child index hash map.
 * Advancing a match pointer is one probe of that flat index — there is
 * no per-node child container to allocate or chase, which keeps the
 * per-token replayer step allocation-free.
 *
 * Each candidate carries the statistics the scoring function uses:
 * score = length × min(count, cap) with the count exponentially
 * decayed by the number of tasks since the candidate last appeared,
 * and a small multiplicative bonus once a candidate has been replayed.
 */
#ifndef APOPHENIA_CORE_TRIE_H
#define APOPHENIA_CORE_TRIE_H

#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "fault/checkpoint.h"
#include "runtime/task.h"
#include "runtime/trace.h"
#include "support/hash.h"

namespace apo::core {

/** Statistics and identity of one candidate trace. */
struct CandidateStats {
    /** Stable identifier, assigned at first insertion. */
    std::uint64_t id = 0;
    /** Number of tokens in the candidate. */
    std::size_t length = 0;
    /** Occurrence count (decayed lazily; see Appearances()). */
    double count = 0.0;
    /** Task counter at the last appearance. */
    std::uint64_t last_seen = 0;
    /** Runtime trace id once recorded, kNoTrace before. */
    rt::TraceId trace_id = rt::kNoTrace;
    /** Number of times the replayer fired this candidate. */
    std::size_t replays = 0;

    /** The decayed appearance count as of task counter `now`. */
    double Appearances(std::uint64_t now, double half_life) const
    {
        const double elapsed =
            static_cast<double>(now - std::min(now, last_seen));
        return count * std::exp2(-elapsed / half_life);
    }
};

/** Prefix-tree of candidate traces keyed by token hash. */
class CandidateTrie {
  public:
    struct Node {
        /** Set when a candidate ends at this node. */
        std::unique_ptr<CandidateStats> candidate;
        /** Depth = number of tokens from the root. */
        std::size_t depth = 0;
        /** Index of this node in the pool (key of the edge index). */
        std::uint32_t id = 0;
        /** Outgoing-edge count; a leaf cannot extend any match. */
        std::uint32_t num_children = 0;

        bool HasChildren() const { return num_children != 0; }
    };

    CandidateTrie();

    /**
     * Insert (or refresh) a candidate. An existing candidate's count
     * is first decayed to `now` (with the given half life) and then
     * increased by `occurrences`; a new candidate starts there.
     * @return the candidate's stats node.
     */
    CandidateStats& Insert(const std::vector<rt::TokenHash>& tokens,
                           double occurrences, std::uint64_t now,
                           double half_life);

    /** Child of `node` (or of the root if null) along `token`;
     * nullptr if no candidate continues this way. */
    const Node* Step(const Node* node, rt::TokenHash token) const;

    /** Stats of the candidate ending at `node`, or nullptr. */
    static CandidateStats* CandidateAt(const Node* node)
    {
        return node == nullptr ? nullptr : node->candidate.get();
    }

    std::size_t NumCandidates() const { return num_candidates_; }

    /** Total trie nodes (memory accounting). */
    std::size_t NumNodes() const { return nodes_.size(); }

    const Node* Root() const { return &nodes_.front(); }

    /** Checkpoint hooks: every candidate's token path plus its full
     * statistics (id, decayed count, last-seen stamp, trace id,
     * replay count) and the id counter. Restore re-inserts the paths
     * into an empty trie — node ids may come out in a different pool
     * order, but every observable (Step walks, num_children,
     * candidate stats) is identical, so a restored replayer makes
     * bit-identical decisions. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    /** Walk `tokens` from the root, creating missing nodes (the
     * shared path step of Insert and LoadState). */
    Node* WalkOrCreate(std::span<const rt::TokenHash> tokens);

    /** One edge of the flat child index. */
    struct EdgeKey {
        std::uint32_t parent = 0;
        rt::TokenHash token = 0;

        bool operator==(const EdgeKey&) const = default;
    };
    struct EdgeKeyHash {
        std::size_t operator()(const EdgeKey& k) const
        {
            return static_cast<std::size_t>(
                support::HashCombine(support::SplitMix64(k.parent),
                                     k.token));
        }
    };

    /** Node pool; deque keeps addresses stable across growth. */
    std::deque<Node> nodes_;
    /** The flat child index: (parent id, token) -> child id. */
    std::unordered_map<EdgeKey, std::uint32_t, EdgeKeyHash> edges_;
    std::size_t num_candidates_ = 0;
    std::uint64_t next_id_ = 1;
};

/** The paper's trace-selection scoring function. */
class TraceScorer {
  public:
    explicit TraceScorer(const ApopheniaConfig& config) : config_(&config) {}

    /** Score candidate `c` as of task counter `now`; higher is better. */
    double Score(const CandidateStats& c, std::uint64_t now) const
    {
        const double appearances =
            c.Appearances(now, config_->score_decay_half_life);
        const double capped =
            std::min(appearances, config_->score_count_cap);
        double score = static_cast<double>(c.length) * capped;
        if (c.replays > 0) {
            score *= config_->score_replayed_bonus;
        }
        return score;
    }

  private:
    const ApopheniaConfig* config_;
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_TRIE_H
