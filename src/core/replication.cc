#include "core/replication.h"

#include <algorithm>

namespace apo::core {

ReplicatedFrontEnd::ReplicatedFrontEnd(ReplicationOptions options,
                                       ApopheniaConfig config,
                                       rt::RuntimeOptions runtime_options)
    : options_(options), slack_(options.initial_slack)
{
    if (options_.nodes == 0) {
        options_.nodes = 1;
    }
    nodes_.reserve(options_.nodes);
    for (std::size_t n = 0; n < options_.nodes; ++n) {
        auto node = std::make_unique<NodeState>(
            runtime_options, options_.seed * 7919 + n);
        // Inline executor keeps the mining computation deterministic;
        // completion *timing* is simulated by the coordinator.
        node->front_end =
            std::make_unique<Apophenia>(node->runtime, config);
        node->front_end->SetIngestMode(IngestMode::kManual);
        nodes_.push_back(std::move(node));
    }
}

void
ReplicatedFrontEnd::DoExecuteTask(const rt::TaskLaunchView& launch)
{
    ++tasks_issued_;
    for (auto& node : nodes_) {
        node->front_end->ExecuteTask(launch);
    }
    ScheduleNewJobs();
    IngestDueJobs();
}

rt::RegionId
ReplicatedFrontEnd::CreateRegion()
{
    const rt::RegionId region = nodes_[0]->front_end->CreateRegion();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->front_end->CreateRegion() != region) {
            throw rt::RuntimeUsageError(
                "replicated region allocators diverged on CreateRegion "
                "(a node was driven outside the replicated front end)");
        }
    }
    return region;
}

void
ReplicatedFrontEnd::DestroyRegion(rt::RegionId r)
{
    for (auto& node : nodes_) {
        node->front_end->DestroyRegion(r);
    }
}

std::vector<rt::RegionId>
ReplicatedFrontEnd::PartitionRegion(rt::RegionId parent, std::size_t count)
{
    std::vector<rt::RegionId> subregions =
        nodes_[0]->front_end->PartitionRegion(parent, count);
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->front_end->PartitionRegion(parent, count) !=
            subregions) {
            throw rt::RuntimeUsageError(
                "replicated region allocators diverged on PartitionRegion "
                "(a node was driven outside the replicated front end)");
        }
    }
    return subregions;
}

void
ReplicatedFrontEnd::ScheduleNewJobs()
{
    // All nodes launch identical jobs at identical stream positions
    // (the mining schedule is a deterministic function of the
    // stream), so node 0's queue is representative. New jobs are
    // those beyond `jobs_seen_`.
    nodes_[0]->front_end->VisitPendingJobs(
        jobs_seen_, [&](const PendingJobInfo& job) {
            jobs_seen_ = job.id + 1;
            JobSchedule sched;
            sched.job_id = job.id;
            sched.agreed_at = job.issued_at + slack_;
            // Each node's asynchronous analysis completes after a
            // simulated, jittered number of further tasks; the job is
            // globally ready only when the slowest node finishes.
            sched.ready_at = 0;
            for (auto& node : nodes_) {
                const double lo =
                    options_.mean_latency_tasks * (1.0 - options_.jitter);
                const double hi =
                    options_.mean_latency_tasks * (1.0 + options_.jitter);
                const double latency = node->latency_rng.UniformReal(
                    std::max(0.0, lo), std::max(1.0, hi));
                sched.ready_at =
                    std::max(sched.ready_at,
                             job.issued_at +
                                 static_cast<std::uint64_t>(latency));
            }
            stats_.jobs_coordinated += 1;
            if (sched.ready_at > sched.agreed_at) {
                // Some node would stall at the agreed point: ingest
                // when actually ready, and widen the slack for future
                // jobs (the paper's adaptive count increase).
                stats_.late_jobs += 1;
                slack_ = std::max(
                    slack_ * 2,
                    sched.ready_at - sched.agreed_at + slack_);
            }
            schedule_.push_back(sched);
        });
    stats_.final_slack = slack_;
}

void
ReplicatedFrontEnd::IngestDueJobs()
{
    // Ingest in launch order once both the agreed point and global
    // readiness have passed — the same decision on every node.
    while (!schedule_.empty()) {
        const JobSchedule& next = schedule_.front();
        const std::uint64_t due =
            std::max(next.agreed_at, next.ready_at);
        if (tasks_issued_ < due) {
            break;
        }
        for (auto& node : nodes_) {
            node->front_end->IngestOldestJob();
        }
        schedule_.erase(schedule_.begin());
    }
}

void
ReplicatedFrontEnd::DoFlush()
{
    // Drain every coordinated job, then flush the front-ends.
    while (!schedule_.empty()) {
        for (auto& node : nodes_) {
            node->front_end->IngestOldestJob();
        }
        schedule_.erase(schedule_.begin());
    }
    for (auto& node : nodes_) {
        node->front_end->Flush();
    }
}

bool
ReplicatedFrontEnd::StreamsIdentical() const
{
    const rt::OperationLog& reference = nodes_[0]->runtime.Log();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        const rt::OperationLog& log = nodes_[n]->runtime.Log();
        if (log.size() != reference.size()) {
            return false;
        }
        for (std::size_t i = 0; i < log.size(); ++i) {
            const rt::OpView a = log[i];
            const rt::OpView b = reference[i];
            if (a.token != b.token || a.mode != b.mode ||
                a.trace != b.trace ||
                !(a.dependences == b.dependences)) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace apo::core
