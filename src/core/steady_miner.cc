#include "core/steady_miner.h"

#include <utility>

#include "core/mining_cache.h"

namespace apo::core {

SteadyStateMiner::SteadyStateMiner(const ApopheniaConfig& config)
    : config_(&config),
      miner_(strings::RepeatOptions{
          .min_length = config.min_trace_length,
          .min_occurrences = 2,
      })
{
    ring_.reserve(config.incremental_ring_windows);
}

template <typename VerifyEquals>
std::shared_ptr<const std::vector<CandidateTrace>>
SteadyStateMiner::ProbeLocked(std::uint64_t fingerprint, std::size_t length,
                              const VerifyEquals& equals)
{
    for (Entry& entry : ring_) {
        if (!entry.valid || entry.fingerprint != fingerprint ||
            entry.window.size() != length) {
            continue;
        }
        if (!equals(entry)) {
            continue;  // fingerprint collision: degrade to mining
        }
        ++stats_.fast_path_hits;
        return entry.results;
    }
    return nullptr;
}

std::shared_ptr<const std::vector<CandidateTrace>>
SteadyStateMiner::Probe(const HistorySnapshot& snapshot)
{
    // Same fold as the shared cache's content address, walked over the
    // zero-copy block spans.
    const MiningCache::Key key = MiningCache::KeyOf(snapshot);
    std::lock_guard lock(mutex_);
    ++stats_.probes;
    return ProbeLocked(key.hash, key.length, [&](const Entry& entry) {
        std::size_t offset = 0;
        for (const HistorySnapshot::Span& span : snapshot.Spans()) {
            if (strings::CommonPrefixLength(span.data,
                                            entry.window.data() + offset,
                                            span.length) != span.length) {
                return false;
            }
            offset += span.length;
        }
        return true;
    });
}

std::shared_ptr<const std::vector<CandidateTrace>>
SteadyStateMiner::Probe(std::span<const rt::TokenHash> slice)
{
    const MiningCache::Key key = MiningCache::KeyOf(slice);
    std::lock_guard lock(mutex_);
    ++stats_.probes;
    return ProbeLocked(key.hash, key.length, [&](const Entry& entry) {
        return strings::CommonPrefixLength(slice.data(), entry.window.data(),
                                           slice.size()) == slice.size();
    });
}

SteadyStateMiner::Entry&
SteadyStateMiner::SlotFor(std::size_t length)
{
    // One slot per window shape: the ruler schedule cycles through a
    // handful of lengths, and only a same-length window can ever
    // fast-path against an entry.
    for (Entry& entry : ring_) {
        if (entry.valid && entry.window.size() == length) {
            return entry;
        }
    }
    if (ring_.size() < config_->incremental_ring_windows) {
        ring_.emplace_back();
        return ring_.back();
    }
    Entry& victim = ring_[next_slot_];
    next_slot_ = (next_slot_ + 1) % ring_.size();
    return victim;
}

std::shared_ptr<const std::vector<CandidateTrace>>
SteadyStateMiner::Mine(const std::vector<rt::TokenHash>& slice,
                       MiningPath* path)
{
    const MiningCache::Key key =
        MiningCache::KeyOf(std::span<const rt::TokenHash>(slice));
    std::lock_guard lock(mutex_);
    std::shared_ptr<const std::vector<CandidateTrace>> results;
    std::size_t period = 0;
    if (config_->repeats_algorithm ==
        RepeatsAlgorithm::kQuickMatchingOfSubstrings) {
        const std::vector<strings::Repeat>& repeats = miner_.Mine(slice);
        if (!repeats.empty() && repeats.front().starts.size() >= 2) {
            period =
                repeats.front().starts[1] - repeats.front().starts[0];
        }
        results = std::make_shared<const std::vector<CandidateTrace>>(
            RepeatsToCandidates(repeats, slice, *config_));
        const bool reused =
            miner_.LastTier() != strings::MiningTier::kFull;
        *path = reused ? MiningPath::kRepair : MiningPath::kFull;
        if (reused) {
            ++stats_.repairs;
        } else {
            ++stats_.full_rebuilds;
        }
    } else {
        // Baseline algorithms mine classically; the ring still
        // memoizes their results — verified adoption is sound for any
        // deterministic mining function.
        results = std::make_shared<const std::vector<CandidateTrace>>(
            MineSlice(slice, *config_));
        *path = MiningPath::kFull;
        ++stats_.full_rebuilds;
    }
    Entry& entry = SlotFor(slice.size());
    entry.valid = true;
    entry.fingerprint = key.hash;
    entry.window.assign(slice.begin(), slice.end());
    entry.results = results;
    entry.period = period;
    ++stats_.memoized;
    return results;
}

void
SteadyStateMiner::Memoize(
    const HistorySnapshot& snapshot,
    std::shared_ptr<const std::vector<CandidateTrace>> results)
{
    const MiningCache::Key key = MiningCache::KeyOf(snapshot);
    std::lock_guard lock(mutex_);
    Entry& entry = SlotFor(key.length);
    entry.valid = true;
    entry.fingerprint = key.hash;
    snapshot.CopyTo(entry.window);
    entry.results = std::move(results);
    entry.period = 0;
    ++stats_.memoized;
}

void
SteadyStateMiner::Memoize(
    std::span<const rt::TokenHash> slice,
    std::shared_ptr<const std::vector<CandidateTrace>> results)
{
    const MiningCache::Key key = MiningCache::KeyOf(slice);
    std::lock_guard lock(mutex_);
    Entry& entry = SlotFor(key.length);
    entry.valid = true;
    entry.fingerprint = key.hash;
    entry.window.assign(slice.begin(), slice.end());
    entry.results = std::move(results);
    entry.period = 0;
    ++stats_.memoized;
}

SteadyStateMiner::Stats
SteadyStateMiner::Snapshot() const
{
    std::lock_guard lock(mutex_);
    return stats_;
}

void
SteadyStateMiner::SaveState(fault::CheckpointWriter& writer) const
{
    std::lock_guard lock(mutex_);
    writer.BeginSection(fault::SectionTag::kSteadyMiner);
    writer.U64(next_slot_);
    writer.U64(stats_.probes);
    writer.U64(stats_.fast_path_hits);
    writer.U64(stats_.repairs);
    writer.U64(stats_.full_rebuilds);
    writer.U64(stats_.memoized);
    writer.U64(ring_.size());
    for (const Entry& entry : ring_) {
        writer.Bool(entry.valid);
        if (!entry.valid) {
            continue;
        }
        writer.U64(entry.fingerprint);
        writer.VecU64(entry.window);
        writer.U64(entry.period);
        SaveCandidates(writer, entry.results != nullptr
                                   ? *entry.results
                                   : std::vector<CandidateTrace>{});
    }
    writer.EndSection();
}

void
SteadyStateMiner::LoadState(fault::CheckpointReader& reader)
{
    std::lock_guard lock(mutex_);
    if (!ring_.empty()) {
        throw fault::CheckpointError(
            "SteadyStateMiner::LoadState requires a fresh engine");
    }
    reader.BeginSection(fault::SectionTag::kSteadyMiner);
    next_slot_ = reader.U64();
    stats_.probes = reader.U64();
    stats_.fast_path_hits = reader.U64();
    stats_.repairs = reader.U64();
    stats_.full_rebuilds = reader.U64();
    stats_.memoized = reader.U64();
    const std::uint64_t entries = reader.U64();
    ring_.resize(entries);
    for (Entry& entry : ring_) {
        entry.valid = reader.Bool();
        if (!entry.valid) {
            continue;
        }
        entry.fingerprint = reader.U64();
        entry.window = reader.VecU64();
        entry.period = reader.U64();
        entry.results = std::make_shared<const std::vector<CandidateTrace>>(
            LoadCandidates(reader));
    }
    reader.EndSection();
}

std::vector<std::size_t>
SteadyStateMiner::RingPeriods() const
{
    std::lock_guard lock(mutex_);
    std::vector<std::size_t> periods;
    for (const Entry& entry : ring_) {
        if (entry.valid) {
            periods.push_back(entry.period);
        }
    }
    return periods;
}

}  // namespace apo::core
