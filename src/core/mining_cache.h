/**
 * @file
 * Content-addressed shared mining cache for control-replicated runs.
 *
 * Under control replication every node feeds the *same* task stream to
 * its own trace finder, so every node launches a mining job over a
 * byte-identical history window at the same stream position — and the
 * dominant cost of the whole cluster (repeat mining) is paid N times
 * for one answer. This cache deduplicates that work: a completed
 * `AnalysisJob`'s candidate set is memoized under a content address of
 * the mined slice, and any node about to mine an identical window
 * adopts the published result in place instead.
 *
 * Correctness rests on two facts:
 *  - `MineSlice` is a pure function of (slice, config), so adoption is
 *    bit-identical to local mining — replicated decisions (and the
 *    stream digests) are unchanged whether the cache is on or off;
 *  - hits are *detected*, never assumed: the probe key is the window's
 *    own rolling content hash plus its length, and before a result is
 *    adopted the stored window is compared token-for-token against
 *    the prober's — a (vanishingly rare) 64-bit hash collision
 *    degrades to mining locally, never to adopting a wrong result.
 *
 * Probing and verification walk the probe's zero-copy
 * `HistorySnapshot` block spans directly, so a cache hit never
 * materializes the window at all — the adopter skips both the O(slice)
 * copy and the mining.
 *
 * Resident memory is bounded: at most `max_windows` published entries
 * are retained (FIFO eviction; a re-probed evicted window is simply
 * re-mined), and adopted candidate sets are shared_ptr-owned so an
 * in-flight job survives the eviction of its entry. The cache
 * therefore composes with the streaming-retire log mode's
 * bounded-memory guarantee on unbounded streams.
 *
 * The cache is also the cross-thread rendezvous of the parallel
 * cluster engine: when two nodes race to the same window, the first
 * becomes the miner and the second *blocks* until the result is
 * published (mining it twice would be no faster — the wait costs at
 * most one mining latency and keeps the every-window-mined-once
 * invariant at any thread count). A waiter never holds an in-progress
 * entry of its own, so the wait graph has no cycles.
 */
#ifndef APOPHENIA_CORE_MINING_CACHE_H
#define APOPHENIA_CORE_MINING_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/finder.h"
#include "core/history.h"
#include "runtime/task.h"
#include "support/hash.h"

namespace apo::core {

/** See file comment. Thread-safe; shared by all nodes of a cluster. */
class MiningCache {
  public:
    /** @param max_windows retained published entries (FIFO eviction
     * beyond it); 0 = unbounded. */
    explicit MiningCache(std::size_t max_windows = 1024)
        : max_windows_(max_windows)
    {
    }

    /** Content address of a window: the same incremental HashCombine
     * fold the stream digests use, over the window's tokens, plus the
     * length as a cheap first-stage check. */
    struct Key {
        std::uint64_t hash = 0;
        std::size_t length = 0;

        friend bool operator==(const Key&, const Key&) = default;
    };

    static Key KeyOf(std::span<const rt::TokenHash> slice);
    /** Same fold, walked over the snapshot's block spans (no copy). */
    static Key KeyOf(const HistorySnapshot& snapshot);

    /** The outcome of a probe. */
    struct Claim {
        /** Non-null: a verified hit — adopt this candidate set (the
         * shared ownership survives eviction of the entry). */
        std::shared_ptr<const std::vector<CandidateTrace>> results;
        /** True: the caller is the window's miner and MUST follow with
         * Publish() (or Abandon() on failure) before probing any
         * other key. When both fields are empty the key collided with
         * a different window: mine locally, do not publish. */
        bool miner = false;
    };

    /**
     * Probe the cache with the window's content. A published entry
     * whose stored window matches returns its candidate set (a hit).
     * An in-progress entry blocks until the miner publishes or
     * abandons. An absent entry registers the caller as its miner.
     */
    Claim AcquireOrBegin(const Key& key, const HistorySnapshot& snapshot);
    Claim AcquireOrBegin(const Key& key,
                         std::span<const rt::TokenHash> slice);

    /** Publish the mining result for a key this caller began; stores
     * a copy of the window (for hit verification) and returns the
     * now-immutable shared candidate set so the miner reads it in
     * place like every adopter. May evict the oldest entries. */
    std::shared_ptr<const std::vector<CandidateTrace>> Publish(
        const Key& key, std::span<const rt::TokenHash> window,
        std::vector<CandidateTrace> results);

    /** Publish an already-shared candidate set (the incremental
     * engine's miners own their results as shared_ptrs); stores the
     * same pointer — no copy of the candidates. */
    std::shared_ptr<const std::vector<CandidateTrace>> Publish(
        const Key& key, std::span<const rt::TokenHash> window,
        std::shared_ptr<const std::vector<CandidateTrace>> results);

    /** Give up on a key this caller began (mining threw): waiters are
     * released and the next prober becomes the miner. */
    void Abandon(const Key& key);

    /** Aggregate counters: every probe is a hit (result adopted,
     * possibly after waiting for the miner) or a miss (the caller
     * mined). `windows` counts mining runs that published — with no
     * eviction pressure and no collisions, misses == windows ⇔ each
     * distinct window was mined exactly once. */
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t windows = 0;
    };

    Stats Snapshot() const;

    /** Currently retained published + in-progress entries. */
    std::size_t Size() const;

  private:
    struct Entry {
        bool ready = false;
        /** The mined window itself, for exact hit verification. */
        std::vector<rt::TokenHash> window;
        std::shared_ptr<const std::vector<CandidateTrace>> results;
    };

    struct KeyHasher {
        std::size_t operator()(const Key& key) const
        {
            return static_cast<std::size_t>(
                support::HashCombine(key.hash, key.length));
        }
    };

    /** The generic probe loop; Matches compares the prober's window
     * against an entry's stored tokens. */
    template <typename MatchesEntry>
    Claim Probe(const Key& key, const MatchesEntry& matches);

    mutable std::mutex mutex_;
    std::condition_variable published_;
    std::unordered_map<Key, Entry, KeyHasher> entries_;
    /** Publication order of retained entries (the FIFO eviction
     * queue); in-progress entries are not in it and are never
     * evicted. */
    std::deque<Key> retained_;
    std::size_t max_windows_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t windows_published_ = 0;
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_MINING_CACHE_H
