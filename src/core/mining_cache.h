/**
 * @file
 * Content-addressed shared mining cache for control-replicated runs.
 *
 * Under control replication every node feeds the *same* task stream to
 * its own trace finder, so every node launches a mining job over a
 * byte-identical history window at the same stream position — and the
 * dominant cost of the whole cluster (repeat mining) is paid N times
 * for one answer. This cache deduplicates that work: a completed
 * `AnalysisJob`'s candidate set is memoized under a content address of
 * the mined slice, and any node about to mine an identical window
 * adopts the published result in place instead.
 *
 * Correctness rests on two facts:
 *  - `MineSlice` is a pure function of (slice, config), so adoption is
 *    bit-identical to local mining — replicated decisions (and the
 *    stream digests) are unchanged whether the cache is on or off;
 *  - hits are *detected*, never assumed: the probe key is the window's
 *    own rolling content hash plus its length, and before a result is
 *    adopted the stored window is compared token-for-token against
 *    the prober's — a (vanishingly rare) 64-bit hash collision
 *    degrades to mining locally, never to adopting a wrong result.
 *
 * Probing and verification walk the probe's zero-copy
 * `HistorySnapshot` block spans directly, so a cache hit never
 * materializes the window at all — the adopter skips both the O(slice)
 * copy and the mining.
 *
 * Resident memory is bounded: at most `max_windows` published entries
 * are retained (evicted per `kEvictionPolicy` — the one authoritative
 * statement of the policy; a re-probed evicted window is simply
 * re-mined), and adopted candidate sets are shared_ptr-owned so an
 * in-flight job survives the eviction of its entry. The cache
 * therefore composes with the streaming-retire log mode's
 * bounded-memory guarantee on unbounded streams.
 *
 * The cache is also the cross-thread rendezvous of the parallel
 * cluster engine: when two nodes race to the same window, the first
 * becomes the miner and the second *blocks* until the result is
 * published (mining it twice would be no faster — the wait costs at
 * most one mining latency and keeps the every-window-mined-once
 * invariant at any thread count). A waiter never holds an in-progress
 * entry of its own, so the wait graph has no cycles.
 */
#ifndef APOPHENIA_CORE_MINING_CACHE_H
#define APOPHENIA_CORE_MINING_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/finder.h"
#include "core/history.h"
#include "fault/checkpoint.h"
#include "runtime/task.h"
#include "support/hash.h"

namespace apo::core {

/** See file comment. Thread-safe; shared by all nodes of a cluster. */
class MiningCache {
  public:
    /**
     * The eviction policy, stated once (every other mention — here,
     * the cluster/service option comments, bench records — refers to
     * this constant): **publication-order FIFO**. Published entries
     * are dropped oldest-published-first when the retention bound is
     * exceeded; recency of *probes* never reorders the queue (unlike
     * the runtime TraceCache's LRU), because a steady replicated
     * stream re-probes windows in rough publication order anyway and
     * FIFO keeps eviction O(1) under the cache mutex. In-progress
     * (unpublished) entries are never evicted. Evictions surface as
     * Stats::evictions and, through the harness, as
     * `ExperimentResult::mining_cache_evictions`.
     */
    static constexpr std::string_view kEvictionPolicy =
        "publication-order FIFO";

    /** @param max_windows retained published entries (kEvictionPolicy
     * applies beyond it); 0 = unbounded. */
    explicit MiningCache(std::size_t max_windows = 1024)
        : max_windows_(max_windows)
    {
    }

    /** Content address of a window: the same incremental HashCombine
     * fold the stream digests use, over the window's tokens, plus the
     * length as a cheap first-stage check. The fold runs over the
     * *namespace-relative* tokens (token ^ name_space, see
     * rt::FoldNamespace), so two tenants issuing the same kernel
     * under different token namespaces address the same entry —
     * identical work is mined once service-wide. Namespace 0 (every
     * pre-tenancy caller) folds the tokens as-is. */
    struct Key {
        std::uint64_t hash = 0;
        std::size_t length = 0;

        friend bool operator==(const Key&, const Key&) = default;
    };

    static Key KeyOf(std::span<const rt::TokenHash> slice,
                     rt::TokenHash name_space = 0);
    /** Same fold, walked over the snapshot's block spans (no copy). */
    static Key KeyOf(const HistorySnapshot& snapshot,
                     rt::TokenHash name_space = 0);

    /** The outcome of a probe. */
    struct Claim {
        /** Non-null: a verified hit — adopt this candidate set (the
         * shared ownership survives eviction of the entry). The
         * tokens are namespace-relative; an adopter with a nonzero
         * namespace re-keys them via Rekey(). */
        std::shared_ptr<const std::vector<CandidateTrace>> results;
        /** True: the caller is the window's miner and MUST follow with
         * Publish() (or Abandon() on failure) before probing any
         * other key. When both fields are empty the key collided with
         * a different window: mine locally, do not publish. */
        bool miner = false;
        /** On a hit: the publisher's token namespace. A hit whose
         * publisher namespace differs from the prober's is a
         * cross-tenant hit — one tenant adopted another's mining. */
        rt::TokenHash owner = 0;
    };

    /**
     * Probe the cache with the window's content. A published entry
     * whose stored (namespace-relative) window matches returns its
     * candidate set (a hit). An in-progress entry blocks until the
     * miner publishes or abandons. An absent entry registers the
     * caller as its miner. `name_space` is the prober's token
     * namespace; verification compares the de-namespaced probe
     * tokens against the entry, so hits stay detected, never assumed,
     * across tenants.
     */
    Claim AcquireOrBegin(const Key& key, const HistorySnapshot& snapshot,
                         rt::TokenHash name_space = 0);
    Claim AcquireOrBegin(const Key& key,
                         std::span<const rt::TokenHash> slice,
                         rt::TokenHash name_space = 0);

    /** Publish the mining result for a key this caller began; stores
     * the window and candidates in namespace-relative form (for hit
     * verification and cross-tenant adoption) and returns the
     * now-immutable shared candidate set so a namespace-0 miner
     * reads it in place like every adopter. (A nonzero-namespace
     * miner keeps its own salted results; the returned set is
     * namespace-relative.) May evict the oldest entries. */
    std::shared_ptr<const std::vector<CandidateTrace>> Publish(
        const Key& key, std::span<const rt::TokenHash> window,
        std::vector<CandidateTrace> results,
        rt::TokenHash name_space = 0);

    /** Publish an already-shared candidate set (the incremental
     * engine's miners own their results as shared_ptrs); with
     * namespace 0 stores the same pointer — no copy of the
     * candidates. */
    std::shared_ptr<const std::vector<CandidateTrace>> Publish(
        const Key& key, std::span<const rt::TokenHash> window,
        std::shared_ptr<const std::vector<CandidateTrace>> results,
        rt::TokenHash name_space = 0);

    /** Give up on a key this caller began (mining threw): waiters are
     * released and the next prober becomes the miner. */
    void Abandon(const Key& key);

    /** Re-key a candidate set into (or out of — XOR is its own
     * inverse) a token namespace: every token is folded with the
     * namespace salt, occurrences are preserved. Identity for
     * namespace 0. */
    static std::vector<CandidateTrace> Rekey(
        const std::vector<CandidateTrace>& candidates,
        rt::TokenHash name_space);

    /** Aggregate counters: every probe is a hit (result adopted,
     * possibly after waiting for the miner) or a miss (the caller
     * mined). `windows` counts mining runs that published — with no
     * eviction pressure and no collisions, misses == windows ⇔ each
     * distinct window was mined exactly once. `cross_namespace_hits`
     * counts hits whose publisher's token namespace differed from
     * the prober's (one tenant adopting another tenant's mining);
     * `evictions` counts entries dropped to the retention bound. */
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t windows = 0;
        std::uint64_t cross_namespace_hits = 0;
        std::uint64_t evictions = 0;
    };

    Stats Snapshot() const;

    /** Currently retained published + in-progress entries. */
    std::size_t Size() const;

    // -- Overload control (serving support) ---------------------------------

    /** Resident bytes of the retained entries (stored window tokens
     * plus candidate-set tokens, 8 bytes each), maintained
     * incrementally — the service health monitor's memory-pressure
     * input. */
    std::size_t ResidentBytes() const;

    /** Pressure eviction: drop the oldest-published entries (the same
     * FIFO order as kEvictionPolicy) until ResidentBytes() is at most
     * `target_bytes`. An evicted window that recurs is re-mined;
     * in-flight adopters keep their shared_ptr. Counted in
     * Stats::evictions. Returns the number of entries evicted. */
    std::size_t EvictToResidentBytes(std::size_t target_bytes);

    /** Watchdog escape hatch: erase every in-progress (unpublished)
     * entry and wake all waiters blocked on them, so a stuck miner
     * can never hang the rendezvous forever. Each released waiter
     * re-probes and becomes the window's miner itself; the abandoned
     * miner's eventual late Publish onto a key that was since
     * republished is tolerated and dropped (first publication wins).
     * Returns the number of entries abandoned. */
    std::size_t AbandonInProgress();

    /** Checkpoint hooks: counters plus every retained published entry
     * in publication (FIFO) order. Every entry must be published —
     * in-progress entries mean a miner is mid-window and the cache is
     * not quiescent; throws fault::CheckpointError. LoadState
     * restores onto a fresh (empty) cache. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    struct Entry {
        bool ready = false;
        /** The mined window itself (namespace-relative tokens), for
         * exact hit verification. */
        std::vector<rt::TokenHash> window;
        std::shared_ptr<const std::vector<CandidateTrace>> results;
        /** Token namespace of the publisher (cross-tenant hit
         * attribution). */
        rt::TokenHash owner = 0;
    };

    struct KeyHasher {
        std::size_t operator()(const Key& key) const
        {
            return static_cast<std::size_t>(
                support::HashCombine(key.hash, key.length));
        }
    };

    /** The generic probe loop; Matches compares the prober's
     * (de-namespaced) window against an entry's stored tokens. */
    template <typename MatchesEntry>
    Claim Probe(const Key& key, rt::TokenHash name_space,
                const MatchesEntry& matches);

    /** Bytes an entry contributes to resident_bytes_. */
    static std::size_t EntryBytes(const Entry& entry);

    mutable std::mutex mutex_;
    std::condition_variable published_;
    std::unordered_map<Key, Entry, KeyHasher> entries_;
    /** Publication order of retained entries (the FIFO eviction
     * queue); in-progress entries are not in it and are never
     * evicted. */
    std::deque<Key> retained_;
    std::size_t max_windows_;
    std::size_t resident_bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t windows_published_ = 0;
    std::uint64_t cross_namespace_hits_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_MINING_CACHE_H
