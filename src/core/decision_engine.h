/**
 * @file
 * The shared decision engine: mine/match once, drive N runtimes.
 *
 * In a control-replicated cluster every node observes the byte-
 * identical issued stream, so running a full `core::Apophenia` per
 * node repeats the same trie matching, candidate ingestion, and
 * replay decisions N times. The mining cache (core/mining_cache.h)
 * already deduplicated the *mining* half of that redundancy; this
 * class deduplicates the *decision* half: ONE Apophenia — the decider
 * — consumes the stream exactly once over a private decision runtime
 * (whose TraceCache mirrors every node's, since all of them receive
 * the same calls) and records each runtime-bound call it makes as a
 * POD `core::Decision` event. The owner fans those events out to the
 * N per-node runtimes, which apply them verbatim instead of
 * re-deriving them — per-node decision cost drops from O(stream) of
 * trie work to O(stream) of plain applies, and total decision cost
 * is O(1) in N.
 *
 * Soundness stays with the nodes: each keeps its incremental
 * `sim::StreamDigest` and the cluster compares it against the
 * decision runtime's digest at every batch barrier; a diverged node
 * is quarantined and falls back to a local engine (sim/cluster.h).
 *
 * Memory discipline matches the rest of the issue path: staged
 * launches live in a recycled power-of-two ring of materialized
 * slots, decisions in a recycled vector — zero allocations per launch
 * in steady state.
 *
 * The flow: Buffer() every issued launch (cheap copy, no decisions),
 * DecideStaged() at each safe-horizon barrier (the decider runs, the
 * decision log fills), the owner applies Decisions() to each node via
 * LaunchAt(), then Retire() drops the decided ring prefix and clears
 * the log. FlushDecider() ends the stream.
 */
#ifndef APOPHENIA_CORE_DECISION_ENGINE_H
#define APOPHENIA_CORE_DECISION_ENGINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/apophenia.h"
#include "core/config.h"
#include "core/mining_cache.h"
#include "runtime/runtime.h"

namespace apo::core {

/** See file comment. */
class DecisionEngine {
  public:
    /**
     * @param config front-end tuning for the decider (must have
     *        config.enabled == true — a disabled decider would make
     *        every decision "passthrough" and the engine pointless).
     * @param runtime_options options for the private decision
     *        runtime; must equal the node runtimes' options so
     *        HasTrace/eviction decisions mirror theirs.
     * @param mining_cache optional shared mining memo for the
     *        decider's finder (e.g. the service-wide cross-tenant
     *        cache); behaviour-invariant, see mining_cache.h.
     */
    DecisionEngine(const ApopheniaConfig& config,
                   const rt::RuntimeOptions& runtime_options,
                   MiningCache* mining_cache = nullptr);

    // -- Issue path ----------------------------------------------------------

    /** Stage one launch into the retention ring (recycled slot, no
     * decisions yet). Launches must be staged in stream order. */
    void Buffer(const rt::TaskLaunchView& launch);

    /** Run the decider over every staged-but-undecided launch; the
     * emitted decisions accumulate in Decisions(). Call at a batch
     * barrier, after ingestion positions are settled. */
    void DecideStaged();

    /** End-of-stream: flush the decider so it decides everything it
     * was still holding (the final decisions land in Decisions()). */
    void FlushDecider();

    // -- Broadcast surface ---------------------------------------------------

    /** Decision events emitted since the last Retire(), in issue
     * order. */
    std::span<const Decision> Decisions() const { return decisions_; }

    /** View of the retained launch at absolute stream index `index`
     * (must lie in [DecidedThrough(), Staged()) ∪ the decisions of
     * the current round). */
    rt::TaskLaunchView LaunchAt(std::uint64_t index) const
    {
        const Slot& slot = ring_[index & (ring_.size() - 1)];
        return rt::TaskLaunchView::Of(slot.launch, slot.token);
    }

    /** Drop the ring prefix covered by the current decision round and
     * clear the decision log (call once every node has applied it).
     * Slot storage is recycled in place. */
    void Retire();

    // -- Introspection -------------------------------------------------------

    /** The decider front-end (ingestion control, stats, digests). */
    Apophenia& Decider() { return decider_; }
    const Apophenia& Decider() const { return decider_; }

    /** The private decision runtime (digest reference, region ops). */
    rt::Runtime& DecisionRuntime() { return runtime_; }
    const rt::Runtime& DecisionRuntime() const { return runtime_; }

    /** Absolute index one past the newest staged launch. */
    std::uint64_t Staged() const { return next_; }
    /** Absolute index one past the retired (fully decided + applied)
     * prefix. */
    std::uint64_t DecidedThrough() const { return base_; }

  private:
    /** A retained launch: materialized off the caller's arena with
     * its boundary-computed token. Recycled — requirement vectors
     * keep their capacity across ring wraps. */
    struct Slot {
        rt::TaskLaunch launch;
        rt::TokenHash token = 0;
    };

    void Grow();

    rt::Runtime runtime_;  ///< decision shard (TraceCache mirror)
    Apophenia decider_;
    std::vector<Decision> decisions_;
    /** Power-of-two circular buffer holding [base_, next_). */
    std::vector<Slot> ring_;
    std::uint64_t base_ = 0;    ///< absolute index of the ring head
    std::uint64_t staged_ = 0;  ///< next launch to feed the decider
    std::uint64_t next_ = 0;    ///< absolute index of the next stage
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_DECISION_ENGINE_H
