#include "core/history.h"

#include <algorithm>

namespace apo::core {

HistoryRing::HistoryRing(std::size_t capacity, std::size_t block_size)
    : block_size_(std::max<std::size_t>(block_size, 1)),
      capacity_(std::max<std::size_t>(capacity, 1))
{
}

void
HistoryRing::Append(rt::TokenHash token)
{
    if (blocks_.empty() || blocks_.back()->Full()) {
        blocks_.push_back(std::make_shared<TokenBlock>(block_size_));
    }
    blocks_.back()->Append(token);
    ++stored_;
    // Evict whole blocks the window no longer needs. A snapshot
    // holding a reference keeps the block itself alive.
    while (stored_ - blocks_.front()->Size() >= capacity_) {
        stored_ -= blocks_.front()->Size();
        blocks_.pop_front();
    }
}

void
HistoryRing::SnapshotLastN(std::size_t length, HistorySnapshot& out) const
{
    out.Clear();
    if (length == 0) {
        return;
    }
    // Collect spans back-to-front, then put them in stream order.
    std::size_t remaining = length;
    for (auto it = blocks_.rbegin(); it != blocks_.rend() && remaining > 0;
         ++it) {
        const std::shared_ptr<TokenBlock>& block = *it;
        const std::size_t take = std::min(remaining, block->Size());
        out.spans_.push_back(HistorySnapshot::Span{
            block, block->Data() + (block->Size() - take), take});
        remaining -= take;
    }
    std::reverse(out.spans_.begin(), out.spans_.end());
    out.size_ = length;
}

}  // namespace apo::core
