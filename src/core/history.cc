#include "core/history.h"

#include <algorithm>

namespace apo::core {

HistoryRing::HistoryRing(std::size_t capacity, std::size_t block_size)
    : block_size_(std::max<std::size_t>(block_size, 1)),
      capacity_(std::max<std::size_t>(capacity, 1))
{
}

void
HistoryRing::Append(rt::TokenHash token)
{
    if (blocks_.empty() || blocks_.back()->Full()) {
        blocks_.push_back(std::make_shared<TokenBlock>(block_size_));
    }
    blocks_.back()->Append(token);
    ++stored_;
    // Evict whole blocks the window no longer needs. A snapshot
    // holding a reference keeps the block itself alive.
    while (stored_ - blocks_.front()->Size() >= capacity_) {
        stored_ -= blocks_.front()->Size();
        blocks_.pop_front();
    }
}

void
HistoryRing::SnapshotLastN(std::size_t length, HistorySnapshot& out) const
{
    out.Clear();
    if (length == 0) {
        return;
    }
    // Collect spans back-to-front, then put them in stream order.
    std::size_t remaining = length;
    for (auto it = blocks_.rbegin(); it != blocks_.rend() && remaining > 0;
         ++it) {
        const std::shared_ptr<TokenBlock>& block = *it;
        const std::size_t take = std::min(remaining, block->Size());
        out.spans_.push_back(HistorySnapshot::Span{
            block, block->Data() + (block->Size() - take), take});
        remaining -= take;
    }
    std::reverse(out.spans_.begin(), out.spans_.end());
    out.size_ = length;
}

void
HistoryRing::SaveState(fault::CheckpointWriter& writer) const
{
    writer.BeginSection(fault::SectionTag::kHistoryRing);
    writer.U64(block_size_);
    writer.U64(capacity_);
    std::vector<rt::TokenHash> live;
    live.reserve(stored_);
    for (const std::shared_ptr<TokenBlock>& block : blocks_) {
        live.insert(live.end(), block->Data(),
                    block->Data() + block->Size());
    }
    writer.VecU64(live);
    writer.EndSection();
}

void
HistoryRing::LoadState(fault::CheckpointReader& reader)
{
    if (stored_ != 0) {
        throw fault::CheckpointError(
            "HistoryRing::LoadState requires an empty ring");
    }
    reader.BeginSection(fault::SectionTag::kHistoryRing);
    if (reader.U64() != block_size_ || reader.U64() != capacity_) {
        throw fault::CheckpointError(
            "checkpoint history geometry does not match the restoring "
            "ring");
    }
    const std::vector<rt::TokenHash> live = reader.VecU64();
    reader.EndSection();
    // The live count is the saved stored_ (the sum of the block
    // sizes), and re-appending never trips eviction below it, so the
    // restored ring ends in exactly the checkpointed state.
    for (const rt::TokenHash token : live) {
        Append(token);
    }
}

}  // namespace apo::core
