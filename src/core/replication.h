/**
 * @file
 * Distributed (control-replicated) Apophenia (paper section 5.1).
 *
 * Under dynamic control replication the application runs on every
 * node and each node hosts its own Apophenia instance; all instances
 * must forward bit-identical call sequences to their local runtime
 * shard. The only source of divergence is the completion timing of
 * the asynchronous mining jobs. The coordinator here implements the
 * paper's agreement scheme: for each job the nodes agree on a count
 * of processed operations after which the job's results are ingested.
 * If some node's job would not have completed by the agreed count
 * (i.e., the other nodes would have had to stall), the agreed slack
 * is increased for subsequent jobs; the system settles into a steady
 * state where ingestion is deterministic and stall-free.
 *
 * The replicated front end is itself an api::Frontend: the
 * application (or the experiment harness) drives one issue surface
 * and the coordinator broadcasts every call — region management
 * included — to all N nodes, checking that the deterministic
 * per-node region allocators stay in lockstep.
 *
 * Job completion times are simulated (per-node jitter from a seeded
 * generator) because wall-clock timing would make tests flaky; the
 * agreement protocol itself is exactly the paper's.
 */
#ifndef APOPHENIA_CORE_REPLICATION_H
#define APOPHENIA_CORE_REPLICATION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "api/frontend.h"
#include "core/apophenia.h"
#include "core/config.h"
#include "runtime/runtime.h"
#include "support/rng.h"

namespace apo::core {

/** Tuning for the replication simulation. */
struct ReplicationOptions {
    std::size_t nodes = 2;
    std::uint64_t seed = 1;
    /** Mean simulated job latency, measured in observed tasks. */
    double mean_latency_tasks = 200.0;
    /** Relative jitter: latency is uniform in mean*(1 ± jitter). */
    double jitter = 0.75;
    /** Initial agreed slack (operations between job launch and its
     * ingestion point). */
    std::uint64_t initial_slack = 64;
};

/** Statistics of the coordination protocol. */
struct CoordinationStats {
    std::uint64_t jobs_coordinated = 0;
    /** Jobs whose agreed point arrived before every node finished
     * (the case that forces a slack increase). */
    std::uint64_t late_jobs = 0;
    std::uint64_t final_slack = 0;
};

/**
 * N Apophenia instances over N runtime shards, fed the same stream,
 * with deterministic, coordinated analysis ingestion.
 */
class ReplicatedFrontEnd final : public api::Frontend {
  public:
    ReplicatedFrontEnd(ReplicationOptions options, ApopheniaConfig config,
                       rt::RuntimeOptions runtime_options);

    // -- api::Frontend: broadcast region management -------------------------

    std::string_view Name() const override { return "replicated"; }

    /** Create the region on every node; the deterministic per-node
     * allocators must agree on the id (throws
     * rt::RuntimeUsageError if they have diverged — i.e., a node was
     * driven outside this front end). */
    rt::RegionId CreateRegion() override;
    void DestroyRegion(rt::RegionId r) override;
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t count) override;

    std::size_t Nodes() const { return nodes_.size(); }
    Apophenia& Node(std::size_t i) { return *nodes_[i]->front_end; }
    const rt::Runtime& NodeRuntime(std::size_t i) const
    {
        return nodes_[i]->runtime;
    }
    const CoordinationStats& Coordination() const { return stats_; }

    /**
     * True iff all nodes issued identical call sequences to their
     * runtimes: same tokens, same analysis modes, same trace ids at
     * the same positions. This is the control-replication safety
     * property.
     */
    bool StreamsIdentical() const;

  protected:
    /** Issue one task on every node (control replication: the
     * application issues the same stream everywhere). */
    void DoExecuteTask(const rt::TaskLaunchView& launch) override;

    /** A control-replicated port runs without manual annotations;
     * any that remain are dropped (and counted) on every node. */
    bool DoBeginTrace(rt::TraceId) override { return false; }
    bool DoEndTrace(rt::TraceId) override { return false; }

    /** End-of-stream on every node. */
    void DoFlush() override;

  private:
    struct NodeState {
        rt::Runtime runtime;
        std::unique_ptr<Apophenia> front_end;
        support::Rng latency_rng;

        NodeState(const rt::RuntimeOptions& rt_options, std::uint64_t seed)
            : runtime(rt_options), latency_rng(seed)
        {
        }
    };

    /** Per-job coordination record. */
    struct JobSchedule {
        std::uint64_t job_id = 0;
        std::uint64_t agreed_at = 0;  ///< task count for ingestion
        std::uint64_t ready_at = 0;   ///< max simulated completion
    };

    void ScheduleNewJobs();
    void IngestDueJobs();

    ReplicationOptions options_;
    std::vector<std::unique_ptr<NodeState>> nodes_;
    std::vector<JobSchedule> schedule_;  ///< FIFO of uningested jobs
    std::uint64_t tasks_issued_ = 0;
    std::uint64_t slack_ = 0;
    std::uint64_t jobs_seen_ = 0;
    CoordinationStats stats_;
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_REPLICATION_H
