#include "core/trie.h"

namespace apo::core {

CandidateStats&
CandidateTrie::Insert(const std::vector<rt::TokenHash>& tokens,
                      double occurrences, std::uint64_t now,
                      double half_life)
{
    Node* node = &root_;
    for (rt::TokenHash t : tokens) {
        auto& child = node->children[t];
        if (!child) {
            child = std::make_unique<Node>();
            child->depth = node->depth + 1;
            ++num_nodes_;
        }
        node = child.get();
    }
    if (!node->candidate) {
        node->candidate = std::make_unique<CandidateStats>();
        node->candidate->id = next_id_++;
        node->candidate->length = tokens.size();
        ++num_candidates_;
    }
    // Refresh: decay the old count to `now`, then add the sightings.
    CandidateStats& stats = *node->candidate;
    stats.count = stats.Appearances(now, half_life) + occurrences;
    stats.last_seen = now;
    return stats;
}

const CandidateTrie::Node*
CandidateTrie::Step(const Node* node, rt::TokenHash token) const
{
    if (node == nullptr) {
        node = &root_;
    }
    const auto it = node->children.find(token);
    return it == node->children.end() ? nullptr : it->second.get();
}

}  // namespace apo::core
