#include "core/trie.h"

namespace apo::core {

CandidateTrie::CandidateTrie()
{
    nodes_.emplace_back();  // the root, id 0
}

CandidateStats&
CandidateTrie::Insert(const std::vector<rt::TokenHash>& tokens,
                      double occurrences, std::uint64_t now,
                      double half_life)
{
    Node* node = &nodes_.front();
    for (rt::TokenHash t : tokens) {
        const auto [it, inserted] =
            edges_.try_emplace(EdgeKey{node->id, t},
                               static_cast<std::uint32_t>(nodes_.size()));
        if (inserted) {
            Node& child = nodes_.emplace_back();
            child.id = it->second;
            child.depth = node->depth + 1;
            node->num_children += 1;
        }
        node = &nodes_[it->second];
    }
    if (!node->candidate) {
        node->candidate = std::make_unique<CandidateStats>();
        node->candidate->id = next_id_++;
        node->candidate->length = tokens.size();
        ++num_candidates_;
    }
    // Refresh: decay the old count to `now`, then add the sightings.
    CandidateStats& stats = *node->candidate;
    stats.count = stats.Appearances(now, half_life) + occurrences;
    stats.last_seen = now;
    return stats;
}

const CandidateTrie::Node*
CandidateTrie::Step(const Node* node, rt::TokenHash token) const
{
    const std::uint32_t parent = node == nullptr ? 0 : node->id;
    const auto it = edges_.find(EdgeKey{parent, token});
    return it == edges_.end() ? nullptr : &nodes_[it->second];
}

}  // namespace apo::core
