#include "core/trie.h"

#include <algorithm>
#include <utility>

namespace apo::core {

CandidateTrie::CandidateTrie()
{
    nodes_.emplace_back();  // the root, id 0
}

CandidateTrie::Node*
CandidateTrie::WalkOrCreate(std::span<const rt::TokenHash> tokens)
{
    Node* node = &nodes_.front();
    for (rt::TokenHash t : tokens) {
        const auto [it, inserted] =
            edges_.try_emplace(EdgeKey{node->id, t},
                               static_cast<std::uint32_t>(nodes_.size()));
        if (inserted) {
            Node& child = nodes_.emplace_back();
            child.id = it->second;
            child.depth = node->depth + 1;
            node->num_children += 1;
        }
        node = &nodes_[it->second];
    }
    return node;
}

CandidateStats&
CandidateTrie::Insert(const std::vector<rt::TokenHash>& tokens,
                      double occurrences, std::uint64_t now,
                      double half_life)
{
    Node* node = WalkOrCreate(tokens);
    if (!node->candidate) {
        node->candidate = std::make_unique<CandidateStats>();
        node->candidate->id = next_id_++;
        node->candidate->length = tokens.size();
        ++num_candidates_;
    }
    // Refresh: decay the old count to `now`, then add the sightings.
    CandidateStats& stats = *node->candidate;
    stats.count = stats.Appearances(now, half_life) + occurrences;
    stats.last_seen = now;
    return stats;
}

const CandidateTrie::Node*
CandidateTrie::Step(const Node* node, rt::TokenHash token) const
{
    const std::uint32_t parent = node == nullptr ? 0 : node->id;
    const auto it = edges_.find(EdgeKey{parent, token});
    return it == edges_.end() ? nullptr : &nodes_[it->second];
}

void
CandidateTrie::SaveState(fault::CheckpointWriter& writer) const
{
    // Nodes carry no parent back-pointers; invert the flat edge index
    // once so each candidate's token path reads off by walking up.
    std::vector<std::pair<std::uint32_t, rt::TokenHash>> up(nodes_.size());
    for (const auto& [key, child] : edges_) {
        up[child] = {key.parent, key.token};
    }
    writer.BeginSection(fault::SectionTag::kCandidateTrie);
    writer.U64(next_id_);
    writer.U64(num_candidates_);
    std::vector<rt::TokenHash> path;
    for (const Node& node : nodes_) {
        if (!node.candidate) {
            continue;
        }
        path.clear();
        for (std::uint32_t id = node.id; id != 0; id = up[id].first) {
            path.push_back(up[id].second);
        }
        std::reverse(path.begin(), path.end());
        writer.VecU64(path);
        const CandidateStats& stats = *node.candidate;
        writer.U64(stats.id);
        writer.U64(stats.length);
        writer.F64(stats.count);
        writer.U64(stats.last_seen);
        writer.U64(stats.trace_id);
        writer.U64(stats.replays);
    }
    writer.EndSection();
}

void
CandidateTrie::LoadState(fault::CheckpointReader& reader)
{
    if (nodes_.size() != 1 || num_candidates_ != 0) {
        throw fault::CheckpointError(
            "CandidateTrie::LoadState requires an empty trie");
    }
    reader.BeginSection(fault::SectionTag::kCandidateTrie);
    next_id_ = reader.U64();
    const std::uint64_t candidates = reader.U64();
    for (std::uint64_t i = 0; i < candidates; ++i) {
        const std::vector<rt::TokenHash> path = reader.VecU64();
        Node* node = WalkOrCreate(path);
        if (node->candidate != nullptr) {
            throw fault::CheckpointError(
                "checkpoint trie repeats a candidate path");
        }
        node->candidate = std::make_unique<CandidateStats>();
        CandidateStats& stats = *node->candidate;
        stats.id = reader.U64();
        stats.length = reader.U64();
        stats.count = reader.F64();
        stats.last_seen = reader.U64();
        stats.trace_id = reader.U64();
        stats.replays = reader.U64();
        ++num_candidates_;
    }
    reader.EndSection();
}

}  // namespace apo::core
