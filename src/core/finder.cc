#include "core/finder.h"

#include <algorithm>

#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "support/ruler.h"

namespace apo::core {

namespace {

/** Chunk a repeat's token sequence to the configured maximum length,
 * keeping a remainder only if it is itself a viable trace. */
void
EmitChunked(const strings::Repeat& repeat, const ApopheniaConfig& config,
            std::vector<CandidateTrace>& out)
{
    const auto& tokens = repeat.tokens;
    const double occurrences =
        static_cast<double>(repeat.starts.size());
    if (tokens.size() <= config.max_trace_length) {
        out.push_back(CandidateTrace{tokens, occurrences});
        return;
    }
    for (std::size_t begin = 0; begin < tokens.size();
         begin += config.max_trace_length) {
        const std::size_t len =
            std::min(config.max_trace_length, tokens.size() - begin);
        if (len < config.min_trace_length) {
            break;  // tail too short to amortize a replay
        }
        out.push_back(CandidateTrace{
            {tokens.begin() + begin, tokens.begin() + begin + len},
            occurrences});
    }
}

}  // namespace

std::vector<CandidateTrace>
MineSlice(const std::vector<rt::TokenHash>& slice,
          const ApopheniaConfig& config)
{
    std::vector<strings::Repeat> repeats;
    switch (config.repeats_algorithm) {
      case RepeatsAlgorithm::kQuickMatchingOfSubstrings:
        repeats = strings::FindRepeats(
            slice, {.min_length = config.min_trace_length,
                    .min_occurrences = 2});
        break;
      case RepeatsAlgorithm::kTandem:
        repeats =
            strings::FindTandemRepeats(slice, config.min_trace_length);
        break;
      case RepeatsAlgorithm::kLzw:
        repeats = strings::FindRepeatsLzw(slice, config.min_trace_length);
        break;
      case RepeatsAlgorithm::kQuadratic:
        repeats =
            strings::FindRepeatsQuadratic(slice, config.min_trace_length);
        break;
    }
    std::vector<CandidateTrace> out;
    out.reserve(repeats.size());
    for (const strings::Repeat& r : repeats) {
        if (r.starts.size() < 2) {
            continue;  // a trace must repeat to be worth memoizing
        }
        EmitChunked(r, config, out);
        // Speculative period completion: when two occurrences sit a
        // fixed distance d apart with d greater than the repeat
        // length, the stream is likely periodic with period d and the
        // repeat is a fragment of a longer loop body. Emit the full
        // presumed period as a low-confidence candidate; if the guess
        // is wrong it simply never matches in the trie.
        if (config.speculative_period_completion && r.starts.size() >= 2) {
            const std::size_t d = r.starts[1] - r.starts[0];
            if (d > r.Length() && d >= config.min_trace_length &&
                r.starts[0] + d <= slice.size()) {
                strings::Repeat period;
                period.tokens.assign(
                    slice.begin() + r.starts[0],
                    slice.begin() + r.starts[0] + d);
                period.starts = {r.starts[0]};
                EmitChunked(period, config, out);
            }
        }
    }
    return out;
}

TraceFinder::TraceFinder(const ApopheniaConfig& config,
                         support::Executor& executor)
    : config_(&config), executor_(&executor)
{
}

void
TraceFinder::Observe(rt::TokenHash token, std::uint64_t now)
{
    history_.push_back(token);
    if (history_.size() > config_->batchsize) {
        history_.pop_front();
    }
    stats_.tokens_observed += 1;

    if (config_->identifier_algorithm == IdentifierAlgorithm::kBatched) {
        if (stats_.tokens_observed % config_->batchsize == 0) {
            LaunchAnalysis(history_.size(), now);
        }
        return;
    }
    // Multi-scale: at every multiple of the scale factor, analyze the
    // last factor * 2^ruler(k) tokens (figure 5).
    if (stats_.tokens_observed % config_->multi_scale_factor == 0) {
        ++sample_counter_;
        const std::size_t len = support::RulerSampleLength(
            sample_counter_, config_->multi_scale_factor,
            config_->batchsize);
        LaunchAnalysis(std::min(len, history_.size()), now);
        // Replay-anchored window: align a slice with the end of the
        // last replay so gap-phase candidates are found (see
        // NoteReplayBoundary). Lengths double per launch.
        if (anchor_ != 0 && stats_.tokens_observed > anchor_ &&
            stats_.tokens_observed - anchor_ >= anchor_next_len_) {
            const std::size_t anchored_len =
                std::min<std::uint64_t>(stats_.tokens_observed - anchor_,
                                        config_->batchsize);
            LaunchAnalysis(std::min<std::size_t>(anchored_len,
                                                 history_.size()),
                           now);
            anchor_next_len_ = anchored_len * 2;
        }
    }
}

void
TraceFinder::NoteReplayBoundary(std::uint64_t pos)
{
    if (!config_->replay_anchored_analysis) {
        return;
    }
    anchor_ = pos;
    anchor_next_len_ = 2 * config_->min_trace_length;
}

void
TraceFinder::LaunchAnalysis(std::size_t slice_length, std::uint64_t now)
{
    if (slice_length < 2 * config_->min_trace_length) {
        return;  // cannot contain two occurrences of any viable trace
    }
    auto job = std::make_shared<AnalysisJob>();
    job->id = stats_.jobs_launched++;
    job->issued_at = now;
    job->slice_length = slice_length;
    stats_.tokens_analyzed += slice_length;

    // Copy the slice so the worker needs no access to live state.
    std::vector<rt::TokenHash> slice(history_.end() - slice_length,
                                     history_.end());
    jobs_.push_back(job);
    const ApopheniaConfig* config = config_;
    executor_->Submit([job, config, slice = std::move(slice)]() mutable {
        job->results = MineSlice(slice, *config);
        job->done.store(true, std::memory_order_release);
    });
}

std::shared_ptr<AnalysisJob>
TraceFinder::TakeJob()
{
    auto job = jobs_.front();
    jobs_.pop_front();
    stats_.candidates_produced += job->results.size();
    return job;
}

}  // namespace apo::core
