#include "core/finder.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/mining_cache.h"
#include "core/steady_miner.h"
#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "support/ruler.h"

namespace apo::core {

namespace {

/** Chunk a repeat's token sequence to the configured maximum length,
 * keeping a remainder only if it is itself a viable trace. */
void
EmitChunked(const strings::Repeat& repeat, const ApopheniaConfig& config,
            std::vector<CandidateTrace>& out)
{
    const auto& tokens = repeat.tokens;
    const double occurrences =
        static_cast<double>(repeat.starts.size());
    if (tokens.size() <= config.max_trace_length) {
        out.push_back(CandidateTrace{tokens, occurrences});
        return;
    }
    for (std::size_t begin = 0; begin < tokens.size();
         begin += config.max_trace_length) {
        const std::size_t len =
            std::min(config.max_trace_length, tokens.size() - begin);
        if (len < config.min_trace_length) {
            break;  // tail too short to amortize a replay
        }
        out.push_back(CandidateTrace{
            {tokens.begin() + begin, tokens.begin() + begin + len},
            occurrences});
    }
}

}  // namespace

void
SaveCandidates(fault::CheckpointWriter& writer,
               const std::vector<CandidateTrace>& candidates)
{
    writer.U64(candidates.size());
    for (const CandidateTrace& c : candidates) {
        writer.VecU64(c.tokens);
        writer.F64(c.occurrences);
    }
}

std::vector<CandidateTrace>
LoadCandidates(fault::CheckpointReader& reader)
{
    std::vector<CandidateTrace> candidates;
    const std::uint64_t count = reader.U64();
    candidates.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        CandidateTrace c;
        c.tokens = reader.VecU64();
        c.occurrences = reader.F64();
        candidates.push_back(std::move(c));
    }
    return candidates;
}

std::vector<CandidateTrace>
RepeatsToCandidates(const std::vector<strings::Repeat>& repeats,
                    std::span<const rt::TokenHash> slice,
                    const ApopheniaConfig& config)
{
    std::vector<CandidateTrace> out;
    out.reserve(repeats.size());
    for (const strings::Repeat& r : repeats) {
        if (r.starts.size() < 2) {
            continue;  // a trace must repeat to be worth memoizing
        }
        EmitChunked(r, config, out);
        // Speculative period completion: when two occurrences sit a
        // fixed distance d apart with d greater than the repeat
        // length, the stream is likely periodic with period d and the
        // repeat is a fragment of a longer loop body. Emit the full
        // presumed period as a low-confidence candidate; if the guess
        // is wrong it simply never matches in the trie.
        if (config.speculative_period_completion && r.starts.size() >= 2) {
            const std::size_t d = r.starts[1] - r.starts[0];
            if (d > r.Length() && d >= config.min_trace_length &&
                r.starts[0] + d <= slice.size()) {
                strings::Repeat period;
                period.tokens.assign(
                    slice.begin() + r.starts[0],
                    slice.begin() + r.starts[0] + d);
                period.starts = {r.starts[0]};
                EmitChunked(period, config, out);
            }
        }
    }
    return out;
}

std::vector<CandidateTrace>
MineSlice(const std::vector<rt::TokenHash>& slice,
          const ApopheniaConfig& config)
{
    std::vector<strings::Repeat> repeats;
    switch (config.repeats_algorithm) {
      case RepeatsAlgorithm::kQuickMatchingOfSubstrings:
        repeats = strings::FindRepeats(
            slice, {.min_length = config.min_trace_length,
                    .min_occurrences = 2});
        break;
      case RepeatsAlgorithm::kTandem:
        repeats =
            strings::FindTandemRepeats(slice, config.min_trace_length);
        break;
      case RepeatsAlgorithm::kLzw:
        repeats = strings::FindRepeatsLzw(slice, config.min_trace_length);
        break;
      case RepeatsAlgorithm::kQuadratic:
        repeats =
            strings::FindRepeatsQuadratic(slice, config.min_trace_length);
        break;
    }
    return RepeatsToCandidates(repeats, slice, config);
}

TraceFinder::TraceFinder(const ApopheniaConfig& config,
                         support::Executor& executor,
                         MiningCache* mining_cache)
    : config_(&config),
      executor_(&executor),
      mining_cache_(mining_cache),
      history_(config.batchsize, config.history_block_size)
{
    if (config.incremental_mining) {
        steady_ = std::make_unique<SteadyStateMiner>(config);
    }
}

TraceFinder::~TraceFinder()
{
    // Workers hold raw pointers into inflight_; none may survive us.
    executor_->Drain();
}

void
TraceFinder::Observe(rt::TokenHash token, std::uint64_t now)
{
    history_.Append(token);
    stats_.tokens_observed += 1;

    if (config_->identifier_algorithm == IdentifierAlgorithm::kBatched) {
        if (stats_.tokens_observed % config_->batchsize == 0) {
            LaunchAnalysis(history_.Size(), now);
        }
        return;
    }
    // Multi-scale: at every multiple of the scale factor, analyze the
    // last factor * 2^ruler(k) tokens (figure 5).
    if (stats_.tokens_observed % config_->multi_scale_factor == 0) {
        ++sample_counter_;
        const std::size_t len = support::RulerSampleLength(
            sample_counter_, config_->multi_scale_factor,
            config_->batchsize);
        LaunchAnalysis(std::min(len, history_.Size()), now);
        // Replay-anchored window: align a slice with the end of the
        // last replay so gap-phase candidates are found (see
        // NoteReplayBoundary). Lengths double per launch.
        if (anchor_ != 0 && stats_.tokens_observed > anchor_ &&
            stats_.tokens_observed - anchor_ >= anchor_next_len_) {
            const std::size_t anchored_len =
                std::min<std::uint64_t>(stats_.tokens_observed - anchor_,
                                        config_->batchsize);
            LaunchAnalysis(std::min<std::size_t>(anchored_len,
                                                 history_.Size()),
                           now);
            anchor_next_len_ = anchored_len * 2;
        }
    }
}

void
TraceFinder::NoteReplayBoundary(std::uint64_t pos)
{
    if (!config_->replay_anchored_analysis) {
        return;
    }
    anchor_ = pos;
    anchor_next_len_ = 2 * config_->min_trace_length;
}

AnalysisJob*
TraceFinder::AcquireJob()
{
    if (!free_jobs_.empty()) {
        std::unique_ptr<AnalysisJob> job = std::move(free_jobs_.back());
        free_jobs_.pop_back();
        stats_.jobs_recycled += 1;
        inflight_.push_back(std::move(job));
    } else {
        inflight_.push_back(std::make_unique<AnalysisJob>());
    }
    return inflight_.back().get();
}

void
TraceFinder::LaunchAnalysis(std::size_t slice_length, std::uint64_t now)
{
    if (slice_length < 2 * config_->min_trace_length) {
        return;  // cannot contain two occurrences of any viable trace
    }
    AnalysisJob* job = AcquireJob();
    job->id = stats_.jobs_launched++;
    job->issued_at = now;
    job->slice_length = slice_length;
    job->done.store(false, std::memory_order_relaxed);
    stats_.tokens_analyzed += slice_length;

    // Zero-copy hand-off: the job references the history blocks; the
    // worker materializes them off the application's critical path.
    // The copy_slices_at_launch ablation restores the seed behaviour
    // of copying the O(slice) tokens here, on the application thread.
    history_.SnapshotLastN(slice_length, job->snapshot);
    if (config_->copy_slices_at_launch) {
        job->snapshot.CopyTo(job->slice);
        job->snapshot.Clear();
    }

    const ApopheniaConfig* config = config_;
    MiningCache* cache = mining_cache_;
    SteadyStateMiner* steady = steady_.get();
    executor_->Submit(
        [job, config, cache, steady] {
            const bool zero_copy = !job->snapshot.Empty();
            // Rolling fast path, ahead of the shared cache: a
            // verified hit adopts this finder's own recent result with
            // no cache hash probe, no block-span compare against cache
            // entries, and no slice materialization.
            if (steady != nullptr) {
                std::shared_ptr<const std::vector<CandidateTrace>> hit =
                    zero_copy ? steady->Probe(job->snapshot)
                              : steady->Probe(std::span<const rt::TokenHash>(
                                    job->slice));
                if (hit != nullptr) {
                    job->adopted = std::move(hit);
                    job->mining_path = MiningPath::kFastPath;
                    return;
                }
            }
            // Mine through the incremental engine when present (which
            // memoizes the result in the ring) or classically; either
            // way the candidate set is a pure function of (window,
            // config), bit-identical across all paths.
            //
            // A finder with a nonzero token namespace (a service
            // tenant) always mines the *de-namespaced* window and
            // re-keys the result into its namespace. Repeat mining is
            // not XOR-equivariant (suffix order depends on token
            // values), so mining the salted slice directly could
            // differ from adopting Rekey(canonical mining) out of the
            // shared cache — canonical mining makes every path agree,
            // and makes per-tenant decisions independent of the salt
            // value (pinned by the differential fuzz leg). Such
            // mining always rebuilds (no incremental repair tier);
            // the salted result is memoized in the ring so identical
            // windows still take the fast path.
            const rt::TokenHash ns = config->cache_namespace;
            auto mine = [&] {
                if (ns == 0) {
                    if (steady != nullptr) {
                        job->adopted = steady->Mine(job->slice,
                                                    &job->mining_path);
                    } else {
                        job->results = MineSlice(job->slice, *config);
                    }
                    return;
                }
                std::vector<rt::TokenHash> canonical = job->slice;
                for (rt::TokenHash& token : canonical) {
                    token = rt::FoldNamespace(ns, token);
                }
                auto salted =
                    std::make_shared<const std::vector<CandidateTrace>>(
                        MiningCache::Rekey(MineSlice(canonical, *config),
                                           ns));
                if (steady != nullptr) {
                    steady->Memoize(
                        std::span<const rt::TokenHash>(job->slice),
                        salted);
                    job->mining_path = MiningPath::kFull;
                }
                job->adopted = std::move(salted);
            };
            if (cache == nullptr) {
                if (zero_copy) {
                    job->snapshot.CopyTo(job->slice);
                }
                mine();
                return;
            }
            // Shared-cache path: adopt another node's verified result
            // for an identical window (in place — a hit never even
            // materializes the slice), or mine it and publish. The
            // cache speaks namespace-relative tokens, so a finder
            // with a nonzero token namespace (a service tenant)
            // de-namespaces its probes and re-keys adopted results —
            // identical kernels dedup across tenants.
            MiningCache::Key key;
            MiningCache::Claim claim;
            if (zero_copy) {
                key = MiningCache::KeyOf(job->snapshot, ns);
                claim = cache->AcquireOrBegin(key, job->snapshot, ns);
            } else {
                key = MiningCache::KeyOf(
                    std::span<const rt::TokenHash>(job->slice), ns);
                claim = cache->AcquireOrBegin(
                    key, std::span<const rt::TokenHash>(job->slice), ns);
            }
            if (claim.results != nullptr) {
                job->cache_hit = true;
                job->cache_cross = claim.owner != ns;
                std::shared_ptr<const std::vector<CandidateTrace>>
                    adopted =
                        ns == 0 ? std::move(claim.results)
                                : std::make_shared<const std::vector<
                                      CandidateTrace>>(MiningCache::Rekey(
                                      *claim.results, ns));
                // Seed the ring with the adopted result so the next
                // identical window takes the fast path outright.
                if (steady != nullptr) {
                    if (zero_copy) {
                        steady->Memoize(job->snapshot, adopted);
                    } else {
                        steady->Memoize(
                            std::span<const rt::TokenHash>(job->slice),
                            adopted);
                    }
                }
                job->adopted = std::move(adopted);
                return;
            }
            if (zero_copy) {
                job->snapshot.CopyTo(job->slice);
            }
            if (!claim.miner) {
                // Verified key collision: a different window owns the
                // entry. Mine locally; publish nothing.
                mine();
                return;
            }
            try {
                mine();
            } catch (...) {
                cache->Abandon(key);
                throw;
            }
            if (job->adopted != nullptr) {
                cache->Publish(key, job->slice, job->adopted, ns);
            } else {
                auto mined =
                    std::make_shared<const std::vector<CandidateTrace>>(
                        std::move(job->results));
                job->results.clear();
                cache->Publish(key, job->slice, mined, ns);
                job->adopted = std::move(mined);
            }
        },
        [job] { job->done.store(true, std::memory_order_release); });
}

void
TraceFinder::VisitPendingJobs(
    std::uint64_t first_id,
    const std::function<void(const PendingJobInfo&)>& visit) const
{
    for (const auto& job : inflight_) {
        if (job->id < first_id) {
            continue;
        }
        visit(PendingJobInfo{
            job->id, job->issued_at, job->slice_length,
            job->done.load(std::memory_order_acquire)});
    }
}

const AnalysisJob&
TraceFinder::WaitOldestJob()
{
    AnalysisJob& job = *inflight_.front();
    // Pump so deferred executors (PooledExecutor) can deliver the
    // completion on this thread; with an eager executor this spins
    // until the worker signals.
    while (!job.done.load(std::memory_order_acquire)) {
        executor_->Pump();
        std::this_thread::yield();
    }
    return job;
}

void
TraceFinder::ReleaseOldestJob()
{
    std::unique_ptr<AnalysisJob> job = std::move(inflight_.front());
    inflight_.pop_front();
    stats_.candidates_produced += job->Results().size();
    switch (job->mining_path) {
      case MiningPath::kFastPath:
        ++stats_.mining_fast_path_hits;
        break;
      case MiningPath::kRepair:
        ++stats_.mining_repairs;
        break;
      case MiningPath::kFull:
        ++stats_.mining_full;
        break;
      case MiningPath::kNone:
        break;
    }
    if (job->cache_hit) {
        ++stats_.mining_cache_hits;
        if (job->cache_cross) {
            ++stats_.mining_cache_cross_hits;
        }
    }
    job->cache_hit = false;
    job->cache_cross = false;
    job->mining_path = MiningPath::kNone;
    job->snapshot.Clear();
    job->results.clear();
    job->adopted = nullptr;
    free_jobs_.push_back(std::move(job));
}

std::size_t
TraceFinder::AbandonJobsOlderThan(std::uint64_t cutoff)
{
    // Reap previously orphaned jobs whose workers have since
    // finished: an acquire load of `done` orders the worker's last
    // write before the recycle, so the storage is safe to reuse.
    std::erase_if(orphaned_, [&](std::unique_ptr<AnalysisJob>& job) {
        if (!job->done.load(std::memory_order_acquire)) {
            return false;
        }
        job->cache_hit = false;
        job->cache_cross = false;
        job->mining_path = MiningPath::kNone;
        job->snapshot.Clear();
        job->results.clear();
        job->adopted = nullptr;
        free_jobs_.push_back(std::move(job));
        return true;
    });
    std::size_t abandoned = 0;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        AnalysisJob& job = **it;
        if (job.issued_at < cutoff &&
            !job.done.load(std::memory_order_acquire)) {
            orphaned_.push_back(std::move(*it));
            it = inflight_.erase(it);
            ++abandoned;
        } else {
            ++it;
        }
    }
    stats_.jobs_abandoned += abandoned;
    return abandoned;
}

void
TraceFinder::SaveState(fault::CheckpointWriter& writer) const
{
    for (const auto& job : inflight_) {
        if (!job->done.load(std::memory_order_acquire)) {
            throw fault::CheckpointError(
                "TraceFinder::SaveState requires every in-flight mining "
                "job to have completed (drain the executor first)");
        }
    }
    writer.BeginSection(fault::SectionTag::kTraceFinder);
    writer.U64(sample_counter_);
    writer.U64(anchor_);
    writer.U64(anchor_next_len_);
    writer.U64(stats_.tokens_observed);
    writer.U64(stats_.jobs_launched);
    writer.U64(stats_.tokens_analyzed);
    writer.U64(stats_.candidates_produced);
    writer.U64(stats_.jobs_recycled);
    writer.U64(stats_.mining_fast_path_hits);
    writer.U64(stats_.mining_repairs);
    writer.U64(stats_.mining_full);
    writer.U64(stats_.mining_cache_hits);
    writer.U64(stats_.mining_cache_cross_hits);
    writer.U64(inflight_.size());
    for (const auto& job : inflight_) {
        writer.U64(job->id);
        writer.U64(job->issued_at);
        writer.U64(job->slice_length);
        writer.U64(static_cast<std::uint64_t>(job->mining_path));
        writer.Bool(job->cache_hit);
        writer.Bool(job->cache_cross);
        SaveCandidates(writer, job->Results());
    }
    writer.Bool(steady_ != nullptr);
    writer.EndSection();
    history_.SaveState(writer);
    if (steady_ != nullptr) {
        steady_->SaveState(writer);
    }
}

void
TraceFinder::LoadState(fault::CheckpointReader& reader)
{
    if (stats_.tokens_observed != 0 || !inflight_.empty()) {
        throw fault::CheckpointError(
            "TraceFinder::LoadState requires a fresh finder");
    }
    reader.BeginSection(fault::SectionTag::kTraceFinder);
    sample_counter_ = reader.U64();
    anchor_ = reader.U64();
    anchor_next_len_ = reader.U64();
    stats_.tokens_observed = reader.U64();
    stats_.jobs_launched = reader.U64();
    stats_.tokens_analyzed = reader.U64();
    stats_.candidates_produced = reader.U64();
    stats_.jobs_recycled = reader.U64();
    stats_.mining_fast_path_hits = reader.U64();
    stats_.mining_repairs = reader.U64();
    stats_.mining_full = reader.U64();
    stats_.mining_cache_hits = reader.U64();
    stats_.mining_cache_cross_hits = reader.U64();
    const std::uint64_t jobs = reader.U64();
    for (std::uint64_t i = 0; i < jobs; ++i) {
        // Restored jobs are completed results awaiting ingestion at
        // their coordinated stream positions; the mining itself never
        // reruns.
        inflight_.push_back(std::make_unique<AnalysisJob>());
        AnalysisJob& job = *inflight_.back();
        job.id = reader.U64();
        job.issued_at = reader.U64();
        job.slice_length = reader.U64();
        job.mining_path = static_cast<MiningPath>(reader.U64());
        job.cache_hit = reader.Bool();
        job.cache_cross = reader.Bool();
        job.results = LoadCandidates(reader);
        job.done.store(true, std::memory_order_release);
    }
    const bool had_steady = reader.Bool();
    reader.EndSection();
    if (had_steady != (steady_ != nullptr)) {
        throw fault::CheckpointError(
            "checkpoint incremental-mining mode does not match the "
            "restoring finder");
    }
    history_.LoadState(reader);
    if (steady_ != nullptr) {
        steady_->LoadState(reader);
    }
}

}  // namespace apo::core
