/**
 * @file
 * The Apophenia front-end: automatic tracing for the task runtime.
 *
 * Apophenia sits between the application and the runtime (paper
 * figure 3 / algorithm 1) and implements the api::Frontend issue
 * surface. Applications call ExecuteTask() here instead of on the
 * runtime; Apophenia takes each launch's token (hashed once at the
 * API boundary and carried with the launch view), feeds the token
 * stream to the trace finder's asynchronous mining jobs, matches the
 * stream against the candidate trie, and forwards a — possibly
 * different — sequence of calls to the runtime: untraced tasks, plus
 * BeginTrace/tasks/EndTrace groups for fragments it decided to
 * memoize or replay.
 *
 * Design points carried over from the paper:
 *  - No speculation (section 5.2): a candidate's tasks are buffered
 *    until the whole candidate has arrived, then issued as a trace;
 *    tasks that can no longer be part of any candidate are forwarded
 *    immediately so the runtime pipeline stays busy. Forwarding is
 *    zero-copy: a launch is materialized off its caller-owned arena
 *    into the (pooled) pending buffer only when some still-growing
 *    match could actually hold it — the steady-state untraced forward
 *    path allocates nothing.
 *  - Exploration/exploitation (section 4.3): completed candidates are
 *    scored by length × capped, decayed appearance count, with a bias
 *    toward already-replayed traces.
 *  - Deterministic ingestion (section 5.1): analysis results are
 *    ingested at task-stream positions only, in launch order; the
 *    IngestMode (config.h) picks those positions, and the cluster
 *    front-end (sim/cluster.h) coordinates them across nodes.
 */
#ifndef APOPHENIA_CORE_APOPHENIA_H
#define APOPHENIA_CORE_APOPHENIA_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "api/frontend.h"
#include "core/config.h"
#include "core/finder.h"
#include "core/mining_cache.h"
#include "core/trie.h"
#include "fault/checkpoint.h"
#include "runtime/runtime.h"
#include "support/executor.h"

namespace apo::core {

/**
 * One broadcastable decision of the decision engine: the exact
 * runtime-bound call an Apophenia front-end made for its stream,
 * tagged with enough context to re-apply it to any runtime that
 * received the byte-identical input stream (see
 * core/decision_engine.h). The encoding mirrors the issue surface:
 *
 *  - kTask outside a Begin/End pair — the launch at input index
 *    `value` was forwarded untraced (analyze / passthrough);
 *  - kBegin(recording=true) … kTask* … kEnd — the enclosed launches
 *    were recorded as trace `value`;
 *  - kBegin(recording=false) … kTask* … kEnd — the enclosed launches
 *    replayed trace `value`.
 *
 * POD, 16 bytes, held in a recycled vector: recording and applying
 * decisions allocates nothing in steady state.
 */
struct Decision {
    enum class Kind : std::uint8_t {
        kTask,   ///< forward the input launch at absolute index `value`
        kBegin,  ///< BeginTrace(value)
        kEnd,    ///< EndTrace(value)
    };
    Kind kind = Kind::kTask;
    bool recording = false;  ///< kBegin only: record (vs replay)
    std::uint64_t value = 0;
};

/** Front-end statistics. */
struct ApopheniaStats {
    std::uint64_t tasks_observed = 0;
    std::uint64_t tasks_forwarded_traced = 0;
    std::uint64_t tasks_forwarded_untraced = 0;
    /** Tasks issued on the degraded (untraced, unmined) path — a
     * subset of tasks_forwarded_untraced. See SetDegraded(). */
    std::uint64_t tasks_degraded = 0;
    std::uint64_t traces_fired = 0;     ///< Begin/End pairs issued
    std::uint64_t trace_records = 0;    ///< fires that recorded
    std::uint64_t trace_replays = 0;    ///< fires that replayed
    std::uint64_t jobs_ingested = 0;
    std::uint64_t candidates_ingested = 0;
    std::uint64_t forced_flushes = 0;   ///< pending-bound overflows
    /** Launches copied off the caller's arena into the pending
     * buffer (zero while no candidate match is in progress). */
    std::uint64_t launches_buffered = 0;
    std::size_t pending_high_water = 0;
};

/** See file comment. */
class Apophenia final : public api::Frontend {
  public:
    /**
     * @param runtime the runtime to forward calls into.
     * @param config  front-end tuning; config.enabled == false makes
     *                this class a transparent pass-through.
     * @param executor runs mining jobs; defaults to an internal
     *                inline executor (deterministic, synchronous).
     * @param mining_cache optional shared memo of mining results,
     *                content-addressed by the mined slice (see
     *                mining_cache.h); the cluster front-end shares one
     *                across all nodes so identical windows are mined
     *                once. Behaviour-invariant: on or off, the issued
     *                stream is bit-identical.
     */
    Apophenia(rt::Runtime& runtime, ApopheniaConfig config,
              support::Executor* executor = nullptr,
              MiningCache* mining_cache = nullptr);

    // -- api::Frontend: regions (pass-through) ------------------------------

    std::string_view Name() const override { return "apophenia"; }
    rt::RegionId CreateRegion() override { return runtime_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) override
    {
        runtime_->DestroyRegion(r);
    }
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t count) override
    {
        return runtime_->PartitionRegion(parent, count);
    }

    // -- Analysis-ingestion control (replication support) -------------------

    /** Override the configured ingestion mode (see IngestMode); the
     * cluster front-end switches its nodes to kManual. */
    void SetIngestMode(IngestMode mode) { ingest_mode_ = mode; }
    IngestMode GetIngestMode() const { return ingest_mode_; }

    /** Launched-but-not-ingested mining jobs. */
    std::size_t PendingJobCount() const
    {
        return finder_.PendingJobCount();
    }

    /** True iff a job is pending and the oldest one has completed. */
    bool OldestJobDone() const { return finder_.OldestJobDone(); }

    /** Visit pending jobs with id >= `first_id`, oldest first. */
    void VisitPendingJobs(
        std::uint64_t first_id,
        const std::function<void(const PendingJobInfo&)>& visit) const
    {
        finder_.VisitPendingJobs(first_id, visit);
    }

    /** Ingest the oldest pending job's candidates into the trie,
     * waiting for its completion if necessary. The job must exist. */
    void IngestOldestJob();

    // -- Overload control (serving support) ---------------------------------

    /**
     * Graceful degradation switch: while degraded, ExecuteTask issues
     * straight to the runtime — no mining, no matching, no replay.
     * Entering degrade first resolves every in-progress match exactly
     * as DoFlush would (fire profitable held matches, forward the
     * rest), so no launch is stranded in the pending buffer. Degraded
     * tokens are kept out of the finder's history ring, steady ring
     * and the trie entirely: re-enabling later is bit-safe — the
     * finder state equals that of a stream that simply never
     * contained the degraded window. Counted in
     * ApopheniaStats::tasks_degraded. No-op when already in the
     * requested state. Checkpointing a degraded front-end is not
     * supported (degrade is a transient overload posture, not
     * decision state).
     */
    void SetDegraded(bool degraded);
    bool Degraded() const { return degraded_; }

    /**
     * Watchdog hook: abandon every in-flight analysis job older than
     * `max_age_tasks` observed tasks that has not completed. The
     * finder forgets the job (its candidates are never ingested);
     * its worker keeps running harmlessly in the background and is
     * reaped once done. Returns the number of jobs abandoned. Pair
     * with MiningCache::AbandonInProgress() so cache waiters blocked
     * on the stuck window are released too.
     */
    std::size_t AbandonStaleAnalyses(std::uint64_t max_age_tasks);

    // -- Decision broadcast (shared decision engine support) ----------------

    /** Attach a decision sink: every runtime-bound call this front-end
     * makes is additionally recorded as a Decision event, in issue
     * order, so a decision engine can fan the stream's decisions out
     * to replicated runtimes (core/decision_engine.h). The sink must
     * outlive the front-end or be detached with nullptr; the caller
     * owns clearing it between broadcast rounds. */
    void SetDecisionSink(std::vector<Decision>* sink)
    {
        decisions_ = sink;
    }

    // -- Introspection -------------------------------------------------------

    const ApopheniaStats& Stats() const { return stats_; }
    const FinderStats& Finder() const { return finder_.Stats(); }
    const CandidateTrie& Trie() const { return trie_; }
    /** Rolling digest of every ingested candidate (tokens +
     * occurrences, ingestion order): equal digests ⇔ the two
     * front-ends ingested identical candidate sets at identical
     * stream positions. */
    std::uint64_t CandidateDigest() const { return candidate_digest_; }
    rt::Runtime& Target() { return *runtime_; }
    const ApopheniaConfig& Config() const { return config_; }
    std::size_t PendingTasks() const { return pending_.size(); }

    // -- Checkpoint/restore --------------------------------------------------

    /**
     * Serialize the front-end's complete decision state: replay
     * cursors (task counter, pending buffer with its buffered
     * launches, active match pointers, held matches, next trace id),
     * stats, the candidate digest, the finder (history ring, steady
     * ring, completed in-flight jobs) and the candidate trie. The
     * target runtime is NOT included — checkpoint it separately with
     * rt::Runtime::SaveState. Every in-flight mining job must have
     * completed (guaranteed under the inline executor; otherwise
     * drain first). @throws fault::CheckpointError on undone jobs.
     */
    void SaveState(fault::CheckpointWriter& writer) const;

    /** Restore onto a freshly constructed front-end with an identical
     * config (and a runtime restored to the matching stream
     * position). Active pointers and held matches are rebuilt by
     * re-walking the restored trie over the buffered tokens, so the
     * restored replayer continues bit-identically.
     * @throws fault::CheckpointError on a used front-end or a
     *   malformed image. */
    void LoadState(fault::CheckpointReader& reader);

  protected:
    // -- api::Frontend: the intercepted issue path --------------------------

    /** Issue a task through the front-end (paper algorithm 1,
     * ExecuteTask). */
    void DoExecuteTask(const rt::TaskLaunchView& launch) override;

    /** Apophenia inserts its own trace markers; the application's are
     * dropped — counted in the uniform FrontendStats by the NVI
     * base (annotations_ignored). */
    bool DoBeginTrace(rt::TraceId) override { return false; }
    bool DoEndTrace(rt::TraceId) override { return false; }

    /**
     * End-of-stream: fire any profitable completed candidate, then
     * forward all still-buffered tasks untraced. Called once when the
     * application finishes (or at a synchronization point).
     */
    void DoFlush() override;

  private:
    /** A buffered launch: materialized off the caller's arena, with
     * the boundary-computed token carried along so forwarding never
     * re-hashes. Pooled — see pending_pool_. */
    struct PendingTask {
        rt::TaskLaunch launch;
        rt::TokenHash token = 0;
    };

    /** An in-progress match: a trie position whose path equals the
     * pending-task suffix starting at absolute index `start`. */
    struct ActivePointer {
        const CandidateTrie::Node* node = nullptr;
        std::uint64_t start = 0;
    };

    /** A fully matched candidate awaiting the replay decision. */
    struct CompletedMatch {
        CandidateStats* stats = nullptr;
        std::uint64_t start = 0;
        std::uint64_t end = 0;  ///< exclusive absolute index
    };

    void EmitTask(std::uint64_t index)
    {
        if (decisions_ != nullptr) {
            decisions_->push_back(
                Decision{Decision::Kind::kTask, false, index});
        }
    }
    void EmitMarker(Decision::Kind kind, rt::TraceId trace,
                    bool recording)
    {
        if (decisions_ != nullptr) {
            decisions_->push_back(Decision{kind, recording, trace});
        }
    }

    void IngestReadyJobs();
    void AdvancePointers(rt::TokenHash token);
    void ConsiderCompleted(const std::vector<CompletedMatch>& completed);
    void Buffer(const rt::TaskLaunchView& launch);
    void ForwardFront();
    void MaybeFire();
    void Fire(const CompletedMatch& match);
    void FlushPrefixBelow(std::uint64_t keep_from);

    rt::Runtime* runtime_;
    ApopheniaConfig config_;
    support::InlineExecutor default_executor_;
    support::Executor* executor_;
    TraceFinder finder_;
    CandidateTrie trie_;
    TraceScorer scorer_;

    IngestMode ingest_mode_;
    std::uint64_t counter_ = 0;  ///< tasks observed (absolute index + 1)
    std::deque<PendingTask> pending_;
    /** Recycled PendingTask storage: requirement vectors keep their
     * capacity, so buffering is allocation-free in steady state. */
    std::vector<PendingTask> pending_pool_;
    std::uint64_t pending_base_ = 0;  ///< absolute index of pending_[0]
    std::vector<ActivePointer> active_;
    /** Scratch buffers reused every token so the match-advance step
     * allocates nothing in steady state. */
    std::vector<ActivePointer> active_scratch_;
    std::vector<CompletedMatch> completed_scratch_;
    /** Completed, pairwise-disjoint matches awaiting replay, in
     * stream order. The front is fired once no still-growing match
     * could supersede it. */
    std::deque<CompletedMatch> held_;
    rt::TraceId next_trace_id_ = 1;
    bool degraded_ = false;
    ApopheniaStats stats_;
    std::uint64_t candidate_digest_ = 0x5eed;
    std::vector<Decision>* decisions_ = nullptr;
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_APOPHENIA_H
