#include "core/config.h"

#include <stdexcept>

namespace apo::core {

namespace {

std::size_t
ParseCount(const std::string& flag, const std::string& value)
{
    std::size_t pos = 0;
    unsigned long long parsed = 0;
    try {
        parsed = std::stoull(value, &pos);
    } catch (const std::exception&) {
        throw std::invalid_argument(flag + " expects a number, got '" +
                                    value + "'");
    }
    if (pos != value.size()) {
        throw std::invalid_argument(flag + " expects a number, got '" +
                                    value + "'");
    }
    return static_cast<std::size_t>(parsed);
}

}  // namespace

ApopheniaConfig
ParseApopheniaFlags(std::vector<std::string>& args)
{
    ApopheniaConfig config;
    config.enabled = false;  // off unless the flag is present
    std::vector<std::string> rest;
    rest.reserve(args.size());

    auto value_of = [&](std::size_t& i, const std::string& flag) {
        if (i + 1 >= args.size()) {
            throw std::invalid_argument(flag + " expects a value");
        }
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "-lg:enable_automatic_tracing") {
            config.enabled = true;
        } else if (a == "-lg:auto_trace:min_trace_length") {
            config.min_trace_length = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:auto_trace:max_trace_length") {
            config.max_trace_length = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:auto_trace:batchsize") {
            config.batchsize = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:auto_trace:multi_scale_factor") {
            config.multi_scale_factor = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:auto_trace:identifier_algorithm") {
            const std::string v = value_of(i, a);
            if (v == "multi-scale") {
                config.identifier_algorithm = IdentifierAlgorithm::kMultiScale;
            } else if (v == "batched") {
                config.identifier_algorithm = IdentifierAlgorithm::kBatched;
            } else {
                throw std::invalid_argument(
                    a + ": unknown identifier algorithm '" + v + "'");
            }
        } else if (a == "-lg:auto_trace:ingest_mode") {
            const std::string v = value_of(i, a);
            if (v == "on-completion") {
                config.ingest_mode = IngestMode::kOnCompletion;
            } else if (v == "eager-drain") {
                config.ingest_mode = IngestMode::kEagerDrain;
            } else if (v == "manual") {
                config.ingest_mode = IngestMode::kManual;
            } else {
                throw std::invalid_argument(
                    a + ": unknown ingest mode '" + v + "'");
            }
        } else if (a == "-lg:auto_trace:history_block_size") {
            config.history_block_size = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:auto_trace:copy_slices_at_launch") {
            config.copy_slices_at_launch = true;
        } else if (a == "-lg:auto_trace:buffer_all_launches") {
            config.buffer_all_launches = true;
        } else if (a == "-lg:auto_trace:no_incremental_mining") {
            config.incremental_mining = false;
        } else if (a == "-lg:auto_trace:no_shared_decisions") {
            config.shared_decisions = false;
        } else if (a == "-lg:auto_trace:no_checkpoints") {
            config.checkpoints = false;
        } else if (a == "-lg:auto_trace:no_overload_control") {
            config.overload_control = false;
        } else if (a == "-lg:auto_trace:incremental_ring_windows") {
            config.incremental_ring_windows = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:window") {
            config.window = ParseCount(a, value_of(i, a));
        } else if (a == "-lg:inline_transitive_reduction") {
            config.inline_transitive_reduction = true;
        } else if (a == "-lg:auto_trace:repeats_algorithm") {
            const std::string v = value_of(i, a);
            if (v == "quick_matching_of_substrings") {
                config.repeats_algorithm =
                    RepeatsAlgorithm::kQuickMatchingOfSubstrings;
            } else if (v == "tandem") {
                config.repeats_algorithm = RepeatsAlgorithm::kTandem;
            } else if (v == "lzw") {
                config.repeats_algorithm = RepeatsAlgorithm::kLzw;
            } else if (v == "quadratic") {
                config.repeats_algorithm = RepeatsAlgorithm::kQuadratic;
            } else {
                throw std::invalid_argument(
                    a + ": unknown repeats algorithm '" + v + "'");
            }
        } else {
            rest.push_back(a);
        }
    }
    args = std::move(rest);

    if (config.min_trace_length == 0) {
        throw std::invalid_argument("min_trace_length must be positive");
    }
    if (config.max_trace_length < config.min_trace_length) {
        throw std::invalid_argument(
            "max_trace_length must be >= min_trace_length");
    }
    if (config.batchsize == 0 || config.multi_scale_factor == 0) {
        throw std::invalid_argument(
            "batchsize and multi_scale_factor must be positive");
    }
    if (config.history_block_size == 0) {
        throw std::invalid_argument("history_block_size must be positive");
    }
    if (config.incremental_mining && config.incremental_ring_windows == 0) {
        throw std::invalid_argument(
            "incremental_ring_windows must be positive while incremental "
            "mining is enabled");
    }
    return config;
}

}  // namespace apo::core
