#include "core/mining_cache.h"

#include <algorithm>

namespace apo::core {

namespace {

constexpr std::uint64_t kKeySeed = 0x9e3779b97f4a7c15ULL;

bool
SpansMatch(const HistorySnapshot& snapshot,
           const std::vector<rt::TokenHash>& window)
{
    if (snapshot.Size() != window.size()) {
        return false;
    }
    std::size_t at = 0;
    for (const HistorySnapshot::Span& span : snapshot.Spans()) {
        if (!std::equal(span.data, span.data + span.length,
                        window.begin() + static_cast<std::ptrdiff_t>(at))) {
            return false;
        }
        at += span.length;
    }
    return true;
}

}  // namespace

MiningCache::Key
MiningCache::KeyOf(std::span<const rt::TokenHash> slice)
{
    std::uint64_t h = kKeySeed;
    for (const rt::TokenHash token : slice) {
        h = support::HashCombine(h, token);
    }
    return Key{h, slice.size()};
}

MiningCache::Key
MiningCache::KeyOf(const HistorySnapshot& snapshot)
{
    std::uint64_t h = kKeySeed;
    for (const HistorySnapshot::Span& span : snapshot.Spans()) {
        for (std::size_t i = 0; i < span.length; ++i) {
            h = support::HashCombine(h, span.data[i]);
        }
    }
    return Key{h, snapshot.Size()};
}

template <typename MatchesEntry>
MiningCache::Claim
MiningCache::Probe(const Key& key, const MatchesEntry& matches)
{
    std::unique_lock lock(mutex_);
    for (;;) {
        auto [it, inserted] = entries_.try_emplace(key);
        if (inserted) {
            ++misses_;
            return Claim{nullptr, true};  // the caller is the miner
        }
        if (it->second.ready) {
            // Detected, never assumed: adopt only a token-for-token
            // identical window. A 64-bit collision (different window,
            // same key) degrades to local mining without publishing —
            // the entry's owner keeps the slot.
            if (!matches(it->second)) {
                ++misses_;
                return Claim{nullptr, false};
            }
            ++hits_;
            return Claim{it->second.results, false};
        }
        // Another node is mining this very window: adopt its result
        // when it lands instead of paying the mining cost twice.
        published_.wait(lock);
    }
}

MiningCache::Claim
MiningCache::AcquireOrBegin(const Key& key, const HistorySnapshot& snapshot)
{
    return Probe(key, [&](const Entry& entry) {
        return SpansMatch(snapshot, entry.window);
    });
}

MiningCache::Claim
MiningCache::AcquireOrBegin(const Key& key,
                            std::span<const rt::TokenHash> slice)
{
    return Probe(key, [&](const Entry& entry) {
        return entry.window.size() == slice.size() &&
               std::equal(slice.begin(), slice.end(),
                          entry.window.begin());
    });
}

std::shared_ptr<const std::vector<CandidateTrace>>
MiningCache::Publish(const Key& key,
                     std::span<const rt::TokenHash> window,
                     std::vector<CandidateTrace> results)
{
    return Publish(key, window,
                   std::make_shared<const std::vector<CandidateTrace>>(
                       std::move(results)));
}

std::shared_ptr<const std::vector<CandidateTrace>>
MiningCache::Publish(
    const Key& key, std::span<const rt::TokenHash> window,
    std::shared_ptr<const std::vector<CandidateTrace>> results)
{
    std::shared_ptr<const std::vector<CandidateTrace>> stored =
        std::move(results);
    {
        std::lock_guard lock(mutex_);
        Entry& entry = entries_[key];
        entry.window.assign(window.begin(), window.end());
        entry.results = stored;
        entry.ready = true;
        ++windows_published_;
        retained_.push_back(key);
        // Bounded retention: evict the oldest published entries. An
        // evicted window that recurs is simply re-mined; in-flight
        // adopters keep their shared_ptr alive independently.
        while (max_windows_ != 0 && retained_.size() > max_windows_) {
            entries_.erase(retained_.front());
            retained_.pop_front();
        }
    }
    published_.notify_all();
    return stored;
}

void
MiningCache::Abandon(const Key& key)
{
    {
        std::lock_guard lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end() && !it->second.ready) {
            entries_.erase(it);
        }
    }
    published_.notify_all();
}

MiningCache::Stats
MiningCache::Snapshot() const
{
    std::lock_guard lock(mutex_);
    return Stats{hits_, misses_,
                 static_cast<std::size_t>(windows_published_)};
}

std::size_t
MiningCache::Size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

}  // namespace apo::core
