#include "core/mining_cache.h"

#include <algorithm>

namespace apo::core {

namespace {

constexpr std::uint64_t kKeySeed = 0x9e3779b97f4a7c15ULL;

/** Token-for-token comparison of a snapshot against a stored window,
 * with the prober's tokens folded out of their namespace first. */
bool
SpansMatch(const HistorySnapshot& snapshot, rt::TokenHash name_space,
           const std::vector<rt::TokenHash>& window)
{
    if (snapshot.Size() != window.size()) {
        return false;
    }
    std::size_t at = 0;
    for (const HistorySnapshot::Span& span : snapshot.Spans()) {
        for (std::size_t i = 0; i < span.length; ++i) {
            if (rt::FoldNamespace(name_space, span.data[i]) !=
                window[at + i]) {
                return false;
            }
        }
        at += span.length;
    }
    return true;
}

}  // namespace

MiningCache::Key
MiningCache::KeyOf(std::span<const rt::TokenHash> slice,
                   rt::TokenHash name_space)
{
    std::uint64_t h = kKeySeed;
    for (const rt::TokenHash token : slice) {
        h = support::HashCombine(h, rt::FoldNamespace(name_space, token));
    }
    return Key{h, slice.size()};
}

MiningCache::Key
MiningCache::KeyOf(const HistorySnapshot& snapshot,
                   rt::TokenHash name_space)
{
    std::uint64_t h = kKeySeed;
    for (const HistorySnapshot::Span& span : snapshot.Spans()) {
        for (std::size_t i = 0; i < span.length; ++i) {
            h = support::HashCombine(
                h, rt::FoldNamespace(name_space, span.data[i]));
        }
    }
    return Key{h, snapshot.Size()};
}

template <typename MatchesEntry>
MiningCache::Claim
MiningCache::Probe(const Key& key, rt::TokenHash name_space,
                   const MatchesEntry& matches)
{
    std::unique_lock lock(mutex_);
    for (;;) {
        auto [it, inserted] = entries_.try_emplace(key);
        if (inserted) {
            ++misses_;
            it->second.owner = name_space;
            return Claim{nullptr, true, name_space};  // caller mines
        }
        if (it->second.ready) {
            // Detected, never assumed: adopt only a token-for-token
            // identical window. A 64-bit collision (different window,
            // same key) degrades to local mining without publishing —
            // the entry's owner keeps the slot.
            if (!matches(it->second)) {
                ++misses_;
                return Claim{nullptr, false, name_space};
            }
            ++hits_;
            if (it->second.owner != name_space) {
                ++cross_namespace_hits_;
            }
            return Claim{it->second.results, false, it->second.owner};
        }
        // Another node is mining this very window: adopt its result
        // when it lands instead of paying the mining cost twice.
        published_.wait(lock);
    }
}

MiningCache::Claim
MiningCache::AcquireOrBegin(const Key& key, const HistorySnapshot& snapshot,
                            rt::TokenHash name_space)
{
    return Probe(key, name_space, [&](const Entry& entry) {
        return SpansMatch(snapshot, name_space, entry.window);
    });
}

MiningCache::Claim
MiningCache::AcquireOrBegin(const Key& key,
                            std::span<const rt::TokenHash> slice,
                            rt::TokenHash name_space)
{
    return Probe(key, name_space, [&](const Entry& entry) {
        if (entry.window.size() != slice.size()) {
            return false;
        }
        for (std::size_t i = 0; i < slice.size(); ++i) {
            if (rt::FoldNamespace(name_space, slice[i]) !=
                entry.window[i]) {
                return false;
            }
        }
        return true;
    });
}

std::vector<CandidateTrace>
MiningCache::Rekey(const std::vector<CandidateTrace>& candidates,
                   rt::TokenHash name_space)
{
    std::vector<CandidateTrace> out;
    out.reserve(candidates.size());
    for (const CandidateTrace& candidate : candidates) {
        CandidateTrace rekeyed;
        rekeyed.occurrences = candidate.occurrences;
        rekeyed.tokens.reserve(candidate.tokens.size());
        for (const rt::TokenHash token : candidate.tokens) {
            rekeyed.tokens.push_back(
                rt::FoldNamespace(name_space, token));
        }
        out.push_back(std::move(rekeyed));
    }
    return out;
}

std::shared_ptr<const std::vector<CandidateTrace>>
MiningCache::Publish(const Key& key,
                     std::span<const rt::TokenHash> window,
                     std::vector<CandidateTrace> results,
                     rt::TokenHash name_space)
{
    return Publish(key, window,
                   std::make_shared<const std::vector<CandidateTrace>>(
                       std::move(results)),
                   name_space);
}

std::shared_ptr<const std::vector<CandidateTrace>>
MiningCache::Publish(
    const Key& key, std::span<const rt::TokenHash> window,
    std::shared_ptr<const std::vector<CandidateTrace>> results,
    rt::TokenHash name_space)
{
    // The entry is stored namespace-relative so any tenant can verify
    // and adopt it. Namespace 0 (every pre-tenancy caller) keeps the
    // zero-copy path: the published pointer is stored as-is.
    std::shared_ptr<const std::vector<CandidateTrace>> stored =
        name_space == 0
            ? std::move(results)
            : std::make_shared<const std::vector<CandidateTrace>>(
                  Rekey(*results, name_space));
    {
        std::lock_guard lock(mutex_);
        Entry& entry = entries_[key];
        if (entry.ready) {
            // Late publish: the watchdog abandoned this key while its
            // miner was stuck, a released waiter re-mined the window
            // and republished it first. Mining is a pure function of
            // the window, so the slot already holds the same answer —
            // keep it (first publication wins, the FIFO queue stays
            // duplicate-free).
            return stored;
        }
        entry.window.resize(window.size());
        for (std::size_t i = 0; i < window.size(); ++i) {
            entry.window[i] = rt::FoldNamespace(name_space, window[i]);
        }
        entry.results = stored;
        entry.ready = true;
        entry.owner = name_space;
        ++windows_published_;
        resident_bytes_ += EntryBytes(entry);
        retained_.push_back(key);
        // Bounded retention: evict the oldest published entries. An
        // evicted window that recurs is simply re-mined; in-flight
        // adopters keep their shared_ptr alive independently.
        while (max_windows_ != 0 && retained_.size() > max_windows_) {
            auto oldest = entries_.find(retained_.front());
            if (oldest != entries_.end()) {
                resident_bytes_ -= EntryBytes(oldest->second);
                entries_.erase(oldest);
            }
            retained_.pop_front();
            ++evictions_;
        }
    }
    published_.notify_all();
    return stored;
}

void
MiningCache::Abandon(const Key& key)
{
    {
        std::lock_guard lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end() && !it->second.ready) {
            entries_.erase(it);
        }
    }
    published_.notify_all();
}

MiningCache::Stats
MiningCache::Snapshot() const
{
    std::lock_guard lock(mutex_);
    return Stats{hits_, misses_,
                 static_cast<std::size_t>(windows_published_),
                 cross_namespace_hits_, evictions_};
}

std::size_t
MiningCache::Size() const
{
    std::lock_guard lock(mutex_);
    return entries_.size();
}

std::size_t
MiningCache::EntryBytes(const Entry& entry)
{
    std::size_t tokens = entry.window.size();
    if (entry.results != nullptr) {
        for (const CandidateTrace& candidate : *entry.results) {
            tokens += candidate.tokens.size();
        }
    }
    return tokens * sizeof(rt::TokenHash);
}

std::size_t
MiningCache::ResidentBytes() const
{
    std::lock_guard lock(mutex_);
    return resident_bytes_;
}

std::size_t
MiningCache::EvictToResidentBytes(std::size_t target_bytes)
{
    std::lock_guard lock(mutex_);
    std::size_t evicted = 0;
    while (resident_bytes_ > target_bytes && !retained_.empty()) {
        auto oldest = entries_.find(retained_.front());
        if (oldest != entries_.end()) {
            resident_bytes_ -= EntryBytes(oldest->second);
            entries_.erase(oldest);
        }
        retained_.pop_front();
        ++evictions_;
        ++evicted;
    }
    return evicted;
}

std::size_t
MiningCache::AbandonInProgress()
{
    std::size_t abandoned = 0;
    {
        std::lock_guard lock(mutex_);
        abandoned = std::erase_if(entries_, [](const auto& keyed) {
            return !keyed.second.ready;
        });
    }
    if (abandoned > 0) {
        published_.notify_all();
    }
    return abandoned;
}

void
MiningCache::SaveState(fault::CheckpointWriter& writer) const
{
    std::lock_guard lock(mutex_);
    if (entries_.size() != retained_.size()) {
        throw fault::CheckpointError(
            "MiningCache::SaveState requires a quiescent cache (a "
            "miner holds an in-progress entry)");
    }
    writer.BeginSection(fault::SectionTag::kMiningCache);
    writer.U64(hits_);
    writer.U64(misses_);
    writer.U64(windows_published_);
    writer.U64(cross_namespace_hits_);
    writer.U64(evictions_);
    writer.U64(retained_.size());
    for (const Key& key : retained_) {
        const Entry& entry = entries_.at(key);
        writer.U64(key.hash);
        writer.U64(key.length);
        writer.U64(entry.owner);
        writer.VecU64(entry.window);
        SaveCandidates(writer, entry.results != nullptr
                                   ? *entry.results
                                   : std::vector<CandidateTrace>{});
    }
    writer.EndSection();
}

void
MiningCache::LoadState(fault::CheckpointReader& reader)
{
    std::lock_guard lock(mutex_);
    if (!entries_.empty()) {
        throw fault::CheckpointError(
            "MiningCache::LoadState requires a fresh cache");
    }
    reader.BeginSection(fault::SectionTag::kMiningCache);
    hits_ = reader.U64();
    misses_ = reader.U64();
    windows_published_ = reader.U64();
    cross_namespace_hits_ = reader.U64();
    evictions_ = reader.U64();
    const std::uint64_t count = reader.U64();
    for (std::uint64_t i = 0; i < count; ++i) {
        Key key;
        key.hash = reader.U64();
        key.length = static_cast<std::size_t>(reader.U64());
        Entry& entry = entries_[key];
        entry.owner = reader.U64();
        entry.window = reader.VecU64();
        entry.results = std::make_shared<const std::vector<CandidateTrace>>(
            LoadCandidates(reader));
        entry.ready = true;
        resident_bytes_ += EntryBytes(entry);
        retained_.push_back(key);
    }
    reader.EndSection();
}

}  // namespace apo::core
