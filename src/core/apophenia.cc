#include "core/apophenia.h"

#include <algorithm>

namespace apo::core {

Apophenia::Apophenia(rt::Runtime& runtime, ApopheniaConfig config,
                     support::Executor* executor,
                     MiningCache* mining_cache)
    : runtime_(&runtime),
      config_(config),
      executor_(executor != nullptr ? executor : &default_executor_),
      finder_(config_, *executor_, mining_cache),
      scorer_(config_),
      ingest_mode_(config_.ingest_mode)
{
}

void
Apophenia::DoExecuteTask(const rt::TaskLaunchView& launch)
{
    if (!config_.enabled) {
        runtime_->ExecuteTask(launch);
        return;
    }
    if (degraded_) {
        // Overload posture: issue straight through. The token is NOT
        // shown to the finder — the degraded window never enters the
        // history ring, the steady ring or (via mining) the trie, so
        // leaving degrade later is bit-safe. SetDegraded(true) already
        // drained the pending buffer and match state.
        ++counter_;
        stats_.tasks_observed += 1;
        stats_.tasks_degraded += 1;
        stats_.tasks_forwarded_untraced += 1;
        runtime_->ExecuteTask(launch);
        EmitTask(counter_ - 1);
        pending_base_ = counter_;
        return;
    }
    // The launch's dependence-analysis token was hashed at the API
    // boundary and rides on the view. Untraceable operations get a
    // unique *mining* token per occurrence, so they can never appear
    // inside a repeated fragment: no candidate will contain them,
    // matches break across them, and the pending prefix flushing
    // forwards them promptly. The unique token is a finder-side
    // fiction only — the runtime still logs the real one.
    const rt::TokenHash mining_token =
        launch.traceable
            ? launch.token
            : support::SplitMix64(~counter_ ^ 0xfeedface12345678ULL);
    ++counter_;
    stats_.tasks_observed += 1;
    finder_.Observe(mining_token, counter_);
    IngestReadyJobs();
    AdvancePointers(mining_token);
    if (active_.empty() && held_.empty() && !config_.buffer_all_launches) {
        // Fast path: no still-growing match and no queued replay can
        // cover this launch, so it is forwarded straight off the
        // caller's arena — no materialization, no allocation. Any
        // leftover pending tasks (matches that just died) go first to
        // preserve stream order.
        FlushPrefixBelow(counter_ - 1);
        runtime_->ExecuteTask(launch);
        EmitTask(counter_ - 1);
        pending_base_ = counter_;
        stats_.tasks_forwarded_untraced += 1;
        return;
    }
    Buffer(launch);
    stats_.pending_high_water =
        std::max(stats_.pending_high_water, pending_.size());
    MaybeFire();
}

void
Apophenia::Buffer(const rt::TaskLaunchView& launch)
{
    PendingTask task;
    if (!pending_pool_.empty()) {
        task = std::move(pending_pool_.back());
        pending_pool_.pop_back();
    }
    launch.MaterializeInto(task.launch);
    task.token = launch.token;
    pending_.push_back(std::move(task));
    stats_.launches_buffered += 1;
}

/** Forward the oldest buffered launch untraced and recycle its
 * storage. */
void
Apophenia::ForwardFront()
{
    PendingTask& front = pending_.front();
    runtime_->ExecuteTask(
        rt::TaskLaunchView::Of(front.launch, front.token));
    pending_pool_.push_back(std::move(front));
    pending_.pop_front();
}

void
Apophenia::IngestReadyJobs()
{
    switch (ingest_mode_) {
      case IngestMode::kManual:
        return;
      case IngestMode::kEagerDrain:
        // Deterministic under any executor: wait for everything in
        // flight, then ingest it all, exactly as InlineExecutor would
        // have at this stream position.
        if (finder_.PendingJobCount() > 0) {
            executor_->Drain();
        }
        break;
      case IngestMode::kOnCompletion:
        // Event-driven: deliver any buffered completions, then ingest
        // the completed prefix of the launch-order queue.
        executor_->Pump();
        break;
    }
    while (finder_.OldestJobDone()) {
        IngestOldestJob();
    }
}

void
Apophenia::AdvancePointers(rt::TokenHash token)
{
    const std::uint64_t index = counter_ - 1;  // this task's absolute index
    active_scratch_.clear();
    for (const ActivePointer& p : active_) {
        if (const auto* child = trie_.Step(p.node, token)) {
            active_scratch_.push_back(ActivePointer{child, p.start});
        }
    }
    if (const auto* child = trie_.Step(nullptr, token)) {
        active_scratch_.push_back(ActivePointer{child, index});
    }
    std::swap(active_, active_scratch_);

    completed_scratch_.clear();
    for (const ActivePointer& p : active_) {
        if (CandidateStats* c = CandidateTrie::CandidateAt(p.node)) {
            // A live appearance: refresh the decayed count.
            c->count = c->Appearances(counter_,
                                      config_.score_decay_half_life) +
                       1.0;
            c->last_seen = counter_;
            completed_scratch_.push_back(
                CompletedMatch{c, p.start, index + 1});
        }
    }
    ConsiderCompleted(completed_scratch_);
}

void
Apophenia::ConsiderCompleted(const std::vector<CompletedMatch>& completed)
{
    for (const CompletedMatch& m : completed) {
        if (held_.empty() || m.start >= held_.back().end) {
            held_.push_back(m);  // disjoint successor: queue it
            continue;
        }
        // Overlapping: `m` ends at the newest token, so it overlaps a
        // suffix of the held queue. Replace that suffix only if `m`
        // outscores the whole of it (SelectReplayTrace's heuristic).
        std::size_t first_overlap = held_.size();
        double displaced_score = 0.0;
        while (first_overlap > 0 &&
               held_[first_overlap - 1].end > m.start) {
            --first_overlap;
            displaced_score += scorer_.Score(
                *held_[first_overlap].stats, counter_);
        }
        if (scorer_.Score(*m.stats, counter_) > displaced_score) {
            held_.erase(held_.begin() + first_overlap, held_.end());
            held_.push_back(m);
        }
    }
}

void
Apophenia::MaybeFire()
{
    // Fire queued matches from the front, stopping at the first one a
    // still-growing match (an active pointer that started at or
    // before it and can still advance) might supersede.
    while (!held_.empty()) {
        const CompletedMatch front = held_.front();
        bool blocked = false;
        for (const ActivePointer& p : active_) {
            if (p.start <= front.start && p.node->HasChildren()) {
                blocked = true;
                break;
            }
        }
        if (blocked) {
            break;
        }
        held_.pop_front();
        Fire(front);
    }

    // Forward every task no in-progress match could still cover.
    std::uint64_t keep_from = counter_;  // nothing matches before next token
    for (const ActivePointer& p : active_) {
        keep_from = std::min(keep_from, p.start);
    }
    if (!held_.empty()) {
        keep_from = std::min(keep_from, held_.front().start);
    }
    FlushPrefixBelow(keep_from);

    // Bound the pending buffer (exploration must not hoard memory).
    if (pending_.size() > config_.max_pending) {
        stats_.forced_flushes += 1;
        if (!held_.empty()) {
            const CompletedMatch front = held_.front();
            held_.pop_front();
            Fire(front);
        } else {
            const std::uint64_t target =
                pending_base_ + pending_.size() / 2;
            std::erase_if(active_, [&](const ActivePointer& p) {
                return p.start < target;
            });
            FlushPrefixBelow(target);
        }
    }
}

void
Apophenia::Fire(const CompletedMatch& match)
{
    FlushPrefixBelow(match.start);
    CandidateStats* stats = match.stats;
    if (stats->trace_id == rt::kNoTrace) {
        stats->trace_id = next_trace_id_++;
    }
    const bool recording = !runtime_->HasTrace(stats->trace_id);
    runtime_->BeginTrace(stats->trace_id);
    EmitMarker(Decision::Kind::kBegin, stats->trace_id, recording);
    for (std::uint64_t i = match.start; i < match.end; ++i) {
        PendingTask& front = pending_.front();
        runtime_->ExecuteTask(
            rt::TaskLaunchView::Of(front.launch, front.token));
        EmitTask(i);
        pending_pool_.push_back(std::move(front));
        pending_.pop_front();
    }
    pending_base_ = match.end;
    runtime_->EndTrace(stats->trace_id);
    EmitMarker(Decision::Kind::kEnd, stats->trace_id, recording);
    stats->replays += 1;
    stats_.traces_fired += 1;
    stats_.tasks_forwarded_traced += match.end - match.start;
    if (recording) {
        stats_.trace_records += 1;
    } else {
        stats_.trace_replays += 1;
    }
    // Matches overlapping the consumed range can no longer happen.
    std::erase_if(active_, [&](const ActivePointer& p) {
        return p.start < match.end;
    });
    // Future analyses include windows anchored here, so candidates
    // covering whatever follows this replay get discovered.
    finder_.NoteReplayBoundary(match.end);
}

void
Apophenia::FlushPrefixBelow(std::uint64_t keep_from)
{
    while (pending_base_ < keep_from && !pending_.empty()) {
        ForwardFront();
        EmitTask(pending_base_);
        pending_base_ += 1;
        stats_.tasks_forwarded_untraced += 1;
    }
}

void
Apophenia::DoFlush()
{
    if (!config_.enabled) {
        return;
    }
    while (!held_.empty()) {
        const CompletedMatch front = held_.front();
        held_.pop_front();
        Fire(front);
    }
    FlushPrefixBelow(pending_base_ + pending_.size());
    active_.clear();
}

void
Apophenia::SetDegraded(bool degraded)
{
    if (degraded == degraded_ || !config_.enabled) {
        return;
    }
    if (degraded) {
        // Resolve every in-progress match before going dark, exactly
        // as DoFlush does at end-of-stream: profitable held matches
        // still fire (their tasks were already admitted), everything
        // else forwards untraced, and no active pointer survives into
        // the degraded window.
        while (!held_.empty()) {
            const CompletedMatch front = held_.front();
            held_.pop_front();
            Fire(front);
        }
        FlushPrefixBelow(pending_base_ + pending_.size());
        active_.clear();
    }
    degraded_ = degraded;
}

std::size_t
Apophenia::AbandonStaleAnalyses(std::uint64_t max_age_tasks)
{
    const std::uint64_t cutoff =
        counter_ > max_age_tasks ? counter_ - max_age_tasks : 0;
    return finder_.AbandonJobsOlderThan(cutoff);
}

void
Apophenia::IngestOldestJob()
{
    const AnalysisJob& job = finder_.WaitOldestJob();
    const std::vector<CandidateTrace>& results = job.Results();
    for (const CandidateTrace& c : results) {
        trie_.Insert(c.tokens, c.occurrences, counter_,
                     config_.score_decay_half_life);
        // Rolling identity of the full ingested candidate sequence
        // (tokens and occurrence counts, in ingestion order): two
        // front-ends that mined and ingested the same candidates at
        // the same stream positions report equal digests. The cheap
        // cross-run "candidate sets identical" check, like the
        // stream digest is for issued streams.
        candidate_digest_ =
            support::HashCombine(candidate_digest_, c.tokens.size());
        for (const rt::TokenHash token : c.tokens) {
            candidate_digest_ =
                support::HashCombine(candidate_digest_, token);
        }
        candidate_digest_ = support::HashCombine(
            candidate_digest_,
            static_cast<std::uint64_t>(c.occurrences * 4096.0));
    }
    stats_.jobs_ingested += 1;
    stats_.candidates_ingested += results.size();
    finder_.ReleaseOldestJob();
}

void
Apophenia::SaveState(fault::CheckpointWriter& writer) const
{
    writer.BeginSection(fault::SectionTag::kApophenia);
    writer.U64(counter_);
    writer.U64(pending_base_);
    writer.U64(next_trace_id_);
    writer.U64(candidate_digest_);
    writer.U64(stats_.tasks_observed);
    writer.U64(stats_.tasks_forwarded_traced);
    writer.U64(stats_.tasks_forwarded_untraced);
    writer.U64(stats_.traces_fired);
    writer.U64(stats_.trace_records);
    writer.U64(stats_.trace_replays);
    writer.U64(stats_.jobs_ingested);
    writer.U64(stats_.candidates_ingested);
    writer.U64(stats_.forced_flushes);
    writer.U64(stats_.launches_buffered);
    writer.U64(stats_.pending_high_water);
    writer.U64(pending_.size());
    for (const PendingTask& task : pending_) {
        writer.U64(task.token);
        writer.U64(task.launch.task);
        writer.U64(task.launch.requirements.size());
        for (const rt::RegionRequirement& req :
             task.launch.requirements) {
            writer.U64(req.region.value);
            writer.U64(req.field);
            writer.U64(static_cast<std::uint64_t>(req.privilege));
            writer.U64(req.redop);
        }
        writer.F64(task.launch.execution_us);
        writer.U64(task.launch.shard);
        writer.Bool(task.launch.blocking);
        writer.Bool(task.launch.traceable);
    }
    // Match state re-walks out of the restored trie: a pointer is its
    // start index (its node is the unique trie walk over the buffered
    // tokens from there), a held match its [start, end) range.
    writer.U64(active_.size());
    for (const ActivePointer& p : active_) {
        writer.U64(p.start);
    }
    writer.U64(held_.size());
    for (const CompletedMatch& m : held_) {
        writer.U64(m.start);
        writer.U64(m.end);
    }
    writer.EndSection();
    finder_.SaveState(writer);
    trie_.SaveState(writer);
}

void
Apophenia::LoadState(fault::CheckpointReader& reader)
{
    if (counter_ != 0 || !pending_.empty() || !active_.empty() ||
        !held_.empty()) {
        throw fault::CheckpointError(
            "Apophenia::LoadState requires a fresh front-end");
    }
    reader.BeginSection(fault::SectionTag::kApophenia);
    counter_ = reader.U64();
    pending_base_ = reader.U64();
    next_trace_id_ = reader.U64();
    candidate_digest_ = reader.U64();
    stats_.tasks_observed = reader.U64();
    stats_.tasks_forwarded_traced = reader.U64();
    stats_.tasks_forwarded_untraced = reader.U64();
    stats_.traces_fired = reader.U64();
    stats_.trace_records = reader.U64();
    stats_.trace_replays = reader.U64();
    stats_.jobs_ingested = reader.U64();
    stats_.candidates_ingested = reader.U64();
    stats_.forced_flushes = reader.U64();
    stats_.launches_buffered = reader.U64();
    stats_.pending_high_water = reader.U64();
    const std::uint64_t pending = reader.U64();
    for (std::uint64_t i = 0; i < pending; ++i) {
        PendingTask task;
        task.token = reader.U64();
        task.launch.task = reader.U64();
        const std::uint64_t reqs = reader.U64();
        task.launch.requirements.reserve(reqs);
        for (std::uint64_t r = 0; r < reqs; ++r) {
            rt::RegionRequirement req;
            req.region = rt::RegionId{reader.U64()};
            req.field = static_cast<rt::FieldId>(reader.U64());
            req.privilege = static_cast<rt::Privilege>(reader.U64());
            req.redop = static_cast<rt::ReductionOpId>(reader.U64());
            task.launch.requirements.push_back(req);
        }
        task.launch.execution_us = reader.F64();
        task.launch.shard = static_cast<std::uint32_t>(reader.U64());
        task.launch.blocking = reader.Bool();
        task.launch.traceable = reader.Bool();
        pending_.push_back(std::move(task));
    }
    std::vector<std::uint64_t> active_starts(reader.U64());
    for (std::uint64_t& start : active_starts) {
        start = reader.U64();
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> held_ranges(
        reader.U64());
    for (auto& [start, end] : held_ranges) {
        start = reader.U64();
        end = reader.U64();
    }
    reader.EndSection();
    finder_.LoadState(reader);
    trie_.LoadState(reader);

    // Re-walk the restored trie over the buffered tokens. Every live
    // match spans traceable launches only (an untraceable launch's
    // unique per-occurrence mining token kills every pointer), so the
    // buffered real tokens are exactly the tokens the pointers were
    // advanced with.
    const auto walk = [&](std::uint64_t from, std::uint64_t to) {
        const CandidateTrie::Node* node = nullptr;
        for (std::uint64_t i = from; i < to; ++i) {
            node = trie_.Step(node, pending_[i - pending_base_].token);
            if (node == nullptr) {
                throw fault::CheckpointError(
                    "checkpoint match state does not re-walk the "
                    "restored trie");
            }
        }
        return node;
    };
    for (const std::uint64_t start : active_starts) {
        active_.push_back(ActivePointer{walk(start, counter_), start});
    }
    for (const auto& [start, end] : held_ranges) {
        CandidateStats* stats =
            CandidateTrie::CandidateAt(walk(start, end));
        if (stats == nullptr) {
            throw fault::CheckpointError(
                "checkpoint held match has no candidate in the "
                "restored trie");
        }
        held_.push_back(CompletedMatch{stats, start, end});
    }
}

}  // namespace apo::core
