#include "core/decision_engine.h"

namespace apo::core {

DecisionEngine::DecisionEngine(const ApopheniaConfig& config,
                               const rt::RuntimeOptions& runtime_options,
                               MiningCache* mining_cache)
    : runtime_(runtime_options),
      decider_(runtime_, config, nullptr, mining_cache)
{
    // Barrier-driven by construction: the owner settles ingestion
    // positions (coordinated across nodes) before DecideStaged().
    decider_.SetIngestMode(IngestMode::kManual);
    decider_.SetDecisionSink(&decisions_);
}

void
DecisionEngine::Buffer(const rt::TaskLaunchView& launch)
{
    if (next_ - base_ == ring_.size()) {
        Grow();
    }
    Slot& slot = ring_[next_ & (ring_.size() - 1)];
    launch.MaterializeInto(slot.launch);
    slot.token = launch.token;
    ++next_;
}

void
DecisionEngine::DecideStaged()
{
    for (; staged_ < next_; ++staged_) {
        const Slot& slot = ring_[staged_ & (ring_.size() - 1)];
        decider_.ExecuteTask(
            rt::TaskLaunchView::Of(slot.launch, slot.token));
    }
}

void
DecisionEngine::FlushDecider()
{
    decider_.Flush();
}

void
DecisionEngine::Retire()
{
    // Every kTask event forwarded exactly one staged launch, in
    // stream order, so the decided prefix advances by their count.
    for (const Decision& d : decisions_) {
        if (d.kind == Decision::Kind::kTask) {
            ++base_;
        }
    }
    decisions_.clear();
}

void
DecisionEngine::Grow()
{
    const std::size_t old_cap = ring_.size();
    const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
    std::vector<Slot> grown(new_cap);
    for (std::uint64_t i = base_; i < next_; ++i) {
        grown[i & (new_cap - 1)] = std::move(ring_[i & (old_cap - 1)]);
    }
    ring_ = std::move(grown);
}

}  // namespace apo::core
