/**
 * @file
 * Per-finder steady-state mining engine: a rolling ring of recently
 * mined windows plus a persistent incremental miner.
 *
 * Steady-state applications (S3D, HTR, CFD iteration loops) re-issue
 * near-identical token streams for thousands of windows; whenever the
 * stream's period divides the analysis stride, the finder launches
 * window after window with *byte-identical* content. The shared
 * MiningCache already deduplicates that work across cluster nodes, but
 * every probe still pays a full content hash plus a block-span compare
 * — O(window) per job with a hash of every token. This engine sits in
 * front of it:
 *
 *  - **Probe** answers the rolling fast-path question — "is this
 *    window one of the last few windows this finder mined?" — with a
 *    Rabin-Karp-style rolling fingerprint over the window (the same
 *    HashCombine fold the cache keys use) against a small ring of
 *    fingerprints, followed by an exact token-for-token verification
 *    before any adoption (precisely the discipline core::MiningCache
 *    uses). A hit costs one fingerprint pass and one wide compare:
 *    zero suffix-array work, zero hash-table probes, zero slice
 *    materialization, zero allocations.
 *  - **Mine** serves ring misses through strings::IncrementalMiner,
 *    which repairs the previous window's suffix structures instead of
 *    rebuilding (see strings/incremental.h), then memoizes the result
 *    in the ring. Ring entries carry the winning repeat's period, so
 *    the ring is seeded exactly by the previous windows' winning
 *    periodic structures.
 *
 * Bit-identity: adoption only ever follows verified window equality,
 * and mining runs algorithms that are pure functions of (window,
 * config) — so with the engine on or off, every job's candidate set
 * is byte-identical. Thread-safe: workers of one finder may race;
 * every operation holds the engine mutex.
 */
#ifndef APOPHENIA_CORE_STEADY_MINER_H
#define APOPHENIA_CORE_STEADY_MINER_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/finder.h"
#include "core/history.h"
#include "fault/checkpoint.h"
#include "runtime/task.h"
#include "strings/incremental.h"

namespace apo::core {

/** See file comment. */
class SteadyStateMiner {
  public:
    explicit SteadyStateMiner(const ApopheniaConfig& config);

    /** Monotone counters (Probe/Mine outcomes). */
    struct Stats {
        std::uint64_t probes = 0;
        std::uint64_t fast_path_hits = 0;  ///< verified ring hits
        std::uint64_t repairs = 0;         ///< incremental structure reuse
        std::uint64_t full_rebuilds = 0;
        std::uint64_t memoized = 0;  ///< results adopted into the ring
    };

    /**
     * Rolling fast path: fingerprint the window, match it against the
     * ring, verify token-for-token, and return the memoized candidate
     * set — or nullptr on a miss. Performs no heap allocation.
     */
    std::shared_ptr<const std::vector<CandidateTrace>> Probe(
        const HistorySnapshot& snapshot);
    std::shared_ptr<const std::vector<CandidateTrace>> Probe(
        std::span<const rt::TokenHash> slice);

    /**
     * Mine `slice` through the incremental tiers (bit-identical to
     * MineSlice(slice, config)), memoize the result in the ring, and
     * report the tier that served it (kRepair / kFull) via `path`.
     */
    std::shared_ptr<const std::vector<CandidateTrace>> Mine(
        const std::vector<rt::TokenHash>& slice, MiningPath* path);

    /**
     * Adopt an externally produced result (a shared-cache hit) into
     * the ring so the *next* identical window takes the fast path
     * without even probing the cache. Sound for the same reason cache
     * adoption is: the result is a pure function of a window that was
     * verified equal.
     */
    void Memoize(const HistorySnapshot& snapshot,
                 std::shared_ptr<const std::vector<CandidateTrace>> results);
    void Memoize(std::span<const rt::TokenHash> slice,
                 std::shared_ptr<const std::vector<CandidateTrace>> results);

    Stats Snapshot() const;

    /** Dominant periods of the ring's memoized windows (0 = unknown),
     * in ring order. Introspection for tests. */
    std::vector<std::size_t> RingPeriods() const;

    /** Checkpoint hooks: the memoized ring (fingerprints, windows,
     * candidate sets, periods) plus the stats counters. The
     * incremental miner's suffix structures restart cold — mining is
     * a pure function of (window, config), so every restored result
     * stays bit-identical; only the repair-vs-rebuild tier counters
     * can differ after a restore. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    struct Entry {
        bool valid = false;
        std::uint64_t fingerprint = 0;
        std::vector<rt::TokenHash> window;
        std::shared_ptr<const std::vector<CandidateTrace>> results;
        /** Spacing of the winning repeat's first two occurrences —
         * the window's dominant period (0 = none/unknown). */
        std::size_t period = 0;
    };

    /** Ring lookup under `mutex_`; `equals(entry)` must verify exact
     * window equality. */
    template <typename VerifyEquals>
    std::shared_ptr<const std::vector<CandidateTrace>> ProbeLocked(
        std::uint64_t fingerprint, std::size_t length,
        const VerifyEquals& equals);

    /** Install (fingerprint, window, results) into the ring slot for
     * this window shape (same-length entry if present, else FIFO). */
    Entry& SlotFor(std::size_t length);

    const ApopheniaConfig* config_;
    mutable std::mutex mutex_;
    strings::IncrementalMiner miner_;
    std::vector<Entry> ring_;
    std::size_t next_slot_ = 0;
    Stats stats_;
};

}  // namespace apo::core

#endif  // APOPHENIA_CORE_STEADY_MINER_H
