/**
 * @file
 * The trace finder (paper sections 4.2 and 4.4).
 *
 * The finder accumulates the hash-token stream into a sliding history
 * buffer of `batchsize` tokens and launches asynchronous mining jobs
 * over slices of it. Slice sizes follow the ruler-function schedule:
 * at the k'th sampling point (every `multi_scale_factor` tasks) the
 * last multi_scale_factor * 2^ruler(k) tokens are analyzed, so short
 * traces are discovered quickly while the full buffer is still mined
 * periodically for long traces. Each job runs the configured repeat
 * mining algorithm (Algorithm 2 by default) and emits candidate
 * traces, chunked to the configured maximum trace length.
 */
#ifndef APOPHENIA_CORE_FINDER_H
#define APOPHENIA_CORE_FINDER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/config.h"
#include "runtime/task.h"
#include "support/executor.h"

namespace apo::core {

/** A candidate trace produced by a mining job. */
struct CandidateTrace {
    std::vector<rt::TokenHash> tokens;
    /** Non-overlapping occurrences observed in the analyzed slice. */
    double occurrences = 0.0;
};

/** One asynchronous history-mining job. */
struct AnalysisJob {
    /** Stable id (launch order). */
    std::uint64_t id = 0;
    /** Task counter at which the job was launched. */
    std::uint64_t issued_at = 0;
    /** Number of tokens analyzed. */
    std::size_t slice_length = 0;
    /** Set (release) by the worker when `results` is complete. */
    std::atomic<bool> done{false};
    std::vector<CandidateTrace> results;
};

/** Finder statistics. */
struct FinderStats {
    std::uint64_t tokens_observed = 0;
    std::uint64_t jobs_launched = 0;
    std::uint64_t tokens_analyzed = 0;
    std::uint64_t candidates_produced = 0;
};

/** See file comment. */
class TraceFinder {
  public:
    TraceFinder(const ApopheniaConfig& config, support::Executor& executor);

    /** Record one token; launches mining jobs per the sampling
     * schedule. `now` is the global task counter. */
    void Observe(rt::TokenHash token, std::uint64_t now);

    /**
     * Note that a trace replay ended at stream position `pos` (tasks
     * before `pos` have been issued). Subsequent analyses include
     * windows *anchored* at this boundary, so candidates aligned with
     * the not-yet-covered remainder of the stream (the "gap" between
     * replays) are discovered. Without this, a sub-period trace can
     * lock the replayer out of ever seeing candidates at the phases
     * it leaves uncovered — the long cuPyNumeric warmups of the
     * paper's figure 9 are this effect.
     */
    void NoteReplayBoundary(std::uint64_t pos);

    /** All jobs launched so far, in launch order. Jobs stay in the
     * queue until TakeJob() removes them (ingestion). */
    const std::deque<std::shared_ptr<AnalysisJob>>& Jobs() const
    {
        return jobs_;
    }

    /** Remove and return the oldest job (must exist). */
    std::shared_ptr<AnalysisJob> TakeJob();

    const FinderStats& Stats() const { return stats_; }

  private:
    void LaunchAnalysis(std::size_t slice_length, std::uint64_t now);

    const ApopheniaConfig* config_;
    support::Executor* executor_;
    std::deque<rt::TokenHash> history_;  ///< sliding window, <= batchsize
    std::uint64_t sample_counter_ = 0;   ///< k of the ruler schedule
    std::deque<std::shared_ptr<AnalysisJob>> jobs_;
    FinderStats stats_;
    /** Latest replay boundary, and the anchored-window length that
     * triggers the next anchored analysis (doubles each launch to
     * preserve the O(n log n) total analysis budget). */
    std::uint64_t anchor_ = 0;
    std::uint64_t anchor_next_len_ = 0;
};

/**
 * Run the configured repeat-mining algorithm over `slice` and convert
 * the repeats into candidate traces: filter to >= 2 occurrences and
 * min_trace_length, and chunk anything longer than max_trace_length.
 * Exposed for testing and for the ablation benches.
 */
std::vector<CandidateTrace> MineSlice(
    const std::vector<rt::TokenHash>& slice, const ApopheniaConfig& config);

}  // namespace apo::core

#endif  // APOPHENIA_CORE_FINDER_H
