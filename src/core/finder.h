/**
 * @file
 * The trace finder (paper sections 4.2 and 4.4).
 *
 * The finder accumulates the hash-token stream into a sliding history
 * window of `batchsize` tokens and launches asynchronous mining jobs
 * over slices of it. Slice sizes follow the ruler-function schedule:
 * at the k'th sampling point (every `multi_scale_factor` tasks) the
 * last multi_scale_factor * 2^ruler(k) tokens are analyzed, so short
 * traces are discovered quickly while the full buffer is still mined
 * periodically for long traces. Each job runs the configured repeat
 * mining algorithm (Algorithm 2 by default) and emits candidate
 * traces, chunked to the configured maximum trace length.
 *
 * Launching a job is zero-copy: the history lives in shared
 * append-only blocks (history.h) and a job holds a refcounted
 * HistorySnapshot of its slice, materializing it on the worker thread.
 * Jobs are recycled through a free pool, and completion is signalled
 * through the executor's per-job completion callback rather than by
 * the caller polling job state. Ingestion remains strictly in launch
 * order — the deterministic stream-position ingestion contract the
 * control-replicated cluster front-end (sim/cluster.h) depends on.
 */
#ifndef APOPHENIA_CORE_FINDER_H
#define APOPHENIA_CORE_FINDER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/history.h"
#include "fault/checkpoint.h"
#include "runtime/task.h"
#include "support/executor.h"

namespace apo::strings {
struct Repeat;
}  // namespace apo::strings

namespace apo::core {

class MiningCache;
class SteadyStateMiner;

/** A candidate trace produced by a mining job. */
struct CandidateTrace {
    std::vector<rt::TokenHash> tokens;
    /** Non-overlapping occurrences observed in the analyzed slice. */
    double occurrences = 0.0;
};

/** Checkpoint helpers for candidate sets (used by the finder's
 * in-flight jobs, the steady-state ring and the mining cache). */
void SaveCandidates(fault::CheckpointWriter& writer,
                    const std::vector<CandidateTrace>& candidates);
std::vector<CandidateTrace> LoadCandidates(fault::CheckpointReader& reader);

/** Which tier of the incremental mining engine served a job (see
 * steady_miner.h; kNone = engine disabled, classic MineSlice path). */
enum class MiningPath : std::uint8_t {
    kNone = 0,
    kFastPath,  ///< rolling-ring hit: no mining, no hashing, no copy
    kRepair,    ///< suffix structures reused/repaired across windows
    kFull,      ///< full rebuild (scratch-reusing)
};

/** One asynchronous history-mining job. Owned and recycled by the
 * finder; workers receive a raw pointer valid until the job is
 * released (the finder drains its executor before destruction). */
struct AnalysisJob {
    /** Stable id (launch order). */
    std::uint64_t id = 0;
    /** Task counter at which the job was launched. */
    std::uint64_t issued_at = 0;
    /** Number of tokens analyzed. */
    std::size_t slice_length = 0;
    /** Zero-copy view of the analyzed slice (empty if the slice was
     * materialized at launch; see
     * ApopheniaConfig::copy_slices_at_launch). */
    HistorySnapshot snapshot;
    /** Worker-side materialization buffer, reused across jobs. */
    std::vector<rt::TokenHash> slice;
    std::vector<CandidateTrace> results;
    /** Set instead of `results` when the shared mining cache served
     * this job: the adopting node reads the first finisher's
     * published candidate set in place (no per-node copy). Shared
     * ownership keeps it alive past cache eviction. */
    std::shared_ptr<const std::vector<CandidateTrace>> adopted;
    /** Which incremental-mining tier produced Results(). */
    MiningPath mining_path = MiningPath::kNone;
    /** Set by the worker when the shared mining cache served this
     * job (folded into FinderStats at release, off the worker
     * thread); `cache_cross` additionally marks a hit published
     * under a different token namespace (another tenant's mining). */
    bool cache_hit = false;
    bool cache_cross = false;
    /** Completion flag, set (release) by the executor's completion
     * callback once `results` is published. */
    std::atomic<bool> done{false};

    const std::vector<CandidateTrace>& Results() const
    {
        return adopted != nullptr ? *adopted : results;
    }
};

/** Introspection record for one launched-but-not-ingested job. */
struct PendingJobInfo {
    std::uint64_t id = 0;
    std::uint64_t issued_at = 0;
    std::size_t slice_length = 0;
    bool done = false;
};

/** Finder statistics. */
struct FinderStats {
    std::uint64_t tokens_observed = 0;
    std::uint64_t jobs_launched = 0;
    std::uint64_t tokens_analyzed = 0;
    std::uint64_t candidates_produced = 0;
    /** Jobs recycled from the free pool (vs freshly allocated). */
    std::uint64_t jobs_recycled = 0;
    /** Incremental-mining tier counters over ingested jobs (all zero
     * with incremental_mining off). A fast-path hit did no suffix
     * work, no cache hashing and no slice materialization at all. */
    std::uint64_t mining_fast_path_hits = 0;
    std::uint64_t mining_repairs = 0;
    std::uint64_t mining_full = 0;
    /** Shared-mining-cache outcomes of *this* finder's jobs (all zero
     * without an attached cache): probes served by a published entry,
     * and the subset published under a different token namespace —
     * this tenant adopting another tenant's mining. */
    std::uint64_t mining_cache_hits = 0;
    std::uint64_t mining_cache_cross_hits = 0;
    /** Jobs the overload watchdog gave up on (AbandonJobsOlderThan):
     * removed from the ingestion queue without ever being ingested. */
    std::uint64_t jobs_abandoned = 0;
};

/** See file comment. */
class TraceFinder {
  public:
    /** `mining_cache` (optional, shared, thread-safe) memoizes mining
     * results under the slice's content address — the cluster
     * front-end passes one cache to all of its nodes' finders so an
     * identical window is mined once cluster-wide (mining_cache.h). */
    TraceFinder(const ApopheniaConfig& config, support::Executor& executor,
                MiningCache* mining_cache = nullptr);

    /** Waits for in-flight jobs: no worker may outlive the jobs. */
    ~TraceFinder();

    TraceFinder(const TraceFinder&) = delete;
    TraceFinder& operator=(const TraceFinder&) = delete;

    /** Record one token; launches mining jobs per the sampling
     * schedule. `now` is the global task counter. */
    void Observe(rt::TokenHash token, std::uint64_t now);

    /**
     * Note that a trace replay ended at stream position `pos` (tasks
     * before `pos` have been issued). Subsequent analyses include
     * windows *anchored* at this boundary, so candidates aligned with
     * the not-yet-covered remainder of the stream (the "gap" between
     * replays) are discovered. Without this, a sub-period trace can
     * lock the replayer out of ever seeing candidates at the phases
     * it leaves uncovered — the long cuPyNumeric warmups of the
     * paper's figure 9 are this effect.
     */
    void NoteReplayBoundary(std::uint64_t pos);

    // -- Job introspection and ingestion (launch order) ---------------------

    /** Launched-but-not-ingested jobs. */
    std::size_t PendingJobCount() const { return inflight_.size(); }

    /** True iff a job is pending and the oldest one has completed. */
    bool OldestJobDone() const
    {
        return !inflight_.empty() &&
               inflight_.front()->done.load(std::memory_order_acquire);
    }

    /** Visit pending jobs with id >= `first_id`, oldest first. */
    void VisitPendingJobs(
        std::uint64_t first_id,
        const std::function<void(const PendingJobInfo&)>& visit) const;

    /** Block until the oldest pending job (which must exist) has
     * completed, pumping the executor as needed, and return it. The
     * reference stays valid until ReleaseOldestJob(). */
    const AnalysisJob& WaitOldestJob();

    /** Recycle the oldest pending job after its results have been
     * consumed. Must follow WaitOldestJob(). */
    void ReleaseOldestJob();

    /**
     * Overload watchdog: drop every not-yet-completed in-flight job
     * issued before task counter `cutoff` from the ingestion queue.
     * Abandoned jobs' candidates are never ingested; their workers
     * (which may be stuck on a slow executor) keep the job storage
     * alive on an orphan list and are reaped back into the free pool
     * once done. Completed jobs are never abandoned — their results
     * are already paid for. Returns the number of jobs abandoned.
     * Ingestion order of the surviving jobs is preserved.
     */
    std::size_t AbandonJobsOlderThan(std::uint64_t cutoff);

    const FinderStats& Stats() const { return stats_; }

    /** The finder's incremental mining engine (nullptr when
     * config.incremental_mining is off). Exposed for tests. */
    const SteadyStateMiner* Steady() const { return steady_.get(); }

    /** Checkpoint hooks: sampling cursors, anchors, stats, the
     * history ring, the steady-state ring, and every in-flight job as
     * a completed result (id, issue position, candidates, tier) —
     * every job must have completed (drain the executor first);
     * throws fault::CheckpointError otherwise. LoadState restores
     * onto a fresh finder built with an identical config. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    void LaunchAnalysis(std::size_t slice_length, std::uint64_t now);
    AnalysisJob* AcquireJob();

    const ApopheniaConfig* config_;
    support::Executor* executor_;
    MiningCache* mining_cache_;  ///< nullptr = always mine locally
    /** Per-finder steady-state engine (ring + incremental miner);
     * probed by workers ahead of the shared cache. */
    std::unique_ptr<SteadyStateMiner> steady_;
    HistoryRing history_;  ///< sliding window, <= batchsize tokens
    std::uint64_t sample_counter_ = 0;  ///< k of the ruler schedule
    /** Launch-order FIFO of jobs awaiting ingestion. */
    std::deque<std::unique_ptr<AnalysisJob>> inflight_;
    /** Recycled job storage (snapshot spans, slice and result
     * buffers keep their capacity). */
    std::vector<std::unique_ptr<AnalysisJob>> free_jobs_;
    /** Abandoned jobs whose workers may still be running; reaped into
     * free_jobs_ once done (see AbandonJobsOlderThan). */
    std::vector<std::unique_ptr<AnalysisJob>> orphaned_;
    FinderStats stats_;
    /** Latest replay boundary, and the anchored-window length that
     * triggers the next anchored analysis (doubles each launch to
     * preserve the O(n log n) total analysis budget). */
    std::uint64_t anchor_ = 0;
    std::uint64_t anchor_next_len_ = 0;
};

/**
 * Run the configured repeat-mining algorithm over `slice` and convert
 * the repeats into candidate traces: filter to >= 2 occurrences and
 * min_trace_length, and chunk anything longer than max_trace_length.
 * Exposed for testing and for the ablation benches.
 */
std::vector<CandidateTrace> MineSlice(
    const std::vector<rt::TokenHash>& slice, const ApopheniaConfig& config);

/**
 * The post-mining half of MineSlice: filter repeats to >= 2
 * occurrences, chunk to max_trace_length, and apply speculative
 * period completion. Factored out so the incremental engine's repeat
 * sets convert through exactly the code path MineSlice uses.
 */
std::vector<CandidateTrace> RepeatsToCandidates(
    const std::vector<strings::Repeat>& repeats,
    std::span<const rt::TokenHash> slice, const ApopheniaConfig& config);

}  // namespace apo::core

#endif  // APOPHENIA_CORE_FINDER_H
