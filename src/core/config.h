/**
 * @file
 * Apophenia configuration, mirroring the runtime flags of the paper's
 * artifact (appendix A.7):
 *
 *   -lg:enable_automatic_tracing
 *   -lg:auto_trace:min_trace_length <N>
 *   -lg:auto_trace:max_trace_length <N>
 *   -lg:auto_trace:batchsize <N>
 *   -lg:auto_trace:multi_scale_factor <N>
 *   -lg:auto_trace:identifier_algorithm <multi-scale|batched>
 *   -lg:auto_trace:repeats_algorithm <quick_matching_of_substrings|...>
 *
 * plus flags of this reproduction's asynchronous pipeline:
 *
 *   -lg:auto_trace:ingest_mode <on-completion|eager-drain|manual>
 *   -lg:auto_trace:history_block_size <N>
 *   -lg:auto_trace:copy_slices_at_launch
 *   -lg:auto_trace:buffer_all_launches
 *   -lg:auto_trace:no_shared_decisions
 *   -lg:auto_trace:no_checkpoints
 *   -lg:auto_trace:no_overload_control
 *
 * The paper's experiments all run with one configuration (batchsize
 * 5000, multi-scale factor 250/500, min length 25); only FlexFlow
 * sweeps max_trace_length (figure 8).
 */
#ifndef APOPHENIA_CORE_CONFIG_H
#define APOPHENIA_CORE_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace apo::core {

/** How the history buffer is sampled for analysis (paper section 4.4). */
enum class IdentifierAlgorithm {
    /** Ruler-function multi-scale sampling: analyze progressively
     * larger recent slices at multiples of the scale factor. */
    kMultiScale,
    /** Analyze the whole buffer only when it fills (the non-adaptive
     * strawman the paper argues against). */
    kBatched,
};

/** When completed mining jobs are ingested into the candidate trie.
 * Ingestion is always in launch order; the mode picks the stream
 * positions at which it happens. */
enum class IngestMode {
    /** Ingest a job as soon as its completion has been observed — the
     * throughput mode. Positions depend on completion timing, which is
     * nondeterministic under a concurrent executor (and deterministic
     * under InlineExecutor, where jobs complete at launch). */
    kOnCompletion,
    /** Drain the executor whenever jobs are pending and ingest
     * everything, at every token. Deterministic under *any* executor:
     * ingestion positions equal InlineExecutor's. Used to cross-check
     * pooled runs against inline runs. */
    kEagerDrain,
    /** Ingest only via Apophenia::IngestOldestJob(); the replicated
     * front-end uses this to align ingestion positions across nodes
     * (paper section 5.1). */
    kManual,
};

/** Which repeat-mining algorithm the finder runs (section 4.2). */
enum class RepeatsAlgorithm {
    kQuickMatchingOfSubstrings,  ///< paper Algorithm 2 (the default)
    kTandem,                     ///< tandem-repeat baseline
    kLzw,                        ///< LZW-style baseline
    kQuadratic,                  ///< quadratic greedy baseline
};

/** Tunable parameters of the Apophenia front-end. */
struct ApopheniaConfig {
    /** Master switch (-lg:enable_automatic_tracing). */
    bool enabled = true;

    /** Minimum trace length to consider; shorter repeats cannot
     * amortize the per-replay constant c. Artifact default 25; the
     * tests and examples often use smaller loops, so this library
     * defaults lower and the benches set 25 explicitly. */
    std::size_t min_trace_length = 5;

    /** Maximum trace length to replay; longer candidates are broken
     * into chunks of this size (figure 8's auto-200 vs auto-5000). */
    std::size_t max_trace_length = 5000;

    /** Capacity of the task-history buffer mined for repeats
     * (-lg:auto_trace:batchsize). */
    std::size_t batchsize = 5000;

    /** Minimum slice size of the multi-scale analysis
     * (-lg:auto_trace:multi_scale_factor). */
    std::size_t multi_scale_factor = 250;

    IdentifierAlgorithm identifier_algorithm =
        IdentifierAlgorithm::kMultiScale;
    RepeatsAlgorithm repeats_algorithm =
        RepeatsAlgorithm::kQuickMatchingOfSubstrings;
    IngestMode ingest_mode = IngestMode::kOnCompletion;

    /** Block size of the shared history ring: mining jobs reference
     * whole blocks instead of copying tokens, so launching a job costs
     * O(slice / block size) on the application thread. */
    std::size_t history_block_size = 512;

    /** Ablation/benchmark switch: materialize each job's slice on the
     * application thread at launch (the pre-zero-copy behaviour)
     * instead of handing the worker a block snapshot. */
    bool copy_slices_at_launch = false;

    /** Ablation/benchmark switch: stage *every* launch through the
     * pending buffer (the pre-launch-view behaviour — one requirement
     * vector copy per launch) instead of forwarding unmatched
     * launches straight off the caller's arena. */
    bool buffer_all_launches = false;

    /** Steady-state incremental mining: probe a per-finder ring of
     * recently mined windows ahead of the shared cache (a verified
     * hit skips mining, hashing and materialization entirely) and
     * reuse suffix structures across windows
     * (strings/incremental.h). Behaviour-invariant: candidate sets
     * are bit-identical on or off
     * (-lg:auto_trace:no_incremental_mining disables). */
    bool incremental_mining = true;

    /** Entries of the rolling fast-path ring — how many distinct
     * recent window contents (the ruler schedule cycles through
     * several lengths) each finder remembers
     * (-lg:auto_trace:incremental_ring_windows). */
    std::size_t incremental_ring_windows = 8;

    /** Token namespace of the stream this finder observes (see
     * rt::FoldNamespace). The shared content-addressed MiningCache
     * keys every window by its namespace-relative content
     * (token ^ namespace), so two tenants running the same kernel
     * under different namespaces deduplicate to one mining run while
     * their token streams stay disjoint. 0 (the default) is the
     * classic un-namespaced stream. */
    std::uint64_t cache_namespace = 0;

    /** Control-replicated clusters: hoist ONE decision engine (trie +
     * pending buffer + TraceCache — core/decision_engine.h) above the
     * node shards and broadcast its per-task decisions instead of
     * re-deriving them per node. Soundness is checked per node via
     * the incremental StreamDigest; a diverged node falls back to a
     * local engine. Behaviour-invariant on byte-identical streams:
     * issued streams, digests, and coordination stats are
     * bit-identical to per-node engines
     * (-lg:auto_trace:no_shared_decisions disables). */
    bool shared_decisions = true;

    /** Fault tolerance: allow periodic cluster checkpoints (fault::)
     * when a checkpoint interval is configured. The escape hatch
     * `-lg:auto_trace:no_checkpoints` turns all checkpointing off —
     * rejoining nodes then resync by replaying the full retained
     * decision tail from stream start. */
    bool checkpoints = true;

    /** Overload robustness: allow the serving layer (svc::) to shed
     * arrivals past a tenant's admission bound, degrade a backlogged
     * tenant to untraced issue, evict caches under memory pressure and
     * abandon stuck analysis jobs. The escape hatch
     * `-lg:auto_trace:no_overload_control` turns every overload
     * action off — tenants then always block (closed-loop
     * backpressure), the pre-overload-control behaviour. */
    bool overload_control = true;

    // -- Trace selection scoring (paper section 4.3) ----------------------

    /** Cap on the occurrence count used in scores, so an early trace
     * cannot permanently outscore a better trace found later. */
    double score_count_cap = 16.0;
    /** Occurrence counts halve every this-many observed tasks since
     * the candidate last appeared, so stale candidates fade. */
    double score_decay_half_life = 10000.0;
    /** Multiplicative bias toward traces that have already been
     * replayed (recording new traces costs α_m per task). */
    double score_replayed_bonus = 1.05;

    /** Launch additional mining windows anchored at replay
     * boundaries, so candidates aligned with the uncovered remainder
     * of the stream are discovered (see TraceFinder::
     * NoteReplayBoundary). Without this, a sub-period trace can lock
     * the replayer at partial coverage for a very long time. */
    bool replay_anchored_analysis = true;

    /** When the finder sees a repeat whose two occurrences sit a
     * fixed distance d apart with d greater than the repeat length,
     * also emit the presumed full period (the d-token window) as a
     * speculative candidate. A wrong guess never matches and is
     * harmless; a right guess turns a sub-period trace into a
     * full-period one. */
    bool speculative_period_completion = true;

    // -- Replayer behaviour ------------------------------------------------

    /** Upper bound on buffered (pending) tasks before Apophenia forces
     * progress by firing or flushing. */
    std::size_t max_pending = 20000;

    // -- Runtime flags carried for convenience (-lg:window etc.) ----------

    /** The runtime's operation window (-lg:window): how far the
     * analysis pipeline may run ahead of execution. Consumed by the
     * performance model. */
    std::size_t window = 30000;
    /** -lg:inline_transitive_reduction: prune transitively implied
     * dependence edges. Consumed by the performance model. */
    bool inline_transitive_reduction = false;
};

/**
 * Parse Apophenia flags out of a command line. Recognized flags (and
 * their values) are removed from `args`; unrecognized arguments are
 * left in place for the application. Throws std::invalid_argument on
 * malformed values.
 */
ApopheniaConfig ParseApopheniaFlags(std::vector<std::string>& args);

}  // namespace apo::core

#endif  // APOPHENIA_CORE_CONFIG_H
