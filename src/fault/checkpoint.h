/**
 * @file
 * Durable finder-state snapshots: the serialization substrate of the
 * fault-tolerance layer.
 *
 * A checkpoint is a versioned, length-prefixed binary image of one
 * node's finder state (operation-log cursor, trace cache, candidate
 * trie, history ring, steady-state miner ring, Apophenia replay
 * cursors, stream digest). The format is deliberately dumb: a fixed
 * header, then a sequence of tagged sections, each carrying its
 * payload length and a checksum of the payload bytes. Readers verify
 * the magic, the version, every section tag they open, and every
 * section checksum before handing a single value to the caller, so a
 * truncated or bit-flipped image surfaces as a typed CheckpointError
 * instead of undefined behaviour.
 *
 * The layer sits directly above support/ so every other layer (core,
 * runtime, sim, svc) can expose SaveState/LoadState hooks without new
 * dependency edges. All integers are stored as fixed-width 64-bit
 * little-endian values; doubles are bit-cast through uint64_t — the
 * restore path must be bit-exact, not merely approximately equal,
 * because restored state has to re-converge to bit-identical replay
 * decisions.
 */
#ifndef APOPHENIA_FAULT_CHECKPOINT_H
#define APOPHENIA_FAULT_CHECKPOINT_H

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace apo::fault {

/** Every malformed-image condition: bad magic, unsupported version,
 * unexpected section tag, payload underrun/overrun, or a checksum
 * mismatch. Callers treat any CheckpointError as "this image is not
 * usable" — never as partially-restored state (LoadState hooks throw
 * before mutating, or the owning object is discarded wholesale). */
class CheckpointError : public std::runtime_error {
  public:
    explicit CheckpointError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Section tags. The tag is written into the image, so renumbering is
 * a format change (bump kCheckpointVersion). */
enum class SectionTag : std::uint64_t {
    kOperationLog = 1,
    kRegionAllocator = 2,
    kRegionForest = 3,
    kDependenceAnalyzer = 4,
    kTraceCache = 5,
    kRuntime = 6,
    kCandidateTrie = 7,
    kHistoryRing = 8,
    kSteadyMiner = 9,
    kTraceFinder = 10,
    kApophenia = 11,
    kStreamDigest = 12,
    kMiningCache = 13,
    kClusterNode = 14,
};

/** Human-readable name of a section tag — diagnostic messages name
 * the failing section instead of a bare number. Unknown tags (a
 * corrupt or future image) map to "unknown". */
std::string_view SectionName(SectionTag tag);

inline constexpr std::uint64_t kCheckpointMagic = 0x41504f434b505431ULL;
inline constexpr std::uint64_t kCheckpointVersion = 1;

/**
 * Serializes state into an in-memory checkpoint image.
 *
 * Usage: open a section, write primitives, close the section; repeat.
 * Sections cannot nest (the framing is flat on purpose — a reader can
 * skip a section it does not understand by its length alone).
 */
class CheckpointWriter {
  public:
    CheckpointWriter();

    void BeginSection(SectionTag tag);
    void EndSection();

    void U64(std::uint64_t value);
    void F64(double value) { U64(std::bit_cast<std::uint64_t>(value)); }
    void Bool(bool value) { U64(value ? 1 : 0); }
    /** A length-prefixed vector of 64-bit values. */
    void VecU64(std::span<const std::uint64_t> values);

    /** The finished image (header + all closed sections). */
    const std::vector<std::uint8_t>& Image() const;
    std::vector<std::uint8_t> TakeImage();

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t section_payload_at_ = 0;  // payload start of open section
    bool in_section_ = false;
};

/**
 * Validates and reads a checkpoint image produced by CheckpointWriter.
 *
 * The constructor verifies the header; BeginSection verifies the tag,
 * the declared payload length against the remaining bytes, and the
 * payload checksum; EndSection verifies the section was consumed
 * exactly. Every primitive read throws CheckpointError on underrun.
 */
class CheckpointReader {
  public:
    explicit CheckpointReader(std::span<const std::uint8_t> image);

    void BeginSection(SectionTag tag);
    void EndSection();

    std::uint64_t U64();
    double F64() { return std::bit_cast<double>(U64()); }
    bool Bool();
    std::vector<std::uint64_t> VecU64();

    /** True once every byte of the image has been consumed. */
    bool AtEnd() const;

  private:
    std::uint64_t RawU64();

    std::span<const std::uint8_t> bytes_;
    std::size_t at_ = 0;
    std::size_t section_end_ = 0;
    SectionTag section_tag_ = SectionTag::kOperationLog;  // open section
    bool in_section_ = false;
};

/** The checksum the section framing uses: a HashCombine fold over the
 * payload interpreted as 8-byte words plus a tail fold, seeded with
 * the payload length so truncation-to-empty cannot collide. */
std::uint64_t ChecksumBytes(std::span<const std::uint8_t> payload);

}  // namespace apo::fault

#endif  // APOPHENIA_FAULT_CHECKPOINT_H
