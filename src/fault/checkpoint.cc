#include "fault/checkpoint.h"

#include <cassert>
#include <cstring>

#include "support/hash.h"

namespace apo::fault {

namespace {

void AppendU64(std::vector<std::uint8_t>& bytes, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

void PatchU64(std::vector<std::uint8_t>& bytes, std::size_t at,
              std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        bytes[at + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
}

std::uint64_t ReadU64At(std::span<const std::uint8_t> bytes, std::size_t at)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
    }
    return value;
}

/** "'trace-cache' (tag 5)" — how every diagnostic names a section. */
std::string Describe(SectionTag tag)
{
    return "'" + std::string(SectionName(tag)) + "' (tag " +
           std::to_string(static_cast<std::uint64_t>(tag)) + ")";
}

std::string Describe(std::uint64_t raw)
{
    return Describe(static_cast<SectionTag>(raw));
}

}  // namespace

std::string_view
SectionName(SectionTag tag)
{
    switch (tag) {
        case SectionTag::kOperationLog: return "operation-log";
        case SectionTag::kRegionAllocator: return "region-allocator";
        case SectionTag::kRegionForest: return "region-forest";
        case SectionTag::kDependenceAnalyzer:
            return "dependence-analyzer";
        case SectionTag::kTraceCache: return "trace-cache";
        case SectionTag::kRuntime: return "runtime";
        case SectionTag::kCandidateTrie: return "candidate-trie";
        case SectionTag::kHistoryRing: return "history-ring";
        case SectionTag::kSteadyMiner: return "steady-miner";
        case SectionTag::kTraceFinder: return "trace-finder";
        case SectionTag::kApophenia: return "apophenia";
        case SectionTag::kStreamDigest: return "stream-digest";
        case SectionTag::kMiningCache: return "mining-cache";
        case SectionTag::kClusterNode: return "cluster-node";
    }
    return "unknown";
}

std::uint64_t
ChecksumBytes(std::span<const std::uint8_t> payload)
{
    std::uint64_t sum = support::HashCombine(0x636b70746368656bULL,
                                             payload.size());
    std::size_t at = 0;
    while (at + 8 <= payload.size()) {
        sum = support::HashCombine(sum, ReadU64At(payload, at));
        at += 8;
    }
    std::uint64_t tail = 0;
    for (std::size_t i = 0; at + i < payload.size(); ++i) {
        tail |= static_cast<std::uint64_t>(payload[at + i]) << (8 * i);
    }
    if (at < payload.size()) {
        sum = support::HashCombine(sum, tail);
    }
    return sum;
}

CheckpointWriter::CheckpointWriter()
{
    AppendU64(bytes_, kCheckpointMagic);
    AppendU64(bytes_, kCheckpointVersion);
}

void
CheckpointWriter::BeginSection(SectionTag tag)
{
    assert(!in_section_ && "checkpoint sections cannot nest");
    in_section_ = true;
    AppendU64(bytes_, static_cast<std::uint64_t>(tag));
    AppendU64(bytes_, 0);  // payload length, patched at EndSection
    AppendU64(bytes_, 0);  // payload checksum, patched at EndSection
    section_payload_at_ = bytes_.size();
}

void
CheckpointWriter::EndSection()
{
    assert(in_section_ && "EndSection without BeginSection");
    in_section_ = false;
    const std::size_t payload_len = bytes_.size() - section_payload_at_;
    const std::span<const std::uint8_t> payload(
        bytes_.data() + section_payload_at_, payload_len);
    PatchU64(bytes_, section_payload_at_ - 16, payload_len);
    PatchU64(bytes_, section_payload_at_ - 8, ChecksumBytes(payload));
}

void
CheckpointWriter::U64(std::uint64_t value)
{
    assert(in_section_ && "primitive writes must sit inside a section");
    AppendU64(bytes_, value);
}

void
CheckpointWriter::VecU64(std::span<const std::uint64_t> values)
{
    U64(values.size());
    for (const std::uint64_t v : values) {
        U64(v);
    }
}

const std::vector<std::uint8_t>&
CheckpointWriter::Image() const
{
    assert(!in_section_ && "finish the open section before Image()");
    return bytes_;
}

std::vector<std::uint8_t>
CheckpointWriter::TakeImage()
{
    assert(!in_section_ && "finish the open section before TakeImage()");
    return std::move(bytes_);
}

CheckpointReader::CheckpointReader(std::span<const std::uint8_t> image)
    : bytes_(image)
{
    if (bytes_.size() < 16) {
        throw CheckpointError("checkpoint image truncated: no header");
    }
    if (ReadU64At(bytes_, 0) != kCheckpointMagic) {
        throw CheckpointError("checkpoint image has wrong magic");
    }
    const std::uint64_t version = ReadU64At(bytes_, 8);
    if (version != kCheckpointVersion) {
        throw CheckpointError("unsupported checkpoint version " +
                              std::to_string(version));
    }
    at_ = 16;
}

std::uint64_t
CheckpointReader::RawU64()
{
    if (at_ + 8 > bytes_.size()) {
        throw CheckpointError(
            "checkpoint image truncated mid-value at byte offset " +
            std::to_string(at_) + " of " +
            std::to_string(bytes_.size()));
    }
    const std::uint64_t value = ReadU64At(bytes_, at_);
    at_ += 8;
    return value;
}

void
CheckpointReader::BeginSection(SectionTag tag)
{
    if (in_section_) {
        throw CheckpointError(
            "checkpoint sections cannot nest: BeginSection " +
            Describe(tag) + " while section " + Describe(section_tag_) +
            " is open at byte offset " + std::to_string(at_));
    }
    if (at_ + 24 > bytes_.size()) {
        throw CheckpointError(
            "checkpoint image truncated: no header for section " +
            Describe(tag) + " at byte offset " + std::to_string(at_) +
            " (" + std::to_string(bytes_.size() - at_) +
            " bytes remain, 24 needed)");
    }
    const std::uint64_t found = ReadU64At(bytes_, at_);
    if (found != static_cast<std::uint64_t>(tag)) {
        throw CheckpointError(
            "checkpoint section tag mismatch at byte offset " +
            std::to_string(at_) + ": expected " + Describe(tag) +
            ", found " + Describe(found));
    }
    const std::uint64_t payload_len = ReadU64At(bytes_, at_ + 8);
    const std::uint64_t checksum = ReadU64At(bytes_, at_ + 16);
    at_ += 24;
    if (payload_len > bytes_.size() - at_) {
        // Truncation and corruption are distinct failures: a short
        // image is a crashed writer, a checksum mismatch is bit rot.
        throw CheckpointError(
            "checkpoint section " + Describe(tag) +
            " truncated at byte offset " + std::to_string(at_) +
            ": payload claims " + std::to_string(payload_len) +
            " bytes, " + std::to_string(bytes_.size() - at_) +
            " remain");
    }
    const std::span<const std::uint8_t> payload(bytes_.data() + at_,
                                                payload_len);
    if (ChecksumBytes(payload) != checksum) {
        throw CheckpointError(
            "checkpoint section " + Describe(tag) +
            " checksum mismatch over " + std::to_string(payload_len) +
            " payload bytes at byte offset " + std::to_string(at_));
    }
    section_tag_ = tag;
    section_end_ = at_ + payload_len;
    in_section_ = true;
}

void
CheckpointReader::EndSection()
{
    if (!in_section_) {
        throw CheckpointError(
            "EndSection without BeginSection at byte offset " +
            std::to_string(at_));
    }
    if (at_ != section_end_) {
        throw CheckpointError(
            "checkpoint section " + Describe(section_tag_) +
            " not fully consumed: reader stopped at byte offset " +
            std::to_string(at_) + ", section ends at " +
            std::to_string(section_end_));
    }
    in_section_ = false;
}

std::uint64_t
CheckpointReader::U64()
{
    if (!in_section_) {
        throw CheckpointError(
            "checkpoint read outside any section at byte offset " +
            std::to_string(at_));
    }
    if (at_ + 8 > section_end_) {
        throw CheckpointError(
            "checkpoint read past the end of section " +
            Describe(section_tag_) + " at byte offset " +
            std::to_string(at_) + " (section ends at " +
            std::to_string(section_end_) + ")");
    }
    return RawU64();
}

bool
CheckpointReader::Bool()
{
    const std::uint64_t value = U64();
    if (value > 1) {
        throw CheckpointError(
            "checkpoint bool out of range in section " +
            Describe(section_tag_) + " at byte offset " +
            std::to_string(at_ - 8) + ": value " +
            std::to_string(value));
    }
    return value == 1;
}

std::vector<std::uint64_t>
CheckpointReader::VecU64()
{
    const std::uint64_t count = U64();
    if (count > (section_end_ - at_) / 8) {
        throw CheckpointError(
            "checkpoint vector length " + std::to_string(count) +
            " exceeds section " + Describe(section_tag_) +
            " at byte offset " + std::to_string(at_ - 8) + " (" +
            std::to_string(section_end_ - at_) +
            " payload bytes remain)");
    }
    std::vector<std::uint64_t> values;
    values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        values.push_back(U64());
    }
    return values;
}

bool
CheckpointReader::AtEnd() const
{
    return at_ == bytes_.size();
}

}  // namespace apo::fault
