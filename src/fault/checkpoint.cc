#include "fault/checkpoint.h"

#include <cassert>
#include <cstring>

#include "support/hash.h"

namespace apo::fault {

namespace {

void AppendU64(std::vector<std::uint8_t>& bytes, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
}

void PatchU64(std::vector<std::uint8_t>& bytes, std::size_t at,
              std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        bytes[at + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
}

std::uint64_t ReadU64At(std::span<const std::uint8_t> bytes, std::size_t at)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
    }
    return value;
}

}  // namespace

std::uint64_t
ChecksumBytes(std::span<const std::uint8_t> payload)
{
    std::uint64_t sum = support::HashCombine(0x636b70746368656bULL,
                                             payload.size());
    std::size_t at = 0;
    while (at + 8 <= payload.size()) {
        sum = support::HashCombine(sum, ReadU64At(payload, at));
        at += 8;
    }
    std::uint64_t tail = 0;
    for (std::size_t i = 0; at + i < payload.size(); ++i) {
        tail |= static_cast<std::uint64_t>(payload[at + i]) << (8 * i);
    }
    if (at < payload.size()) {
        sum = support::HashCombine(sum, tail);
    }
    return sum;
}

CheckpointWriter::CheckpointWriter()
{
    AppendU64(bytes_, kCheckpointMagic);
    AppendU64(bytes_, kCheckpointVersion);
}

void
CheckpointWriter::BeginSection(SectionTag tag)
{
    assert(!in_section_ && "checkpoint sections cannot nest");
    in_section_ = true;
    AppendU64(bytes_, static_cast<std::uint64_t>(tag));
    AppendU64(bytes_, 0);  // payload length, patched at EndSection
    AppendU64(bytes_, 0);  // payload checksum, patched at EndSection
    section_payload_at_ = bytes_.size();
}

void
CheckpointWriter::EndSection()
{
    assert(in_section_ && "EndSection without BeginSection");
    in_section_ = false;
    const std::size_t payload_len = bytes_.size() - section_payload_at_;
    const std::span<const std::uint8_t> payload(
        bytes_.data() + section_payload_at_, payload_len);
    PatchU64(bytes_, section_payload_at_ - 16, payload_len);
    PatchU64(bytes_, section_payload_at_ - 8, ChecksumBytes(payload));
}

void
CheckpointWriter::U64(std::uint64_t value)
{
    assert(in_section_ && "primitive writes must sit inside a section");
    AppendU64(bytes_, value);
}

void
CheckpointWriter::VecU64(std::span<const std::uint64_t> values)
{
    U64(values.size());
    for (const std::uint64_t v : values) {
        U64(v);
    }
}

const std::vector<std::uint8_t>&
CheckpointWriter::Image() const
{
    assert(!in_section_ && "finish the open section before Image()");
    return bytes_;
}

std::vector<std::uint8_t>
CheckpointWriter::TakeImage()
{
    assert(!in_section_ && "finish the open section before TakeImage()");
    return std::move(bytes_);
}

CheckpointReader::CheckpointReader(std::span<const std::uint8_t> image)
    : bytes_(image)
{
    if (bytes_.size() < 16) {
        throw CheckpointError("checkpoint image truncated: no header");
    }
    if (ReadU64At(bytes_, 0) != kCheckpointMagic) {
        throw CheckpointError("checkpoint image has wrong magic");
    }
    const std::uint64_t version = ReadU64At(bytes_, 8);
    if (version != kCheckpointVersion) {
        throw CheckpointError("unsupported checkpoint version " +
                              std::to_string(version));
    }
    at_ = 16;
}

std::uint64_t
CheckpointReader::RawU64()
{
    if (at_ + 8 > bytes_.size()) {
        throw CheckpointError("checkpoint image truncated mid-value");
    }
    const std::uint64_t value = ReadU64At(bytes_, at_);
    at_ += 8;
    return value;
}

void
CheckpointReader::BeginSection(SectionTag tag)
{
    if (in_section_) {
        throw CheckpointError("checkpoint sections cannot nest");
    }
    if (at_ + 24 > bytes_.size()) {
        throw CheckpointError("checkpoint image truncated: no section header");
    }
    const std::uint64_t found = ReadU64At(bytes_, at_);
    if (found != static_cast<std::uint64_t>(tag)) {
        throw CheckpointError(
            "checkpoint section tag mismatch: expected " +
            std::to_string(static_cast<std::uint64_t>(tag)) + ", found " +
            std::to_string(found));
    }
    const std::uint64_t payload_len = ReadU64At(bytes_, at_ + 8);
    const std::uint64_t checksum = ReadU64At(bytes_, at_ + 16);
    at_ += 24;
    if (payload_len > bytes_.size() - at_) {
        throw CheckpointError("checkpoint section truncated");
    }
    const std::span<const std::uint8_t> payload(bytes_.data() + at_,
                                                payload_len);
    if (ChecksumBytes(payload) != checksum) {
        throw CheckpointError("checkpoint section checksum mismatch");
    }
    section_end_ = at_ + payload_len;
    in_section_ = true;
}

void
CheckpointReader::EndSection()
{
    if (!in_section_) {
        throw CheckpointError("EndSection without BeginSection");
    }
    if (at_ != section_end_) {
        throw CheckpointError("checkpoint section not fully consumed");
    }
    in_section_ = false;
}

std::uint64_t
CheckpointReader::U64()
{
    if (!in_section_ || at_ + 8 > section_end_) {
        throw CheckpointError("checkpoint read past section end");
    }
    return RawU64();
}

bool
CheckpointReader::Bool()
{
    const std::uint64_t value = U64();
    if (value > 1) {
        throw CheckpointError("checkpoint bool out of range");
    }
    return value == 1;
}

std::vector<std::uint64_t>
CheckpointReader::VecU64()
{
    const std::uint64_t count = U64();
    if (count > (section_end_ - at_) / 8) {
        throw CheckpointError("checkpoint vector length exceeds section");
    }
    std::vector<std::uint64_t> values;
    values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        values.push_back(U64());
    }
    return values;
}

bool
CheckpointReader::AtEnd() const
{
    return at_ == bytes_.size();
}

}  // namespace apo::fault
