#include "sim/harness.h"

#include <memory>
#include <optional>
#include <stdexcept>

namespace apo::sim {

std::string_view
ModeName(TracingMode mode)
{
    switch (mode) {
      case TracingMode::kUntraced:
        return "untraced";
      case TracingMode::kManual:
        return "manual";
      case TracingMode::kAuto:
        return "auto";
    }
    return "?";
}

namespace {

/** The harness-owned front end plus everything behind it. */
struct FrontendStack {
    std::unique_ptr<rt::Runtime> runtime;  ///< single-runtime modes
    std::unique_ptr<support::PooledExecutor> pool;
    std::unique_ptr<core::Apophenia> apophenia;
    std::unique_ptr<core::ReplicatedFrontEnd> replicated;
    std::unique_ptr<api::Frontend> wrapper;  ///< direct/untraced
    api::Frontend* front = nullptr;

    /** The runtime whose operation log the simulator executes (node 0
     * under replication: StreamsIdentical makes it representative). */
    const rt::Runtime& ObservedRuntime() const
    {
        return replicated != nullptr ? replicated->NodeRuntime(0)
                                     : *runtime;
    }
};

FrontendStack
BuildFrontend(const ExperimentOptions& options)
{
    FrontendStack stack;
    rt::RuntimeOptions runtime_options;
    runtime_options.costs = options.costs;
    runtime_options.nodes = options.machine.nodes;
    runtime_options.mismatch_policy = options.mismatch_policy;
    runtime_options.log_config = options.log_config;

    if (options.replicas > 1) {
        if (options.mode == TracingMode::kManual) {
            throw std::invalid_argument(
                "RunExperiment: manual tracing is incompatible with "
                "control replication (the replicated front end drops "
                "annotations)");
        }
        core::ReplicationOptions replication = options.replication;
        replication.nodes = options.replicas;
        core::ApopheniaConfig config = options.auto_config;
        config.enabled = options.mode == TracingMode::kAuto;
        stack.replicated = std::make_unique<core::ReplicatedFrontEnd>(
            replication, config, runtime_options);
        stack.front = stack.replicated.get();
        return stack;
    }

    stack.runtime = std::make_unique<rt::Runtime>(runtime_options);
    switch (options.mode) {
      case TracingMode::kUntraced:
        stack.wrapper =
            std::make_unique<api::UntracedFrontend>(*stack.runtime);
        stack.front = stack.wrapper.get();
        break;
      case TracingMode::kManual:
        stack.wrapper =
            std::make_unique<api::DirectFrontend>(*stack.runtime);
        stack.front = stack.wrapper.get();
        break;
      case TracingMode::kAuto:
        if (options.executor_mode == ExecutorMode::kPooled) {
            stack.pool = std::make_unique<support::PooledExecutor>(
                options.pool_threads);
        }
        stack.apophenia = std::make_unique<core::Apophenia>(
            *stack.runtime, options.auto_config, stack.pool.get());
        stack.front = stack.apophenia.get();
        break;
    }
    return stack;
}

PipelineOptions
BuildPipelineOptions(const ExperimentOptions& options)
{
    PipelineOptions pipeline_options;
    pipeline_options.machine = options.machine;
    pipeline_options.costs = options.costs;
    pipeline_options.apophenia_front_end =
        options.mode == TracingMode::kAuto;
    pipeline_options.window = options.auto_config.window;
    pipeline_options.inline_transitive_reduction =
        options.auto_config.inline_transitive_reduction;
    return pipeline_options;
}

}  // namespace

ExperimentResult
RunExperiment(apps::Application& app, const ExperimentOptions& options)
{
    const bool streaming = options.log_mode == LogMode::kStreaming;
    if (streaming && options.replicas > 1) {
        throw std::invalid_argument(
            "RunExperiment: streaming-retire logs require a single "
            "front end (replicas == 1)");
    }
    if (streaming && options.auto_config.inline_transitive_reduction) {
        throw std::invalid_argument(
            "RunExperiment: the inline transitive reduction is a "
            "whole-log transform and needs the retained log");
    }

    FrontendStack stack = BuildFrontend(options);
    api::Frontend& front = *stack.front;
    const PipelineOptions pipeline_options = BuildPipelineOptions(options);

    // Streaming: the simulator and the traced-flags metric run as the
    // operation log's retire consumer; the log recycles its blocks
    // behind them.
    std::optional<PipelineSimulator> streaming_sim;
    TracedFlags streaming_traced;
    if (streaming) {
        streaming_sim.emplace(pipeline_options);
        stack.runtime->EnableLogStreaming([&](const rt::OpView& op) {
            streaming_traced.Consume(op);
            streaming_sim->Consume(op);
        });
    }

    // Iteration boundaries are measured on the issued stream (the
    // uniform frontend counter), which Apophenia forwards verbatim.
    app.Setup(front);
    std::vector<std::size_t> boundaries;
    boundaries.reserve(options.iterations);
    const bool manual = options.mode == TracingMode::kManual;
    for (std::size_t iter = 0; iter < options.iterations; ++iter) {
        app.Iteration(front, iter, manual);
        boundaries.push_back(
            static_cast<std::size_t>(front.Stats().tasks_executed));
    }
    front.Flush();

    const rt::Runtime& runtime = stack.ObservedRuntime();
    ExperimentResult result;
    PipelineResult sim;
    if (streaming) {
        stack.runtime->DrainLogStream();
        sim = streaming_sim->Finish();
        result.warmup_iterations =
            WarmupIterations(streaming_traced, boundaries);
        if (options.keep_coverage_series) {
            result.coverage_series = TracedCoverageSeries(
                streaming_traced, options.coverage_window,
                options.coverage_stride);
        }
    } else {
        sim = SimulatePipeline(runtime.Log(), pipeline_options);
        result.warmup_iterations =
            WarmupIterations(runtime.Log(), boundaries);
        if (options.keep_coverage_series) {
            result.coverage_series = TracedCoverageSeries(
                runtime.Log(), options.coverage_window,
                options.coverage_stride);
        }
    }

    const std::vector<double> ends = IterationEndTimes(sim, boundaries);
    result.iterations_per_second = SteadyThroughput(ends);
    result.makespan_us = sim.makespan_us;
    result.total_tasks = runtime.Log().size();
    result.runtime_stats = runtime.Stats();
    result.replayed_fraction = runtime.Stats().ReplayedFraction();
    result.frontend_stats = front.Stats();
    result.log_peak_resident_bytes = runtime.Log().PeakResidentBytes();
    result.log_retired_ops = runtime.Log().RetiredCount();
    if (stack.apophenia != nullptr) {
        result.apophenia_stats = stack.apophenia->Stats();
    } else if (stack.replicated != nullptr) {
        result.apophenia_stats = stack.replicated->Node(0).Stats();
        result.streams_identical = stack.replicated->StreamsIdentical();
        result.coordination = stack.replicated->Coordination();
    }
    return result;
}

}  // namespace apo::sim
