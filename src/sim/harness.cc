#include "sim/harness.h"

#include <memory>
#include <optional>

#include "runtime/errors.h"

namespace apo::sim {

std::string_view
ModeName(TracingMode mode)
{
    switch (mode) {
      case TracingMode::kUntraced:
        return "untraced";
      case TracingMode::kManual:
        return "manual";
      case TracingMode::kAuto:
        return "auto";
    }
    return "?";
}

namespace {

/** The harness-owned front end plus everything behind it. */
struct FrontendStack {
    std::unique_ptr<rt::Runtime> runtime;  ///< single-runtime modes
    std::unique_ptr<support::PooledExecutor> pool;
    std::unique_ptr<core::Apophenia> apophenia;
    std::unique_ptr<Cluster> cluster;
    std::unique_ptr<api::Frontend> wrapper;  ///< direct/untraced
    api::Frontend* front = nullptr;

    /** The runtime whose operation log the simulator executes (node 0
     * under replication: the stream agreement makes it
     * representative). */
    const rt::Runtime& ObservedRuntime() const
    {
        return cluster != nullptr ? cluster->NodeRuntime(0) : *runtime;
    }
};

FrontendStack
BuildFrontend(const ExperimentOptions& options, bool streaming)
{
    FrontendStack stack;
    rt::RuntimeOptions runtime_options;
    runtime_options.costs = options.costs;
    runtime_options.nodes = options.machine.nodes;
    runtime_options.mismatch_policy = options.mismatch_policy;
    runtime_options.max_trace_templates = options.max_trace_templates;
    runtime_options.log_config = options.log_config;

    if (options.replicas > 1) {
        if (options.mode == TracingMode::kManual) {
            throw rt::RuntimeUsageError(
                "RunExperiment: TracingMode::kManual is incompatible "
                "with ExperimentOptions::replicas > 1 — the replicated "
                "cluster front end drops manual trace annotations; use "
                "TracingMode::kAuto or TracingMode::kUntraced");
        }
        ClusterOptions cluster_options;
        cluster_options.coordination = options.replication;
        cluster_options.coordination.nodes = options.replicas;
        cluster_options.skew = options.skew;
        cluster_options.config = options.auto_config;
        cluster_options.config.enabled =
            options.mode == TracingMode::kAuto;
        cluster_options.runtime_options = runtime_options;
        cluster_options.stream_logs = streaming;
        cluster_options.jobs = options.cluster_jobs;
        cluster_options.share_mining_cache = options.share_mining_cache;
        cluster_options.shared_decisions = options.shared_decisions;
        stack.cluster = std::make_unique<Cluster>(cluster_options);
        stack.front = stack.cluster.get();
        return stack;
    }

    stack.runtime = std::make_unique<rt::Runtime>(runtime_options);
    switch (options.mode) {
      case TracingMode::kUntraced:
        stack.wrapper =
            std::make_unique<api::UntracedFrontend>(*stack.runtime);
        stack.front = stack.wrapper.get();
        break;
      case TracingMode::kManual:
        stack.wrapper =
            std::make_unique<api::DirectFrontend>(*stack.runtime);
        stack.front = stack.wrapper.get();
        break;
      case TracingMode::kAuto:
        if (options.executor_mode == ExecutorMode::kPooled) {
            stack.pool = std::make_unique<support::PooledExecutor>(
                options.pool_threads);
        }
        stack.apophenia = std::make_unique<core::Apophenia>(
            *stack.runtime, options.auto_config, stack.pool.get());
        stack.front = stack.apophenia.get();
        break;
    }
    return stack;
}

PipelineOptions
BuildPipelineOptions(const ExperimentOptions& options)
{
    PipelineOptions pipeline_options;
    pipeline_options.machine = options.machine;
    pipeline_options.costs = options.costs;
    pipeline_options.apophenia_front_end =
        options.mode == TracingMode::kAuto;
    pipeline_options.window = options.auto_config.window;
    pipeline_options.inline_transitive_reduction =
        options.auto_config.inline_transitive_reduction;
    // The same skew that perturbs the cluster's coordination timing
    // stretches the simulated makespan (kNone = exactly 1.0 factors,
    // bit-identical to a skew-free simulation).
    pipeline_options.skew = options.skew;
    return pipeline_options;
}

}  // namespace

ExperimentResult
RunExperiment(apps::Application& app, const ExperimentOptions& options)
{
    const bool streaming = options.log_mode == LogMode::kStreaming;
    const bool reduce = options.auto_config.inline_transitive_reduction;
    if (streaming && reduce && options.auto_config.window == 0) {
        throw rt::RuntimeUsageError(
            "RunExperiment: the inline transitive reduction over a "
            "streaming log needs a bounded window (-lg:window > 0); an "
            "unbounded reduction is a whole-log transform");
    }

    FrontendStack stack = BuildFrontend(options, streaming);
    api::Frontend& front = *stack.front;
    const PipelineOptions pipeline_options = BuildPipelineOptions(options);

    // Streaming: the simulator and the traced-flags metric run as the
    // operation log's retire consumer (node 0's under replication);
    // the logs recycle their blocks behind them. The inline transitive
    // reduction, a retained-path log transform, streams through the
    // windowed reducer instead — same edges, O(window) resident state.
    std::optional<PipelineSimulator> streaming_sim;
    std::optional<rt::WindowedTransitiveReducer> streaming_reducer;
    std::vector<rt::Dependence> reduce_scratch;
    TracedFlags streaming_traced;
    StreamDigest streaming_digest;
    if (streaming) {
        PipelineOptions sim_options = pipeline_options;
        sim_options.inline_transitive_reduction = false;
        streaming_sim.emplace(sim_options);
        if (reduce) {
            streaming_reducer.emplace(options.auto_config.window);
        }
        auto consumer = [&](const rt::OpView& op) {
            streaming_traced.Consume(op);
            streaming_digest.Consume(op);
            if (streaming_reducer) {
                reduce_scratch.assign(op.dependences.begin(),
                                      op.dependences.end());
                streaming_reducer->Reduce(op.index, reduce_scratch);
                rt::OpView reduced = op;
                reduced.dependences = rt::DependenceSpan(
                    std::span<const rt::Dependence>(reduce_scratch));
                streaming_sim->Consume(reduced);
            } else {
                streaming_sim->Consume(op);
            }
        };
        if (stack.cluster != nullptr) {
            stack.cluster->AddLogConsumer(0, consumer);
        } else {
            stack.runtime->EnableLogStreaming(consumer);
        }
    }

    // Iteration boundaries are measured on the issued stream (the
    // uniform frontend counter), which Apophenia forwards verbatim.
    app.Setup(front);
    std::vector<std::size_t> boundaries;
    boundaries.reserve(options.iterations);
    const bool manual = options.mode == TracingMode::kManual;
    for (std::size_t iter = 0; iter < options.iterations; ++iter) {
        app.Iteration(front, iter, manual);
        boundaries.push_back(
            static_cast<std::size_t>(front.Stats().tasks_executed));
    }
    front.Flush();

    const rt::Runtime& runtime = stack.ObservedRuntime();
    ExperimentResult result;
    PipelineResult sim;
    if (streaming) {
        if (stack.cluster != nullptr) {
            stack.cluster->DrainLogStreams();
        } else {
            stack.runtime->DrainLogStream();
        }
        sim = streaming_sim->Finish();
        result.warmup_iterations =
            WarmupIterations(streaming_traced, boundaries);
        if (options.keep_coverage_series) {
            result.coverage_series = TracedCoverageSeries(
                streaming_traced, options.coverage_window,
                options.coverage_stride);
        }
    } else {
        sim = SimulatePipeline(runtime.Log(), pipeline_options);
        result.warmup_iterations =
            WarmupIterations(runtime.Log(), boundaries);
        if (options.keep_coverage_series) {
            result.coverage_series = TracedCoverageSeries(
                runtime.Log(), options.coverage_window,
                options.coverage_stride);
        }
    }

    const std::vector<double> ends = IterationEndTimes(sim, boundaries);
    result.iterations_per_second = SteadyThroughput(ends);
    result.makespan_us = sim.makespan_us;
    result.total_tasks = runtime.Log().size();
    result.runtime_stats = runtime.Stats();
    result.replayed_fraction = runtime.Stats().ReplayedFraction();
    result.trace_cache_evictions = runtime.Stats().traces_evicted;
    result.frontend_stats = front.Stats();
    result.log_peak_resident_bytes = runtime.Log().PeakResidentBytes();
    result.log_retired_ops = runtime.Log().RetiredCount();
    auto add_finder_stats = [&result](const core::FinderStats& finder) {
        result.mining_fast_path_hits += finder.mining_fast_path_hits;
        result.mining_repairs += finder.mining_repairs;
        result.mining_full += finder.mining_full;
    };
    if (stack.cluster == nullptr) {
        // Single-runtime runs report the same stream identity the
        // cluster nodes do (and the svc::TraceService bit-identity
        // check diffs against).
        const StreamDigest digest = streaming
                                        ? streaming_digest
                                        : StreamDigest::Of(runtime.Log());
        result.stream_digest = digest.Value();
        result.stream_digest_ops = digest.Count();
    }
    if (stack.apophenia != nullptr) {
        result.apophenia_stats = stack.apophenia->Stats();
        add_finder_stats(stack.apophenia->Finder());
        result.mining_cache_hits = stack.apophenia->Finder().mining_cache_hits;
        result.candidate_digest = stack.apophenia->CandidateDigest();
    } else if (stack.cluster != nullptr) {
        // The decision-making engine whose stats/digests describe the
        // run: the shared decider (whose decisions every node
        // applied), or node 0's engine in per-node mode — identical
        // numbers by the bit-identity property.
        const bool shared = stack.cluster->SharedDecisions();
        if (options.mode == TracingMode::kAuto) {
            const core::Apophenia& decider =
                shared ? stack.cluster->Decider() : stack.cluster->Node(0);
            result.apophenia_stats = decider.Stats();
            result.candidate_digest = decider.CandidateDigest();
        }
        result.streams_identical = stack.cluster->StreamDigestsAgree();
        result.coordination = stack.cluster->Coordination();
        result.node_metrics = stack.cluster->PerNode();
        for (std::size_t n = 0; n < stack.cluster->Nodes(); ++n) {
            result.log_peak_resident_bytes = std::max(
                result.log_peak_resident_bytes,
                stack.cluster->NodeRuntime(n).Log().PeakResidentBytes());
            if (!shared) {
                add_finder_stats(stack.cluster->Node(n).Finder());
            }
        }
        if (shared) {
            add_finder_stats(stack.cluster->Decider().Finder());
        }
        const core::MiningCache::Stats cache =
            stack.cluster->MiningCacheStats();
        result.mining_cache_hits = cache.hits;
        result.mining_cache_misses = cache.misses;
        result.mining_cache_windows = cache.windows;
        result.mining_cache_evictions = cache.evictions;
        const DecisionStats decisions = stack.cluster->DecisionCost();
        result.shared_decisions = decisions.shared;
        result.decision_ns = decisions.decision_ns;
        result.decision_apply_ns = decisions.apply_ns;
        result.decision_batches = decisions.batches;
        result.decisions_broadcast = decisions.decisions;
        result.decision_fallbacks = decisions.fallbacks;
        const StreamDigest digest = stack.cluster->NodeDigest(0);
        result.stream_digest = digest.Value();
        result.stream_digest_ops = digest.Count();
    }
    return result;
}

}  // namespace apo::sim
