#include "sim/harness.h"

#include <memory>

#include "apps/sink.h"

namespace apo::sim {

namespace {

/** Decorates a sink to count issued tasks (iteration boundaries are
 * measured on the issued stream, which Apophenia forwards verbatim). */
class CountingSink final : public apps::TaskSink {
  public:
    explicit CountingSink(apps::TaskSink& inner) : inner_(&inner) {}

    rt::RegionId CreateRegion() override { return inner_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) override
    {
        inner_->DestroyRegion(r);
    }
    void ExecuteTask(const rt::TaskLaunch& launch) override
    {
        ++count_;
        inner_->ExecuteTask(launch);
    }
    void BeginTrace(rt::TraceId id) override { inner_->BeginTrace(id); }
    void EndTrace(rt::TraceId id) override { inner_->EndTrace(id); }
    void Flush() override { inner_->Flush(); }

    std::size_t Count() const { return count_; }

  private:
    apps::TaskSink* inner_;
    std::size_t count_ = 0;
};

}  // namespace

std::string_view
ModeName(TracingMode mode)
{
    switch (mode) {
      case TracingMode::kUntraced:
        return "untraced";
      case TracingMode::kManual:
        return "manual";
      case TracingMode::kAuto:
        return "auto";
    }
    return "?";
}

ExperimentResult
RunExperiment(apps::Application& app, const ExperimentOptions& options)
{
    rt::RuntimeOptions runtime_options;
    runtime_options.costs = options.costs;
    runtime_options.nodes = options.machine.nodes;
    rt::Runtime runtime(runtime_options);

    std::unique_ptr<support::PooledExecutor> pool;
    std::unique_ptr<core::Apophenia> front_end;
    std::unique_ptr<apps::TaskSink> sink;
    switch (options.mode) {
      case TracingMode::kUntraced:
        sink = std::make_unique<apps::UntracedSink>(runtime);
        break;
      case TracingMode::kManual:
        sink = std::make_unique<apps::RuntimeSink>(runtime);
        break;
      case TracingMode::kAuto:
        if (options.executor_mode == ExecutorMode::kPooled) {
            pool = std::make_unique<support::PooledExecutor>(
                options.pool_threads);
        }
        front_end = std::make_unique<core::Apophenia>(
            runtime, options.auto_config, pool.get());
        sink = std::make_unique<apps::AutoSink>(*front_end);
        break;
    }
    CountingSink counting(*sink);

    app.Setup(counting);
    std::vector<std::size_t> boundaries;
    boundaries.reserve(options.iterations);
    const bool manual = options.mode == TracingMode::kManual;
    for (std::size_t iter = 0; iter < options.iterations; ++iter) {
        app.Iteration(counting, iter, manual);
        boundaries.push_back(counting.Count());
    }
    counting.Flush();

    PipelineOptions pipeline_options;
    pipeline_options.machine = options.machine;
    pipeline_options.costs = options.costs;
    pipeline_options.apophenia_front_end =
        options.mode == TracingMode::kAuto;
    pipeline_options.window = options.auto_config.window;
    pipeline_options.inline_transitive_reduction =
        options.auto_config.inline_transitive_reduction;
    const PipelineResult sim = SimulatePipeline(runtime.Log(),
                                                pipeline_options);

    ExperimentResult result;
    const std::vector<double> ends = IterationEndTimes(sim, boundaries);
    result.iterations_per_second = SteadyThroughput(ends);
    result.makespan_us = sim.makespan_us;
    result.total_tasks = runtime.Log().size();
    result.runtime_stats = runtime.Stats();
    result.replayed_fraction = runtime.Stats().ReplayedFraction();
    result.warmup_iterations =
        WarmupIterations(runtime.Log(), boundaries);
    if (front_end != nullptr) {
        result.apophenia_stats = front_end->Stats();
    }
    if (options.keep_coverage_series) {
        result.coverage_series = TracedCoverageSeries(
            runtime.Log(), options.coverage_window,
            options.coverage_stride);
    }
    return result;
}

}  // namespace apo::sim
