#include "sim/metrics.h"

#include <algorithm>

namespace apo::sim {

std::vector<double>
IterationEndTimes(const PipelineResult& result,
                  const std::vector<std::size_t>& boundaries)
{
    // finish_us is not monotone (execution completes out of order), so
    // track the running maximum up to each boundary.
    std::vector<double> ends;
    ends.reserve(boundaries.size());
    double running_max = 0.0;
    std::size_t k = 0;
    for (std::size_t boundary : boundaries) {
        for (; k < boundary && k < result.finish_us.size(); ++k) {
            running_max = std::max(running_max, result.finish_us[k]);
        }
        ends.push_back(running_max);
    }
    return ends;
}

double
SteadyThroughput(const std::vector<double>& iteration_ends_us,
                 std::size_t measure)
{
    const std::size_t n = iteration_ends_us.size();
    if (n < 2) {
        return 0.0;
    }
    if (measure == 0) {
        measure = std::max<std::size_t>(n / 4, 1);
    }
    measure = std::min(measure, n - 1);
    // Median per-iteration duration over the tail: robust against the
    // occasional expensive iteration (e.g. Apophenia memoizing a new,
    // better trace mid-run), which is amortized away in a production
    // run but would dominate a short mean-based window.
    std::vector<double> durations;
    durations.reserve(measure);
    for (std::size_t i = n - measure; i < n; ++i) {
        durations.push_back(iteration_ends_us[i] -
                            iteration_ends_us[i - 1]);
    }
    std::nth_element(durations.begin(),
                     durations.begin() + durations.size() / 2,
                     durations.end());
    const double median_us = durations[durations.size() / 2];
    if (median_us <= 0.0) {
        return 0.0;
    }
    return 1e6 / median_us;
}

TracedFlags
TracedFlags::Of(const rt::OperationLog& log)
{
    TracedFlags traced;
    traced.flags_.reserve(log.size());
    for (const auto& op : log) {
        traced.Consume(op);
    }
    return traced;
}

std::size_t
WarmupIterations(const TracedFlags& traced,
                 const std::vector<std::size_t>& boundaries,
                 double threshold)
{
    const std::vector<std::uint8_t>& flags = traced.Flags();
    // Steady state = one past the last iteration whose own traced
    // fraction falls below the threshold. The default threshold is
    // mild (0.5) so that permanent irregular interruptions — CFD's
    // residual checks, HTR's statistics — do not count as leaving the
    // steady state, while genuinely untraced warmup iterations do.
    std::size_t warmup = 0;
    std::size_t begin = 0;
    // The final iterations are polluted by the end-of-run flush (the
    // front-end forwards its pending tail untraced when the program
    // ends), so they are excluded from the steady-state scan.
    const std::size_t scan =
        boundaries.size() > 2 ? boundaries.size() - 2 : boundaries.size();
    for (std::size_t it = 0; it < scan; ++it) {
        const std::size_t end = std::min(boundaries[it], flags.size());
        std::size_t count = 0;
        for (std::size_t k = begin; k < end; ++k) {
            count += flags[k];
        }
        const std::size_t total = end - begin;
        if (total != 0 &&
            static_cast<double>(count) <
                threshold * static_cast<double>(total)) {
            warmup = it + 1;
        }
        begin = end;
    }
    return warmup;
}

std::size_t
WarmupIterations(const rt::OperationLog& log,
                 const std::vector<std::size_t>& boundaries,
                 double threshold)
{
    return WarmupIterations(TracedFlags::Of(log), boundaries, threshold);
}

std::vector<std::pair<std::size_t, double>>
TracedCoverageSeries(const TracedFlags& traced, std::size_t window,
                     std::size_t stride)
{
    const std::vector<std::uint8_t>& flags = traced.Flags();
    std::vector<std::pair<std::size_t, double>> series;
    if (flags.empty() || window == 0 || stride == 0) {
        return series;
    }
    // Prefix sums of traced flags for O(1) windows.
    std::vector<std::size_t> prefix(flags.size() + 1, 0);
    for (std::size_t i = 0; i < flags.size(); ++i) {
        prefix[i + 1] = prefix[i] + flags[i];
    }
    for (std::size_t i = stride; i <= flags.size(); i += stride) {
        const std::size_t lo = i > window ? i - window : 0;
        const double count =
            static_cast<double>(prefix[i] - prefix[lo]);
        const double denom = static_cast<double>(i - lo);
        series.emplace_back(i, 100.0 * count / denom);
    }
    return series;
}

std::vector<std::pair<std::size_t, double>>
TracedCoverageSeries(const rt::OperationLog& log, std::size_t window,
                     std::size_t stride)
{
    return TracedCoverageSeries(TracedFlags::Of(log), window, stride);
}

}  // namespace apo::sim
