/**
 * @file
 * Timeline export: dump a simulated execution as a Chrome trace-event
 * file (chrome://tracing, Perfetto) for visual inspection.
 *
 * One timeline row per GPU plus one per node analysis resource; each
 * operation becomes a duration event annotated with its analysis mode
 * and trace id. Useful for eyeballing the pipeline behaviour behind
 * the figures: untraced analysis serialization, replay blocks, the
 * FlexFlow drain.
 */
#ifndef APOPHENIA_SIM_TIMELINE_H
#define APOPHENIA_SIM_TIMELINE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "sim/pipeline.h"

namespace apo::sim {

/**
 * Write the execution timeline as Chrome trace-event JSON.
 *
 * @param log     the runtime operation log that was simulated.
 * @param result  the simulation of that log (same options!).
 * @param options the pipeline options used for the simulation.
 * @param out     destination stream.
 */
void WriteChromeTrace(const rt::OperationLog& log,
                      const PipelineResult& result,
                      const PipelineOptions& options, std::ostream& out);

/** Convenience: render to a string (testing, small logs). */
std::string ChromeTraceJson(const rt::OperationLog& log,
                            const PipelineResult& result,
                            const PipelineOptions& options);

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_TIMELINE_H
