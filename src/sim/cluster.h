/**
 * @file
 * Skew-aware multi-node cluster simulation with incremental stream
 * agreement (paper section 5.1 at scale).
 *
 * Under dynamic control replication the application runs on every
 * node and each node hosts its own Apophenia instance over its own
 * runtime shard; all instances must forward bit-identical call
 * sequences. The only source of divergence is the completion timing
 * of the asynchronous mining jobs, so the nodes agree, per job, on a
 * task-stream *position* at which its results are ingested — and a
 * node whose job has not completed by the agreed position forces the
 * whole cluster to stall until it has (after which the agreed slack
 * is widened for subsequent jobs).
 *
 * `sim::Cluster` is that protocol made measurable at scale. It owns
 * one `core::Apophenia` + `rt::Runtime` per simulated node, drives
 * them in lockstep through the one `api::Frontend` issue surface, and
 * runs every node under a *virtual clock* perturbed by a pluggable
 * `SkewModel`:
 *
 *  - kNone:         ideal nodes (the paper's configuration);
 *  - kJitter:       seeded per-task rate noise (OS scheduling,
 *                   network variance);
 *  - kStraggler:    one persistently slow node (a failing DIMM, a
 *                   thermally throttled GPU);
 *  - kInterference: periodic whole-node slowdown bursts (interfering
 *                   checkpoints, co-tenant interference).
 *
 * Skew slows both a node's task-issue rate and its mining jobs, so
 * agreement misses, per-node stalls and the adaptive slack trajectory
 * become observable outputs (`CoordinationStats`, `NodeMetrics`)
 * instead of hidden constants.
 *
 * **Incremental stream agreement.** The control-replication safety
 * property — all nodes issued identical streams — was previously
 * checked by an all-pairs walk over fully retained operation logs,
 * which is exactly what the streaming-retire log (bounded resident
 * memory) throws away. `StreamDigest` replaces it: a per-node rolling
 * hash over every issued call (token, analysis mode, trace id,
 * dependence edges), fed incrementally from each node's streaming-
 * retire consumer in O(1) amortized time and zero allocations per
 * operation. Digests agree ⇔ streams identical (up to hash
 * collision), at constant memory per node — so control replication
 * now composes with `sim::LogMode::kStreaming`.
 *
 * **Parallel execution engine.** Nodes are independent between
 * coordination points (each owns its runtime shard, finder and trie;
 * they interact only through the agreed-count schedule, which this
 * class computes centrally), so the cluster batches the issued stream
 * up to the next point at which the serial schedule could act — the
 * front job's due position, bounded by the current slack and
 * `ClusterOptions::max_batch_tasks` — and fans the per-node advance
 * loops over a `support::TaskTeam` with a barrier at every batch end.
 * Scheduling and ingestion decisions stay on the driving thread, so
 * every observable (digests, CoordinationStats, NodeMetrics, the
 * per-node rng draws) is byte-identical to the serial schedule at any
 * thread count, including jobs = 1 (which runs inline). The thread
 * count comes from `ClusterOptions::jobs` (0 = the APO_JOBS
 * environment override, else hardware_concurrency).
 *
 * **Shared mining cache.** In a control-replicated run every node
 * mines the same windows of the same stream; a cluster-wide
 * `core::MiningCache` (content-addressed by each slice's rolling
 * hash; hits detected, never assumed) lets node k adopt the first
 * finisher's candidate set, so each distinct window is mined once
 * cluster-wide instead of N times — the dominant cost of a no-skew
 * replicated run. Adoption is bit-identical to local mining (MineSlice
 * is pure), so the cache changes wall-clock only.
 *
 * **Shared decision engine.** The mining cache still left trie
 * matching, candidate ingestion and replay decisions paid N times on
 * byte-identical streams. With `ClusterOptions::shared_decisions`
 * (default on; `-lg:auto_trace:no_shared_decisions` or per-node-mode
 * tests disable), the cluster hosts no per-node Apophenia at all:
 * one `core::DecisionEngine` consumes the issued stream exactly once
 * on the driving thread and broadcasts POD decision events — riding
 * the same safe-horizon batches — which the team fan-out merely
 * *applies* to each node's runtime. Total decision cost becomes O(1)
 * in N; the issued streams, digests, CoordinationStats and candidate
 * digests are bit-identical to per-node engines. Soundness is not
 * assumed: each node's incremental StreamDigest is compared against
 * the decision runtime's at every barrier, and a diverged node is
 * quarantined — it falls back to a cold local Apophenia (counted in
 * DecisionStats::fallbacks) while the healthy nodes continue
 * bit-identically.
 *
 * **Elastic membership (fault::).** A `ClusterOptions::FaultPlan`
 * schedules node crashes and rejoins; `checkpoint_interval_tasks`
 * arms periodic cluster checkpoints (one healthy node's runtime image
 * plus stream digest, written with `fault::CheckpointWriter`). A
 * rejoining node resyncs from a healthy peer: it installs the newest
 * checkpoint and replays the decision tail retained since it, after
 * which its incremental digest — restored from the image and advanced
 * by the replay — re-enters the per-barrier soundness check. The same
 * resync path heals quarantined (diverged) nodes. The coordination
 * schedule remains a function of the full fixed roster, so healthy
 * nodes run bit-identically to a churn-free run; checkpoint writes
 * and resync stalls are charged to the virtual clocks only (see the
 * cost model in ClusterOptions and `FaultStats`).
 */
#ifndef APOPHENIA_SIM_CLUSTER_H
#define APOPHENIA_SIM_CLUSTER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "api/frontend.h"
#include "core/apophenia.h"
#include "core/config.h"
#include "core/decision_engine.h"
#include "core/mining_cache.h"
#include "fault/checkpoint.h"
#include "runtime/runtime.h"
#include "sim/skew.h"
#include "support/executor.h"
#include "support/hash.h"
#include "support/rng.h"

namespace apo::sim {

/** Tuning of the agreed-count coordination protocol. */
struct CoordinationOptions {
    std::size_t nodes = 2;
    std::uint64_t seed = 1;
    /** Mean simulated mining-job latency, measured in observed tasks
     * (before the skew factor). */
    double mean_latency_tasks = 200.0;
    /** Relative jitter: latency is uniform in mean*(1 ± jitter). */
    double jitter = 0.75;
    /** Initial agreed slack (operations between job launch and its
     * ingestion point). */
    std::uint64_t initial_slack = 64;
};

/** Aggregate statistics of the coordination protocol. */
struct CoordinationStats {
    std::uint64_t jobs_coordinated = 0;
    /** Jobs whose agreed point arrived before every node finished
     * (the agreement misses that force a slack increase). */
    std::uint64_t late_jobs = 0;
    std::uint64_t final_slack = 0;
    /** Largest slack the adaptation ever reached. */
    std::uint64_t peak_slack = 0;
};

/** Aggregate decision-path accounting of one cluster run. */
struct DecisionStats {
    /** True when the run used the shared decision engine. */
    bool shared = false;
    /** Cluster-wide nanoseconds spent *making* decisions: the shared
     * decider's feed + coordinated-ingest + flush time on the driving
     * thread, or (per-node mode) the summed per-node engine time —
     * the quantity that grows ~linearly in N with per-node engines
     * and stays ~flat with the shared engine. */
    std::uint64_t decision_ns = 0;
    /** Shared mode only: summed nanoseconds the nodes spent applying
     * broadcast decisions (per-node mode folds the equivalent work
     * into decision_ns). Quarantined nodes' local-engine time lands
     * here too. */
    std::uint64_t apply_ns = 0;
    /** Safe-horizon batch barriers executed. */
    std::uint64_t batches = 0;
    /** Decision events broadcast (0 in per-node mode). */
    std::uint64_t decisions = 0;
    /** Nodes quarantined after a StreamDigest divergence (each fell
     * back to a local decision engine). */
    std::uint64_t fallbacks = 0;
};

/** Per-node observables of one cluster run. */
struct NodeMetrics {
    /** The node's virtual clock after the run: sum of per-task skew
     * factors (== tasks issued on an ideal node). */
    double virtual_time_tasks = 0.0;
    /** Jobs *this node* completed past the agreed point (it made the
     * others wait). */
    std::uint64_t late_jobs = 0;
    /** Stream positions this node spent stalled at *in-stream*
     * agreement points, waiting for slower nodes (the end-of-stream
     * drain ingests at positions that never elapse and is not
     * charged). */
    double stall_tasks = 0.0;
    double max_stall_tasks = 0.0;
};

/**
 * Incremental digest of one node's issued call stream: a rolling
 * hash over (token, analysis mode, trace id, dependence edges) of
 * every operation, in log order. Equal digests (value and count) on
 * every node certify the control-replication safety property without
 * retaining any log — feed it from the streaming-retire consumer.
 * Consume() is O(1 + edges) with zero allocations.
 */
class StreamDigest {
  public:
    void Consume(const rt::OpView& op)
    {
        std::uint64_t h = support::HashCombine(state_, op.token);
        h = support::HashCombine(h, static_cast<std::uint64_t>(op.mode));
        h = support::HashCombine(h, op.trace);
        for (const rt::Dependence& d : op.dependences) {
            h = support::HashCombine(h, d.from);
            h = support::HashCombine(h, d.to);
            h = support::HashCombine(
                h, static_cast<std::uint64_t>(d.kind));
        }
        state_ = h;
        ++count_;
    }

    std::uint64_t Value() const { return state_; }
    std::uint64_t Count() const { return count_; }

    /** Raw fold state, for checkpointing (Value() without the count;
     * Restore() round-trips it). */
    std::uint64_t RawState() const { return state_; }
    /** Reset to a checkpointed (state, count) pair: subsequent
     * Consume() calls continue the fold exactly where the saved
     * digest left off. */
    void Restore(std::uint64_t state, std::uint64_t count)
    {
        state_ = state;
        count_ = count;
    }

    friend bool operator==(const StreamDigest&,
                           const StreamDigest&) = default;

    /** Digest of a retained log (the same fold, run post-hoc). */
    static StreamDigest Of(const rt::OperationLog& log);

  private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
    std::uint64_t count_ = 0;
};

/** Cluster construction parameters. */
struct ClusterOptions {
    CoordinationOptions coordination;
    SkewModel skew;
    /** Per-node front-end tuning; config.enabled == false replicates
     * with tracing disabled (every node a pass-through). */
    core::ApopheniaConfig config;
    rt::RuntimeOptions runtime_options;
    /** Put every node's operation log in streaming-retire mode: the
     * per-node StreamDigest is fed incrementally and blocks recycle,
     * so resident log memory stays bounded on all N nodes regardless
     * of stream length. Extra consumers (the harness's simulator)
     * attach via AddLogConsumer before the first launch. */
    bool stream_logs = false;
    /** Threads driving the per-node advance loops (the parallel
     * engine; see file comment). 0 = the APO_JOBS environment
     * variable if set, else std::thread::hardware_concurrency();
     * always clamped to the node count. Every value yields
     * byte-identical results; 1 is the serial schedule run inline. */
    std::size_t jobs = 0;
    /** Upper bound on buffered launches between barriers (caps the
     * batch storage when the agreed slack grows large). Any positive
     * value is result-identical; it trades barrier frequency against
     * buffer memory. */
    std::size_t max_batch_tasks = 256;
    /** Share one content-addressed mining cache across the nodes so
     * identical history windows are mined once cluster-wide (see
     * core/mining_cache.h). Behaviour-invariant; wall-clock only. */
    bool share_mining_cache = true;
    /** Published windows the cache retains (evicted in
     * core::MiningCache::kEvictionPolicy order beyond it; 0 =
     * unbounded). Bounds cache memory on unbounded streams — an
     * evicted window that recurs is simply re-mined. */
    std::size_t mining_cache_windows = 1024;
    /** Use the shared decision engine (see file comment): one decider
     * consumes the stream once and the nodes apply its broadcast
     * decisions, with per-barrier digest checks. Active only when
     * tracing is enabled, config.shared_decisions is true, and the
     * cluster has more than one node; otherwise (or when false) every
     * node hosts its own Apophenia. Bit-identical either way. */
    bool shared_decisions = true;
    /** Mining memo for the decider's finder in place of (or, in
     * per-node mode, instead of) the cluster-internal cache — the
     * service layer passes its service-wide cross-tenant cache here.
     * Not owned; must outlive the cluster. */
    core::MiningCache* external_mining_cache = nullptr;
    /** Test-only fault injection: on absolute stream indices in
     * [from_task, until_task), node `node` applies launches with
     * their token XORed by `token_xor` — a corrupted replica. The
     * digest check must detect and quarantine it (shared-decision
     * mode). A finite `until_task` makes the corruption transient:
     * once the stream passes it, the cluster heals the quarantined
     * node by peer resync (checkpoint install + decision-tail
     * replay) at the next barrier. */
    struct FaultInjection {
        bool enabled = false;
        std::size_t node = 0;
        std::uint64_t from_task = 0;
        std::uint64_t until_task = UINT64_MAX;
        rt::TokenHash token_xor = 0;
    };
    FaultInjection fault;

    // -- Elastic membership (fault::) ---------------------------------------

    /** One scheduled crash/rejoin of the fault plan. The node crashes
     * (its runtime is destroyed) at the barrier covering stream index
     * `crash_at_task` and, if `rejoin_at_task` is finite, rejoins at
     * the barrier covering that index by resyncing from a healthy
     * peer: it installs the newest cluster checkpoint and replays the
     * retained decision tail since it. Healthy nodes continue
     * bit-identically to a churn-free run — the coordination schedule
     * keeps drawing every roster member's latency, crashed or not. */
    struct FaultEvent {
        std::size_t node = 0;
        std::uint64_t crash_at_task = 0;
        std::uint64_t rejoin_at_task = UINT64_MAX;  ///< never
    };
    /** Scheduled membership churn. Requires the shared decision
     * engine (the decision tail is what a rejoiner replays). */
    struct FaultPlan {
        std::vector<FaultEvent> events;
    };
    FaultPlan fault_plan;

    /** Take a cluster checkpoint (the newest healthy node's runtime
     * image + stream digest, via fault::CheckpointWriter) every this
     * many issued tasks; 0 = never. Rejoining nodes install the
     * newest image; the decision tail retained since it covers the
     * rest. Requires the shared decision engine. Disabled cluster-
     * wide by ApopheniaConfig::checkpoints == false (the
     * `-lg:auto_trace:no_checkpoints` escape hatch) — rejoiners then
     * replay the full decision tail from stream start. */
    std::uint64_t checkpoint_interval_tasks = 0;

    /** Virtual-time model of checkpoint/recovery cost. Writing a
     * checkpoint pauses every alive node for `pause_per_kb` virtual
     * tasks per KiB of image; a rejoin stalls the whole cluster for
     * the install (same per-KiB rate) plus `resync_per_event` virtual
     * tasks per replayed decision-tail event. Purely an output model:
     * digests and decisions are unaffected. */
    double checkpoint_pause_tasks_per_kb = 0.25;
    double resync_tasks_per_event = 0.05;
};

/** Aggregate fault-tolerance accounting of one cluster run. */
struct FaultStats {
    std::uint64_t checkpoints_taken = 0;
    std::uint64_t last_checkpoint_bytes = 0;
    std::uint64_t total_checkpoint_bytes = 0;
    std::uint64_t crashes = 0;
    std::uint64_t rejoins = 0;  ///< scheduled rejoins (crash recovery)
    std::uint64_t heals = 0;    ///< quarantine resyncs (divergence recovery)
    std::uint64_t tail_events_replayed = 0;
    /** Virtual tasks charged to alive nodes for checkpoint writes and
     * for resync stalls (see the cost model in ClusterOptions). */
    double checkpoint_pause_tasks = 0.0;
    double recovery_stall_tasks = 0.0;
};

/**
 * N Apophenia instances over N runtime shards, fed the same stream
 * through the one api::Frontend issue surface, with deterministic
 * skew-aware coordinated analysis ingestion. See file comment.
 */
class Cluster final : public api::Frontend {
  public:
    explicit Cluster(const ClusterOptions& options);

    // -- api::Frontend: broadcast region management -------------------------

    std::string_view Name() const override { return "cluster"; }

    /** Create the region on every node; the deterministic per-node
     * allocators must agree on the id (throws rt::RuntimeUsageError
     * if they have diverged — i.e., a node was driven outside this
     * front end). */
    rt::RegionId CreateRegion() override;
    void DestroyRegion(rt::RegionId r) override;
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t count) override;

    // -- Introspection ------------------------------------------------------

    std::size_t Nodes() const { return nodes_.size(); }
    /** Node i's front-end engine. Per-node mode only — in shared-
     * decision mode the nodes host no engine (the decider makes every
     * decision; see Decider()) unless node i was quarantined into its
     * local fallback engine. */
    core::Apophenia& Node(std::size_t i)
    {
        if (nodes_[i]->front_end == nullptr) {
            throw rt::RuntimeUsageError(
                "Cluster::Node: shared-decision mode hosts no per-node "
                "engine (see ClusterOptions::shared_decisions; use "
                "Decider())");
        }
        return *nodes_[i]->front_end;
    }
    const core::Apophenia& Node(std::size_t i) const
    {
        return const_cast<Cluster*>(this)->Node(i);
    }
    const rt::Runtime& NodeRuntime(std::size_t i) const
    {
        if (nodes_[i]->runtime == nullptr) {
            throw rt::RuntimeUsageError(
                "Cluster::NodeRuntime: node is crashed (see the fault "
                "plan)");
        }
        return *nodes_[i]->runtime;
    }

    // -- Shared decision engine ---------------------------------------------

    /** True when this run uses the shared decision engine. */
    bool SharedDecisions() const { return engine_ != nullptr; }
    /** The shared decider (shared-decision mode only): its stats,
     * finder and candidate digest are what Node(0)'s would have been
     * in per-node mode — bit-identical by construction. */
    const core::Apophenia& Decider() const
    {
        if (engine_ == nullptr) {
            throw rt::RuntimeUsageError(
                "Cluster::Decider: per-node mode has no shared decision "
                "engine (see ClusterOptions::shared_decisions)");
        }
        return engine_->Decider();
    }
    /** Decision-path cost/fallback accounting (both modes). */
    DecisionStats DecisionCost() const;
    /** True iff node i diverged and was quarantined into a local
     * fallback engine. */
    bool NodeQuarantined(std::size_t i) const
    {
        return nodes_[i]->quarantined;
    }

    // -- Fault tolerance (fault::) ------------------------------------------

    /** True iff node i is currently crashed (between its fault-plan
     * crash and rejoin points). */
    bool NodeCrashed(std::size_t i) const { return nodes_[i]->crashed; }
    /** Checkpoint / membership accounting. */
    const FaultStats& FaultRecovery() const { return fault_stats_; }
    /** The newest cluster checkpoint image (empty if none taken). */
    const std::vector<std::uint8_t>& CheckpointImage() const
    {
        return checkpoint_image_;
    }
    /**
     * Resync a quarantined node from a healthy peer right now: its
     * diverged runtime is discarded and rebuilt from the newest
     * checkpoint plus the retained decision tail, after which it
     * rejoins the shared-decision broadcast (counted in
     * FaultStats::heals). Requires the shared decision engine with
     * tail retention (a fault plan, fault injection, or a checkpoint
     * interval). Throws rt::RuntimeUsageError if node i is not
     * quarantined.
     */
    void ResyncQuarantined(std::size_t i);

    const CoordinationStats& Coordination() const { return stats_; }
    const std::vector<NodeMetrics>& PerNode() const { return metrics_; }
    const ClusterOptions& Options() const { return options_; }
    /** Resolved thread count of the parallel engine (after the
     * APO_JOBS / hardware_concurrency defaulting). */
    std::size_t Jobs() const { return jobs_; }
    /** Shared-mining-cache counters (all zero when the cache is
     * disabled or the run mined nothing). */
    core::MiningCache::Stats MiningCacheStats() const
    {
        return mining_cache_.Snapshot();
    }

    // -- Stream agreement ---------------------------------------------------

    /** Node i's incremental stream digest. Streaming mode: the digest
     * of the retired prefix (call DrainLogStreams() at end of stream
     * first). Retained mode: computed from the log on each call. */
    StreamDigest NodeDigest(std::size_t i) const;

    /** The safety property, via digests: every node's digest equals
     * node 0's. Works in both log modes at O(1) resident memory per
     * node when streaming. */
    bool StreamDigestsAgree() const;

    /**
     * The exact (all-pairs, retained-log) comparison the digest
     * replaces: same tokens, modes, trace ids and edges at the same
     * positions on every node. Kept for digest validation; requires
     * retained logs (throws rt::RuntimeUsageError when streaming).
     */
    bool StreamsIdentical() const;

    // -- Streaming-retire plumbing ------------------------------------------

    /** Attach an extra streaming consumer (after the digest) to node
     * `node`'s log. Requires ClusterOptions::stream_logs and must be
     * called before the first launch. */
    void AddLogConsumer(std::size_t node, rt::OperationLog::Consumer c);

    /** Drain every node's completed operations to its consumers (end
     * of stream; no-op in retained mode). */
    void DrainLogStreams();

  protected:
    /** Issue one task on every node (control replication: the
     * application issues the same stream everywhere). */
    void DoExecuteTask(const rt::TaskLaunchView& launch) override;

    /** A control-replicated port runs without manual annotations;
     * any that remain are dropped (and counted) on every node. */
    bool DoBeginTrace(rt::TraceId) override { return false; }
    bool DoEndTrace(rt::TraceId) override { return false; }

    /** End-of-stream on every node. */
    void DoFlush() override;

  private:
    struct NodeState {
        /** Null while the node is crashed (its process is gone);
         * rebuilt from a peer checkpoint on rejoin. */
        std::unique_ptr<rt::Runtime> runtime;
        /** Per-node mode: the node's Apophenia. Shared-decision mode:
         * null until the node is quarantined, then its local fallback
         * engine. */
        std::unique_ptr<core::Apophenia> front_end;
        support::Rng latency_rng;
        StreamDigest digest;  ///< fed by the streaming consumer
        /** Retained mode: next log index the barrier digest check
         * folds (shared-decision mode keeps the digest incremental
         * without streaming). */
        std::size_t digest_cursor = 0;
        bool quarantined = false;
        bool crashed = false;
        rt::OperationLog::Consumer extra;  ///< harness attachment

        NodeState(const rt::RuntimeOptions& rt_options, std::uint64_t seed)
            : runtime(std::make_unique<rt::Runtime>(rt_options)),
              latency_rng(seed)
        {
        }
    };

    /** Per-job coordination record. */
    struct JobSchedule {
        std::uint64_t job_id = 0;
        std::uint64_t agreed_at = 0;  ///< task count for ingestion
        std::uint64_t ready_at = 0;   ///< max simulated completion
        /** Per-node completion positions (stall accounting). */
        std::vector<std::uint64_t> completion;
    };

    /** One buffered launch of the current batch; the slots (and their
     * requirement vectors) are recycled, so buffering is
     * allocation-free in steady state. */
    struct BatchedLaunch {
        rt::TaskLaunch launch;
        rt::TokenHash token = 0;
    };

    /** What RunNodePhase does for one node of the current barrier. */
    enum class NodePhase {
        kStep,           ///< advance through the buffered batch
        kIngest,         ///< ingest the first ingest_count_ due jobs
        kDrainAndFlush,  ///< end-of-stream: drain schedule + Flush
    };

    /** Run the buffered batch on every node (one TaskTeam barrier),
     * then schedule/ingest at the caught-up stream position and pick
     * the next horizon. Serial-schedule equivalent at any point. */
    void ProcessBatch();
    void RunNodePhase(std::size_t n);  ///< the TaskTeam body
    void UpdateHorizon();

    void ScheduleNewJobs();
    void IngestDueJobs();

    // -- Shared-decision-mode helpers ---------------------------------------

    /** The engine whose pending-job queue drives coordination: the
     * decider in shared mode, node 0 otherwise. */
    const core::Apophenia& CoordinationSource() const
    {
        return engine_ != nullptr ? engine_->Decider()
                                  : *nodes_[0]->front_end;
    }
    /** Node n's view of the retained launch at absolute index
     * `index`, with the fault injection applied if armed. */
    rt::TaskLaunchView NodeLaunchView(std::size_t n,
                                      std::uint64_t index) const;
    /** Replay the decider's broadcast decisions into node n's
     * runtime (team body, shared mode). */
    void ApplyDecisions(std::size_t n);
    /** Barrier soundness check: every healthy node's incremental
     * digest must equal the decision runtime's; a diverged node is
     * quarantined. */
    void CheckDigests();
    void Quarantine(std::size_t n);

    // -- Fault-tolerance helpers (fault::) ----------------------------------

    /** One event of the retained decision tail: a runtime-bound call
     * every node received since the newest checkpoint, materialized
     * so a rejoiner can replay it into a restored runtime. */
    struct ReplayEvent {
        enum class Kind : std::uint8_t {
            kTask,
            kBegin,
            kEnd,
            kCreateRegion,
            kDestroyRegion,
            kPartitionRegion,
        };
        Kind kind = Kind::kTask;
        bool recording = false;   ///< kBegin
        std::uint64_t value = 0;  ///< trace id / region id / parent
        std::uint64_t count = 0;  ///< kPartitionRegion
        rt::TaskLaunch launch{};  ///< kTask
        rt::TokenHash token = 0;  ///< kTask
    };

    /** Attach the streaming digest consumer to the node's (fresh or
     * restored) runtime. */
    void AttachStreamConsumer(NodeState& node);
    /** Process fault-plan crashes/rejoins (and transient-injection
     * heals) due at stream position `at`. */
    void ApplyMembershipEvents(std::uint64_t at);
    /** Materialize the current decision round into the retained tail
     * (call before Retire()). */
    void RetainDecisionTail();
    void RecordRegionEvent(ReplayEvent event);
    /** Snapshot the first healthy node into checkpoint_image_ and
     * clear the tail. */
    void TakeCheckpoint();
    /** Rebuild node n from the newest checkpoint + retained tail and
     * return it to the shared-decision broadcast. */
    void RejoinNode(std::size_t n);

    ClusterOptions options_;
    core::MiningCache mining_cache_;
    std::size_t jobs_ = 1;    ///< resolved ClusterOptions::jobs
    support::TaskTeam team_;  ///< per-node fan-out (jobs_ threads)
    /** Non-null iff the run uses the shared decision engine. */
    std::unique_ptr<core::DecisionEngine> engine_;
    /** Incremental digest of the decision runtime's stream — the
     * reference the per-node digests are checked against at every
     * barrier. Streaming mode feeds it from the decision runtime's
     * retire consumer; retained mode folds via engine_cursor_. */
    StreamDigest engine_digest_;
    std::size_t engine_cursor_ = 0;
    std::vector<std::unique_ptr<NodeState>> nodes_;
    std::deque<JobSchedule> schedule_;  ///< FIFO of uningested jobs
    std::uint64_t tasks_issued_ = 0;
    std::uint64_t slack_ = 0;
    std::uint64_t jobs_seen_ = 0;
    CoordinationStats stats_;
    std::vector<NodeMetrics> metrics_;

    // -- Decision-path accounting (see DecisionStats) -----------------------
    std::uint64_t decision_ns_ = 0;  ///< shared decider, driving thread
    /** Per-node engine time (per-node mode) or apply time (shared
     * mode); workers write their own slot, barriers publish. */
    std::vector<std::uint64_t> node_ns_;
    std::uint64_t decisions_broadcast_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t fallbacks_ = 0;

    // -- Fault-tolerance state (see ClusterOptions) -------------------------
    /** True when the run retains the decision tail (a fault plan,
     * fault injection, or checkpointing is configured). */
    bool resync_enabled_ = false;
    /** True when periodic checkpoints are armed (interval set and not
     * escaped via ApopheniaConfig::checkpoints). */
    bool checkpoints_enabled_ = false;
    std::vector<ReplayEvent> tail_;  ///< decisions since the checkpoint
    std::vector<std::uint8_t> checkpoint_image_;
    std::uint64_t checkpoint_task_ = 0;  ///< stream position of the image
    FaultStats fault_stats_;

    // -- Parallel-engine batch state (see file comment) ---------------------
    NodePhase phase_ = NodePhase::kStep;
    std::vector<BatchedLaunch> batch_;  ///< recycled launch slots
    std::size_t batch_count_ = 0;       ///< live prefix of batch_
    std::uint64_t batch_base_ = 0;  ///< absolute index of batch_[0]
    std::uint64_t horizon_ = 0;     ///< process when issued reaches this
    std::size_t ingest_count_ = 0;  ///< due jobs per node this barrier
};

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_CLUSTER_H
