/**
 * @file
 * Deterministic per-(node, task) timing-skew models.
 *
 * Shared by the cluster simulation (sim/cluster.h), which uses skew
 * to perturb per-node issue rates and mining-job latencies, and the
 * pipeline simulator (sim/pipeline.h), which stretches per-task
 * analysis and replay costs by the same factor — so a straggler node
 * slows both halves of the simulated system consistently.
 */
#ifndef APOPHENIA_SIM_SKEW_H
#define APOPHENIA_SIM_SKEW_H

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "support/hash.h"

namespace apo::sim {

/** The per-node timing perturbation families. */
enum class SkewKind : std::uint8_t {
    kNone,          ///< ideal nodes
    kJitter,        ///< seeded per-task rate noise
    kStraggler,     ///< one persistently slow node
    kInterference,  ///< periodic slowdown bursts
};

std::string_view SkewName(SkewKind kind);

/**
 * A deterministic per-(node, task) slowdown factor >= 1. The factor
 * multiplies both the node's virtual-time cost of issuing a task and
 * the latency of mining jobs it launches at that position. kNone
 * returns exactly 1.0, so multiplying a cost by Factor() is
 * bit-identical to not multiplying at all in the unskewed
 * configuration.
 */
struct SkewModel {
    SkewKind kind = SkewKind::kNone;
    /** Seed of the kJitter hash (independent of the coordination
     * latency seed). */
    std::uint64_t seed = 1;
    /** kJitter: rate noise amplitude; factor is uniform in
     * [1, 1 + jitter_amplitude). */
    double jitter_amplitude = 0.25;
    /** kStraggler: which node is slow, and by how much. */
    std::size_t straggler_node = 0;
    double straggler_factor = 4.0;
    /** kInterference: every `burst_period_tasks`, the node runs at
     * `burst_factor` for `burst_duration_tasks`; node n's bursts are
     * offset by n * burst_stagger_tasks (0 = cluster-synchronized
     * bursts, the interfering-checkpoint shape). */
    std::uint64_t burst_period_tasks = 4096;
    std::uint64_t burst_duration_tasks = 512;
    std::uint64_t burst_stagger_tasks = 0;
    double burst_factor = 8.0;

    double Factor(std::size_t node, std::uint64_t task) const
    {
        switch (kind) {
          case SkewKind::kNone:
            return 1.0;
          case SkewKind::kJitter: {
            // Stateless hash draw: O(1) random access, identical
            // whether tasks are visited once or replayed.
            const std::uint64_t h = support::HashCombine(
                support::HashCombine(seed, node + 1), task);
            const double u =
                static_cast<double>(h >> 11) * 0x1.0p-53;
            return 1.0 + jitter_amplitude * u;
          }
          case SkewKind::kStraggler:
            return node == straggler_node ? straggler_factor : 1.0;
          case SkewKind::kInterference: {
            if (burst_period_tasks == 0) {
                return 1.0;
            }
            const std::uint64_t pos =
                (task + node * burst_stagger_tasks) %
                burst_period_tasks;
            return pos < burst_duration_tasks ? burst_factor : 1.0;
          }
        }
        return 1.0;
    }
};

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_SKEW_H
