#include "sim/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace apo::sim {

namespace {

std::uint64_t
NowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** ClusterOptions::jobs defaulting: explicit value, else the APO_JOBS
 * environment override, else the hardware. */
std::size_t
ResolveJobs(std::size_t jobs)
{
    if (jobs != 0) {
        return jobs;
    }
    if (const char* env = std::getenv("APO_JOBS")) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

}  // namespace

std::string_view
SkewName(SkewKind kind)
{
    switch (kind) {
      case SkewKind::kNone:
        return "none";
      case SkewKind::kJitter:
        return "jitter";
      case SkewKind::kStraggler:
        return "straggler";
      case SkewKind::kInterference:
        return "interference";
    }
    return "?";
}

StreamDigest
StreamDigest::Of(const rt::OperationLog& log)
{
    StreamDigest digest;
    for (const auto& op : log) {
        digest.Consume(op);
    }
    return digest;
}

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      mining_cache_(options.mining_cache_windows),
      // Never more threads than nodes: the fan-out unit is one node,
      // so extra workers could only park at every barrier.
      jobs_(std::min(ResolveJobs(options.jobs),
                     std::max<std::size_t>(1,
                                           options.coordination.nodes))),
      team_(jobs_)
{
    if (options_.coordination.nodes == 0) {
        options_.coordination.nodes = 1;
    }
    if (options_.max_batch_tasks == 0) {
        options_.max_batch_tasks = 1;
    }
    slack_ = options_.coordination.initial_slack;
    const std::size_t n_nodes = options_.coordination.nodes;
    // The shared decision engine replaces the per-node engines when
    // there is more than one node to share across and tracing is on
    // (a disabled front-end is a pass-through either way).
    const bool shared = options_.shared_decisions &&
                        options_.config.shared_decisions &&
                        options_.config.enabled && n_nodes > 1;
    // Fault tolerance rides on the shared engine: the decision tail a
    // rejoiner replays IS the broadcast log.
    if ((!options_.fault_plan.events.empty() ||
         options_.checkpoint_interval_tasks > 0) &&
        !shared) {
        throw rt::RuntimeUsageError(
            "cluster fault tolerance (fault plans, checkpoints) "
            "requires the shared decision engine");
    }
    for (const ClusterOptions::FaultEvent& event :
         options_.fault_plan.events) {
        if (event.node >= n_nodes) {
            throw rt::RuntimeUsageError(
                "fault plan names a node outside the roster");
        }
        if (event.rejoin_at_task <= event.crash_at_task) {
            throw rt::RuntimeUsageError(
                "fault plan rejoin must follow the crash");
        }
    }
    resync_enabled_ = shared && (!options_.fault_plan.events.empty() ||
                                 options_.fault.enabled ||
                                 options_.checkpoint_interval_tasks > 0);
    checkpoints_enabled_ = shared &&
                           options_.checkpoint_interval_tasks > 0 &&
                           options_.config.checkpoints;
    if (shared) {
        engine_ = std::make_unique<core::DecisionEngine>(
            options_.config, options_.runtime_options,
            options_.external_mining_cache);
        if (options_.stream_logs) {
            engine_->DecisionRuntime().EnableLogStreaming(
                [this](const rt::OpView& op) {
                    engine_digest_.Consume(op);
                });
        }
    }
    // Sharing pays only when several per-node finders mine the same
    // stream; the service layer's external cache (cross-tenant
    // dedup) takes precedence in either mode.
    core::MiningCache* cache =
        options_.external_mining_cache != nullptr
            ? options_.external_mining_cache
            : (options_.share_mining_cache && n_nodes > 1
                   ? &mining_cache_
                   : nullptr);
    nodes_.reserve(n_nodes);
    metrics_.resize(n_nodes);
    node_ns_.resize(n_nodes, 0);
    for (std::size_t n = 0; n < n_nodes; ++n) {
        auto node = std::make_unique<NodeState>(
            options_.runtime_options,
            options_.coordination.seed * 7919 + n);
        // Inline executor keeps the mining computation deterministic;
        // completion *timing* is simulated by the coordinator. In
        // shared-decision mode the node hosts no engine at all — it
        // applies the decider's broadcast.
        if (!shared) {
            node->front_end = std::make_unique<core::Apophenia>(
                *node->runtime, options_.config, nullptr, cache);
            node->front_end->SetIngestMode(core::IngestMode::kManual);
        }
        if (options_.stream_logs) {
            AttachStreamConsumer(*node);
        }
        nodes_.push_back(std::move(node));
    }
    team_.SetBody([this](std::size_t n) { RunNodePhase(n); });
    UpdateHorizon();
}

void
Cluster::AddLogConsumer(std::size_t node, rt::OperationLog::Consumer c)
{
    if (node >= nodes_.size()) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer: node index out of range");
    }
    if (!options_.stream_logs) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer requires stream_logs");
    }
    if (tasks_issued_ != 0) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer must precede the first launch");
    }
    nodes_[node]->extra = std::move(c);
}

void
Cluster::AttachStreamConsumer(NodeState& node)
{
    NodeState* state = &node;
    node.runtime->EnableLogStreaming([state](const rt::OpView& op) {
        state->digest.Consume(op);
        if (state->extra) {
            state->extra(op);
        }
    });
}

void
Cluster::DrainLogStreams()
{
    for (auto& node : nodes_) {
        if (node->runtime != nullptr) {
            node->runtime->DrainLogStream();
        }
    }
    if (engine_ != nullptr) {
        engine_->DecisionRuntime().DrainLogStream();
    }
}

void
Cluster::DoExecuteTask(const rt::TaskLaunchView& launch)
{
    // Buffer the launch into a recycled slot. The nodes advance in
    // batches: between coordination points they are independent, so
    // the serial per-task loop is deferred to the next barrier (see
    // ProcessBatch) where it fans out across the team — with results
    // byte-identical to stepping every node at every task. In
    // shared-decision mode the engine's retention ring IS the batch
    // buffer (the decider needs the launches past the barrier for
    // trace firing and quarantined-node feeding).
    if (engine_ != nullptr) {
        engine_->Buffer(launch);
    } else {
        if (batch_count_ == batch_.size()) {
            batch_.emplace_back();
        }
        BatchedLaunch& slot = batch_[batch_count_];
        launch.MaterializeInto(slot.launch);
        slot.token = launch.token;
    }
    ++batch_count_;
    ++tasks_issued_;
    if (tasks_issued_ >= horizon_) {
        ProcessBatch();
    }
}

void
Cluster::ProcessBatch()
{
    if (batch_count_ > 0) {
        batch_base_ = tasks_issued_ - batch_count_;
        ApplyMembershipEvents(batch_base_);
        ++batches_;
        if (engine_ != nullptr) {
            // Decide once on the driving thread (the timed quantity
            // that stays flat in N), then fan the broadcast out.
            const std::uint64_t t0 = NowNs();
            engine_->DecideStaged();
            decision_ns_ += NowNs() - t0;
            decisions_broadcast_ += engine_->Decisions().size();
        }
        phase_ = NodePhase::kStep;
        team_.Run(nodes_.size());
        if (engine_ != nullptr) {
            CheckDigests();
            RetainDecisionTail();
            engine_->Retire();
        }
        batch_count_ = 0;
        if (checkpoints_enabled_ &&
            tasks_issued_ - checkpoint_task_ >=
                options_.checkpoint_interval_tasks) {
            TakeCheckpoint();
        }
    }
    // The nodes have caught up with the issued stream: make the
    // coordination decisions the serial schedule would have made at
    // (or before) this position. No job's ingestion point can fall
    // strictly inside a batch — UpdateHorizon bounds each batch by
    // the front job's due position and by the current slack, and a
    // job launched mid-batch is due no earlier than its launch
    // position plus the (monotonically non-decreasing) slack.
    ScheduleNewJobs();
    IngestDueJobs();
    UpdateHorizon();
}

void
Cluster::RunNodePhase(std::size_t n)
{
    NodeState& node = *nodes_[n];
    if (node.crashed) {
        return;  // a crashed node neither executes nor accrues time
    }
    switch (phase_) {
      case NodePhase::kStep: {
        NodeMetrics& metrics = metrics_[n];
        for (std::size_t i = 0; i < batch_count_; ++i) {
            // The node's virtual clock: a skewed node pays more time
            // per issued task (input tasks — identical in both
            // decision modes).
            metrics.virtual_time_tasks +=
                options_.skew.Factor(n, batch_base_ + i);
        }
        const std::uint64_t t0 = NowNs();
        if (engine_ != nullptr) {
            if (!node.quarantined) {
                ApplyDecisions(n);
            } else {
                // The quarantined node re-decides locally from the
                // raw launches the engine retained for this batch.
                for (std::size_t i = 0; i < batch_count_; ++i) {
                    node.front_end->ExecuteTask(
                        NodeLaunchView(n, batch_base_ + i));
                }
            }
        } else {
            for (std::size_t i = 0; i < batch_count_; ++i) {
                const BatchedLaunch& buffered = batch_[i];
                node.front_end->ExecuteTask(rt::TaskLaunchView::Of(
                    buffered.launch, buffered.token));
            }
        }
        node_ns_[n] += NowNs() - t0;
        break;
      }
      case NodePhase::kIngest: {
        const std::uint64_t t0 = NowNs();
        for (std::size_t k = 0; k < ingest_count_; ++k) {
            node.front_end->IngestOldestJob();
        }
        node_ns_[n] += NowNs() - t0;
        break;
      }
      case NodePhase::kDrainAndFlush: {
        const std::uint64_t t0 = NowNs();
        if (engine_ != nullptr) {
            if (!node.quarantined) {
                ApplyDecisions(n);
            } else {
                node.front_end->Flush();
            }
        } else {
            for (std::size_t k = 0; k < ingest_count_; ++k) {
                node.front_end->IngestOldestJob();
            }
            node.front_end->Flush();
        }
        node_ns_[n] += NowNs() - t0;
        break;
      }
    }
}

rt::TaskLaunchView
Cluster::NodeLaunchView(std::size_t n, std::uint64_t index) const
{
    rt::TaskLaunchView view = engine_->LaunchAt(index);
    const ClusterOptions::FaultInjection& fault = options_.fault;
    if (fault.enabled && n == fault.node && index >= fault.from_task &&
        index < fault.until_task) {
        view.token ^= fault.token_xor;
    }
    return view;
}

void
Cluster::ApplyDecisions(std::size_t n)
{
    rt::Runtime& runtime = *nodes_[n]->runtime;
    for (const core::Decision& d : engine_->Decisions()) {
        switch (d.kind) {
          case core::Decision::Kind::kTask:
            runtime.ExecuteTask(NodeLaunchView(n, d.value));
            break;
          case core::Decision::Kind::kBegin:
            runtime.BeginTrace(d.value);
            break;
          case core::Decision::Kind::kEnd:
            runtime.EndTrace(d.value);
            break;
        }
    }
}

void
Cluster::CheckDigests()
{
    // Advance the incremental digests to the current barrier (the
    // streaming consumers already did; retained mode folds the new
    // log suffix here, each op exactly once) and compare every
    // healthy node against the decision runtime's reference.
    if (!options_.stream_logs) {
        const rt::OperationLog& log = engine_->DecisionRuntime().Log();
        for (; engine_cursor_ < log.size(); ++engine_cursor_) {
            engine_digest_.Consume(log[engine_cursor_]);
        }
    }
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        NodeState& node = *nodes_[n];
        if (node.quarantined || node.crashed) {
            continue;
        }
        if (!options_.stream_logs) {
            const rt::OperationLog& log = node.runtime->Log();
            for (; node.digest_cursor < log.size();
                 ++node.digest_cursor) {
                node.digest.Consume(log[node.digest_cursor]);
            }
        }
        if (!(node.digest == engine_digest_)) {
            Quarantine(n);
        }
    }
}

void
Cluster::Quarantine(std::size_t n)
{
    // The node's stream diverged from the broadcast's reference: the
    // shared decisions are no longer known-sound for it. Fall back to
    // local decision-making — a cold Apophenia over the node's own
    // runtime (kEagerDrain: self-contained deterministic ingestion,
    // outside the cluster-wide coordination) — and stop checking its
    // digest; the healthy nodes continue bit-identically.
    NodeState& node = *nodes_[n];
    node.quarantined = true;
    ++fallbacks_;
    node.front_end = std::make_unique<core::Apophenia>(
        *node.runtime, options_.config, nullptr, nullptr);
    node.front_end->SetIngestMode(core::IngestMode::kEagerDrain);
}

void
Cluster::UpdateHorizon()
{
    // The next position at which the serial schedule could act: the
    // front job's due point, else nothing before one slack's worth of
    // tasks (new jobs are agreed at launch + slack and slack never
    // shrinks), capped so the batch buffer stays small.
    std::uint64_t step = std::max<std::uint64_t>(1, slack_);
    step = std::min<std::uint64_t>(
        step, static_cast<std::uint64_t>(options_.max_batch_tasks));
    horizon_ = tasks_issued_ + step;
    if (!schedule_.empty()) {
        const JobSchedule& next = schedule_.front();
        horizon_ = std::min(horizon_,
                            std::max(next.agreed_at, next.ready_at));
    }
}

rt::RegionId
Cluster::CreateRegion()
{
    // Region calls broadcast immediately, so the buffered launches
    // must reach the nodes first to preserve per-node call order.
    // Cutting a batch early is always serial-equivalent. An Apophenia
    // region call is a pure runtime pass-through, so in shared mode
    // the nodes' runtimes take it directly (the decision runtime must
    // see it too, to stay a mirror).
    ProcessBatch();
    rt::RegionId region{};
    std::size_t first = 0;
    if (engine_ != nullptr) {
        region = engine_->DecisionRuntime().CreateRegion();
        RecordRegionEvent(
            ReplayEvent{.kind = ReplayEvent::Kind::kCreateRegion});
    } else {
        region = nodes_[0]->front_end->CreateRegion();
        first = 1;
    }
    for (std::size_t n = first; n < nodes_.size(); ++n) {
        if (nodes_[n]->crashed) {
            continue;
        }
        if (nodes_[n]->runtime->CreateRegion() != region) {
            throw rt::RuntimeUsageError(
                "cluster region allocators diverged on CreateRegion "
                "(a node was driven outside the cluster front end)");
        }
    }
    return region;
}

void
Cluster::DestroyRegion(rt::RegionId r)
{
    ProcessBatch();
    if (engine_ != nullptr) {
        engine_->DecisionRuntime().DestroyRegion(r);
        RecordRegionEvent(
            ReplayEvent{.kind = ReplayEvent::Kind::kDestroyRegion,
                        .value = r.value});
        for (auto& node : nodes_) {
            if (!node->crashed) {
                node->runtime->DestroyRegion(r);
            }
        }
        return;
    }
    for (auto& node : nodes_) {
        node->front_end->DestroyRegion(r);
    }
}

std::vector<rt::RegionId>
Cluster::PartitionRegion(rt::RegionId parent, std::size_t count)
{
    ProcessBatch();
    std::vector<rt::RegionId> subregions;
    std::size_t first = 0;
    if (engine_ != nullptr) {
        subregions =
            engine_->DecisionRuntime().PartitionRegion(parent, count);
        RecordRegionEvent(
            ReplayEvent{.kind = ReplayEvent::Kind::kPartitionRegion,
                        .value = parent.value,
                        .count = count});
    } else {
        subregions = nodes_[0]->front_end->PartitionRegion(parent, count);
        first = 1;
    }
    for (std::size_t n = first; n < nodes_.size(); ++n) {
        if (nodes_[n]->crashed) {
            continue;
        }
        if (nodes_[n]->runtime->PartitionRegion(parent, count) !=
            subregions) {
            throw rt::RuntimeUsageError(
                "cluster region allocators diverged on PartitionRegion "
                "(a node was driven outside the cluster front end)");
        }
    }
    return subregions;
}

void
Cluster::ScheduleNewJobs()
{
    // All nodes launch identical jobs at identical stream positions
    // (the mining schedule is a deterministic function of the
    // stream), so node 0's queue is representative. New jobs are
    // those beyond `jobs_seen_`.
    const CoordinationOptions& coord = options_.coordination;
    CoordinationSource().VisitPendingJobs(
        jobs_seen_, [&](const core::PendingJobInfo& job) {
            jobs_seen_ = job.id + 1;
            JobSchedule sched;
            sched.job_id = job.id;
            sched.agreed_at = job.issued_at + slack_;
            sched.completion.resize(nodes_.size());
            // Each node's asynchronous analysis completes after a
            // simulated, jittered number of further tasks — stretched
            // by the node's skew factor at launch — and the job is
            // globally ready only when the slowest node finishes.
            sched.ready_at = 0;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                const double lo =
                    coord.mean_latency_tasks * (1.0 - coord.jitter);
                const double hi =
                    coord.mean_latency_tasks * (1.0 + coord.jitter);
                const double latency =
                    nodes_[n]->latency_rng.UniformReal(
                        std::max(0.0, lo), std::max(1.0, hi)) *
                    options_.skew.Factor(n, job.issued_at);
                sched.completion[n] =
                    job.issued_at + static_cast<std::uint64_t>(latency);
                sched.ready_at =
                    std::max(sched.ready_at, sched.completion[n]);
                if (sched.completion[n] > sched.agreed_at &&
                    !nodes_[n]->crashed) {
                    metrics_[n].late_jobs += 1;
                }
            }
            stats_.jobs_coordinated += 1;
            if (sched.ready_at > sched.agreed_at) {
                // Some node would stall at the agreed point: ingest
                // when actually ready, and widen the slack for future
                // jobs (the paper's adaptive count increase).
                stats_.late_jobs += 1;
                slack_ = std::max(
                    slack_ * 2,
                    sched.ready_at - sched.agreed_at + slack_);
            }
            schedule_.push_back(std::move(sched));
        });
    stats_.final_slack = slack_;
    stats_.peak_slack = std::max(stats_.peak_slack, slack_);
}

void
Cluster::IngestDueJobs()
{
    // Ingest in launch order once both the agreed point and global
    // readiness have passed — the same decision on every node. The
    // stall accounting happens here on the driving thread; the
    // per-node trie ingestion fans out through the team (per-node
    // order is launch order either way).
    ingest_count_ = 0;
    while (ingest_count_ < schedule_.size()) {
        const JobSchedule& next = schedule_[ingest_count_];
        const std::uint64_t due =
            std::max(next.agreed_at, next.ready_at);
        if (tasks_issued_ < due) {
            break;
        }
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (nodes_[n]->crashed) {
                continue;
            }
            // A node is ready to ingest once both the agreed point
            // and its own completion have passed; it then idles until
            // the cluster-wide ingestion point (the slowest node
            // stalls no one, every other node stalls the difference).
            const std::uint64_t own =
                std::max(next.agreed_at, next.completion[n]);
            const double stall =
                due > own ? static_cast<double>(due - own) : 0.0;
            metrics_[n].stall_tasks += stall;
            metrics_[n].max_stall_tasks =
                std::max(metrics_[n].max_stall_tasks, stall);
        }
        ++ingest_count_;
    }
    if (ingest_count_ > 0) {
        if (engine_ != nullptr) {
            // One coordinated ingestion, on the decider (timed: part
            // of the shared decision path). Quarantined nodes ingest
            // eagerly inside their local engines instead.
            const std::uint64_t t0 = NowNs();
            for (std::size_t k = 0; k < ingest_count_; ++k) {
                engine_->Decider().IngestOldestJob();
            }
            decision_ns_ += NowNs() - t0;
        } else {
            phase_ = NodePhase::kIngest;
            team_.Run(nodes_.size());
        }
        schedule_.erase(schedule_.begin(),
                        schedule_.begin() +
                            static_cast<std::ptrdiff_t>(ingest_count_));
        ingest_count_ = 0;
    }
}

void
Cluster::DoFlush()
{
    // Catch the nodes up with the issued stream, then drain every
    // coordinated job and flush the front-ends (one barrier for the
    // whole per-node drain). The drain ingests jobs whose agreed
    // point lies beyond the end of the stream, so the stream-position
    // stall accounting does not apply — those positions never elapse.
    // The stall metrics describe in-stream agreement points only.
    ProcessBatch();
    if (engine_ != nullptr) {
        // Drain the remaining coordinated jobs into the decider and
        // flush it — the final decisions land in the broadcast log —
        // then fan the last apply (or, quarantined, a local flush)
        // out to the nodes.
        const std::uint64_t t0 = NowNs();
        const std::size_t remaining = schedule_.size();
        for (std::size_t k = 0; k < remaining; ++k) {
            engine_->Decider().IngestOldestJob();
        }
        engine_->FlushDecider();
        decision_ns_ += NowNs() - t0;
        decisions_broadcast_ += engine_->Decisions().size();
        phase_ = NodePhase::kDrainAndFlush;
        team_.Run(nodes_.size());
        CheckDigests();
        RetainDecisionTail();
        engine_->Retire();
    } else {
        ingest_count_ = schedule_.size();
        phase_ = NodePhase::kDrainAndFlush;
        team_.Run(nodes_.size());
    }
    schedule_.clear();
    ingest_count_ = 0;
    UpdateHorizon();
}

DecisionStats
Cluster::DecisionCost() const
{
    DecisionStats stats;
    stats.shared = engine_ != nullptr;
    stats.batches = batches_;
    stats.decisions = decisions_broadcast_;
    stats.fallbacks = fallbacks_;
    std::uint64_t node_total = 0;
    for (const std::uint64_t ns : node_ns_) {
        node_total += ns;
    }
    if (engine_ != nullptr) {
        stats.decision_ns = decision_ns_;
        stats.apply_ns = node_total;
    } else {
        stats.decision_ns = node_total;
    }
    return stats;
}

StreamDigest
Cluster::NodeDigest(std::size_t i) const
{
    const NodeState& node = *nodes_[i];
    if (options_.stream_logs || node.runtime == nullptr) {
        return node.digest;  // crashed: frozen at the crash point
    }
    // Retained mode: continue the node's incremental digest (which a
    // restore may have seeded mid-stream) over the rows it has not
    // folded yet. On a never-restored node the cursor starts at zero,
    // so this equals StreamDigest::Of(log).
    StreamDigest digest = node.digest;
    const rt::OperationLog& log = node.runtime->Log();
    for (std::size_t at = node.digest_cursor; at < log.size(); ++at) {
        digest.Consume(log[at]);
    }
    return digest;
}

bool
Cluster::StreamDigestsAgree() const
{
    const StreamDigest reference = NodeDigest(0);
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (!(NodeDigest(n) == reference)) {
            return false;
        }
    }
    return true;
}

bool
Cluster::StreamsIdentical() const
{
    if (options_.stream_logs) {
        throw rt::RuntimeUsageError(
            "Cluster::StreamsIdentical needs retained logs (the "
            "streaming-retire mode recycles them); use "
            "StreamDigestsAgree");
    }
    const rt::OperationLog& reference = nodes_[0]->runtime->Log();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        const rt::OperationLog& log = nodes_[n]->runtime->Log();
        if (log.size() != reference.size()) {
            return false;
        }
        for (std::size_t i = 0; i < log.size(); ++i) {
            const rt::OpView a = log[i];
            const rt::OpView b = reference[i];
            if (a.token != b.token || a.mode != b.mode ||
                a.trace != b.trace ||
                !(a.dependences == b.dependences)) {
                return false;
            }
        }
    }
    return true;
}

// -- Fault tolerance (fault::) ----------------------------------------------

void
Cluster::ApplyMembershipEvents(std::uint64_t at)
{
    for (const ClusterOptions::FaultEvent& event :
         options_.fault_plan.events) {
        NodeState& node = *nodes_[event.node];
        if (!node.crashed && node.runtime != nullptr &&
            event.crash_at_task <= at && at < event.rejoin_at_task) {
            // The node's process dies: runtime and (any fallback)
            // engine are gone. Its latency rng keeps drawing in
            // ScheduleNewJobs so the roster-wide schedule — and with
            // it every healthy node's behaviour — stays bit-identical
            // to a churn-free run.
            node.runtime.reset();
            node.front_end.reset();
            node.crashed = true;
            node.quarantined = false;
            ++fault_stats_.crashes;
        }
        if (node.crashed && event.rejoin_at_task <= at) {
            RejoinNode(event.node);
            ++fault_stats_.rejoins;
        }
    }
    // Transient corruption heals once the injection window has
    // passed: resync the quarantined node from a healthy peer.
    if (options_.fault.enabled && resync_enabled_ &&
        options_.fault.until_task != UINT64_MAX &&
        at >= options_.fault.until_task) {
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            if (nodes_[n]->quarantined) {
                RejoinNode(n);
                ++fault_stats_.heals;
            }
        }
    }
}

void
Cluster::ResyncQuarantined(std::size_t i)
{
    if (engine_ == nullptr || !resync_enabled_) {
        throw rt::RuntimeUsageError(
            "Cluster::ResyncQuarantined requires the shared decision "
            "engine with tail retention (a fault plan, fault "
            "injection, or a checkpoint interval)");
    }
    ProcessBatch();
    if (!nodes_[i]->quarantined) {
        throw rt::RuntimeUsageError(
            "Cluster::ResyncQuarantined: node is not quarantined");
    }
    RejoinNode(i);
    ++fault_stats_.heals;
}

void
Cluster::RetainDecisionTail()
{
    if (!resync_enabled_) {
        return;
    }
    for (const core::Decision& d : engine_->Decisions()) {
        switch (d.kind) {
          case core::Decision::Kind::kTask: {
            const rt::TaskLaunchView view = engine_->LaunchAt(d.value);
            ReplayEvent event;
            event.kind = ReplayEvent::Kind::kTask;
            view.MaterializeInto(event.launch);
            event.token = view.token;
            tail_.push_back(std::move(event));
            break;
          }
          case core::Decision::Kind::kBegin:
            tail_.push_back(ReplayEvent{
                .kind = ReplayEvent::Kind::kBegin,
                .recording = d.recording,
                .value = d.value,
            });
            break;
          case core::Decision::Kind::kEnd:
            tail_.push_back(ReplayEvent{
                .kind = ReplayEvent::Kind::kEnd,
                .value = d.value,
            });
            break;
        }
    }
}

void
Cluster::RecordRegionEvent(ReplayEvent event)
{
    if (resync_enabled_) {
        tail_.push_back(std::move(event));
    }
}

void
Cluster::TakeCheckpoint()
{
    // Any healthy node's state serves every future rejoiner: healthy
    // nodes are bit-identical by the barrier digest check that just
    // ran (their digests equal the decision runtime's).
    const NodeState* source = nullptr;
    for (const auto& node : nodes_) {
        if (!node->crashed && !node->quarantined) {
            source = node.get();
            break;
        }
    }
    if (source == nullptr) {
        return;  // no healthy peer to snapshot; keep the old image
    }
    if (!source->runtime->Quiescent()) {
        // The barrier landed mid-trace; a snapshot here would be
        // illegal (Runtime::SaveState). Defer to the next barrier —
        // the tail simply keeps growing until a quiescent point.
        return;
    }
    fault::CheckpointWriter writer;
    writer.BeginSection(fault::SectionTag::kClusterNode);
    writer.U64(source->digest.RawState());
    writer.U64(source->digest.Count());
    writer.U64(tasks_issued_);
    writer.EndSection();
    source->runtime->SaveState(writer);
    checkpoint_image_ = writer.TakeImage();
    checkpoint_task_ = tasks_issued_;
    tail_.clear();
    ++fault_stats_.checkpoints_taken;
    fault_stats_.last_checkpoint_bytes = checkpoint_image_.size();
    fault_stats_.total_checkpoint_bytes += checkpoint_image_.size();
    // The virtual-time cost model: writing the image pauses every
    // alive node. Digests and decisions are unaffected.
    const double pause = options_.checkpoint_pause_tasks_per_kb *
                         static_cast<double>(checkpoint_image_.size()) /
                         1024.0;
    fault_stats_.checkpoint_pause_tasks += pause;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        if (!nodes_[n]->crashed) {
            metrics_[n].virtual_time_tasks += pause;
        }
    }
}

void
Cluster::RejoinNode(std::size_t n)
{
    NodeState& node = *nodes_[n];
    // Fresh process: new runtime, streaming consumer re-attached
    // before the restore (the restored log must already be in
    // streaming mode when LoadState checks it).
    node.runtime =
        std::make_unique<rt::Runtime>(options_.runtime_options);
    node.front_end.reset();
    if (options_.stream_logs) {
        AttachStreamConsumer(node);
    }
    node.digest = StreamDigest{};
    node.digest_cursor = 0;
    if (!checkpoint_image_.empty()) {
        // Install the newest peer checkpoint: digest state first,
        // then the runtime image.
        fault::CheckpointReader reader(checkpoint_image_);
        reader.BeginSection(fault::SectionTag::kClusterNode);
        const std::uint64_t digest_state = reader.U64();
        const std::uint64_t digest_count = reader.U64();
        reader.U64();  // checkpoint stream position (informational)
        reader.EndSection();
        node.runtime->LoadState(reader);
        node.digest.Restore(digest_state, digest_count);
        node.digest_cursor = node.runtime->Log().size();
    }
    // Replay the decision tail since the checkpoint: the broadcast
    // every node applied while this one was away. After this the
    // node's runtime — and its digest — match the healthy peers
    // exactly, and the next barrier's digest check re-verifies it.
    for (const ReplayEvent& event : tail_) {
        switch (event.kind) {
          case ReplayEvent::Kind::kTask:
            node.runtime->ExecuteTask(
                rt::TaskLaunchView::Of(event.launch, event.token));
            break;
          case ReplayEvent::Kind::kBegin:
            node.runtime->BeginTrace(event.value);
            break;
          case ReplayEvent::Kind::kEnd:
            node.runtime->EndTrace(event.value);
            break;
          case ReplayEvent::Kind::kCreateRegion:
            node.runtime->CreateRegion();
            break;
          case ReplayEvent::Kind::kDestroyRegion:
            node.runtime->DestroyRegion(rt::RegionId{event.value});
            break;
          case ReplayEvent::Kind::kPartitionRegion:
            node.runtime->PartitionRegion(rt::RegionId{event.value},
                                          event.count);
            break;
        }
    }
    fault_stats_.tail_events_replayed += tail_.size();
    node.crashed = false;
    node.quarantined = false;
    // Cost model: the cluster stalls while the rejoiner installs the
    // image and catches up through the tail.
    const double stall =
        options_.checkpoint_pause_tasks_per_kb *
            static_cast<double>(checkpoint_image_.size()) / 1024.0 +
        options_.resync_tasks_per_event *
            static_cast<double>(tail_.size());
    fault_stats_.recovery_stall_tasks += stall;
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
        if (!nodes_[k]->crashed) {
            metrics_[k].virtual_time_tasks += stall;
        }
    }
}

}  // namespace apo::sim
