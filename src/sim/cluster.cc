#include "sim/cluster.h"

#include <algorithm>

namespace apo::sim {

std::string_view
SkewName(SkewKind kind)
{
    switch (kind) {
      case SkewKind::kNone:
        return "none";
      case SkewKind::kJitter:
        return "jitter";
      case SkewKind::kStraggler:
        return "straggler";
      case SkewKind::kInterference:
        return "interference";
    }
    return "?";
}

StreamDigest
StreamDigest::Of(const rt::OperationLog& log)
{
    StreamDigest digest;
    for (const auto& op : log) {
        digest.Consume(op);
    }
    return digest;
}

Cluster::Cluster(const ClusterOptions& options) : options_(options)
{
    if (options_.coordination.nodes == 0) {
        options_.coordination.nodes = 1;
    }
    slack_ = options_.coordination.initial_slack;
    const std::size_t n_nodes = options_.coordination.nodes;
    nodes_.reserve(n_nodes);
    metrics_.resize(n_nodes);
    for (std::size_t n = 0; n < n_nodes; ++n) {
        auto node = std::make_unique<NodeState>(
            options_.runtime_options,
            options_.coordination.seed * 7919 + n);
        // Inline executor keeps the mining computation deterministic;
        // completion *timing* is simulated by the coordinator.
        node->front_end = std::make_unique<core::Apophenia>(
            node->runtime, options_.config);
        node->front_end->SetIngestMode(core::IngestMode::kManual);
        if (options_.stream_logs) {
            NodeState* state = node.get();
            node->runtime.EnableLogStreaming(
                [state](const rt::OpView& op) {
                    state->digest.Consume(op);
                    if (state->extra) {
                        state->extra(op);
                    }
                });
        }
        nodes_.push_back(std::move(node));
    }
}

void
Cluster::AddLogConsumer(std::size_t node, rt::OperationLog::Consumer c)
{
    if (node >= nodes_.size()) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer: node index out of range");
    }
    if (!options_.stream_logs) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer requires stream_logs");
    }
    if (tasks_issued_ != 0) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer must precede the first launch");
    }
    nodes_[node]->extra = std::move(c);
}

void
Cluster::DrainLogStreams()
{
    for (auto& node : nodes_) {
        node->runtime.DrainLogStream();
    }
}

void
Cluster::DoExecuteTask(const rt::TaskLaunchView& launch)
{
    const std::uint64_t at = tasks_issued_;
    ++tasks_issued_;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
        // The node's virtual clock: a skewed node pays more time per
        // issued task.
        metrics_[n].virtual_time_tasks += options_.skew.Factor(n, at);
        nodes_[n]->front_end->ExecuteTask(launch);
    }
    ScheduleNewJobs();
    IngestDueJobs();
}

rt::RegionId
Cluster::CreateRegion()
{
    const rt::RegionId region = nodes_[0]->front_end->CreateRegion();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->front_end->CreateRegion() != region) {
            throw rt::RuntimeUsageError(
                "cluster region allocators diverged on CreateRegion "
                "(a node was driven outside the cluster front end)");
        }
    }
    return region;
}

void
Cluster::DestroyRegion(rt::RegionId r)
{
    for (auto& node : nodes_) {
        node->front_end->DestroyRegion(r);
    }
}

std::vector<rt::RegionId>
Cluster::PartitionRegion(rt::RegionId parent, std::size_t count)
{
    std::vector<rt::RegionId> subregions =
        nodes_[0]->front_end->PartitionRegion(parent, count);
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->front_end->PartitionRegion(parent, count) !=
            subregions) {
            throw rt::RuntimeUsageError(
                "cluster region allocators diverged on PartitionRegion "
                "(a node was driven outside the cluster front end)");
        }
    }
    return subregions;
}

void
Cluster::ScheduleNewJobs()
{
    // All nodes launch identical jobs at identical stream positions
    // (the mining schedule is a deterministic function of the
    // stream), so node 0's queue is representative. New jobs are
    // those beyond `jobs_seen_`.
    const CoordinationOptions& coord = options_.coordination;
    nodes_[0]->front_end->VisitPendingJobs(
        jobs_seen_, [&](const core::PendingJobInfo& job) {
            jobs_seen_ = job.id + 1;
            JobSchedule sched;
            sched.job_id = job.id;
            sched.agreed_at = job.issued_at + slack_;
            sched.completion.resize(nodes_.size());
            // Each node's asynchronous analysis completes after a
            // simulated, jittered number of further tasks — stretched
            // by the node's skew factor at launch — and the job is
            // globally ready only when the slowest node finishes.
            sched.ready_at = 0;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                const double lo =
                    coord.mean_latency_tasks * (1.0 - coord.jitter);
                const double hi =
                    coord.mean_latency_tasks * (1.0 + coord.jitter);
                const double latency =
                    nodes_[n]->latency_rng.UniformReal(
                        std::max(0.0, lo), std::max(1.0, hi)) *
                    options_.skew.Factor(n, job.issued_at);
                sched.completion[n] =
                    job.issued_at + static_cast<std::uint64_t>(latency);
                sched.ready_at =
                    std::max(sched.ready_at, sched.completion[n]);
                if (sched.completion[n] > sched.agreed_at) {
                    metrics_[n].late_jobs += 1;
                }
            }
            stats_.jobs_coordinated += 1;
            if (sched.ready_at > sched.agreed_at) {
                // Some node would stall at the agreed point: ingest
                // when actually ready, and widen the slack for future
                // jobs (the paper's adaptive count increase).
                stats_.late_jobs += 1;
                slack_ = std::max(
                    slack_ * 2,
                    sched.ready_at - sched.agreed_at + slack_);
            }
            schedule_.push_back(std::move(sched));
        });
    stats_.final_slack = slack_;
    stats_.peak_slack = std::max(stats_.peak_slack, slack_);
}

void
Cluster::IngestDueJobs()
{
    // Ingest in launch order once both the agreed point and global
    // readiness have passed — the same decision on every node.
    while (!schedule_.empty()) {
        const JobSchedule& next = schedule_.front();
        const std::uint64_t due =
            std::max(next.agreed_at, next.ready_at);
        if (tasks_issued_ < due) {
            break;
        }
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            // A node is ready to ingest once both the agreed point
            // and its own completion have passed; it then idles until
            // the cluster-wide ingestion point (the slowest node
            // stalls no one, every other node stalls the difference).
            const std::uint64_t own =
                std::max(next.agreed_at, next.completion[n]);
            const double stall =
                due > own ? static_cast<double>(due - own) : 0.0;
            metrics_[n].stall_tasks += stall;
            metrics_[n].max_stall_tasks =
                std::max(metrics_[n].max_stall_tasks, stall);
            nodes_[n]->front_end->IngestOldestJob();
        }
        schedule_.pop_front();
    }
}

void
Cluster::DoFlush()
{
    // Drain every coordinated job, then flush the front-ends. The
    // drain ingests jobs whose agreed point lies beyond the end of
    // the stream, so the stream-position stall accounting does not
    // apply — those positions never elapse. The stall metrics
    // describe in-stream agreement points only.
    while (!schedule_.empty()) {
        for (auto& node : nodes_) {
            node->front_end->IngestOldestJob();
        }
        schedule_.pop_front();
    }
    for (auto& node : nodes_) {
        node->front_end->Flush();
    }
}

StreamDigest
Cluster::NodeDigest(std::size_t i) const
{
    if (options_.stream_logs) {
        return nodes_[i]->digest;
    }
    return StreamDigest::Of(nodes_[i]->runtime.Log());
}

bool
Cluster::StreamDigestsAgree() const
{
    const StreamDigest reference = NodeDigest(0);
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (!(NodeDigest(n) == reference)) {
            return false;
        }
    }
    return true;
}

bool
Cluster::StreamsIdentical() const
{
    if (options_.stream_logs) {
        throw rt::RuntimeUsageError(
            "Cluster::StreamsIdentical needs retained logs (the "
            "streaming-retire mode recycles them); use "
            "StreamDigestsAgree");
    }
    const rt::OperationLog& reference = nodes_[0]->runtime.Log();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        const rt::OperationLog& log = nodes_[n]->runtime.Log();
        if (log.size() != reference.size()) {
            return false;
        }
        for (std::size_t i = 0; i < log.size(); ++i) {
            const rt::OpView a = log[i];
            const rt::OpView b = reference[i];
            if (a.token != b.token || a.mode != b.mode ||
                a.trace != b.trace ||
                !(a.dependences == b.dependences)) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace apo::sim
