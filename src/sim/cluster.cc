#include "sim/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace apo::sim {

namespace {

/** ClusterOptions::jobs defaulting: explicit value, else the APO_JOBS
 * environment override, else the hardware. */
std::size_t
ResolveJobs(std::size_t jobs)
{
    if (jobs != 0) {
        return jobs;
    }
    if (const char* env = std::getenv("APO_JOBS")) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

}  // namespace

std::string_view
SkewName(SkewKind kind)
{
    switch (kind) {
      case SkewKind::kNone:
        return "none";
      case SkewKind::kJitter:
        return "jitter";
      case SkewKind::kStraggler:
        return "straggler";
      case SkewKind::kInterference:
        return "interference";
    }
    return "?";
}

StreamDigest
StreamDigest::Of(const rt::OperationLog& log)
{
    StreamDigest digest;
    for (const auto& op : log) {
        digest.Consume(op);
    }
    return digest;
}

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      mining_cache_(options.mining_cache_windows),
      // Never more threads than nodes: the fan-out unit is one node,
      // so extra workers could only park at every barrier.
      jobs_(std::min(ResolveJobs(options.jobs),
                     std::max<std::size_t>(1,
                                           options.coordination.nodes))),
      team_(jobs_)
{
    if (options_.coordination.nodes == 0) {
        options_.coordination.nodes = 1;
    }
    if (options_.max_batch_tasks == 0) {
        options_.max_batch_tasks = 1;
    }
    slack_ = options_.coordination.initial_slack;
    const std::size_t n_nodes = options_.coordination.nodes;
    // Sharing pays only when several nodes mine the same stream.
    core::MiningCache* cache =
        options_.share_mining_cache && n_nodes > 1 ? &mining_cache_
                                                   : nullptr;
    nodes_.reserve(n_nodes);
    metrics_.resize(n_nodes);
    for (std::size_t n = 0; n < n_nodes; ++n) {
        auto node = std::make_unique<NodeState>(
            options_.runtime_options,
            options_.coordination.seed * 7919 + n);
        // Inline executor keeps the mining computation deterministic;
        // completion *timing* is simulated by the coordinator.
        node->front_end = std::make_unique<core::Apophenia>(
            node->runtime, options_.config, nullptr, cache);
        node->front_end->SetIngestMode(core::IngestMode::kManual);
        if (options_.stream_logs) {
            NodeState* state = node.get();
            node->runtime.EnableLogStreaming(
                [state](const rt::OpView& op) {
                    state->digest.Consume(op);
                    if (state->extra) {
                        state->extra(op);
                    }
                });
        }
        nodes_.push_back(std::move(node));
    }
    team_.SetBody([this](std::size_t n) { RunNodePhase(n); });
    UpdateHorizon();
}

void
Cluster::AddLogConsumer(std::size_t node, rt::OperationLog::Consumer c)
{
    if (node >= nodes_.size()) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer: node index out of range");
    }
    if (!options_.stream_logs) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer requires stream_logs");
    }
    if (tasks_issued_ != 0) {
        throw rt::RuntimeUsageError(
            "Cluster::AddLogConsumer must precede the first launch");
    }
    nodes_[node]->extra = std::move(c);
}

void
Cluster::DrainLogStreams()
{
    for (auto& node : nodes_) {
        node->runtime.DrainLogStream();
    }
}

void
Cluster::DoExecuteTask(const rt::TaskLaunchView& launch)
{
    // Buffer the launch into a recycled slot. The nodes advance in
    // batches: between coordination points they are independent, so
    // the serial per-task loop is deferred to the next barrier (see
    // ProcessBatch) where it fans out across the team — with results
    // byte-identical to stepping every node at every task.
    if (batch_count_ == batch_.size()) {
        batch_.emplace_back();
    }
    BatchedLaunch& slot = batch_[batch_count_];
    launch.MaterializeInto(slot.launch);
    slot.token = launch.token;
    ++batch_count_;
    ++tasks_issued_;
    if (tasks_issued_ >= horizon_) {
        ProcessBatch();
    }
}

void
Cluster::ProcessBatch()
{
    if (batch_count_ > 0) {
        batch_base_ = tasks_issued_ - batch_count_;
        phase_ = NodePhase::kStep;
        team_.Run(nodes_.size());
        batch_count_ = 0;
    }
    // The nodes have caught up with the issued stream: make the
    // coordination decisions the serial schedule would have made at
    // (or before) this position. No job's ingestion point can fall
    // strictly inside a batch — UpdateHorizon bounds each batch by
    // the front job's due position and by the current slack, and a
    // job launched mid-batch is due no earlier than its launch
    // position plus the (monotonically non-decreasing) slack.
    ScheduleNewJobs();
    IngestDueJobs();
    UpdateHorizon();
}

void
Cluster::RunNodePhase(std::size_t n)
{
    NodeState& node = *nodes_[n];
    switch (phase_) {
      case NodePhase::kStep: {
        NodeMetrics& metrics = metrics_[n];
        for (std::size_t i = 0; i < batch_count_; ++i) {
            // The node's virtual clock: a skewed node pays more time
            // per issued task.
            metrics.virtual_time_tasks +=
                options_.skew.Factor(n, batch_base_ + i);
            const BatchedLaunch& buffered = batch_[i];
            node.front_end->ExecuteTask(
                rt::TaskLaunchView::Of(buffered.launch, buffered.token));
        }
        break;
      }
      case NodePhase::kIngest:
        for (std::size_t k = 0; k < ingest_count_; ++k) {
            node.front_end->IngestOldestJob();
        }
        break;
      case NodePhase::kDrainAndFlush:
        for (std::size_t k = 0; k < ingest_count_; ++k) {
            node.front_end->IngestOldestJob();
        }
        node.front_end->Flush();
        break;
    }
}

void
Cluster::UpdateHorizon()
{
    // The next position at which the serial schedule could act: the
    // front job's due point, else nothing before one slack's worth of
    // tasks (new jobs are agreed at launch + slack and slack never
    // shrinks), capped so the batch buffer stays small.
    std::uint64_t step = std::max<std::uint64_t>(1, slack_);
    step = std::min<std::uint64_t>(
        step, static_cast<std::uint64_t>(options_.max_batch_tasks));
    horizon_ = tasks_issued_ + step;
    if (!schedule_.empty()) {
        const JobSchedule& next = schedule_.front();
        horizon_ = std::min(horizon_,
                            std::max(next.agreed_at, next.ready_at));
    }
}

rt::RegionId
Cluster::CreateRegion()
{
    // Region calls broadcast immediately, so the buffered launches
    // must reach the nodes first to preserve per-node call order.
    // Cutting a batch early is always serial-equivalent.
    ProcessBatch();
    const rt::RegionId region = nodes_[0]->front_end->CreateRegion();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->front_end->CreateRegion() != region) {
            throw rt::RuntimeUsageError(
                "cluster region allocators diverged on CreateRegion "
                "(a node was driven outside the cluster front end)");
        }
    }
    return region;
}

void
Cluster::DestroyRegion(rt::RegionId r)
{
    ProcessBatch();
    for (auto& node : nodes_) {
        node->front_end->DestroyRegion(r);
    }
}

std::vector<rt::RegionId>
Cluster::PartitionRegion(rt::RegionId parent, std::size_t count)
{
    ProcessBatch();
    std::vector<rt::RegionId> subregions =
        nodes_[0]->front_end->PartitionRegion(parent, count);
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->front_end->PartitionRegion(parent, count) !=
            subregions) {
            throw rt::RuntimeUsageError(
                "cluster region allocators diverged on PartitionRegion "
                "(a node was driven outside the cluster front end)");
        }
    }
    return subregions;
}

void
Cluster::ScheduleNewJobs()
{
    // All nodes launch identical jobs at identical stream positions
    // (the mining schedule is a deterministic function of the
    // stream), so node 0's queue is representative. New jobs are
    // those beyond `jobs_seen_`.
    const CoordinationOptions& coord = options_.coordination;
    nodes_[0]->front_end->VisitPendingJobs(
        jobs_seen_, [&](const core::PendingJobInfo& job) {
            jobs_seen_ = job.id + 1;
            JobSchedule sched;
            sched.job_id = job.id;
            sched.agreed_at = job.issued_at + slack_;
            sched.completion.resize(nodes_.size());
            // Each node's asynchronous analysis completes after a
            // simulated, jittered number of further tasks — stretched
            // by the node's skew factor at launch — and the job is
            // globally ready only when the slowest node finishes.
            sched.ready_at = 0;
            for (std::size_t n = 0; n < nodes_.size(); ++n) {
                const double lo =
                    coord.mean_latency_tasks * (1.0 - coord.jitter);
                const double hi =
                    coord.mean_latency_tasks * (1.0 + coord.jitter);
                const double latency =
                    nodes_[n]->latency_rng.UniformReal(
                        std::max(0.0, lo), std::max(1.0, hi)) *
                    options_.skew.Factor(n, job.issued_at);
                sched.completion[n] =
                    job.issued_at + static_cast<std::uint64_t>(latency);
                sched.ready_at =
                    std::max(sched.ready_at, sched.completion[n]);
                if (sched.completion[n] > sched.agreed_at) {
                    metrics_[n].late_jobs += 1;
                }
            }
            stats_.jobs_coordinated += 1;
            if (sched.ready_at > sched.agreed_at) {
                // Some node would stall at the agreed point: ingest
                // when actually ready, and widen the slack for future
                // jobs (the paper's adaptive count increase).
                stats_.late_jobs += 1;
                slack_ = std::max(
                    slack_ * 2,
                    sched.ready_at - sched.agreed_at + slack_);
            }
            schedule_.push_back(std::move(sched));
        });
    stats_.final_slack = slack_;
    stats_.peak_slack = std::max(stats_.peak_slack, slack_);
}

void
Cluster::IngestDueJobs()
{
    // Ingest in launch order once both the agreed point and global
    // readiness have passed — the same decision on every node. The
    // stall accounting happens here on the driving thread; the
    // per-node trie ingestion fans out through the team (per-node
    // order is launch order either way).
    ingest_count_ = 0;
    while (ingest_count_ < schedule_.size()) {
        const JobSchedule& next = schedule_[ingest_count_];
        const std::uint64_t due =
            std::max(next.agreed_at, next.ready_at);
        if (tasks_issued_ < due) {
            break;
        }
        for (std::size_t n = 0; n < nodes_.size(); ++n) {
            // A node is ready to ingest once both the agreed point
            // and its own completion have passed; it then idles until
            // the cluster-wide ingestion point (the slowest node
            // stalls no one, every other node stalls the difference).
            const std::uint64_t own =
                std::max(next.agreed_at, next.completion[n]);
            const double stall =
                due > own ? static_cast<double>(due - own) : 0.0;
            metrics_[n].stall_tasks += stall;
            metrics_[n].max_stall_tasks =
                std::max(metrics_[n].max_stall_tasks, stall);
        }
        ++ingest_count_;
    }
    if (ingest_count_ > 0) {
        phase_ = NodePhase::kIngest;
        team_.Run(nodes_.size());
        schedule_.erase(schedule_.begin(),
                        schedule_.begin() +
                            static_cast<std::ptrdiff_t>(ingest_count_));
        ingest_count_ = 0;
    }
}

void
Cluster::DoFlush()
{
    // Catch the nodes up with the issued stream, then drain every
    // coordinated job and flush the front-ends (one barrier for the
    // whole per-node drain). The drain ingests jobs whose agreed
    // point lies beyond the end of the stream, so the stream-position
    // stall accounting does not apply — those positions never elapse.
    // The stall metrics describe in-stream agreement points only.
    ProcessBatch();
    ingest_count_ = schedule_.size();
    phase_ = NodePhase::kDrainAndFlush;
    team_.Run(nodes_.size());
    schedule_.clear();
    ingest_count_ = 0;
    UpdateHorizon();
}

StreamDigest
Cluster::NodeDigest(std::size_t i) const
{
    if (options_.stream_logs) {
        return nodes_[i]->digest;
    }
    return StreamDigest::Of(nodes_[i]->runtime.Log());
}

bool
Cluster::StreamDigestsAgree() const
{
    const StreamDigest reference = NodeDigest(0);
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (!(NodeDigest(n) == reference)) {
            return false;
        }
    }
    return true;
}

bool
Cluster::StreamsIdentical() const
{
    if (options_.stream_logs) {
        throw rt::RuntimeUsageError(
            "Cluster::StreamsIdentical needs retained logs (the "
            "streaming-retire mode recycles them); use "
            "StreamDigestsAgree");
    }
    const rt::OperationLog& reference = nodes_[0]->runtime.Log();
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
        const rt::OperationLog& log = nodes_[n]->runtime.Log();
        if (log.size() != reference.size()) {
            return false;
        }
        for (std::size_t i = 0; i < log.size(); ++i) {
            const rt::OpView a = log[i];
            const rt::OpView b = reference[i];
            if (a.token != b.token || a.mode != b.mode ||
                a.trace != b.trace ||
                !(a.dependences == b.dependences)) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace apo::sim
