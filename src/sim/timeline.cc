#include "sim/timeline.h"

#include <ostream>
#include <sstream>

namespace apo::sim {

namespace {

const char*
ModeName(rt::AnalysisMode mode)
{
    switch (mode) {
      case rt::AnalysisMode::kAnalyzed:
        return "analyzed";
      case rt::AnalysisMode::kRecorded:
        return "recorded";
      case rt::AnalysisMode::kReplayed:
        return "replayed";
    }
    return "?";
}

}  // namespace

void
WriteChromeTrace(const rt::OperationLog& log,
                 const PipelineResult& result,
                 const PipelineOptions& options, std::ostream& out)
{
    out << "[";
    bool first = true;
    for (std::size_t i = 0;
         i < log.size() && i < result.finish_us.size(); ++i) {
        const rt::OpView op = log[i];
        const double finish = result.finish_us[i];
        const double start = finish - op.launch.execution_us;
        if (!first) {
            out << ",";
        }
        first = false;
        // Duration event on the executing GPU's row; pid groups by
        // node so Perfetto nests the machine naturally.
        out << "\n{\"name\":\"op" << i << " t" << op.launch.task % 1000
            << "\",\"cat\":\"" << ModeName(op.mode)
            << "\",\"ph\":\"X\",\"ts\":" << start << ",\"dur\":"
            << op.launch.execution_us << ",\"pid\":"
            << options.machine.NodeOf(op.launch.shard) << ",\"tid\":"
            << op.launch.shard << ",\"args\":{\"mode\":\""
            << ModeName(op.mode) << "\",\"trace\":" << op.trace
            << ",\"analysis_us\":" << op.analysis_cost_us << "}}";
    }
    out << "\n]\n";
}

std::string
ChromeTraceJson(const rt::OperationLog& log,
                const PipelineResult& result,
                const PipelineOptions& options)
{
    std::ostringstream out;
    WriteChromeTrace(log, result, options, out);
    return out.str();
}

}  // namespace apo::sim
