/**
 * @file
 * The experiment harness: run a workload skeleton in one of the
 * paper's three configurations (untraced, manually traced, Apophenia)
 * and measure simulated steady-state throughput — the quantity every
 * weak/strong-scaling figure reports.
 *
 * The application is always driven through the one api::Frontend
 * issue surface; the harness picks the implementation from the
 * options. Control replication (paper section 5.1) is an orthogonal
 * axis: any workload can run on an N-node sim::Cluster under a
 * pluggable per-node SkewModel, and the result carries the incremental
 * stream-digest safety check plus per-node stall/agreement metrics.
 * The log-mode axis (retained vs streaming-retire) composes with both
 * — a replicated streaming run keeps every node's resident log
 * bounded and verifies agreement through the rolling digests.
 */
#ifndef APOPHENIA_SIM_HARNESS_H
#define APOPHENIA_SIM_HARNESS_H

#include <string_view>
#include <vector>

#include "api/frontend.h"
#include "apps/app.h"
#include "core/apophenia.h"
#include "core/config.h"
#include "runtime/runtime.h"
#include "sim/cluster.h"
#include "sim/metrics.h"
#include "sim/pipeline.h"

namespace apo::sim {

/** The three configurations of the paper's evaluation. */
enum class TracingMode {
    kUntraced,  ///< plain dynamic dependence analysis
    kManual,    ///< the application's own tbegin/tend annotations
    kAuto,      ///< Apophenia
};

std::string_view ModeName(TracingMode mode);

/** Which executor runs Apophenia's mining jobs in a kAuto experiment. */
enum class ExecutorMode {
    /** Jobs run synchronously at launch: deterministic, the
     * configuration every figure is reported with. */
    kInline,
    /** Jobs run on a PooledExecutor (background threads, completions
     * delivered at deterministic pump points): the throughput
     * configuration. Replay decisions may differ from kInline when
     * auto_config.ingest_mode is kOnCompletion (completion timing
     * moves ingestion positions); with kEagerDrain they are identical
     * and the two configurations cross-check each other. */
    kPooled,
};

/** How the harness consumes the runtime's operation log. */
enum class LogMode {
    /** The log is kept whole and simulated after the run (the
     * configuration every figure is reported with). */
    kRetained,
    /** Streaming retire: the simulator and metrics run as the log's
     * streaming consumer, blocks recycle, and resident log memory
     * stays bounded no matter how long the stream is. Metrics and
     * decisions are bit-identical to kRetained. Composes with control
     * replication (every node streams; agreement is checked through
     * the incremental StreamDigest) and with the inline transitive
     * reduction (applied through the windowed streaming reducer; needs
     * a nonzero -lg:window). */
    kStreaming,
};

/** Experiment parameters. */
struct ExperimentOptions {
    TracingMode mode = TracingMode::kAuto;
    std::size_t iterations = 60;
    rt::CostModel costs;
    core::ApopheniaConfig auto_config;  ///< used when mode == kAuto
    ExecutorMode executor_mode = ExecutorMode::kInline;
    std::size_t pool_threads = 2;  ///< used when kPooled
    /** What a trace replay does when the stream deviates from the
     * template: throw (Legion's strict mode) or degrade that fragment
     * to full dependence analysis (see rt::MismatchPolicy). */
    rt::MismatchPolicy mismatch_policy = rt::MismatchPolicy::kThrow;
    /** Trace-template retention bound of the runtime's TraceCache
     * (rt::RuntimeOptions::max_trace_templates; 0 = unlimited).
     * Evictions surface as ExperimentResult::trace_cache_evictions. */
    std::size_t max_trace_templates = 0;
    LogMode log_mode = LogMode::kRetained;
    /** Operation-log block granularity; with kStreaming this is the
     * resident-memory ceiling knob. */
    rt::OperationLog::Config log_config;
    apps::MachineConfig machine;
    /** Control replication: number of simulated cluster nodes.
     * 1 runs a single front end. >1 drives the application through a
     * sim::Cluster (kAuto traces on every node; kUntraced runs the
     * nodes with tracing disabled; kManual is rejected with a typed
     * rt::RuntimeUsageError — the cluster front end drops
     * annotations). Replicated mining always uses the deterministic
     * inline executor; completion *timing* is what `replication` and
     * `skew` simulate. */
    std::size_t replicas = 1;
    /** Coordination tuning when replicas > 1 (`nodes` is overridden
     * by `replicas`). */
    CoordinationOptions replication;
    /** Per-node timing perturbation: when replicas > 1 it skews the
     * cluster's coordination timing, and (any replica count) it
     * stretches the pipeline simulator's per-node analysis/execution
     * costs, so skew shows up in the simulated makespan. */
    SkewModel skew;
    /** Threads of the cluster's parallel per-node engine when
     * replicas > 1 (ClusterOptions::jobs: 0 = APO_JOBS env override,
     * else hardware_concurrency; every value is byte-identical). */
    std::size_t cluster_jobs = 0;
    /** Share one content-addressed mining cache across the cluster's
     * nodes (behaviour-invariant dedup of the replicated mining work;
     * see core/mining_cache.h). */
    bool share_mining_cache = true;
    /** Replicated kAuto runs: one shared decision engine drives every
     * node instead of per-node engines (ClusterOptions::
     * shared_decisions; bit-identical either way — see
     * core/decision_engine.h). */
    bool shared_decisions = true;
    /** Record the figure-10 coverage series (costs memory). */
    bool keep_coverage_series = false;
    std::size_t coverage_window = 5000;
    std::size_t coverage_stride = 250;
};

/** Everything a bench needs to print a figure row. */
struct ExperimentResult {
    double iterations_per_second = 0.0;
    double makespan_us = 0.0;
    std::size_t total_tasks = 0;
    double replayed_fraction = 0.0;
    std::size_t warmup_iterations = 0;
    rt::RuntimeStats runtime_stats;        ///< node 0 when replicated
    core::ApopheniaStats apophenia_stats;  ///< zeros unless kAuto
    /** Uniform issue-surface counters of the driven front end. */
    api::FrontendStats frontend_stats;
    /** Control-replication safety: all nodes issued bit-identical
     * streams, verified through the incremental per-node
     * StreamDigest (trivially true when replicas == 1). */
    bool streams_identical = true;
    CoordinationStats coordination;  ///< zeros unless replicated
    /** Per-node virtual clocks, stalls and agreement misses (empty
     * unless replicated). */
    std::vector<NodeMetrics> node_metrics;
    std::vector<std::pair<std::size_t, double>> coverage_series;
    /** Operation-log memory high-water — the worst node's when
     * replicated — the number the streaming-retire mode bounds. */
    std::size_t log_peak_resident_bytes = 0;
    /** Operations drained through the streaming consumer on node 0
     * (0 when retained). */
    std::size_t log_retired_ops = 0;
    /** Shared-mining-cache counters (replicated runs; zero when the
     * cache is off). Every mining-job probe is a hit (another node's
     * result adopted) or a miss (mined locally); `windows` counts
     * published mining runs, so misses == windows certifies each
     * distinct window was mined once cluster-wide. */
    std::uint64_t mining_cache_hits = 0;
    std::uint64_t mining_cache_misses = 0;
    std::size_t mining_cache_windows = 0;
    /** Incremental-mining tier counters over ingested jobs, summed
     * across nodes when replicated (all zero with incremental mining
     * off): jobs served by the rolling fast path (no mining, no cache
     * probe), by incremental structure repair, and by full rebuild. */
    std::uint64_t mining_fast_path_hits = 0;
    std::uint64_t mining_repairs = 0;
    std::uint64_t mining_full = 0;
    /** The issued stream's rolling digest (node 0's when replicated)
     * — the strongest cheap cross-run identity check: two runs that
     * issued the same stream report the same digest. */
    std::uint64_t stream_digest = 0;
    std::uint64_t stream_digest_ops = 0;
    /** LRU evictions from the runtime's TraceCache (node 0 when
     * replicated); nonzero only under a finite
     * rt::RuntimeOptions::max_trace_templates. */
    std::uint64_t trace_cache_evictions = 0;
    /** Evictions from the shared mining cache (replicated runs;
     * policy: core::MiningCache::kEvictionPolicy) — nonzero only
     * under a finite mining_cache_windows bound, the analogue of
     * trace_cache_evictions for mining memo retention. */
    std::uint64_t mining_cache_evictions = 0;
    /** Rolling digest of the ingested candidate sets (the decider's
     * under shared decisions, node 0's / the single front-end's
     * otherwise; 0 unless kAuto): equal digests certify two runs
     * ingested identical candidates at identical stream positions. */
    std::uint64_t candidate_digest = 0;
    /** Decision-path accounting of replicated runs (see
     * sim::DecisionStats): whether the shared decision engine drove
     * the nodes, the cluster-wide decision nanoseconds (the quantity
     * the decision_cost bench shows flat in N for the shared engine),
     * broadcast/batch counts, and digest-divergence fallbacks. */
    bool shared_decisions = false;
    std::uint64_t decision_ns = 0;
    std::uint64_t decision_apply_ns = 0;
    std::uint64_t decision_batches = 0;
    std::uint64_t decisions_broadcast = 0;
    std::uint64_t decision_fallbacks = 0;
};

/** Run `app` for `options.iterations` main-loop iterations and
 * simulate the resulting operation log on the machine model. */
ExperimentResult RunExperiment(apps::Application& app,
                               const ExperimentOptions& options);

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_HARNESS_H
