#include "sim/pipeline.h"

#include <algorithm>

#include "runtime/graph.h"

namespace apo::sim {

PipelineResult
SimulatePipeline(const std::vector<rt::Operation>& log,
                 const PipelineOptions& options)
{
    if (options.inline_transitive_reduction) {
        // Simulate on the transitively reduced graph, as Legion does
        // with -lg:inline_transitive_reduction (same ordering, fewer
        // event edges).
        std::vector<rt::Operation> reduced = log;
        rt::TransitiveReduction(reduced, /*window=*/options.window);
        PipelineOptions inner = options;
        inner.inline_transitive_reduction = false;
        return SimulatePipeline(reduced, inner);
    }
    const apps::MachineConfig& machine = options.machine;
    const rt::CostModel& costs = options.costs;
    const double launch_us =
        costs.launch_us +
        (options.apophenia_front_end ? costs.apophenia_launch_us : 0.0);
    const double cross_latency = machine.CrossNodeLatencyUs();

    const std::size_t num_nodes = std::max<std::size_t>(machine.nodes, 1);
    const std::size_t num_gpus =
        std::max<std::size_t>(machine.GpuCount(), 1);
    double app_time = 0.0;  // application phase clock
    // Blocking futures (e.g. a training loop reading back the loss)
    // stall the application thread until the producing task finishes;
    // launches after the producer cannot happen before this gate.
    double app_gate = 0.0;
    std::vector<double> analysis_free(num_nodes, 0.0);
    std::vector<double> gpu_free(num_gpus, 0.0);

    PipelineResult result;
    result.finish_us.assign(log.size(), 0.0);
    std::vector<double> exec_start(log.size(), 0.0);

    auto node_of = [&](const rt::Operation& op) {
        return std::min<std::size_t>(machine.NodeOf(op.launch.shard),
                                     num_nodes - 1);
    };

    // Schedule execution of op k given its analysis-ready time.
    auto execute = [&](std::size_t k, double analysis_ready) {
        const rt::Operation& op = log[k];
        const std::size_t gpu =
            std::min<std::size_t>(op.launch.shard, num_gpus - 1);
        const std::size_t node = machine.NodeOf(op.launch.shard);
        double ready = analysis_ready;
        for (const rt::Dependence& d : op.dependences) {
            double dep_done = result.finish_us[d.from];
            if (machine.NodeOf(log[d.from].launch.shard) != node) {
                dep_done += cross_latency;  // data crosses the network
            }
            ready = std::max(ready, dep_done);
        }
        exec_start[k] = std::max(ready, gpu_free[gpu]);
        result.finish_us[k] = exec_start[k] + op.launch.execution_us;
        gpu_free[gpu] = result.finish_us[k];
        result.makespan_us =
            std::max(result.makespan_us, result.finish_us[k]);
    };

    std::size_t i = 0;
    while (i < log.size()) {
        const rt::Operation& op = log[i];
        if (op.mode == rt::AnalysisMode::kReplayed && op.replay_head) {
            // A replayed fragment. Its extent: Apophenia issues
            // fragments contiguously, and a new instance starts at the
            // next replay_head.
            std::size_t j = i + 1;
            while (j < log.size() &&
                   log[j].mode == rt::AnalysisMode::kReplayed &&
                   log[j].trace == op.trace && !log[j].replay_head) {
                ++j;
            }
            // (1) No speculation: the replay is issued only once the
            // application has launched the entire fragment.
            double arrival = 0.0;
            std::vector<std::size_t> node_tasks(num_nodes, 0);
            for (std::size_t k = i; k < j; ++k) {
                app_time = std::max(app_time, app_gate) + launch_us;
                arrival = app_time;
                node_tasks[node_of(log[k])] += 1;
            }
            // (2) Each node replays its shard of the fragment as one
            // block on its analysis resource; the fragment's tasks
            // become executable only when their node's whole block has
            // been instantiated. With small tasks and a pipeline that
            // drains (blocking futures), this block release is what
            // exposes long replays (figure 8).
            std::vector<double> node_done(num_nodes, 0.0);
            for (std::size_t n = 0; n < num_nodes; ++n) {
                if (node_tasks[n] == 0) {
                    continue;
                }
                const double start = std::max(analysis_free[n], arrival);
                node_done[n] =
                    start + costs.replay_constant_us +
                    costs.replay_us * static_cast<double>(node_tasks[n]);
                analysis_free[n] = node_done[n];
            }
            for (std::size_t k = i; k < j; ++k) {
                execute(k, node_done[node_of(log[k])]);
                if (log[k].launch.blocking) {
                    app_gate = std::max(app_gate, result.finish_us[k]);
                }
            }
            i = j;
            continue;
        }
        // Analyzed or recorded operation: flows through the owning
        // node's analysis resource one task at a time; the analysis
        // pipeline runs ahead of execution freely (it needs no
        // execution events, only region metadata) — up to the
        // operation window (-lg:window), which bounds in-flight state.
        app_time = std::max(app_time, app_gate) + launch_us;
        const std::size_t n = node_of(op);
        double start = std::max(analysis_free[n], app_time);
        if (options.window != 0 && i >= options.window) {
            start = std::max(start, result.finish_us[i - options.window]);
        }
        analysis_free[n] = start + op.analysis_cost_us;
        execute(i, analysis_free[n]);
        if (op.launch.blocking) {
            app_gate = std::max(app_gate, result.finish_us[i]);
        }
        ++i;
    }
    return result;
}

}  // namespace apo::sim
