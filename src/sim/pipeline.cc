#include "sim/pipeline.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "runtime/graph.h"

namespace apo::sim {

PipelineSimulator::PipelineSimulator(const PipelineOptions& options)
    : options_(options)
{
    if (options_.inline_transitive_reduction) {
        throw std::invalid_argument(
            "PipelineSimulator: the inline transitive reduction is a "
            "whole-log transform; use SimulatePipeline on a retained "
            "log");
    }
    launch_us_ = options_.costs.launch_us +
                 (options_.apophenia_front_end
                      ? options_.costs.apophenia_launch_us
                      : 0.0);
    cross_latency_ = options_.machine.CrossNodeLatencyUs();
    num_nodes_ = std::max<std::size_t>(options_.machine.nodes, 1);
    num_gpus_ = std::max<std::size_t>(options_.machine.GpuCount(), 1);
    analysis_free_.assign(num_nodes_, 0.0);
    gpu_free_.assign(num_gpus_, 0.0);
}

std::size_t
PipelineSimulator::NodeOf(std::uint32_t shard) const
{
    // The analysis-resource index clamp of the original simulator.
    return std::min<std::size_t>(options_.machine.NodeOf(shard),
                                 num_nodes_ - 1);
}

// Schedule execution of one op given its analysis-ready time.
void
PipelineSimulator::ExecuteOp(std::size_t index, std::uint32_t shard,
                             double execution_us, bool blocking,
                             std::span<const rt::Dependence> deps,
                             double analysis_ready)
{
    const std::size_t gpu = std::min<std::size_t>(shard, num_gpus_ - 1);
    const std::size_t node = options_.machine.NodeOf(shard);
    double ready = analysis_ready;
    for (const rt::Dependence& d : deps) {
        double dep_done = result_.finish_us[d.from];
        if (options_.machine.NodeOf(shards_[d.from]) != node) {
            dep_done += cross_latency_;  // data crosses the network
        }
        ready = std::max(ready, dep_done);
    }
    const double start = std::max(ready, gpu_free_[gpu]);
    const double finish = start + execution_us;
    assert(index == result_.finish_us.size());
    (void)index;
    result_.finish_us.push_back(finish);
    shards_.push_back(shard);
    gpu_free_[gpu] = finish;
    result_.makespan_us = std::max(result_.makespan_us, finish);
    if (blocking) {
        app_gate_ = std::max(app_gate_, finish);
    }
}

void
PipelineSimulator::ProcessSequential(const rt::OpView& op)
{
    // Analyzed or recorded operation: flows through the owning
    // node's analysis resource one task at a time; the analysis
    // pipeline runs ahead of execution freely (it needs no
    // execution events, only region metadata) — up to the
    // operation window (-lg:window), which bounds in-flight state.
    app_time_ = std::max(app_time_, app_gate_) + launch_us_;
    const std::size_t n = NodeOf(op.launch.shard);
    // A skewed node pays the factor on both its analysis and its
    // execution of the task (kNone is exactly 1.0).
    const double factor = options_.skew.Factor(n, op.index);
    double start = std::max(analysis_free_[n], app_time_);
    if (options_.window != 0 && op.index >= options_.window) {
        start = std::max(start,
                         result_.finish_us[op.index - options_.window]);
    }
    analysis_free_[n] = start + op.analysis_cost_us * factor;
    ExecuteOp(op.index, op.launch.shard,
              op.launch.execution_us * factor, op.launch.blocking,
              op.dependences, analysis_free_[n]);
}

void
PipelineSimulator::FlushFragment()
{
    if (!in_fragment_) {
        return;
    }
    // (1) No speculation: the replay is issued only once the
    // application has launched the entire fragment.
    double arrival = 0.0;
    node_tasks_.assign(num_nodes_, 0);
    for (const FragOp& op : fragment_) {
        app_time_ = std::max(app_time_, app_gate_) + launch_us_;
        arrival = app_time_;
        node_tasks_[NodeOf(op.shard)] += 1;
    }
    // (2) Each node replays its shard of the fragment as one
    // block on its analysis resource; the fragment's tasks
    // become executable only when their node's whole block has
    // been instantiated. With small tasks and a pipeline that
    // drains (blocking futures), this block release is what
    // exposes long replays (figure 8).
    node_done_.assign(num_nodes_, 0.0);
    const std::uint64_t frag_pos = fragment_.front().index;
    for (std::size_t n = 0; n < num_nodes_; ++n) {
        if (node_tasks_[n] == 0) {
            continue;
        }
        // The whole replay block runs at the node's skew factor at
        // the fragment's stream position (one replay = one op).
        const double start = std::max(analysis_free_[n], arrival);
        node_done_[n] = start +
                        (options_.costs.replay_constant_us +
                         options_.costs.replay_us *
                             static_cast<double>(node_tasks_[n])) *
                            options_.skew.Factor(n, frag_pos);
        analysis_free_[n] = node_done_[n];
    }
    for (const FragOp& op : fragment_) {
        ExecuteOp(op.index, op.shard,
                  op.execution_us *
                      options_.skew.Factor(NodeOf(op.shard), op.index),
                  op.blocking,
                  std::span<const rt::Dependence>(
                      frag_deps_.data() + op.dep_begin,
                      frag_deps_.data() + op.dep_end),
                  node_done_[NodeOf(op.shard)]);
    }
    in_fragment_ = false;
    fragment_.clear();
    frag_deps_.clear();
}

void
PipelineSimulator::BufferFragOp(const rt::OpView& op)
{
    FragOp frag;
    frag.index = op.index;
    frag.shard = op.launch.shard;
    frag.execution_us = op.launch.execution_us;
    frag.blocking = op.launch.blocking;
    frag.dep_begin = frag_deps_.size();
    frag_deps_.insert(frag_deps_.end(), op.dependences.begin(),
                      op.dependences.end());
    frag.dep_end = frag_deps_.size();
    fragment_.push_back(frag);
}

void
PipelineSimulator::Consume(const rt::OpView& op)
{
    if (in_fragment_) {
        // A replayed fragment's extent: Apophenia issues fragments
        // contiguously, and a new instance starts at the next
        // replay_head.
        if (op.mode == rt::AnalysisMode::kReplayed &&
            op.trace == fragment_trace_ && !op.replay_head) {
            BufferFragOp(op);
            return;
        }
        FlushFragment();
    }
    if (op.mode == rt::AnalysisMode::kReplayed && op.replay_head) {
        in_fragment_ = true;
        fragment_trace_ = op.trace;
        BufferFragOp(op);
        return;
    }
    ProcessSequential(op);
}

PipelineResult
PipelineSimulator::Finish()
{
    FlushFragment();
    return std::move(result_);
}

PipelineResult
SimulatePipeline(const rt::OperationLog& log,
                 const PipelineOptions& options)
{
    if (options.inline_transitive_reduction) {
        // Simulate on the transitively reduced graph, as Legion does
        // with -lg:inline_transitive_reduction (same ordering, fewer
        // event edges).
        rt::OperationLog reduced = log.Clone();
        rt::TransitiveReduction(reduced, /*window=*/options.window);
        PipelineOptions inner = options;
        inner.inline_transitive_reduction = false;
        return SimulatePipeline(reduced, inner);
    }
    PipelineSimulator simulator(options);
    for (const auto& op : log) {
        simulator.Consume(op);
    }
    return simulator.Finish();
}

}  // namespace apo::sim
