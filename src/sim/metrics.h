/**
 * @file
 * Metrics over simulated executions: iteration timing, steady-state
 * throughput, warmup detection (paper figure 9) and the traced-window
 * coverage series (paper figure 10).
 *
 * The log-shape metrics (warmup, coverage) need one bit per operation
 * — was it traced? — so they come in two forms: over a retained
 * OperationLog, and over a TracedFlags accumulator filled
 * incrementally by a streaming-retire consumer (one byte per op, so a
 * million-task stream costs a megabyte, not the log).
 */
#ifndef APOPHENIA_SIM_METRICS_H
#define APOPHENIA_SIM_METRICS_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/runtime.h"
#include "sim/pipeline.h"

namespace apo::sim {

/**
 * Completion time of each iteration: the latest finish among the
 * operations issued up to each boundary. `boundaries[i]` is the
 * number of operations issued after iteration i completed.
 */
std::vector<double> IterationEndTimes(
    const PipelineResult& result, const std::vector<std::size_t>& boundaries);

/**
 * Steady-state throughput in iterations/second measured over the last
 * `measure` iterations (default: final quarter).
 */
double SteadyThroughput(const std::vector<double>& iteration_ends_us,
                        std::size_t measure = 0);

/** Per-operation traced flags, collected incrementally (streaming) or
 * extracted from a retained log. */
class TracedFlags {
  public:
    /** Streaming-retire consumer side: record one operation. */
    void Consume(const rt::OpView& op)
    {
        flags_.push_back(op.mode != rt::AnalysisMode::kAnalyzed ? 1 : 0);
    }

    const std::vector<std::uint8_t>& Flags() const { return flags_; }
    std::size_t size() const { return flags_.size(); }

    static TracedFlags Of(const rt::OperationLog& log);

  private:
    std::vector<std::uint8_t> flags_;
};

/**
 * Iterations until a replaying steady state (figure 9): one past the
 * last iteration whose fraction of traced (recorded or replayed)
 * operations is below `threshold`. The mild default tolerates
 * permanently recurring irregular work (convergence checks) without
 * counting it as leaving the steady state. Returns the iteration
 * count if no steady state was reached.
 */
std::size_t WarmupIterations(const TracedFlags& traced,
                             const std::vector<std::size_t>& boundaries,
                             double threshold = 0.5);
std::size_t WarmupIterations(const rt::OperationLog& log,
                             const std::vector<std::size_t>& boundaries,
                             double threshold = 0.5);

/**
 * Figure 10's series: for operation indices stepped by `stride`, the
 * percentage of the previous `window` operations that were traced.
 */
std::vector<std::pair<std::size_t, double>> TracedCoverageSeries(
    const TracedFlags& traced, std::size_t window, std::size_t stride);
std::vector<std::pair<std::size_t, double>> TracedCoverageSeries(
    const rt::OperationLog& log, std::size_t window, std::size_t stride);

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_METRICS_H
