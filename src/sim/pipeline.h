/**
 * @file
 * Discrete-event simulator of the runtime's pipelined architecture
 * (paper section 5.2): tasks flow through the application phase (the
 * launch into Apophenia/the runtime), the analysis phase (dependence
 * analysis, trace recording, or trace replay — one sequential
 * resource per node, since the analysis is sharded under control
 * replication), and the execution phase (one FIFO resource per GPU,
 * ordered by the dependence graph, with cross-node dependences paying
 * a communication latency).
 *
 * Replayed fragments occupy the analysis stage as a unit: Legion
 * issues a trace replay as one operation, so the tasks of a replayed
 * fragment only become eligible for execution when the whole replay
 * has been processed (and, per the no-speculation decision, a replay
 * is not issued until the application has launched the entire
 * fragment). This is the mechanism behind figure 8's observation that
 * very long traces expose latency once per-task execution shrinks.
 *
 * Two consumption styles over the same core:
 *  - SimulatePipeline(log, options): the retained-log path — simulate
 *    a finished run wholesale;
 *  - PipelineSimulator: the streaming path — feed operations one at a
 *    time (e.g. as the OperationLog's streaming-retire consumer), so
 *    a stream far larger than memory simulates in bounded space. The
 *    two are arithmetically identical: the retained path is a loop
 *    over Consume() + Finish().
 *
 * Wall-clock time everywhere in this simulator is *simulated* time,
 * parameterized by the paper's published cost constants (CostModel).
 */
#ifndef APOPHENIA_SIM_PIPELINE_H
#define APOPHENIA_SIM_PIPELINE_H

#include <cstdint>
#include <vector>

#include "apps/app.h"
#include "runtime/cost_model.h"
#include "runtime/runtime.h"
#include "sim/skew.h"

namespace apo::sim {

/** Simulation parameters. */
struct PipelineOptions {
    apps::MachineConfig machine;
    rt::CostModel costs;
    /** Charge the Apophenia front-end's extra per-launch cost. */
    bool apophenia_front_end = false;
    /** Per-(node, task) timing skew: stretches each operation's
     * analysis/replay-block and execution costs by the owning node's
     * SkewModel::Factor at that stream position, so a straggler or
     * an interference burst lands in the makespan. kNone (the
     * default) yields exactly-1.0 factors — the simulated times are
     * bit-identical to a skew-free build. */
    SkewModel skew;
    /** Operation window (-lg:window): the analysis stage may run at
     * most this many operations ahead of completed execution, bounding
     * the runtime's in-flight state. The artifact uses 30000. 0
     * disables the bound. */
    std::size_t window = 30000;
    /** Apply Legion's inline transitive reduction to the dependence
     * graph before simulating (-lg:inline_transitive_reduction).
     * Retained-log path only: the reduction is a whole-log transform. */
    bool inline_transitive_reduction = false;
};

/** Per-operation timing produced by the simulation. */
struct PipelineResult {
    /** Completion time (µs) of each operation's execution. */
    std::vector<double> finish_us;
    /** Time at which the last operation finished. */
    double makespan_us = 0.0;
};

/**
 * The incremental simulator core. Feed operations in log order via
 * Consume() — replayed fragments are buffered internally until their
 * extent is known — then Finish() flushes the trailing fragment and
 * yields the result. Suitable as an OperationLog streaming-retire
 * consumer: nothing of the operation is referenced after Consume()
 * returns (the per-op history it keeps — finish time and shard — is a
 * few bytes per operation).
 */
class PipelineSimulator {
  public:
    /** @throws std::invalid_argument if options request the inline
     *  transitive reduction (a whole-log transform). */
    explicit PipelineSimulator(const PipelineOptions& options);

    void Consume(const rt::OpView& op);
    PipelineResult Finish();

  private:
    struct FragOp {
        std::size_t index = 0;
        std::uint32_t shard = 0;
        double execution_us = 0.0;
        bool blocking = false;
        std::size_t dep_begin = 0;  ///< span into frag_deps_
        std::size_t dep_end = 0;
    };

    std::size_t NodeOf(std::uint32_t shard) const;
    void ExecuteOp(std::size_t index, std::uint32_t shard,
                   double execution_us, bool blocking,
                   std::span<const rt::Dependence> deps,
                   double analysis_ready);
    void ProcessSequential(const rt::OpView& op);
    void BufferFragOp(const rt::OpView& op);
    void FlushFragment();

    PipelineOptions options_;
    double launch_us_ = 0.0;
    double cross_latency_ = 0.0;
    std::size_t num_nodes_ = 1;
    std::size_t num_gpus_ = 1;

    double app_time_ = 0.0;  ///< application phase clock
    /** Blocking futures (e.g. a training loop reading back the loss)
     * stall the application thread until the producing task finishes;
     * launches after the producer cannot happen before this gate. */
    double app_gate_ = 0.0;
    std::vector<double> analysis_free_;
    std::vector<double> gpu_free_;
    PipelineResult result_;
    /** Shard of every processed op (cross-node dependence check). */
    std::vector<std::uint32_t> shards_;

    bool in_fragment_ = false;
    rt::TraceId fragment_trace_ = rt::kNoTrace;
    std::vector<FragOp> fragment_;
    std::vector<rt::Dependence> frag_deps_;
    std::vector<std::size_t> node_tasks_;  ///< fragment-flush scratch
    std::vector<double> node_done_;
};

/** Simulate the execution of a retained runtime operation log. */
PipelineResult SimulatePipeline(const rt::OperationLog& log,
                                const PipelineOptions& options);

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_PIPELINE_H
