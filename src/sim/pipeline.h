/**
 * @file
 * Discrete-event simulator of the runtime's pipelined architecture
 * (paper section 5.2): tasks flow through the application phase (the
 * launch into Apophenia/the runtime), the analysis phase (dependence
 * analysis, trace recording, or trace replay — one sequential
 * resource per node, since the analysis is sharded under control
 * replication), and the execution phase (one FIFO resource per GPU,
 * ordered by the dependence graph, with cross-node dependences paying
 * a communication latency).
 *
 * Replayed fragments occupy the analysis stage as a unit: Legion
 * issues a trace replay as one operation, so the tasks of a replayed
 * fragment only become eligible for execution when the whole replay
 * has been processed (and, per the no-speculation decision, a replay
 * is not issued until the application has launched the entire
 * fragment). This is the mechanism behind figure 8's observation that
 * very long traces expose latency once per-task execution shrinks.
 *
 * Wall-clock time everywhere in this simulator is *simulated* time,
 * parameterized by the paper's published cost constants (CostModel).
 */
#ifndef APOPHENIA_SIM_PIPELINE_H
#define APOPHENIA_SIM_PIPELINE_H

#include <vector>

#include "apps/app.h"
#include "runtime/cost_model.h"
#include "runtime/runtime.h"

namespace apo::sim {

/** Simulation parameters. */
struct PipelineOptions {
    apps::MachineConfig machine;
    rt::CostModel costs;
    /** Charge the Apophenia front-end's extra per-launch cost. */
    bool apophenia_front_end = false;
    /** Operation window (-lg:window): the analysis stage may run at
     * most this many operations ahead of completed execution, bounding
     * the runtime's in-flight state. The artifact uses 30000. 0
     * disables the bound. */
    std::size_t window = 30000;
    /** Apply Legion's inline transitive reduction to the dependence
     * graph before simulating (-lg:inline_transitive_reduction). */
    bool inline_transitive_reduction = false;
};

/** Per-operation timing produced by the simulation. */
struct PipelineResult {
    /** Completion time (µs) of each operation's execution. */
    std::vector<double> finish_us;
    /** Time at which the last operation finished. */
    double makespan_us = 0.0;
};

/** Simulate the execution of a runtime operation log. */
PipelineResult SimulatePipeline(const std::vector<rt::Operation>& log,
                                const PipelineOptions& options);

}  // namespace apo::sim

#endif  // APOPHENIA_SIM_PIPELINE_H
