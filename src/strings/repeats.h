/**
 * @file
 * Non-overlapping repeated substring mining (paper Algorithm 2,
 * "quick_matching_of_substrings" in the artifact).
 *
 * Given the tokenized task history, find a set of repeated substrings
 * together with non-overlapping occurrence positions that achieve high
 * coverage of the buffer (paper section 3's optimization problem). The
 * algorithm makes one pass over the suffix array to generate at most
 * two candidate occurrences per adjacent suffix pair, sorts candidates
 * by decreasing length (then by substring and start position), and
 * greedily selects occurrences that do not overlap previously selected
 * ones. Total complexity O(n log n).
 *
 * FindRepeats is the convenience entry point; FindRepeatsInto /
 * FindRepeatsFromSa are the scratch-reusing layers (see
 * suffix_array.h's note on the two API layers). FindRepeatsFromSa
 * additionally lets a caller that already owns a suffix array + LCP —
 * the incremental miner repairing structures across windows — run just
 * the candidate-selection stage.
 */
#ifndef APOPHENIA_STRINGS_REPEATS_H
#define APOPHENIA_STRINGS_REPEATS_H

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "strings/suffix_array.h"

namespace apo::strings {

/** A repeated substring and its selected non-overlapping occurrences. */
struct Repeat {
    /** The repeated token subsequence itself. */
    Sequence tokens;
    /** Start positions of the selected pairwise-disjoint occurrences,
     * in increasing order. */
    std::vector<std::size_t> starts;

    std::size_t Length() const { return tokens.size(); }
    /** Positions of the input covered by this repeat's occurrences. */
    std::size_t Coverage() const { return tokens.size() * starts.size(); }
};

/** Options for FindRepeats. */
struct RepeatOptions {
    /** Minimum repeat length to emit (paper constraint 1: traces must
     * be longer than a minimum length so the constant replay cost can
     * be amortized). */
    std::size_t min_length = 2;
    /** Drop repeats whose selected occurrence count is below this
     * (1 keeps everything; tracing candidates typically want >= 2). */
    std::size_t min_occurrences = 1;
    /** Suffix-array construction to use. */
    SuffixAlgorithm suffix_algorithm = SuffixAlgorithm::kSais;
};

/** FindRepeats' viability guard: inputs shorter than two minimum-length
 * occurrences cannot contain a selectable repeat and yield the empty
 * set without building any suffix structures. Shared with the
 * incremental miner so both paths agree on the degenerate case. */
inline bool
RepeatsViable(std::size_t n, const RepeatOptions& options)
{
    return n >= 2 * std::max<std::size_t>(options.min_length, 1);
}

/** A candidate occurrence: `length` tokens starting at `start`. */
struct RepeatCandidate {
    std::size_t length = 0;
    std::size_t start = 0;
};

/**
 * Reusable buffers for FindRepeatsInto / FindRepeatsFromSa. Contents
 * are internal staging only — nothing outlives the call that filled
 * it. One scratch per thread.
 */
struct RepeatsScratch {
    SuffixWorkspace suffix;
    std::vector<std::size_t> sa;
    std::vector<std::size_t> lcp;
    std::vector<std::size_t> inverse;
    std::vector<std::size_t> rank;
    std::vector<std::size_t> group_starts;
    std::vector<RepeatCandidate> candidates;
    std::vector<std::vector<std::size_t>> rmq_levels;
};

/**
 * Find repeated substrings of `s` with high non-overlapping coverage.
 *
 * The returned repeats are deduplicated (each distinct substring
 * appears once) and their selected occurrence sets are disjoint across
 * *all* returned repeats, satisfying constraint 2 of the paper's
 * optimization problem. Ordered by decreasing length, then by content.
 */
std::vector<Repeat> FindRepeats(const Sequence& s,
                                const RepeatOptions& options = {});

/** Scratch-reusing FindRepeats: bit-identical output into `out`. */
void FindRepeatsInto(std::span<const Symbol> s, const RepeatOptions& options,
                     RepeatsScratch& scratch, std::vector<Repeat>& out);

/**
 * Candidate generation + greedy selection over a caller-provided
 * suffix array and LCP array for `s` (which must satisfy
 * RepeatsViable(|s|, options)). This is everything FindRepeats does
 * after suffix construction, so callers that repair sa/lcp
 * incrementally still produce bit-identical repeat sets.
 */
void FindRepeatsFromSa(std::span<const Symbol> s,
                       const std::vector<std::size_t>& sa,
                       const std::vector<std::size_t>& lcp,
                       const RepeatOptions& options, RepeatsScratch& scratch,
                       std::vector<Repeat>& out);

/** Sum of Coverage() over a repeat set (the paper's coverage(T, f)). */
std::size_t TotalCoverage(const std::vector<Repeat>& repeats);

}  // namespace apo::strings

#endif  // APOPHENIA_STRINGS_REPEATS_H
