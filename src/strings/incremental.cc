#include "strings/incremental.h"

#include <algorithm>

namespace apo::strings {

IncrementalMiner::IncrementalMiner(const RepeatOptions& options)
    : options_(options)
{
}

void
IncrementalMiner::Reset()
{
    table_.Clear();
    prev_.clear();
    compressed_valid_ = false;
    have_prev_ = false;
    result_.clear();
    last_tier_ = MiningTier::kFull;
}

const std::vector<Repeat>&
IncrementalMiner::Mine(std::span<const Symbol> window)
{
    ++stats_.windows;
    const std::size_t n = window.size();

    // Tier 1: the steady-state case — when the stream's period divides
    // the window stride, consecutive same-length windows are content-
    // identical. Verified token-for-token (wide compare), never
    // assumed, so adoption is provably equivalent to re-mining.
    if (have_prev_ && n == prev_.size() &&
        CommonPrefixLength(window.data(), prev_.data(), n) == n) {
        ++stats_.fast_path_hits;
        last_tier_ = MiningTier::kFastPath;
        return result_;
    }

    // Length of the prefix shared with the previous window (the ruler
    // schedule grows a window by appending a stride, so this is
    // usually most of the window).
    const std::size_t shared =
        have_prev_ ? CommonPrefixLength(window.data(), prev_.data(),
                                        std::min(n, prev_.size()))
                   : 0;

    // Alphabet hygiene: a drifting token population would grow the
    // persistent table (and with it the SA-IS bucket arrays) without
    // bound. Reset once it far exceeds what one window can reference.
    if (table_.DistinctSymbols() > 2 * n + 64) {
        table_.Clear();
        compressed_valid_ = false;
        ++stats_.table_resets;
    }

    bool spliced = false;
    const bool use_sais =
        options_.suffix_algorithm == SuffixAlgorithm::kSais;
    if (use_sais) {
        // Tier 2 splice: compressed_[0..splice) still holds the
        // previous window's ranks, which are positionwise valid for
        // the new window's shared prefix as long as compression is
        // stable (same symbols, same table). Compress only the tail.
        const std::size_t splice = compressed_valid_ ? shared : 0;
        compressed_.resize(n + 1);
        const std::size_t added = table_.CompressInto(
            window.subspan(splice), compressed_.data() + splice);
        if (added != 0 && splice > 0) {
            // New symbols shifted ranks above them: CompressInto
            // already refreshed the tail; refresh the stale prefix
            // (all its symbols are known, so this admits nothing).
            table_.CompressInto(window.first(splice), compressed_.data());
        }
        spliced = added == 0 && splice > 0;
        compressed_[n] = 0;  // SA-IS sentinel
        compressed_valid_ = true;
    } else {
        compressed_valid_ = false;
    }

    if (!RepeatsViable(n, options_)) {
        result_.clear();
    } else if (use_sais) {
        SaisInto({compressed_.data(), n + 1}, table_.AlphabetSize(), sa_,
                 scratch_.suffix);
        ComputeLcpInto(window, sa_, lcp_, scratch_.inverse);
        FindRepeatsFromSa(window, sa_, lcp_, options_, scratch_, result_);
    } else {
        FindRepeatsInto(window, options_, scratch_, result_);
    }

    prev_.assign(window.begin(), window.end());
    have_prev_ = true;
    last_tier_ = spliced ? MiningTier::kRepair : MiningTier::kFull;
    if (spliced) {
        ++stats_.repairs;
    } else {
        ++stats_.full_rebuilds;
    }
    return result_;
}

}  // namespace apo::strings
