/**
 * @file
 * Incremental steady-state repeat mining: reuse suffix structures
 * across overlapping analysis windows.
 *
 * The analysis loop (core::TraceFinder) mines a window every
 * `multi_scale_factor` tokens, and consecutive windows overlap heavily
 * — in the ruler-function schedule a window that grows by one stride
 * keeps its entire previous content as a prefix, and steady-state
 * applications re-issue near-identical token streams for thousands of
 * windows. A from-scratch FindRepeats pays the full rank-compression
 * sort and SA-IS construction every time anyway. IncrementalMiner
 * keeps the previous window's compressed sequence, suffix array, LCP
 * array, and result set alive and classifies each new window into one
 * of three tiers:
 *
 *  1. **Fast path** (MiningTier::kFastPath): the window is token-for-
 *     token identical to the previous one (verified with a wide
 *     compare, never assumed from a fingerprint). The cached repeat
 *     set is returned with zero suffix-array work and zero
 *     allocations.
 *  2. **Repair** (MiningTier::kRepair): the window shares a prefix
 *     with the previous one and introduces no new symbols. The
 *     persistent order-preserving RankTable makes per-symbol ranks
 *     stable across calls, so the compressed prefix is *spliced* —
 *     only the changed tail is recompressed — and SA-IS + Kasai rerun
 *     entirely inside preallocated scratch.
 *  3. **Full** (MiningTier::kFull): novel content (new symbols, or no
 *     usable prefix). Everything is recomputed, still allocation-free
 *     at the steady-state fixed point thanks to the scratch buffers.
 *
 * Bit-identity guarantee: every tier produces exactly the repeat set
 * FindRepeats would. Tier 1 only returns a result that was computed
 * for a verified-equal window; tiers 2/3 run the same candidate
 * selection over a suffix array that is provably equal to the
 * from-scratch one (suffix order depends only on the relative order
 * of symbols, which the RankTable preserves — see suffix_array.h).
 */
#ifndef APOPHENIA_STRINGS_INCREMENTAL_H
#define APOPHENIA_STRINGS_INCREMENTAL_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "strings/repeats.h"
#include "strings/suffix_array.h"

namespace apo::strings {

/** Which tier served a Mine call (cheapest first). */
enum class MiningTier : std::uint8_t {
    kFastPath,  ///< verified-identical window; cached result returned
    kRepair,    ///< rank prefix spliced; SA-IS rerun in scratch
    kFull,      ///< full recompression + construction (scratch-reusing)
};

/** Monotone counters over a miner's lifetime. */
struct IncrementalMinerStats {
    std::uint64_t windows = 0;
    std::uint64_t fast_path_hits = 0;
    std::uint64_t repairs = 0;
    std::uint64_t full_rebuilds = 0;
    /** Alphabet-hygiene resets of the persistent rank table. */
    std::uint64_t table_resets = 0;
};

/**
 * Persistent repeat miner for a stream of overlapping windows.
 * Equivalent to calling FindRepeats(window, options) per window, but
 * amortizes suffix-structure work across calls. Not thread-safe; the
 * core layer serializes access per finder.
 */
class IncrementalMiner {
  public:
    explicit IncrementalMiner(const RepeatOptions& options = {});

    /**
     * Mine `window`, reusing previous-window structures where sound.
     * The returned reference is owned by the miner and valid until the
     * next Mine/Reset call. Output is bit-identical to
     * FindRepeats(window, options).
     */
    const std::vector<Repeat>& Mine(std::span<const Symbol> window);

    /** Tier that served the most recent Mine call. */
    MiningTier LastTier() const { return last_tier_; }

    const IncrementalMinerStats& Stats() const { return stats_; }

    const RepeatOptions& Options() const { return options_; }

    /** Drop all persistent state (buffers keep their capacity). */
    void Reset();

  private:
    RepeatOptions options_;
    RankTable table_;
    Sequence prev_;                        ///< previous window's tokens
    std::vector<std::uint32_t> compressed_;  ///< prev_ ranks + 0 sentinel
    bool compressed_valid_ = false;
    bool have_prev_ = false;
    std::vector<std::size_t> sa_;
    std::vector<std::size_t> lcp_;
    RepeatsScratch scratch_;
    std::vector<Repeat> result_;
    MiningTier last_tier_ = MiningTier::kFull;
    IncrementalMinerStats stats_;
};

}  // namespace apo::strings

#endif  // APOPHENIA_STRINGS_INCREMENTAL_H
