/**
 * @file
 * Suffix array and LCP array construction over token sequences.
 *
 * Apophenia reduces trace identification to string analysis over the
 * stream of task hash tokens (paper section 4.1). The repeat-mining
 * algorithm (paper Algorithm 2) is built on a suffix array plus a
 * longest-common-prefix array. Two constructions are provided:
 *
 *  - prefix doubling, O(n log n), simple and dependable;
 *  - SA-IS (induced sorting), O(n), matching the linear-time
 *    construction the paper cites [Kasai et al. for LCP; linear SA
 *    construction for the array itself].
 *
 * Both operate on sequences of 64-bit symbols (task hash tokens); the
 * alphabet is rank-compressed internally.
 *
 * Two API layers exist side by side:
 *
 *  - value-returning convenience functions (BuildSuffixArray,
 *    ComputeLcp, RankCompress) that allocate their results — fine for
 *    tests and one-shot callers;
 *  - `*Into` overloads that write into caller-owned buffers and draw
 *    all internal scratch from a SuffixWorkspace, so a steady-state
 *    caller (the analysis loop mines one window every
 *    `multi_scale_factor` tokens, forever) reaches a fixed point where
 *    construction performs zero heap allocations per window.
 *
 * Both layers produce bit-identical outputs for the same input.
 */
#ifndef APOPHENIA_STRINGS_SUFFIX_ARRAY_H
#define APOPHENIA_STRINGS_SUFFIX_ARRAY_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace apo::strings {

/** A symbol in a token sequence (a task hash token). */
using Symbol = std::uint64_t;

/** A sequence of symbols: the tokenized task stream. */
using Sequence = std::vector<Symbol>;

/** Which suffix-array construction to use. */
enum class SuffixAlgorithm {
    kPrefixDoubling,  ///< O(n log n) doubling with sorting.
    kSais,            ///< O(n) induced sorting (SA-IS).
};

/**
 * Length of the longest common prefix of a[0..limit) and b[0..limit).
 *
 * Four-wide XOR-fold main loop: one branch per four symbols until the
 * mismatch neighbourhood, then a scalar tail pins the exact index.
 * This is the hot comparison of Kasai's algorithm and of the
 * incremental miner's window-equality verification.
 */
inline std::size_t
CommonPrefixLength(const Symbol* a, const Symbol* b, std::size_t limit)
{
    std::size_t k = 0;
    while (k + 4 <= limit) {
        const Symbol diff = (a[k] ^ b[k]) | (a[k + 1] ^ b[k + 1]) |
                            (a[k + 2] ^ b[k + 2]) | (a[k + 3] ^ b[k + 3]);
        if (diff != 0) {
            break;
        }
        k += 4;
    }
    while (k < limit && a[k] == b[k]) {
        ++k;
    }
    return k;
}

/**
 * Reusable scratch for the `*Into` suffix constructions: per-recursion-
 * level SA-IS buffers, doubling radix buffers, and the rank-compression
 * staging area. One workspace serves any number of sequential calls;
 * buffers grow to the high-water mark and are then reused, so repeated
 * same-sized constructions allocate nothing. Not thread-safe: use one
 * workspace per thread.
 */
class SuffixWorkspace {
  public:
    SuffixWorkspace();
    ~SuffixWorkspace();
    SuffixWorkspace(const SuffixWorkspace&) = delete;
    SuffixWorkspace& operator=(const SuffixWorkspace&) = delete;

  private:
    struct Rep;
    std::unique_ptr<Rep> rep_;

    friend void BuildSuffixArrayInto(std::span<const Symbol>,
                                     std::vector<std::size_t>&,
                                     SuffixWorkspace&, SuffixAlgorithm);
    friend void SaisInto(std::span<const std::uint32_t>, std::size_t,
                         std::vector<std::size_t>&, SuffixWorkspace&);
};

/**
 * Build the suffix array of `s`: a permutation sa of [0, |s|) such that
 * the suffixes s[sa[0]..], s[sa[1]..], ... are in increasing
 * lexicographic order. Empty input yields an empty array.
 */
std::vector<std::size_t> BuildSuffixArray(
    const Sequence& s,
    SuffixAlgorithm algorithm = SuffixAlgorithm::kSais);

/**
 * Scratch-reusing BuildSuffixArray: writes the suffix array of `s` into
 * `sa` (resized to |s|), drawing all temporaries from `workspace`.
 * Output is bit-identical to BuildSuffixArray(s, algorithm).
 */
void BuildSuffixArrayInto(std::span<const Symbol> s,
                          std::vector<std::size_t>& sa,
                          SuffixWorkspace& workspace,
                          SuffixAlgorithm algorithm = SuffixAlgorithm::kSais);

/**
 * SA-IS over a caller-compressed sequence. `ranks_with_sentinel` holds
 * values in [1, alphabet) followed by a single trailing 0 sentinel (the
 * unique smallest symbol). Writes the suffix array of the real (non-
 * sentinel) suffixes into `sa`, exactly as BuildSuffixArray would for
 * the uncompressed sequence — callers that maintain their own
 * order-preserving rank compression (the incremental miner's persistent
 * rank table) use this to skip the per-call compression sort.
 */
void SaisInto(std::span<const std::uint32_t> ranks_with_sentinel,
              std::size_t alphabet, std::vector<std::size_t>& sa,
              SuffixWorkspace& workspace);

/**
 * Kasai's linear-time LCP construction.
 *
 * @return lcp with lcp[i] = length of the longest common prefix of the
 * suffixes starting at sa[i] and sa[i + 1], for i in [0, |s| - 1); the
 * returned array has size max(|s|, 1) - 1... (empty input yields an
 * empty array; size-1 input yields an empty array).
 */
std::vector<std::size_t> ComputeLcp(const Sequence& s,
                                    const std::vector<std::size_t>& sa);

/**
 * Scratch-reusing ComputeLcp: writes the LCP array into `lcp` using
 * `inverse_scratch` for the rank-inverse table. Bit-identical output.
 */
void ComputeLcpInto(std::span<const Symbol> s,
                    const std::vector<std::size_t>& sa,
                    std::vector<std::size_t>& lcp,
                    std::vector<std::size_t>& inverse_scratch);

/**
 * Rank-compress a 64-bit symbol sequence to a dense alphabet
 * [1, distinct] (0 is reserved for the SA-IS sentinel). Exposed for
 * testing.
 */
std::vector<std::uint32_t> RankCompress(const Sequence& s);

/**
 * Scratch-reusing RankCompress: writes ranks into `out` (resized to
 * |s|), staging the distinct-symbol sort in `sorted_scratch`.
 *
 * @return the number of distinct symbols in `s` (so the SA-IS alphabet
 * including the sentinel is the return value + 1).
 */
std::size_t RankCompressInto(std::span<const Symbol> s,
                             std::vector<Symbol>& sorted_scratch,
                             std::vector<std::uint32_t>& out);

/**
 * Persistent order-preserving rank table for incremental mining.
 *
 * Maps 64-bit symbols to dense ranks in [1, DistinctSymbols()], where
 * the rank order equals the symbol order over *every symbol the table
 * has ever admitted* (a superset of any one window). Because suffix
 * order depends only on the relative order of symbols — never on rank
 * density — a suffix array built over table ranks is bit-identical to
 * one built over per-window RankCompress output.
 *
 * The payoff: when CompressInto admits no new symbols, each position's
 * rank is exactly what any earlier call produced for the same symbol,
 * so a window sharing a prefix with the previous window compresses to
 * the *same rank prefix* — the splice invariant the incremental miner
 * relies on to skip recompressing the unchanged region.
 */
class RankTable {
  public:
    /**
     * Compress `s` positionwise into out[0..|s|). Previously-unseen
     * symbols are admitted first (shifting ranks above them), so the
     * result is always consistent with the post-call table.
     *
     * @return the number of new symbols admitted; 0 means every rank
     * is stable with respect to all earlier calls.
     */
    std::size_t CompressInto(std::span<const Symbol> s, std::uint32_t* out);

    std::size_t DistinctSymbols() const { return sorted_.size(); }

    /** SA-IS bucket bound for CompressInto output plus the 0 sentinel. */
    std::size_t AlphabetSize() const { return sorted_.size() + 1; }

    /** Forget all admitted symbols (alphabet-hygiene reset). */
    void Clear() { sorted_.clear(); }

  private:
    std::vector<Symbol> sorted_;  ///< admitted symbols, ascending
    std::vector<Symbol> fresh_;   ///< scratch: this call's new symbols
    std::vector<Symbol> merged_;  ///< scratch: merge staging
};

}  // namespace apo::strings

#endif  // APOPHENIA_STRINGS_SUFFIX_ARRAY_H
