/**
 * @file
 * Suffix array and LCP array construction over token sequences.
 *
 * Apophenia reduces trace identification to string analysis over the
 * stream of task hash tokens (paper section 4.1). The repeat-mining
 * algorithm (paper Algorithm 2) is built on a suffix array plus a
 * longest-common-prefix array. Two constructions are provided:
 *
 *  - prefix doubling, O(n log n), simple and dependable;
 *  - SA-IS (induced sorting), O(n), matching the linear-time
 *    construction the paper cites [Kasai et al. for LCP; linear SA
 *    construction for the array itself].
 *
 * Both operate on sequences of 64-bit symbols (task hash tokens); the
 * alphabet is rank-compressed internally.
 */
#ifndef APOPHENIA_STRINGS_SUFFIX_ARRAY_H
#define APOPHENIA_STRINGS_SUFFIX_ARRAY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apo::strings {

/** A symbol in a token sequence (a task hash token). */
using Symbol = std::uint64_t;

/** A sequence of symbols: the tokenized task stream. */
using Sequence = std::vector<Symbol>;

/** Which suffix-array construction to use. */
enum class SuffixAlgorithm {
    kPrefixDoubling,  ///< O(n log n) doubling with sorting.
    kSais,            ///< O(n) induced sorting (SA-IS).
};

/**
 * Build the suffix array of `s`: a permutation sa of [0, |s|) such that
 * the suffixes s[sa[0]..], s[sa[1]..], ... are in increasing
 * lexicographic order. Empty input yields an empty array.
 */
std::vector<std::size_t> BuildSuffixArray(
    const Sequence& s,
    SuffixAlgorithm algorithm = SuffixAlgorithm::kSais);

/**
 * Kasai's linear-time LCP construction.
 *
 * @return lcp with lcp[i] = length of the longest common prefix of the
 * suffixes starting at sa[i] and sa[i + 1], for i in [0, |s| - 1); the
 * returned array has size max(|s|, 1) - 1... (empty input yields an
 * empty array; size-1 input yields an empty array).
 */
std::vector<std::size_t> ComputeLcp(const Sequence& s,
                                    const std::vector<std::size_t>& sa);

/**
 * Rank-compress a 64-bit symbol sequence to a dense alphabet
 * [1, distinct] (0 is reserved for the SA-IS sentinel). Exposed for
 * testing.
 */
std::vector<std::uint32_t> RankCompress(const Sequence& s);

}  // namespace apo::strings

#endif  // APOPHENIA_STRINGS_SUFFIX_ARRAY_H
