#include "strings/identifiers.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "support/intervals.h"

namespace apo::strings {

namespace {

/** Accumulates occurrences per distinct substring content. */
class RepeatCollector {
  public:
    void Add(const Sequence& tokens, std::size_t start)
    {
        auto [it, inserted] = index_.try_emplace(tokens, repeats_.size());
        if (inserted) {
            repeats_.push_back(Repeat{tokens, {}});
        }
        repeats_[it->second].starts.push_back(start);
    }

    std::vector<Repeat> Take(std::size_t min_occurrences)
    {
        std::vector<Repeat> out;
        for (Repeat& r : repeats_) {
            std::sort(r.starts.begin(), r.starts.end());
            r.starts.erase(std::unique(r.starts.begin(), r.starts.end()),
                           r.starts.end());
            if (r.starts.size() >= min_occurrences) {
                out.push_back(std::move(r));
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const Repeat& a, const Repeat& b) {
                      return a.Length() > b.Length();
                  });
        return out;
    }

  private:
    std::map<Sequence, std::size_t> index_;
    std::vector<Repeat> repeats_;
};

}  // namespace

void
FindTandemRepeatsInto(std::span<const Symbol> s, std::size_t min_length,
                      TandemScratch& scratch, std::vector<Repeat>& out)
{
    const std::size_t n = s.size();
    min_length = std::max<std::size_t>(min_length, 1);

    // A maximal tandem run of period d at position i spans
    // [i, i + eq[i] + d) where eq[i] counts matches s[i+t] == s[i+d+t].
    std::vector<TandemRun>& runs = scratch.runs;
    runs.clear();
    scratch.eq.assign(n + 1, 0);
    std::size_t* const eq = scratch.eq.data();
    for (std::size_t d = min_length; d * 2 <= n; ++d) {
        std::fill_n(eq, n + 1, 0);
        for (std::size_t i = n - d; i-- > 0;) {
            eq[i] = s[i] == s[i + d] ? eq[i + 1] + 1 : 0;
        }
        for (std::size_t i = 0; i + 2 * d <= n; ++i) {
            const bool maximal = i == 0 || eq[i - 1] == 0;
            if (maximal && eq[i] >= d) {
                runs.push_back(TandemRun{i, d, eq[i] / d + 1});
            }
        }
    }
    // Prefer runs covering the most positions; select disjoint ones.
    std::sort(runs.begin(), runs.end(),
              [](const TandemRun& a, const TandemRun& b) {
                  if (a.TotalLength() != b.TotalLength()) {
                      return a.TotalLength() > b.TotalLength();
                  }
                  return a.start < b.start;
              });
    support::IntervalSet chosen;
    RepeatCollector collector;
    for (const TandemRun& run : runs) {
        if (!chosen.InsertIfDisjoint(run.start,
                                     run.start + run.TotalLength())) {
            continue;
        }
        Sequence unit(s.begin() + run.start,
                      s.begin() + run.start + run.period);
        for (std::size_t k = 0; k < run.copies; ++k) {
            collector.Add(unit, run.start + k * run.period);
        }
    }
    out = collector.Take(2);
}

std::vector<Repeat>
FindTandemRepeats(const Sequence& s, std::size_t min_length)
{
    thread_local TandemScratch scratch;
    std::vector<Repeat> out;
    FindTandemRepeatsInto(s, min_length, scratch, out);
    return out;
}

std::vector<Repeat>
FindRepeatsLzw(const Sequence& s, std::size_t min_length)
{
    // LZW parse: the dictionary maps (phrase id, next symbol) to a
    // longer phrase id. Phrase 0 is the empty phrase.
    struct Phrase {
        std::size_t length = 0;
        std::size_t sample_start = 0;  // one occurrence, for content
        std::vector<std::size_t> starts;
    };
    std::vector<Phrase> phrases(1);
    std::map<std::pair<std::size_t, Symbol>, std::size_t> transitions;

    std::size_t current = 0;  // current phrase id
    std::size_t phrase_start = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const auto key = std::make_pair(current, s[i]);
        auto it = transitions.find(key);
        if (it != transitions.end()) {
            current = it->second;
            continue;
        }
        // Emit the current phrase (if non-empty) and extend dictionary.
        if (current != 0) {
            phrases[current].starts.push_back(phrase_start);
        }
        const std::size_t extended = phrases.size();
        phrases.push_back(
            Phrase{phrases[current].length + 1, phrase_start, {}});
        transitions.emplace(key, extended);
        if (current == 0) {
            // Single symbols enter the dictionary on first sight; the
            // parse restarts at this symbol.
            phrases[extended].sample_start = i;
            current = extended;
            phrase_start = i;
        } else {
            current = 0;
            --i;  // reprocess this symbol as the start of a new phrase
        }
        if (current == 0) {
            phrase_start = i + 1;
        }
    }
    if (current != 0) {
        phrases[current].starts.push_back(phrase_start);
    }

    RepeatCollector collector;
    for (const Phrase& p : phrases) {
        if (p.length < min_length || p.starts.size() < 2) {
            continue;
        }
        Sequence tokens(s.begin() + p.starts.front(),
                        s.begin() + p.starts.front() + p.length);
        for (std::size_t start : p.starts) {
            collector.Add(tokens, start);
        }
    }
    return collector.Take(2);
}

std::vector<Repeat>
FindRepeatsQuadratic(const Sequence& s, std::size_t min_length)
{
    const std::size_t n = s.size();
    min_length = std::max<std::size_t>(min_length, 1);
    if (n < 2 * min_length) {
        return {};
    }
    const std::vector<std::size_t> sa = BuildSuffixArray(s);
    const std::vector<std::size_t> lcp = ComputeLcp(s, sa);

    support::IntervalSet claimed;
    RepeatCollector collector;
    // Each round re-scans the suffix array for the longest candidate
    // pair that fits in unclaimed space: O(rounds * n).
    for (;;) {
        std::size_t best_len = 0, best_a = 0, best_b = 0;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            std::size_t p = lcp[i];
            if (p <= best_len || p < min_length) {
                continue;
            }
            std::size_t s1 = sa[i], s2 = sa[i + 1];
            if (s1 > s2) {
                std::swap(s1, s2);
            }
            std::size_t len = std::min(p, s2 - s1);  // force disjoint
            while (len >= min_length && len > best_len) {
                if (!claimed.OverlapsAny(s1, s1 + len) &&
                    !claimed.OverlapsAny(s2, s2 + len)) {
                    best_len = len;
                    best_a = s1;
                    best_b = s2;
                    break;
                }
                --len;  // shrink until it fits (quadratic behaviour)
            }
        }
        if (best_len == 0) {
            break;
        }
        claimed.InsertIfDisjoint(best_a, best_a + best_len);
        claimed.InsertIfDisjoint(best_b, best_b + best_len);
        Sequence tokens(s.begin() + best_a, s.begin() + best_a + best_len);
        collector.Add(tokens, best_a);
        collector.Add(tokens, best_b);
    }
    return collector.Take(2);
}

std::size_t
OptimalCoverage(const Sequence& s, std::size_t min_length)
{
    const std::size_t n = s.size();
    min_length = std::max<std::size_t>(min_length, 1);
    if (n < 2 * min_length) {
        return 0;
    }
    // match[i][j]: longest common prefix of the suffixes at i and j.
    std::vector<std::vector<std::size_t>> match(
        n + 1, std::vector<std::size_t>(n + 1, 0));
    for (std::size_t i = n; i-- > 0;) {
        for (std::size_t j = n; j-- > 0;) {
            if (s[i] == s[j]) {
                match[i][j] = match[i + 1][j + 1] + 1;
            }
        }
    }
    // best[j]: the longest length L such that the substring starting
    // at j of length L has a second, disjoint occurrence somewhere.
    std::vector<std::size_t> best(n, 0);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t q = 0; q < n; ++q) {
            if (q == j) {
                continue;
            }
            const std::size_t gap = q > j ? q - j : j - q;
            best[j] = std::max(best[j], std::min(match[j][q], gap));
        }
    }
    // cover[i]: max positions covered within the prefix s[0..i).
    std::vector<std::size_t> cover(n + 1, 0);
    for (std::size_t i = 1; i <= n; ++i) {
        cover[i] = cover[i - 1];
        for (std::size_t j = 0; j + min_length <= i; ++j) {
            const std::size_t len = i - j;
            if (len <= best[j]) {
                cover[i] = std::max(cover[i], cover[j] + len);
            }
        }
    }
    return cover[n];
}

std::size_t
GreedyCoverageOf(const Sequence& s, const std::vector<Repeat>& traces)
{
    // Group traces by first token; try longest first at each position.
    std::unordered_map<Symbol, std::vector<const Repeat*>> by_head;
    for (const Repeat& t : traces) {
        if (!t.tokens.empty()) {
            by_head[t.tokens.front()].push_back(&t);
        }
    }
    for (auto& [head, list] : by_head) {
        std::sort(list.begin(), list.end(),
                  [](const Repeat* a, const Repeat* b) {
                      return a->Length() > b->Length();
                  });
    }
    std::size_t covered = 0;
    std::size_t i = 0;
    while (i < s.size()) {
        std::size_t advance = 1;
        const auto it = by_head.find(s[i]);
        if (it != by_head.end()) {
            for (const Repeat* t : it->second) {
                const std::size_t len = t->Length();
                if (i + len <= s.size() &&
                    std::equal(t->tokens.begin(), t->tokens.end(),
                               s.begin() + i)) {
                    covered += len;
                    advance = len;
                    break;
                }
            }
        }
        i += advance;
    }
    return covered;
}

}  // namespace apo::strings
