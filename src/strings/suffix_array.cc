#include "strings/suffix_array.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace apo::strings {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/** Per-recursion-level SA-IS scratch (one per depth, reused forever). */
struct SaisLevel {
    std::vector<std::uint8_t> is_s;
    std::vector<std::size_t> counts;
    std::vector<std::size_t> bucket_heads;
    std::vector<std::size_t> bucket_tails;
    std::vector<std::size_t> lms_positions;
    std::vector<std::size_t> lms_order;
    std::vector<std::size_t> name_of;
    std::vector<std::uint32_t> reduced;
    std::vector<std::size_t> reduced_sa;
};

/**
 * SA-IS induced-sorting suffix array construction.
 *
 * `s[0..n)` holds values in [0, alphabet), with s[n - 1] == 0 the
 * unique, smallest sentinel. Fills sa[0..n) with the suffix array of
 * `s` (including the sentinel suffix at sa[0]). All temporaries come
 * from `levels[depth]`, created on first use and reused afterwards.
 */
void
SaIs(const std::uint32_t* s, std::size_t n, std::size_t alphabet,
     std::size_t* sa, std::vector<std::unique_ptr<SaisLevel>>& levels,
     std::size_t depth)
{
    std::fill_n(sa, n, kNone);
    if (n == 0) {
        return;
    }
    if (n == 1) {
        sa[0] = 0;
        return;
    }
    if (levels.size() <= depth) {
        levels.resize(depth + 1);
    }
    if (levels[depth] == nullptr) {
        levels[depth] = std::make_unique<SaisLevel>();
    }
    SaisLevel& lvl = *levels[depth];

    // Classify suffixes: S-type (1) or L-type (0). Byte array + bitwise
    // fold keeps the backward DP branch-free (vector<bool> proxies cost
    // a shift/mask per access in this loop).
    lvl.is_s.resize(n);
    std::uint8_t* const is_s = lvl.is_s.data();
    is_s[n - 1] = 1;
    for (std::size_t i = n - 1; i-- > 0;) {
        is_s[i] = static_cast<std::uint8_t>(
            (s[i] < s[i + 1]) |
            (static_cast<std::uint8_t>(s[i] == s[i + 1]) & is_s[i + 1]));
    }
    auto is_lms = [is_s](std::size_t i) {
        return i > 0 && is_s[i] && !is_s[i - 1];
    };

    // Bucket boundaries per symbol.
    lvl.counts.assign(alphabet, 0);
    for (std::size_t i = 0; i < n; ++i) {
        ++lvl.counts[s[i]];
    }
    lvl.bucket_heads.resize(alphabet);
    lvl.bucket_tails.resize(alphabet);
    auto reset_buckets = [&] {
        std::size_t sum = 0;
        for (std::size_t c = 0; c < alphabet; ++c) {
            lvl.bucket_heads[c] = sum;
            sum += lvl.counts[c];
            lvl.bucket_tails[c] = sum;
        }
    };

    // Induce the full order from the (partially or fully) sorted LMS
    // suffixes currently placed in `sa`. The empty/sentinel test folds
    // into one compare: j - 1 < n rejects both kNone and 0 (both wrap
    // above n), replacing the three-way check of the textbook loop.
    auto induce = [&] {
        reset_buckets();
        std::size_t* const heads = lvl.bucket_heads.data();
        std::size_t* const tails = lvl.bucket_tails.data();
        // Left-to-right pass places L-type suffixes at bucket heads.
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = sa[i] - 1;
            if (j < n && !is_s[j]) {
                sa[heads[s[j]]++] = j;
            }
        }
        // Right-to-left pass places S-type suffixes at bucket tails.
        reset_buckets();
        for (std::size_t i = n; i-- > 0;) {
            const std::size_t j = sa[i] - 1;
            if (j < n && is_s[j]) {
                sa[--tails[s[j]]] = j;
            }
        }
    };

    // Step 1: place LMS suffixes in position order at bucket tails and
    // induce to sort the LMS *substrings*.
    reset_buckets();
    lvl.lms_positions.clear();
    for (std::size_t i = 1; i < n; ++i) {
        if (is_lms(i)) {
            lvl.lms_positions.push_back(i);
        }
    }
    for (std::size_t i = lvl.lms_positions.size(); i-- > 0;) {
        const std::size_t p = lvl.lms_positions[i];
        sa[--lvl.bucket_tails[s[p]]] = p;
    }
    induce();

    // Step 2: name LMS substrings in their sorted order (scanning `sa`
    // directly — the sorted-LMS list needs no separate buffer).
    lvl.name_of.assign(n, kNone);
    std::size_t num_names = 0;
    std::size_t prev = kNone;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t p = sa[i];
        if (p == kNone || !is_lms(p)) {
            continue;
        }
        if (prev == kNone) {
            lvl.name_of[p] = num_names++;
        } else {
            // Compare the LMS substrings starting at prev and p
            // (inclusive of their terminating LMS position).
            bool same = true;
            for (std::size_t k = 0;; ++k) {
                if (p + k >= n || prev + k >= n ||
                    s[p + k] != s[prev + k]) {
                    same = false;
                    break;
                }
                const bool p_end = k > 0 && is_lms(p + k);
                const bool q_end = k > 0 && is_lms(prev + k);
                if (p_end != q_end) {
                    same = false;
                    break;
                }
                if (p_end) {
                    break;  // both ended together with all symbols equal
                }
            }
            if (!same) {
                ++num_names;
            }
            lvl.name_of[p] = num_names - 1;
        }
        prev = p;
    }

    // Step 3: sort LMS suffixes, recursing if names are not yet unique.
    const std::size_t m = lvl.lms_positions.size();
    lvl.lms_order.resize(m);
    if (num_names == m) {
        for (std::size_t i = 0; i < m; ++i) {
            lvl.lms_order[lvl.name_of[lvl.lms_positions[i]]] =
                lvl.lms_positions[i];
        }
    } else {
        lvl.reduced.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            lvl.reduced[i] =
                static_cast<std::uint32_t>(lvl.name_of[lvl.lms_positions[i]]);
        }
        lvl.reduced_sa.resize(m);
        // `lvl` stays valid across the recursion: resizing `levels`
        // moves the unique_ptrs, not the SaisLevel objects.
        SaIs(lvl.reduced.data(), m, num_names, lvl.reduced_sa.data(),
             levels, depth + 1);
        for (std::size_t i = 0; i < m; ++i) {
            lvl.lms_order[i] = lvl.lms_positions[lvl.reduced_sa[i]];
        }
    }

    // Step 4: final induce from the fully sorted LMS suffixes.
    std::fill_n(sa, n, kNone);
    reset_buckets();
    for (std::size_t i = lvl.lms_order.size(); i-- > 0;) {
        const std::size_t p = lvl.lms_order[i];
        sa[--lvl.bucket_tails[s[p]]] = p;
    }
    induce();
}

}  // namespace

/** Workspace backing store (incomplete in the header on purpose). */
struct SuffixWorkspace::Rep {
    std::vector<std::unique_ptr<SaisLevel>> levels;
    std::vector<std::uint32_t> compressed;
    std::vector<Symbol> sorted;
    std::vector<std::size_t> sa_full;  // SA-IS output incl. sentinel
    // Prefix-doubling radix buffers.
    std::vector<std::size_t> rank;
    std::vector<std::size_t> tmp;
    std::vector<std::size_t> counts;
    std::vector<std::size_t> by_second;
};

SuffixWorkspace::SuffixWorkspace() : rep_(std::make_unique<Rep>()) {}
SuffixWorkspace::~SuffixWorkspace() = default;

namespace {

/** O(n log n) prefix-doubling construction with radix sorting. */
void
BuildDoubling(const std::uint32_t* s, std::size_t n,
              std::vector<std::size_t>& sa, std::vector<std::size_t>& rank,
              std::vector<std::size_t>& tmp, std::vector<std::size_t>& counts,
              std::vector<std::size_t>& by_second)
{
    sa.resize(n);
    rank.resize(n);
    tmp.resize(n);
    std::iota(sa.begin(), sa.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
        rank[i] = s[i];
    }
    // Radix sort `sa` by (rank[i], rank[i + k]) for doubling k.
    for (std::size_t k = 1;; k <<= 1) {
        auto key2 = [&](std::size_t i) {
            return i + k < n ? rank[i + k] + 1 : 0;
        };
        // Stable counting sort by second key, then by first key.
        const std::size_t buckets =
            *std::max_element(rank.begin(), rank.end()) + 2;
        counts.assign(buckets + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[key2(i) + 1];
        }
        std::partial_sum(counts.begin(), counts.end(), counts.begin());
        by_second.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            by_second[counts[key2(i)]++] = i;
        }
        counts.assign(buckets + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[rank[i] + 1];
        }
        std::partial_sum(counts.begin(), counts.end(), counts.begin());
        for (std::size_t idx = 0; idx < n; ++idx) {
            const std::size_t i = by_second[idx];
            sa[counts[rank[i]]++] = i;
        }
        // Re-rank.
        tmp[sa[0]] = 0;
        std::size_t r = 0;
        for (std::size_t i = 1; i < n; ++i) {
            const std::size_t a = sa[i - 1], b = sa[i];
            if (rank[a] != rank[b] || key2(a) != key2(b)) {
                ++r;
            }
            tmp[b] = r;
        }
        rank.swap(tmp);
        if (r + 1 == n) {
            break;
        }
    }
}

}  // namespace

std::size_t
RankCompressInto(std::span<const Symbol> s,
                 std::vector<Symbol>& sorted_scratch,
                 std::vector<std::uint32_t>& out)
{
    sorted_scratch.assign(s.begin(), s.end());
    std::sort(sorted_scratch.begin(), sorted_scratch.end());
    sorted_scratch.erase(
        std::unique(sorted_scratch.begin(), sorted_scratch.end()),
        sorted_scratch.end());
    out.resize(s.size());
    const Symbol* const base = sorted_scratch.data();
    const Symbol* const end = base + sorted_scratch.size();
    for (std::size_t i = 0; i < s.size(); ++i) {
        const Symbol* it = std::lower_bound(base, end, s[i]);
        // +1 reserves rank 0 for the SA-IS sentinel.
        out[i] = static_cast<std::uint32_t>(it - base) + 1;
    }
    return sorted_scratch.size();
}

std::vector<std::uint32_t>
RankCompress(const Sequence& s)
{
    std::vector<Symbol> sorted;
    std::vector<std::uint32_t> out;
    RankCompressInto(s, sorted, out);
    return out;
}

std::size_t
RankTable::CompressInto(std::span<const Symbol> s, std::uint32_t* out)
{
    fresh_.clear();
    {
        const Symbol* const base = sorted_.data();
        const Symbol* const end = base + sorted_.size();
        for (std::size_t i = 0; i < s.size(); ++i) {
            const Symbol* it = std::lower_bound(base, end, s[i]);
            if (it != end && *it == s[i]) {
                out[i] = static_cast<std::uint32_t>(it - base) + 1;
            } else {
                fresh_.push_back(s[i]);
            }
        }
    }
    if (fresh_.empty()) {
        return 0;
    }
    std::sort(fresh_.begin(), fresh_.end());
    fresh_.erase(std::unique(fresh_.begin(), fresh_.end()), fresh_.end());
    merged_.resize(sorted_.size() + fresh_.size());
    std::merge(sorted_.begin(), sorted_.end(), fresh_.begin(), fresh_.end(),
               merged_.begin());
    sorted_.swap(merged_);
    // Admitting symbols shifted ranks above them: recompress every
    // position against the settled table.
    const Symbol* const base = sorted_.data();
    const Symbol* const end = base + sorted_.size();
    for (std::size_t i = 0; i < s.size(); ++i) {
        const Symbol* it = std::lower_bound(base, end, s[i]);
        out[i] = static_cast<std::uint32_t>(it - base) + 1;
    }
    return fresh_.size();
}

void
SaisInto(std::span<const std::uint32_t> ranks_with_sentinel,
         std::size_t alphabet, std::vector<std::size_t>& sa,
         SuffixWorkspace& workspace)
{
    SuffixWorkspace::Rep& rep = *workspace.rep_;
    const std::size_t n = ranks_with_sentinel.size();
    assert(n > 0 && ranks_with_sentinel.back() == 0);
    rep.sa_full.resize(n);
    SaIs(ranks_with_sentinel.data(), n, alphabet, rep.sa_full.data(),
         rep.levels, 0);
    // Drop the sentinel suffix (always first).
    assert(rep.sa_full[0] == n - 1);
    sa.assign(rep.sa_full.begin() + 1, rep.sa_full.end());
}

void
BuildSuffixArrayInto(std::span<const Symbol> s, std::vector<std::size_t>& sa,
                     SuffixWorkspace& workspace, SuffixAlgorithm algorithm)
{
    sa.clear();
    if (s.empty()) {
        return;
    }
    SuffixWorkspace::Rep& rep = *workspace.rep_;
    const std::size_t distinct =
        RankCompressInto(s, rep.sorted, rep.compressed);
    if (algorithm == SuffixAlgorithm::kPrefixDoubling) {
        BuildDoubling(rep.compressed.data(), s.size(), sa, rep.rank, rep.tmp,
                      rep.counts, rep.by_second);
        return;
    }
    // SA-IS needs a unique smallest sentinel at the end.
    rep.compressed.push_back(0);
    SaisInto(rep.compressed, distinct + 1, sa, workspace);
}

std::vector<std::size_t>
BuildSuffixArray(const Sequence& s, SuffixAlgorithm algorithm)
{
    std::vector<std::size_t> sa;
    SuffixWorkspace workspace;
    BuildSuffixArrayInto(s, sa, workspace, algorithm);
    return sa;
}

void
ComputeLcpInto(std::span<const Symbol> seq, const std::vector<std::size_t>& sa,
               std::vector<std::size_t>& lcp,
               std::vector<std::size_t>& inverse_scratch)
{
    const std::size_t n = seq.size();
    lcp.clear();
    if (n <= 1) {
        return;
    }
    const Symbol* const s = seq.data();
    lcp.assign(n - 1, 0);
    inverse_scratch.resize(n);
    std::vector<std::size_t>& inverse = inverse_scratch;
    for (std::size_t i = 0; i < n; ++i) {
        inverse[sa[i]] = i;
    }
    std::size_t h = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (inverse[i] + 1 == n) {
            h = 0;
            continue;
        }
        const std::size_t j = sa[inverse[i] + 1];
        const std::size_t limit = n - std::max(i, j);
        if (h < limit) {
            h += CommonPrefixLength(s + i + h, s + j + h, limit - h);
        }
        lcp[inverse[i]] = h;
        if (h > 0) {
            --h;
        }
    }
}

std::vector<std::size_t>
ComputeLcp(const Sequence& s, const std::vector<std::size_t>& sa)
{
    std::vector<std::size_t> lcp, inverse;
    ComputeLcpInto(s, sa, lcp, inverse);
    return lcp;
}

}  // namespace apo::strings
