#include "strings/suffix_array.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace apo::strings {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/**
 * SA-IS induced-sorting suffix array construction.
 *
 * `s` holds values in [0, alphabet), with s.back() == 0 the unique,
 * smallest sentinel. `sa` is filled with the suffix array of `s`
 * (including the sentinel suffix at sa[0]).
 */
void
SaIs(const std::vector<std::uint32_t>& s, std::size_t alphabet,
     std::vector<std::size_t>& sa)
{
    const std::size_t n = s.size();
    sa.assign(n, kNone);
    if (n == 0) {
        return;
    }
    if (n == 1) {
        sa[0] = 0;
        return;
    }

    // Classify suffixes: S-type (true) or L-type (false).
    std::vector<bool> is_s(n);
    is_s[n - 1] = true;
    for (std::size_t i = n - 1; i-- > 0;) {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    auto is_lms = [&](std::size_t i) {
        return i > 0 && is_s[i] && !is_s[i - 1];
    };

    // Bucket boundaries per symbol.
    std::vector<std::size_t> counts(alphabet, 0);
    for (std::uint32_t c : s) {
        ++counts[c];
    }
    std::vector<std::size_t> bucket_heads(alphabet), bucket_tails(alphabet);
    auto reset_buckets = [&] {
        std::size_t sum = 0;
        for (std::size_t c = 0; c < alphabet; ++c) {
            bucket_heads[c] = sum;
            sum += counts[c];
            bucket_tails[c] = sum;
        }
    };

    // Induce the full order from the (partially or fully) sorted LMS
    // suffixes currently placed in `sa`.
    auto induce = [&] {
        reset_buckets();
        // Left-to-right pass places L-type suffixes at bucket heads.
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = sa[i];
            if (j != kNone && j > 0 && !is_s[j - 1]) {
                sa[bucket_heads[s[j - 1]]++] = j - 1;
            }
        }
        // Right-to-left pass places S-type suffixes at bucket tails.
        reset_buckets();
        for (std::size_t i = n; i-- > 0;) {
            const std::size_t j = sa[i];
            if (j != kNone && j > 0 && is_s[j - 1]) {
                sa[--bucket_tails[s[j - 1]]] = j - 1;
            }
        }
    };

    // Step 1: place LMS suffixes in position order at bucket tails and
    // induce to sort the LMS *substrings*.
    reset_buckets();
    std::vector<std::size_t> lms_positions;
    lms_positions.reserve(n / 2 + 1);
    for (std::size_t i = 1; i < n; ++i) {
        if (is_lms(i)) {
            lms_positions.push_back(i);
        }
    }
    for (std::size_t i = lms_positions.size(); i-- > 0;) {
        const std::size_t p = lms_positions[i];
        sa[--bucket_tails[s[p]]] = p;
    }
    induce();

    // Step 2: name LMS substrings in their sorted order.
    std::vector<std::size_t> lms_sorted;
    lms_sorted.reserve(lms_positions.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (sa[i] != kNone && is_lms(sa[i])) {
            lms_sorted.push_back(sa[i]);
        }
    }
    std::vector<std::size_t> name_of(n, kNone);
    std::size_t num_names = 0;
    std::size_t prev = kNone;
    for (std::size_t p : lms_sorted) {
        if (prev == kNone) {
            name_of[p] = num_names++;
        } else {
            // Compare the LMS substrings starting at prev and p
            // (inclusive of their terminating LMS position).
            bool same = true;
            for (std::size_t k = 0;; ++k) {
                if (p + k >= n || prev + k >= n ||
                    s[p + k] != s[prev + k]) {
                    same = false;
                    break;
                }
                const bool p_end = k > 0 && is_lms(p + k);
                const bool q_end = k > 0 && is_lms(prev + k);
                if (p_end != q_end) {
                    same = false;
                    break;
                }
                if (p_end) {
                    break;  // both ended together with all symbols equal
                }
            }
            if (!same) {
                ++num_names;
            }
            name_of[p] = num_names - 1;
        }
        prev = p;
    }

    // Step 3: sort LMS suffixes, recursing if names are not yet unique.
    std::vector<std::size_t> lms_order(lms_positions.size());
    if (num_names == lms_positions.size()) {
        for (std::size_t i = 0; i < lms_positions.size(); ++i) {
            lms_order[name_of[lms_positions[i]]] = lms_positions[i];
        }
    } else {
        std::vector<std::uint32_t> reduced(lms_positions.size());
        for (std::size_t i = 0; i < lms_positions.size(); ++i) {
            reduced[i] =
                static_cast<std::uint32_t>(name_of[lms_positions[i]]);
        }
        std::vector<std::size_t> reduced_sa;
        SaIs(reduced, num_names, reduced_sa);
        for (std::size_t i = 0; i < reduced_sa.size(); ++i) {
            lms_order[i] = lms_positions[reduced_sa[i]];
        }
    }

    // Step 4: final induce from the fully sorted LMS suffixes.
    std::fill(sa.begin(), sa.end(), kNone);
    reset_buckets();
    for (std::size_t i = lms_order.size(); i-- > 0;) {
        const std::size_t p = lms_order[i];
        sa[--bucket_tails[s[p]]] = p;
    }
    induce();
}

/** O(n log n) prefix-doubling construction with radix sorting. */
std::vector<std::size_t>
BuildDoubling(const std::vector<std::uint32_t>& s)
{
    const std::size_t n = s.size();
    std::vector<std::size_t> sa(n), rank(n), tmp(n), counts;
    std::iota(sa.begin(), sa.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
        rank[i] = s[i];
    }
    // Radix sort `sa` by (rank[i], rank[i + k]) for doubling k.
    for (std::size_t k = 1;; k <<= 1) {
        auto key2 = [&](std::size_t i) {
            return i + k < n ? rank[i + k] + 1 : 0;
        };
        // Stable counting sort by second key, then by first key.
        const std::size_t buckets =
            *std::max_element(rank.begin(), rank.end()) + 2;
        counts.assign(buckets + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[key2(i) + 1];
        }
        std::partial_sum(counts.begin(), counts.end(), counts.begin());
        std::vector<std::size_t> by_second(n);
        for (std::size_t i = 0; i < n; ++i) {
            by_second[counts[key2(i)]++] = i;
        }
        counts.assign(buckets + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            ++counts[rank[i] + 1];
        }
        std::partial_sum(counts.begin(), counts.end(), counts.begin());
        for (std::size_t idx = 0; idx < n; ++idx) {
            const std::size_t i = by_second[idx];
            sa[counts[rank[i]]++] = i;
        }
        // Re-rank.
        tmp[sa[0]] = 0;
        std::size_t r = 0;
        for (std::size_t i = 1; i < n; ++i) {
            const std::size_t a = sa[i - 1], b = sa[i];
            if (rank[a] != rank[b] || key2(a) != key2(b)) {
                ++r;
            }
            tmp[b] = r;
        }
        rank.swap(tmp);
        if (r + 1 == n) {
            break;
        }
    }
    return sa;
}

}  // namespace

std::vector<std::uint32_t>
RankCompress(const Sequence& s)
{
    std::vector<Symbol> sorted(s);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<std::uint32_t> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        const auto it =
            std::lower_bound(sorted.begin(), sorted.end(), s[i]);
        // +1 reserves rank 0 for the SA-IS sentinel.
        out[i] = static_cast<std::uint32_t>(it - sorted.begin()) + 1;
    }
    return out;
}

std::vector<std::size_t>
BuildSuffixArray(const Sequence& s, SuffixAlgorithm algorithm)
{
    if (s.empty()) {
        return {};
    }
    std::vector<std::uint32_t> compressed = RankCompress(s);
    if (algorithm == SuffixAlgorithm::kPrefixDoubling) {
        return BuildDoubling(compressed);
    }
    // SA-IS needs a unique smallest sentinel at the end.
    compressed.push_back(0);
    const std::size_t alphabet =
        *std::max_element(compressed.begin(), compressed.end()) + 1;
    std::vector<std::size_t> sa_with_sentinel;
    SaIs(compressed, alphabet, sa_with_sentinel);
    // Drop the sentinel suffix (always first).
    assert(!sa_with_sentinel.empty() && sa_with_sentinel[0] == s.size());
    return {sa_with_sentinel.begin() + 1, sa_with_sentinel.end()};
}

std::vector<std::size_t>
ComputeLcp(const Sequence& s, const std::vector<std::size_t>& sa)
{
    const std::size_t n = s.size();
    if (n <= 1) {
        return {};
    }
    std::vector<std::size_t> inverse(n), lcp(n - 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        inverse[sa[i]] = i;
    }
    std::size_t h = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (inverse[i] + 1 == n) {
            h = 0;
            continue;
        }
        const std::size_t j = sa[inverse[i] + 1];
        while (i + h < n && j + h < n && s[i + h] == s[j + h]) {
            ++h;
        }
        lcp[inverse[i]] = h;
        if (h > 0) {
            --h;
        }
    }
    return lcp;
}

}  // namespace apo::strings
