/**
 * @file
 * Baseline trace-identification algorithms (paper section 4.2,
 * "Existing Techniques") and test oracles.
 *
 * The paper motivates its repeat-mining algorithm by arguing that
 * prior techniques are inadequate:
 *  - tandem repeat analysis (Sisco et al. / Stoye-Gusfield) requires
 *    contiguous repetition and misses loops interrupted by irregular
 *    operations such as convergence checks;
 *  - LZW-style incremental dictionaries grow candidates one token per
 *    occurrence, needing a length-n repeat to appear ~n times;
 *  - suffix-tree/naive extensions for non-overlapping repeats run in
 *    quadratic time.
 *
 * These baselines are implemented here both to reproduce that ablation
 * (bench/ablation_identifiers) and to serve as oracles for the main
 * algorithm's unit tests. An exact dynamic-programming solver of the
 * coverage optimization problem (paper section 3) is provided for tiny
 * inputs.
 */
#ifndef APOPHENIA_STRINGS_IDENTIFIERS_H
#define APOPHENIA_STRINGS_IDENTIFIERS_H

#include <cstddef>
#include <span>
#include <vector>

#include "strings/repeats.h"
#include "strings/suffix_array.h"

namespace apo::strings {

/**
 * Find tandem repeats: substrings alpha such that alpha^k (k >= 2)
 * occurs contiguously in `s`. Returns the selected primitive unit and
 * the starts of its contiguous copies. Quadratic-time reference
 * implementation (the baseline's asymptotics are not the point of the
 * ablation; its *coverage* on interrupted loops is).
 */
std::vector<Repeat> FindTandemRepeats(const Sequence& s,
                                      std::size_t min_length);

/** A maximal tandem run of `copies` adjacent copies of a period-
 * `period` unit starting at `start`. */
struct TandemRun {
    std::size_t start = 0;
    std::size_t period = 0;
    std::size_t copies = 0;
    std::size_t TotalLength() const { return period * copies; }
};

/** Reusable buffers for FindTandemRepeatsInto (the O(n)-per-period
 * match-length array dominates the baseline's allocation traffic). */
struct TandemScratch {
    std::vector<std::size_t> eq;
    std::vector<TandemRun> runs;
};

/** Scratch-reusing FindTandemRepeats: bit-identical output into
 * `out`. */
void FindTandemRepeatsInto(std::span<const Symbol> s, std::size_t min_length,
                           TandemScratch& scratch, std::vector<Repeat>& out);

/**
 * LZW-style repeat detection: parse `s` with an LZW dictionary and
 * report phrases that were emitted at least twice. Candidates grow by
 * one token per occurrence, so long repeats require many sightings —
 * the weakness the paper calls out.
 */
std::vector<Repeat> FindRepeatsLzw(const Sequence& s,
                                   std::size_t min_length);

/**
 * Quadratic greedy baseline: repeatedly extract the longest substring
 * that still has two disjoint unclaimed occurrences. Close to optimal
 * coverage but O(n^2)-ish; reference for output quality.
 */
std::vector<Repeat> FindRepeatsQuadratic(const Sequence& s,
                                         std::size_t min_length);

/**
 * Exact maximum of the paper's coverage objective for small inputs
 * (O(n^3) DP): the maximum number of positions of `s` coverable by
 * pairwise-disjoint intervals, each of which is an occurrence of some
 * substring of length >= min_length that occurs at least twice
 * disjointly in `s`. Oracle for property tests.
 */
std::size_t OptimalCoverage(const Sequence& s, std::size_t min_length);

/**
 * Greedy matching of a *fixed* trace set against `s` (the function f
 * of the paper's optimization problem): scan left to right, at each
 * position matching the longest applicable trace. Returns covered
 * position count.
 */
std::size_t GreedyCoverageOf(const Sequence& s,
                             const std::vector<Repeat>& traces);

}  // namespace apo::strings

#endif  // APOPHENIA_STRINGS_IDENTIFIERS_H
