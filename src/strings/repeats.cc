#include "strings/repeats.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "support/intervals.h"

namespace apo::strings {

namespace {

/**
 * O(1) range-minimum queries over the LCP array after O(n log n)
 * sparse-table preprocessing. Used to compare candidate substrings
 * lexicographically in constant time, keeping the candidate sort at
 * O(n log n) overall. The table is built into caller-owned level
 * storage so repeated constructions reuse the buffers.
 */
class LcpRmq {
  public:
    LcpRmq(const std::vector<std::size_t>& lcp,
           std::vector<std::vector<std::size_t>>& levels)
        : table_(levels)
    {
        const std::size_t n = lcp.size();
        if (n == 0) {
            table_.resize(0);
            return;
        }
        const unsigned num_levels = std::bit_width(n);
        // Level j only answers queries of span 2^j, so it needs just
        // n - 2^j + 1 entries — sizing each level (instead of a full
        // copy of the LCP array per level) halves the preprocessing
        // memory overall.
        table_.resize(num_levels);
        table_[0] = lcp;
        for (unsigned j = 1; j < num_levels; ++j) {
            const std::size_t span = std::size_t{1} << j;
            table_[j].resize(n - span + 1);
            for (std::size_t i = 0; i + span <= n; ++i) {
                table_[j][i] = std::min(table_[j - 1][i],
                                        table_[j - 1][i + span / 2]);
            }
        }
    }

    /** Minimum of lcp[lo..hi] inclusive; requires lo <= hi. */
    std::size_t Min(std::size_t lo, std::size_t hi) const
    {
        const unsigned j = std::bit_width(hi - lo + 1) - 1;
        return std::min(table_[j][lo],
                        table_[j][hi + 1 - (std::size_t{1} << j)]);
    }

  private:
    std::vector<std::vector<std::size_t>>& table_;
};

}  // namespace

void
FindRepeatsFromSa(std::span<const Symbol> s, const std::vector<std::size_t>& sa,
                  const std::vector<std::size_t>& lcp,
                  const RepeatOptions& options, RepeatsScratch& scratch,
                  std::vector<Repeat>& out)
{
    out.clear();
    const std::size_t n = s.size();
    const std::size_t min_len = std::max<std::size_t>(options.min_length, 1);
    assert(RepeatsViable(n, options));

    scratch.rank.resize(n);
    std::vector<std::size_t>& rank = scratch.rank;
    for (std::size_t i = 0; i < n; ++i) {
        rank[sa[i]] = i;
    }
    const LcpRmq rmq(lcp, scratch.rmq_levels);

    // Length of the common prefix of the suffixes at positions a and b.
    auto common_prefix = [&](std::size_t a, std::size_t b) -> std::size_t {
        if (a == b) {
            return n - a;
        }
        const auto [lo, hi] = std::minmax(rank[a], rank[b]);
        return rmq.Min(lo, hi - 1);
    };

    // Candidate generation: one pass over adjacent suffix-array pairs
    // (paper Algorithm 2, lines 4-14).
    std::vector<RepeatCandidate>& candidates = scratch.candidates;
    candidates.clear();
    candidates.reserve(2 * n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const std::size_t p = lcp[i];
        if (p < min_len) {
            continue;
        }
        std::size_t s1 = sa[i], s2 = sa[i + 1];
        if (s1 > s2) {
            std::swap(s1, s2);  // the overlap case assumes s1 < s2
        }
        if (s1 + p <= s2) {
            // The two occurrences of the shared prefix do not overlap.
            candidates.push_back({p, s1});
            candidates.push_back({p, s2});
        } else {
            // Overlapping occurrences: the shared prefix is periodic
            // with period d = s2 - s1. Emit two adjacent, disjoint
            // copies of the longest usable multiple of the period.
            const std::size_t d = s2 - s1;
            std::size_t l = (p + d) / 2;
            l -= l % d;
            if (l >= min_len) {
                candidates.push_back({l, s1});
                candidates.push_back({l, s1 + l});
            }
        }
    }

    // Sort by decreasing length, then by substring content, then by
    // increasing start position. Content comparison is O(1) via the
    // LCP range-minimum structure.
    std::sort(candidates.begin(), candidates.end(),
              [&](const RepeatCandidate& a, const RepeatCandidate& b) {
                  if (a.length != b.length) {
                      return a.length > b.length;
                  }
                  if (a.start != b.start) {
                      const std::size_t cp =
                          common_prefix(a.start, b.start);
                      if (cp < a.length) {
                          // Distinct content: order lexicographically,
                          // which equals suffix-rank order here.
                          return rank[a.start] < rank[b.start];
                      }
                  }
                  return a.start < b.start;
              });

    // Greedy selection of non-overlapping occurrences (lines 16-20),
    // grouping consecutive equal-content candidates so that each
    // distinct substring is emitted once (the deduplication step).
    support::IntervalSet chosen;
    auto same_group = [&](const RepeatCandidate& a, const RepeatCandidate& b) {
        return a.length == b.length &&
               (a.start == b.start ||
                common_prefix(a.start, b.start) >= a.length);
    };
    std::vector<std::size_t>& group_starts = scratch.group_starts;
    group_starts.clear();
    const RepeatCandidate* group_head = nullptr;
    auto flush_group = [&] {
        if (group_head == nullptr ||
            group_starts.size() < options.min_occurrences) {
            group_starts.clear();
            return;
        }
        std::sort(group_starts.begin(), group_starts.end());
        group_starts.erase(
            std::unique(group_starts.begin(), group_starts.end()),
            group_starts.end());
        Repeat r;
        r.tokens.assign(s.begin() + group_head->start,
                        s.begin() + group_head->start + group_head->length);
        r.starts.assign(group_starts.begin(), group_starts.end());
        out.push_back(std::move(r));
        group_starts.clear();
    };
    for (const RepeatCandidate& c : candidates) {
        if (group_head != nullptr && !same_group(*group_head, c)) {
            flush_group();
            group_head = nullptr;
        }
        if (chosen.InsertIfDisjoint(c.start, c.start + c.length)) {
            if (group_head == nullptr) {
                group_head = &c;
            }
            group_starts.push_back(c.start);
        } else if (group_head == nullptr) {
            // Track the group even if its first occurrence was blocked,
            // so later occurrences of the same content group together.
            group_head = &c;
        }
    }
    flush_group();
}

void
FindRepeatsInto(std::span<const Symbol> s, const RepeatOptions& options,
                RepeatsScratch& scratch, std::vector<Repeat>& out)
{
    out.clear();
    if (!RepeatsViable(s.size(), options)) {
        return;
    }
    BuildSuffixArrayInto(s, scratch.sa, scratch.suffix,
                         options.suffix_algorithm);
    ComputeLcpInto(s, scratch.sa, scratch.lcp, scratch.inverse);
    FindRepeatsFromSa(s, scratch.sa, scratch.lcp, options, scratch, out);
}

std::vector<Repeat>
FindRepeats(const Sequence& s, const RepeatOptions& options)
{
    thread_local RepeatsScratch scratch;
    std::vector<Repeat> result;
    FindRepeatsInto(s, options, scratch, result);
    return result;
}

std::size_t
TotalCoverage(const std::vector<Repeat>& repeats)
{
    std::size_t total = 0;
    for (const Repeat& r : repeats) {
        total += r.Coverage();
    }
    return total;
}

}  // namespace apo::strings
