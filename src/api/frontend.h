/**
 * @file
 * The one issue surface applications are written against.
 *
 * The paper's whole pitch is that the application-facing interface
 * never changes: tracing is slotted in *behind* ExecuteTask. This
 * layer makes that literal. A Frontend is where an application sends
 * its region and task operations; the same application code runs in
 * every evaluation mode by swapping the implementation:
 *
 *  - DirectFrontend:   straight to the runtime; the application's own
 *                      tbegin/tend annotations are honored (the
 *                      paper's hand-traced ports);
 *  - UntracedFrontend: straight to the runtime with annotations
 *                      stripped — every task is analyzed;
 *  - core::Apophenia:  automatic tracing; annotations are ignored (a
 *                      real port would simply not have them) and
 *                      Apophenia inserts its own trace markers;
 *  - sim::Cluster:     N Apophenia instances over N runtime shards
 *                      with skew-aware coordinated analysis ingestion
 *                      (paper section 5.1).
 *
 * The issue path is non-virtual (NVI): the public ExecuteTask /
 * BeginTrace / EndTrace / Flush update the uniform FrontendStats and
 * dispatch to the protected Do* hooks, so every implementation counts
 * the same things the same way — including annotations it *drops*,
 * which the adapter sinks this layer replaces used to discard
 * silently.
 */
#ifndef APOPHENIA_API_FRONTEND_H
#define APOPHENIA_API_FRONTEND_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "runtime/runtime.h"

namespace apo::api {

/** Counters every Frontend keeps uniformly (NVI, see file comment). */
struct FrontendStats {
    /** Launches issued through ExecuteTask (either overload). */
    std::uint64_t tasks_executed = 0;
    /** Begin/EndTrace annotations forwarded to the runtime. */
    std::uint64_t annotations_honored = 0;
    /** Begin/EndTrace annotations this front end dropped. */
    std::uint64_t annotations_ignored = 0;
    /** End-of-stream synchronizations. */
    std::uint64_t flushes = 0;
};

/** Where an application sends its region and task operations. */
class Frontend {
  public:
    virtual ~Frontend();

    Frontend() = default;
    Frontend(const Frontend&) = delete;
    Frontend& operator=(const Frontend&) = delete;

    /** Implementation name for reports and experiment logs. */
    virtual std::string_view Name() const = 0;

    // -- Region management -------------------------------------------------

    virtual rt::RegionId CreateRegion() = 0;
    virtual void DestroyRegion(rt::RegionId r) = 0;
    virtual std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                                      std::size_t count) = 0;

    // -- The issue path ----------------------------------------------------

    /** Issue one launch. The view's token was hashed at the API
     * boundary; the requirements stay in the caller's arena for the
     * duration of the call (see rt::TaskLaunchView). */
    void ExecuteTask(const rt::TaskLaunchView& launch)
    {
        stats_.tasks_executed += 1;
        DoExecuteTask(launch);
    }

    /** Convenience for owned launches; hashes here. */
    void ExecuteTask(const rt::TaskLaunch& launch)
    {
        ExecuteTask(rt::TaskLaunchView::Of(launch));
    }

    /** Manual trace annotations. Implementations that do their own
     * tracing (or none) drop them — counted, never silent. */
    void BeginTrace(rt::TraceId id)
    {
        if (DoBeginTrace(id)) {
            stats_.annotations_honored += 1;
        } else {
            stats_.annotations_ignored += 1;
        }
    }

    void EndTrace(rt::TraceId id)
    {
        if (DoEndTrace(id)) {
            stats_.annotations_honored += 1;
        } else {
            stats_.annotations_ignored += 1;
        }
    }

    /** End-of-program (or synchronization-point) drain. */
    void Flush()
    {
        stats_.flushes += 1;
        DoFlush();
    }

    /** Uniform issue-side statistics, identical across
     * implementations. */
    const FrontendStats& Stats() const { return stats_; }

  protected:
    /** @return true iff the annotation was forwarded (honored). */
    virtual bool DoBeginTrace(rt::TraceId id) = 0;
    /** @return true iff the annotation was forwarded (honored). */
    virtual bool DoEndTrace(rt::TraceId id) = 0;
    virtual void DoExecuteTask(const rt::TaskLaunchView& launch) = 0;
    virtual void DoFlush() = 0;

  private:
    FrontendStats stats_;
};

/** Shared pass-through of the two runtime-backed wrappers: regions
 * and launches go straight to the runtime; only the annotation policy
 * differs. */
class RuntimeFrontend : public Frontend {
  public:
    rt::RegionId CreateRegion() override { return runtime_->CreateRegion(); }
    void DestroyRegion(rt::RegionId r) override
    {
        runtime_->DestroyRegion(r);
    }
    std::vector<rt::RegionId> PartitionRegion(rt::RegionId parent,
                                              std::size_t count) override
    {
        return runtime_->PartitionRegion(parent, count);
    }

  protected:
    explicit RuntimeFrontend(rt::Runtime& runtime) : runtime_(&runtime) {}

    void DoExecuteTask(const rt::TaskLaunchView& launch) override
    {
        runtime_->ExecuteTask(launch);
    }
    void DoFlush() override {}

    rt::Runtime& Target() { return *runtime_; }

  private:
    rt::Runtime* runtime_;
};

/** Direct runtime access: manual annotations are honored. */
class DirectFrontend final : public RuntimeFrontend {
  public:
    explicit DirectFrontend(rt::Runtime& runtime) : RuntimeFrontend(runtime)
    {
    }

    std::string_view Name() const override { return "direct"; }

  protected:
    bool DoBeginTrace(rt::TraceId id) override
    {
        Target().BeginTrace(id);
        return true;
    }
    bool DoEndTrace(rt::TraceId id) override
    {
        Target().EndTrace(id);
        return true;
    }
};

/** Direct runtime access with annotations stripped. */
class UntracedFrontend final : public RuntimeFrontend {
  public:
    explicit UntracedFrontend(rt::Runtime& runtime)
        : RuntimeFrontend(runtime)
    {
    }

    std::string_view Name() const override { return "untraced"; }

  protected:
    bool DoBeginTrace(rt::TraceId) override { return false; }
    bool DoEndTrace(rt::TraceId) override { return false; }
};

}  // namespace apo::api

#endif  // APOPHENIA_API_FRONTEND_H
