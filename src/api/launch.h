/**
 * @file
 * The zero-allocation launch builder.
 *
 * The seed's issue path built a fresh TaskLaunch — one heap-allocated
 * requirement vector — per launch, and every consumer (front-end
 * buffering, the runtime) copied that vector again. LaunchBuilder
 * inverts the ownership: the requirements live in a caller-owned
 * arena that is *reused* across launches (capacity persists, so the
 * steady state allocates nothing), the token hash is folded in
 * incrementally as requirements are added, and consumers receive a
 * non-owning rt::TaskLaunchView. Only a consumer that must *hold* the
 * launch past the call (Apophenia buffering a candidate's tasks, the
 * runtime's operation log) materializes it.
 *
 *     api::LaunchBuilder builder;           // long-lived, reused
 *     builder.Start("stencil", shard, 80.0)
 *         .Add(u.Read(g))
 *         .Add(u.Read(g - 1))
 *         .Add(out.Write(g))
 *         .LaunchOn(frontend);
 *
 * The view returned by View() (and passed by LaunchOn) is valid until
 * the next Start() on the same builder.
 */
#ifndef APOPHENIA_API_LAUNCH_H
#define APOPHENIA_API_LAUNCH_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "api/frontend.h"
#include "runtime/task.h"

namespace apo::api {

/** See file comment. */
class LaunchBuilder {
  public:
    /** Begin a new launch, discarding the previous one. The arena's
     * capacity is kept. */
    LaunchBuilder& Start(rt::TaskId task, std::uint32_t shard = 0,
                         double execution_us = 100.0)
    {
        requirements_.clear();
        view_.task = task;
        view_.shard = shard;
        view_.execution_us = execution_us;
        view_.blocking = false;
        view_.traceable = true;
        hash_ = rt::HashTaskId(task);
        return *this;
    }

    LaunchBuilder& Start(std::string_view name, std::uint32_t shard = 0,
                         double execution_us = 100.0)
    {
        return Start(rt::TaskIdOf(name), shard, execution_us);
    }

    /** Append one region requirement; folds it into the token. */
    LaunchBuilder& Add(const rt::RegionRequirement& req)
    {
        requirements_.push_back(req);
        hash_ = rt::HashRequirement(hash_, req);
        return *this;
    }

    /** The application blocks on this launch's result. */
    LaunchBuilder& Blocking(bool blocking = true)
    {
        view_.blocking = blocking;
        return *this;
    }

    /** Mark the launch non-memoizable (see TaskLaunch::traceable). */
    LaunchBuilder& Traceable(bool traceable)
    {
        view_.traceable = traceable;
        return *this;
    }

    LaunchBuilder& Shard(std::uint32_t shard)
    {
        view_.shard = shard;
        return *this;
    }

    LaunchBuilder& ExecutionUs(double execution_us)
    {
        view_.execution_us = execution_us;
        return *this;
    }

    /** Fold a tenant token namespace into every launch token built
     * here (see rt::FoldNamespace): the multi-tenant service gives
     * each tenant a distinct salt so no two tenants ever share a
     * token value. 0 (the default) is the identity — a builder
     * without a namespace produces exactly the classic token. The
     * namespace survives Start(); set it once per tenant. */
    LaunchBuilder& Namespace(rt::TokenHash name_space)
    {
        namespace_ = name_space;
        return *this;
    }

    rt::TokenHash GetNamespace() const { return namespace_; }

    /** The assembled launch as a view over this builder's arena.
     * Valid until the next Start(). */
    const rt::TaskLaunchView& View()
    {
        view_.requirements = requirements_.data();
        view_.requirement_count = requirements_.size();
        view_.token = rt::FoldNamespace(namespace_, hash_);
        return view_;
    }

    /** Issue the assembled launch. The builder stays reusable. */
    void LaunchOn(Frontend& frontend) { frontend.ExecuteTask(View()); }

  private:
    std::vector<rt::RegionRequirement> requirements_;  ///< the arena
    rt::TaskLaunchView view_;
    rt::TokenHash hash_ = 0;
    rt::TokenHash namespace_ = 0;
};

}  // namespace apo::api

#endif  // APOPHENIA_API_LAUNCH_H
