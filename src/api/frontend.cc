#include "api/frontend.h"

namespace apo::api {

// Out-of-line key function: one vtable anchor for the whole layer.
Frontend::~Frontend() = default;

}  // namespace apo::api
