#include "runtime/runtime.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace apo::rt {

Runtime::Runtime(RuntimeOptions options) : options_(options)
{
    if (options_.nodes == 0) {
        options_.nodes = 1;
    }
    analyzer_.SetForest(&forest_);
}

double
Runtime::ScaledAnalysisUs() const
{
    const double nodes = static_cast<double>(options_.nodes);
    return options_.costs.analysis_us *
           (1.0 + options_.costs.analysis_scale_factor * std::log2(nodes));
}

void
Runtime::ExecuteTask(const TaskLaunchView& launch)
{
    switch (mode_) {
      case Mode::kIdle:
        ExecuteUntraced(launch);
        break;
      case Mode::kRecording:
        ExecuteRecording(launch);
        break;
      case Mode::kReplaying:
        ExecuteReplaying(launch);
        break;
    }
}

void
Runtime::ExecuteUntraced(const TaskLaunchView& launch)
{
    Operation op;
    op.index = log_.size();
    launch.MaterializeInto(op.launch);
    op.token = launch.token;
    op.dependences = analyzer_.Analyze(op.index, launch);
    op.mode = AnalysisMode::kAnalyzed;
    op.analysis_cost_us = ScaledAnalysisUs();
    stats_.tasks_analyzed += 1;
    stats_.total_analysis_us += op.analysis_cost_us;
    log_.push_back(std::move(op));
}

void
Runtime::ExecuteRecording(const TaskLaunchView& launch)
{
    if (!launch.traceable) {
        // An operation that cannot be memoized was issued inside a
        // trace — the composition failure mode of section 1.
        stats_.trace_mismatches += 1;
        if (options_.mismatch_policy == MismatchPolicy::kThrow) {
            throw TraceMismatchError(
                "untraceable operation issued inside a trace recording");
        }
        // Fallback: abandon the recording entirely.
        mode_ = Mode::kIdle;
        abandoned_trace_ = open_trace_;
        open_trace_ = kNoTrace;
        recording_ = TraceTemplate{};
        ExecuteUntraced(launch);
        return;
    }
    Operation op;
    op.index = log_.size();
    launch.MaterializeInto(op.launch);
    op.token = launch.token;
    op.dependences = analyzer_.Analyze(op.index, launch);
    op.mode = AnalysisMode::kRecorded;
    op.trace = open_trace_;
    // Recording performs the full analysis plus memoization work.
    const double scale =
        options_.costs.memoize_us / options_.costs.analysis_us;
    op.analysis_cost_us = ScaledAnalysisUs() * scale;
    stats_.tasks_recorded += 1;
    stats_.total_analysis_us += op.analysis_cost_us;

    // Capture the launch and its intra-fragment edges in the template.
    recording_.tokens.push_back(op.token);
    recording_.launches.push_back(op.launch);
    for (const Dependence& d : op.dependences) {
        if (d.from >= trace_start_) {
            recording_.internal_edges.push_back(Dependence{
                d.from - trace_start_, d.to - trace_start_, d.kind});
        }
    }
    log_.push_back(std::move(op));
}

void
Runtime::ExecuteReplaying(const TaskLaunchView& launch)
{
    const TraceTemplate* t = cache_.Find(open_trace_);
    if (!launch.traceable || replay_position_ >= t->Length() ||
        t->tokens[replay_position_] != launch.token) {
        HandleMismatch(!launch.traceable
                           ? "untraceable operation issued inside a trace"
                           : replay_position_ >= t->Length()
                                 ? "trace replay saw more tasks than "
                                   "recorded"
                                 : "trace replay saw an unexpected task",
                       launch);
        return;
    }

    Operation op;
    op.index = log_.size();
    launch.MaterializeInto(op.launch);
    op.token = launch.token;
    op.mode = AnalysisMode::kReplayed;
    op.trace = open_trace_;
    // Boundary edges are regenerated against the current coherence
    // state; intra-fragment edges come from the memoized template.
    op.dependences =
        analyzer_.Analyze(op.index, launch, /*external_only_after=*/
                          trace_start_);
    for (const Dependence& d : t->internal_edges) {
        if (d.to == replay_position_) {
            op.dependences.push_back(Dependence{
                d.from + trace_start_, d.to + trace_start_, d.kind});
        }
    }
    std::sort(op.dependences.begin(), op.dependences.end());
    op.analysis_cost_us = options_.costs.replay_us;
    if (replay_position_ == 0) {
        op.replay_head = true;
        op.analysis_cost_us += options_.costs.replay_constant_us;
    }
    stats_.tasks_replayed += 1;
    stats_.total_analysis_us += op.analysis_cost_us;
    log_.push_back(std::move(op));
    ++replay_position_;
}

void
Runtime::HandleMismatch(const std::string& reason,
                        const TaskLaunchView& launch)
{
    stats_.trace_mismatches += 1;
    if (options_.mismatch_policy == MismatchPolicy::kThrow) {
        throw TraceMismatchError(reason + " (trace " +
                                 std::to_string(open_trace_) + ")");
    }
    // Fallback: abandon the replay; this and subsequent tasks in the
    // fragment run under full dependence analysis.
    mode_ = Mode::kIdle;
    const TraceId failed = open_trace_;
    open_trace_ = kNoTrace;
    ExecuteUntraced(launch);
    // Remain "idle" until the application's EndTrace; tolerate it.
    abandoned_trace_ = failed;
}

void
Runtime::BeginTrace(TraceId id)
{
    if (id == kNoTrace) {
        throw RuntimeUsageError("trace id 0 is reserved");
    }
    if (mode_ != Mode::kIdle) {
        throw RuntimeUsageError("traces cannot nest");
    }
    open_trace_ = id;
    trace_start_ = log_.size();
    if (cache_.Contains(id)) {
        mode_ = Mode::kReplaying;
        replay_position_ = 0;
    } else {
        mode_ = Mode::kRecording;
        recording_ = TraceTemplate{};
        recording_.id = id;
    }
}

void
Runtime::EndTrace(TraceId id)
{
    if (mode_ == Mode::kIdle) {
        if (abandoned_trace_ == id && id != kNoTrace) {
            abandoned_trace_ = kNoTrace;  // fallback path: tolerated
            return;
        }
        throw RuntimeUsageError("EndTrace without an open trace");
    }
    if (open_trace_ != id) {
        throw RuntimeUsageError("EndTrace id does not match open trace");
    }
    if (mode_ == Mode::kRecording) {
        stats_.traces_recorded += 1;
        recording_.last_used = ++use_stamp_;
        cache_.Insert(std::move(recording_));
        recording_ = TraceTemplate{};
        // Bound the template cache: evict the least recently used
        // template (it will be re-recorded if it comes back).
        if (options_.max_trace_templates != 0 &&
            cache_.Size() > options_.max_trace_templates) {
            if (cache_.EvictLeastRecentlyUsed() != kNoTrace) {
                stats_.traces_evicted += 1;
            }
        }
    } else {
        TraceTemplate* t = cache_.FindMutable(open_trace_);
        if (replay_position_ != t->Length()) {
            HandleMismatchAtEnd();
            return;
        }
        t->replay_count += 1;
        t->last_used = ++use_stamp_;
        stats_.trace_replays += 1;
    }
    mode_ = Mode::kIdle;
    open_trace_ = kNoTrace;
}

void
Runtime::HandleMismatchAtEnd()
{
    stats_.trace_mismatches += 1;
    const TraceId failed = open_trace_;
    mode_ = Mode::kIdle;
    open_trace_ = kNoTrace;
    if (options_.mismatch_policy == MismatchPolicy::kThrow) {
        throw TraceMismatchError(
            "trace replay ended before the recorded sequence completed "
            "(trace " +
            std::to_string(failed) + ")");
    }
}

}  // namespace apo::rt
