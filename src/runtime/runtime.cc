#include "runtime/runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace apo::rt {

Runtime::Runtime(RuntimeOptions options)
    : options_(options), log_(options.log_config)
{
    if (options_.nodes == 0) {
        options_.nodes = 1;
    }
    analyzer_.SetForest(&forest_);
}

double
Runtime::ScaledAnalysisUs() const
{
    const double nodes = static_cast<double>(options_.nodes);
    return options_.costs.analysis_us *
           (1.0 + options_.costs.analysis_scale_factor * std::log2(nodes));
}

void
Runtime::ExecuteTask(const TaskLaunchView& launch)
{
    switch (mode_) {
      case Mode::kIdle:
        ExecuteUntraced(launch);
        break;
      case Mode::kRecording:
        ExecuteRecording(launch);
        break;
      case Mode::kReplaying:
        ExecuteReplaying(launch);
        break;
    }
}

void
Runtime::ExecuteUntraced(const TaskLaunchView& launch)
{
    const std::size_t index = log_.size();
    dep_scratch_.clear();
    analyzer_.AnalyzeInto(index, launch, dep_scratch_);
    const double cost = ScaledAnalysisUs();
    stats_.tasks_analyzed += 1;
    stats_.total_analysis_us += cost;
    log_.Append(launch, AnalysisMode::kAnalyzed, kNoTrace, cost,
                /*replay_head=*/false, dep_scratch_);
    log_.SetRetireBound(RetireBound());
}

void
Runtime::ExecuteRecording(const TaskLaunchView& launch)
{
    if (!launch.traceable) {
        // An operation that cannot be memoized was issued inside a
        // trace — the composition failure mode of section 1.
        stats_.trace_mismatches += 1;
        if (options_.mismatch_policy == MismatchPolicy::kThrow) {
            throw TraceMismatchError(
                "untraceable operation issued inside a trace recording");
        }
        // Fallback: abandon the recording entirely.
        mode_ = Mode::kIdle;
        abandoned_trace_ = open_trace_;
        open_trace_ = kNoTrace;
        recording_ = TraceTemplate{};
        ExecuteUntraced(launch);
        return;
    }
    const std::size_t index = log_.size();
    dep_scratch_.clear();
    analyzer_.AnalyzeInto(index, launch, dep_scratch_);
    // Recording performs the full analysis plus memoization work.
    const double scale =
        options_.costs.memoize_us / options_.costs.analysis_us;
    const double cost = ScaledAnalysisUs() * scale;
    stats_.tasks_recorded += 1;
    stats_.total_analysis_us += cost;

    // Capture the launch token and its intra-fragment edges in the
    // template (CSR spans — no per-op edge vectors).
    recording_.AddOp(launch.token);
    for (const Dependence& d : dep_scratch_) {
        if (d.from >= trace_start_) {
            recording_.AddInternalEdge(Dependence{
                d.from - trace_start_, d.to - trace_start_, d.kind});
        }
    }
    recording_.SealOp();
    log_.Append(launch, AnalysisMode::kRecorded, open_trace_, cost,
                /*replay_head=*/false, dep_scratch_);
    log_.SetRetireBound(RetireBound());
}

void
Runtime::ExecuteReplaying(const TaskLaunchView& launch)
{
    const TraceTemplate* t = cache_.Find(open_trace_);
    if (!launch.traceable || replay_position_ >= t->Length() ||
        t->tokens[replay_position_] != launch.token) {
        HandleMismatch(!launch.traceable
                           ? "untraceable operation issued inside a trace"
                           : replay_position_ >= t->Length()
                                 ? "trace replay saw more tasks than "
                                   "recorded"
                                 : "trace replay saw an unexpected task",
                       launch);
        return;
    }

    const std::size_t index = log_.size();
    // Boundary edges are regenerated against the current coherence
    // state; intra-fragment edges come from the memoized template's
    // edge span for this position. The boundary edges all point before
    // trace_start_ and the rebased internal edges all point at or
    // after it, and both halves arrive sorted by source, so the
    // concatenation is already in canonical (sorted, deduplicated)
    // order.
    dep_scratch_.clear();
    analyzer_.AnalyzeInto(index, launch, dep_scratch_,
                          /*external_only_after=*/trace_start_);
    for (const Dependence& d : t->EdgesOf(replay_position_)) {
        assert(d.to + trace_start_ == index);
        dep_scratch_.push_back(Dependence{d.from + trace_start_,
                                          d.to + trace_start_, d.kind});
    }
    assert(std::is_sorted(dep_scratch_.begin(), dep_scratch_.end()));
    double cost = options_.costs.replay_us;
    const bool replay_head = replay_position_ == 0;
    if (replay_head) {
        cost += options_.costs.replay_constant_us;
    }
    stats_.tasks_replayed += 1;
    stats_.total_analysis_us += cost;
    log_.Append(launch, AnalysisMode::kReplayed, open_trace_, cost,
                replay_head, dep_scratch_);
    log_.SetRetireBound(RetireBound());
    ++replay_position_;
}

/**
 * Fallback-policy rewind: the fragment's already-replayed prefix
 * [trace_start_, log end) is converted to plain analyzed accounting —
 * the abandoned replay never completed, so a no-speculation runtime
 * would have analyzed those operations. Their edges are untouched: a
 * replayed operation's edges equal what fresh analysis produces for
 * the identical token stream (the differential tests pin this down),
 * so only mode, trace tag and charged cost change. The streaming log
 * keeps an open fragment resident (retire bound = trace_start_), so
 * the rows are still writable here.
 */
void
Runtime::RewindReplayedFragment()
{
    const double analyzed_cost = ScaledAnalysisUs();
    for (std::size_t i = trace_start_; i < log_.size(); ++i) {
        stats_.total_analysis_us +=
            analyzed_cost - log_[i].analysis_cost_us;
        stats_.tasks_replayed -= 1;
        stats_.tasks_analyzed += 1;
        stats_.tasks_rewound += 1;
        log_.RewriteAsAnalyzed(i, analyzed_cost);
    }
}

void
Runtime::HandleMismatch(const std::string& reason,
                        const TaskLaunchView& launch)
{
    stats_.trace_mismatches += 1;
    if (options_.mismatch_policy == MismatchPolicy::kThrow) {
        throw TraceMismatchError(reason + " (trace " +
                                 std::to_string(open_trace_) + ")");
    }
    // Fallback: abandon the replay — rewind the replayed prefix to
    // analyzed accounting; this and subsequent tasks in the fragment
    // run under full dependence analysis.
    RewindReplayedFragment();
    mode_ = Mode::kIdle;
    const TraceId failed = open_trace_;
    open_trace_ = kNoTrace;
    ExecuteUntraced(launch);
    // Remain "idle" until the application's EndTrace; tolerate it.
    abandoned_trace_ = failed;
}

void
Runtime::BeginTrace(TraceId id)
{
    if (id == kNoTrace) {
        throw RuntimeUsageError("trace id 0 is reserved");
    }
    if (mode_ != Mode::kIdle) {
        throw RuntimeUsageError("traces cannot nest");
    }
    open_trace_ = id;
    trace_start_ = log_.size();
    if (cache_.Contains(id)) {
        mode_ = Mode::kReplaying;
        replay_position_ = 0;
    } else {
        mode_ = Mode::kRecording;
        recording_ = TraceTemplate{};
        recording_.id = id;
    }
}

void
Runtime::EndTrace(TraceId id)
{
    if (mode_ == Mode::kIdle) {
        if (abandoned_trace_ == id && id != kNoTrace) {
            abandoned_trace_ = kNoTrace;  // fallback path: tolerated
            return;
        }
        throw RuntimeUsageError("EndTrace without an open trace");
    }
    if (open_trace_ != id) {
        throw RuntimeUsageError("EndTrace id does not match open trace");
    }
    if (mode_ == Mode::kRecording) {
        stats_.traces_recorded += 1;
        cache_.Insert(std::move(recording_));
        recording_ = TraceTemplate{};
        // Bound the template cache: evict the least recently used
        // template (it will be re-recorded if it comes back).
        if (options_.max_trace_templates != 0 &&
            cache_.Size() > options_.max_trace_templates) {
            if (cache_.EvictLeastRecentlyUsed() != kNoTrace) {
                stats_.traces_evicted += 1;
            }
        }
    } else {
        TraceTemplate* t = cache_.FindMutable(open_trace_);
        if (replay_position_ != t->Length()) {
            HandleMismatchAtEnd();
            return;
        }
        t->replay_count += 1;
        cache_.Touch(open_trace_);
        stats_.trace_replays += 1;
    }
    mode_ = Mode::kIdle;
    open_trace_ = kNoTrace;
    log_.SetRetireBound(RetireBound());
}

void
Runtime::HandleMismatchAtEnd()
{
    stats_.trace_mismatches += 1;
    const TraceId failed = open_trace_;
    if (options_.mismatch_policy == MismatchPolicy::kThrow) {
        mode_ = Mode::kIdle;
        open_trace_ = kNoTrace;
        throw TraceMismatchError(
            "trace replay ended before the recorded sequence completed "
            "(trace " +
            std::to_string(failed) + ")");
    }
    // Fallback: the short replay is abandoned; rewind its prefix to
    // analyzed accounting.
    RewindReplayedFragment();
    mode_ = Mode::kIdle;
    open_trace_ = kNoTrace;
    log_.SetRetireBound(RetireBound());
}

void
Runtime::SaveState(fault::CheckpointWriter& writer) const
{
    if (mode_ != Mode::kIdle) {
        throw fault::CheckpointError(
            "Runtime::SaveState requires a quiescent runtime "
            "(no open trace)");
    }
    writer.BeginSection(fault::SectionTag::kRuntime);
    writer.U64(abandoned_trace_);
    writer.U64(trace_start_);
    writer.U64(stats_.tasks_analyzed);
    writer.U64(stats_.tasks_recorded);
    writer.U64(stats_.tasks_replayed);
    writer.U64(stats_.traces_recorded);
    writer.U64(stats_.trace_replays);
    writer.U64(stats_.trace_mismatches);
    writer.U64(stats_.traces_evicted);
    writer.U64(stats_.tasks_rewound);
    writer.F64(stats_.total_analysis_us);
    writer.EndSection();
    allocator_.SaveState(writer);
    forest_.SaveState(writer);
    analyzer_.SaveState(writer);
    cache_.SaveState(writer);
    log_.SaveState(writer);
}

void
Runtime::LoadState(fault::CheckpointReader& reader)
{
    if (!log_.empty() || mode_ != Mode::kIdle) {
        throw fault::CheckpointError(
            "Runtime::LoadState requires a fresh runtime");
    }
    reader.BeginSection(fault::SectionTag::kRuntime);
    abandoned_trace_ = reader.U64();
    trace_start_ = reader.U64();
    stats_.tasks_analyzed = reader.U64();
    stats_.tasks_recorded = reader.U64();
    stats_.tasks_replayed = reader.U64();
    stats_.traces_recorded = reader.U64();
    stats_.trace_replays = reader.U64();
    stats_.trace_mismatches = reader.U64();
    stats_.traces_evicted = reader.U64();
    stats_.tasks_rewound = reader.U64();
    stats_.total_analysis_us = reader.F64();
    reader.EndSection();
    allocator_.LoadState(reader);
    forest_.LoadState(reader);
    analyzer_.LoadState(reader);
    cache_.LoadState(reader);
    log_.LoadState(reader);
    mode_ = Mode::kIdle;
    open_trace_ = kNoTrace;
    replay_position_ = 0;
}

}  // namespace apo::rt
