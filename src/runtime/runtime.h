/**
 * @file
 * The mini task runtime facade ("mini-Legion").
 *
 * Applications (or Apophenia, sitting in front) issue work through
 * three calls: ExecuteTask, BeginTrace, EndTrace. The runtime performs
 * dynamic dependence analysis on every launch — unless the launch is
 * inside a known trace, in which case the memoized analysis is
 * validated and replayed. Every operation is appended to the columnar
 * OperationLog (runtime/oplog.h) carrying its dependence edges,
 * analysis mode and charged cost; the discrete-event simulator
 * (src/sim) executes that log on a cluster model — wholesale after
 * the run in retained mode, or incrementally through the log's
 * streaming-retire consumer for streams larger than memory — and the
 * tests check its invariants directly.
 */
#ifndef APOPHENIA_RUNTIME_RUNTIME_H
#define APOPHENIA_RUNTIME_RUNTIME_H

#include <cstddef>
#include <optional>
#include <vector>

#include "runtime/cost_model.h"
#include "runtime/dependence.h"
#include "runtime/errors.h"
#include "runtime/oplog.h"
#include "runtime/region.h"
#include "runtime/region_tree.h"
#include "runtime/task.h"
#include "runtime/trace.h"

namespace apo::rt {

/** What to do when a trace replay sees an unexpected task. */
enum class MismatchPolicy : std::uint8_t {
    kThrow,     ///< raise TraceMismatchError (Legion's strict mode)
    kFallback,  ///< abandon the replay; analyze the rest normally
};

/** Aggregate counters over a runtime's lifetime. */
struct RuntimeStats {
    std::size_t tasks_analyzed = 0;
    std::size_t tasks_recorded = 0;
    std::size_t tasks_replayed = 0;
    std::size_t traces_recorded = 0;
    std::size_t trace_replays = 0;
    std::size_t trace_mismatches = 0;
    std::size_t traces_evicted = 0;
    /** Replayed operations rewound to analyzed accounting when a
     * fallback-policy mismatch abandoned their fragment mid-replay. */
    std::size_t tasks_rewound = 0;
    double total_analysis_us = 0.0;

    std::size_t TotalTasks() const
    {
        return tasks_analyzed + tasks_recorded + tasks_replayed;
    }
    /** Fraction of tasks whose analysis was replayed from a trace. */
    double ReplayedFraction() const
    {
        const std::size_t total = TotalTasks();
        return total == 0
                   ? 0.0
                   : static_cast<double>(tasks_replayed) /
                         static_cast<double>(total);
    }
};

/** Runtime construction options. */
struct RuntimeOptions {
    CostModel costs;
    MismatchPolicy mismatch_policy = MismatchPolicy::kThrow;
    /** Number of nodes of the simulated machine this runtime instance
     * represents; scales the per-task analysis cost. */
    std::size_t nodes = 1;
    /** Maximum trace templates kept memoized (0 = unlimited). When
     * exceeded, the least recently replayed template is evicted; a
     * later BeginTrace of its id re-records. Bounds the memory that
     * long-running applications with many traces consume. */
    std::size_t max_trace_templates = 0;
    /** Operation-log block granularity (see OperationLog::Config). */
    OperationLog::Config log_config;
};

/**
 * The runtime. See file comment. Not thread-safe: Legion's dependence
 * analysis stage is a sequential pipeline stage per node, which is the
 * very property that makes it a bottleneck worth tracing.
 */
class Runtime {
  public:
    explicit Runtime(RuntimeOptions options = {});

    // -- Region management ------------------------------------------------

    /** Allocate a region (fresh or reused id — see RegionAllocator). */
    RegionId CreateRegion()
    {
        const RegionId r = allocator_.Allocate();
        forest_.AddRoot(r);
        return r;
    }

    /** Free a region; its id becomes eligible for reuse. Partitioned
     * regions must be destroyed bottom-up. */
    void DestroyRegion(RegionId r)
    {
        forest_.Remove(r);
        allocator_.Free(r);
    }

    /** Partition a region into `count` disjoint subregions. Tasks on
     * a subregion run independently of its siblings but serialize
     * against conflicting accesses to any ancestor or descendant. */
    std::vector<RegionId> PartitionRegion(RegionId parent,
                                          std::size_t count)
    {
        return forest_.Partition(parent, count, allocator_);
    }

    const RegionTreeForest& Forest() const { return forest_; }

    // -- Task and trace interface (what Apophenia intercepts) -------------

    /**
     * Issue one task launch. The view is the primary entry point: the
     * token was hashed once at the API boundary and the requirements
     * stay in caller-owned storage until the operation log records
     * them into its arena.
     */
    void ExecuteTask(const TaskLaunchView& launch);

    /** Convenience for owned launches; hashes here. */
    void ExecuteTask(const TaskLaunch& launch)
    {
        ExecuteTask(TaskLaunchView::Of(launch));
    }

    /**
     * Begin a trace. An unknown id starts recording; a known id starts
     * a replay of the memoized analysis.
     */
    void BeginTrace(TraceId id);

    /** End the current trace (id must match the open trace). */
    void EndTrace(TraceId id);

    /** True if a template for `id` has been recorded. */
    bool HasTrace(TraceId id) const { return cache_.Contains(id); }

    // -- Streaming-retire control ------------------------------------------

    /**
     * Switch the operation log to streaming-retire mode (must be
     * called before the first launch): `consumer` receives every
     * completed operation exactly once, in log order, and the log
     * recycles its blocks so resident memory stays bounded regardless
     * of stream length. Operations of an open trace fragment are held
     * back until the fragment completes (a fallback-policy mismatch
     * may still rewind them).
     */
    void EnableLogStreaming(OperationLog::Consumer consumer)
    {
        log_.EnableStreaming(std::move(consumer));
    }

    /** Drain every completed operation to the streaming consumer (end
     * of stream; no-op in retained mode). */
    void DrainLogStream() { log_.SetRetireBound(RetireBound()); }

    /** Pre-stock the retained log's block free lists so the next
     * `ops` launches (with the given total requirement/edge counts)
     * append without allocating (see OperationLog::Reserve; streaming
     * mode reaches the same state by recycling). */
    void ReserveLog(std::size_t ops, std::size_t requirement_slots,
                    std::size_t dependence_slots)
    {
        log_.Reserve(ops, requirement_slots, dependence_slots);
    }

    // -- Introspection -----------------------------------------------------

    const OperationLog& Log() const { return log_; }
    const RuntimeStats& Stats() const { return stats_; }
    const TraceCache& Traces() const { return cache_; }
    const CostModel& Costs() const { return options_.costs; }
    std::size_t Nodes() const { return options_.nodes; }

    /** α adjusted for machine size (see CostModel::analysis_scale_factor). */
    double ScaledAnalysisUs() const;

    /** True when no trace is open — the precondition of SaveState.
     * Periodic checkpointers poll this to defer a snapshot that would
     * land mid-trace to the next quiescent point. */
    bool Quiescent() const { return mode_ == Mode::kIdle; }

    /** Memory-pressure hook: evict least-recently-used trace
     * templates until the cache's resident bytes are at most
     * `target_bytes`. Only acts at a quiescent point (an open
     * fragment may reference the template being replayed) — mid-trace
     * calls return 0 and the caller retries at the next opportunity.
     * Evicted ids simply re-record at their next BeginTrace; counted
     * in RuntimeStats::traces_evicted. Returns templates evicted. */
    std::size_t PressureEvictTraces(std::size_t target_bytes)
    {
        if (!Quiescent()) {
            return 0;
        }
        std::size_t evicted = 0;
        while (cache_.ResidentBytes() > target_bytes &&
               cache_.EvictLeastRecentlyUsed() != kNoTrace) {
            ++evicted;
        }
        stats_.traces_evicted += evicted;
        return evicted;
    }

    // -- Checkpoint/restore ------------------------------------------------

    /**
     * Serialize the runtime's complete analysis state: allocator,
     * region forest, dependence coherence, trace cache, stats, trace
     * bookkeeping, and the operation-log append cursor. Only legal at
     * a quiescent point (no open trace); a restored runtime continues
     * the stream with bit-identical edges, modes and costs.
     * @throws fault::CheckpointError mid-trace.
     */
    void SaveState(fault::CheckpointWriter& writer) const;

    /** Restore onto a freshly constructed runtime with identical
     * RuntimeOptions (and, for streaming logs, the consumer already
     * attached via EnableLogStreaming).
     * @throws fault::CheckpointError on a used runtime or a malformed
     *   image. */
    void LoadState(fault::CheckpointReader& reader);

  private:
    enum class Mode { kIdle, kRecording, kReplaying };

    void ExecuteUntraced(const TaskLaunchView& launch);
    void ExecuteRecording(const TaskLaunchView& launch);
    void ExecuteReplaying(const TaskLaunchView& launch);
    void HandleMismatch(const std::string& reason,
                        const TaskLaunchView& launch);
    void HandleMismatchAtEnd();
    void RewindReplayedFragment();
    std::size_t RetireBound() const
    {
        return mode_ == Mode::kIdle ? log_.size() : trace_start_;
    }

    RuntimeOptions options_;
    RegionAllocator allocator_;
    RegionTreeForest forest_;
    DependenceAnalyzer analyzer_;
    TraceCache cache_;
    OperationLog log_;
    RuntimeStats stats_;

    /** Per-launch edge scratch: AnalyzeInto fills it, the log append
     * copies it into the edge arena. Capacity persists, so the
     * steady-state issue path allocates nothing. */
    std::vector<Dependence> dep_scratch_;

    Mode mode_ = Mode::kIdle;
    TraceId open_trace_ = kNoTrace;
    TraceId abandoned_trace_ = kNoTrace;  ///< fallback-mode bookkeeping
    std::size_t trace_start_ = 0;      ///< log index of the fragment start
    TraceTemplate recording_;          ///< template under construction
    std::size_t replay_position_ = 0;  ///< next template offset to match
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_RUNTIME_H
