/**
 * @file
 * The runtime cost model (paper section 3).
 *
 * The paper models the dependence analysis as costing α per task, α_m
 * per task while a trace is being memoized (α_m slightly larger than
 * α), α_r per task when replaying (α_r ≪ α), and a constant c per
 * trace replay. The concrete defaults below are the constants the
 * paper reports for Legion: ~1 ms per-task analysis untraced, ~100 µs
 * replayed (section 1), 7 µs per task launch, +5 µs with Apophenia
 * (section 6.3).
 *
 * All simulated results in bench/ derive from this one struct, so
 * sensitivity studies are a matter of sweeping its fields.
 */
#ifndef APOPHENIA_RUNTIME_COST_MODEL_H
#define APOPHENIA_RUNTIME_COST_MODEL_H

namespace apo::rt {

/** Cost constants, all in microseconds. */
struct CostModel {
    /** α: dependence analysis per task, single node. */
    double analysis_us = 1000.0;
    /** α_m: analysis per task while recording a trace. */
    double memoize_us = 1250.0;
    /** α_r: replaying the analysis of one traced task. */
    double replay_us = 100.0;
    /** c: constant cost of issuing one trace replay. */
    double replay_constant_us = 150.0;
    /** Application-phase cost of launching one task. */
    double launch_us = 7.0;
    /** Extra launch cost imposed by Apophenia's front-end analysis
     * (hashing, trie traversal, buffer bookkeeping). */
    double apophenia_launch_us = 5.0;
    /** Growth of the per-task analysis cost with machine size: the
     * analysis costs analysis_us * (1 + scale_factor * log2(nodes)).
     * Models Legion's distributed coherence traffic. */
    double analysis_scale_factor = 0.12;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_COST_MODEL_H
