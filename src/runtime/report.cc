#include "runtime/report.h"

#include <cstdio>

namespace apo::rt {

namespace {

std::string
Line(const char* label, std::size_t value)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%-22s %12zu\n", label, value);
    return buf;
}

}  // namespace

std::string
FormatStats(const RuntimeStats& stats)
{
    std::string out;
    out += Line("tasks total", stats.TotalTasks());
    out += Line("  analyzed (alpha)", stats.tasks_analyzed);
    out += Line("  recorded (alpha_m)", stats.tasks_recorded);
    out += Line("  replayed (alpha_r)", stats.tasks_replayed);
    out += Line("traces recorded", stats.traces_recorded);
    out += Line("trace replays", stats.trace_replays);
    out += Line("trace mismatches", stats.trace_mismatches);
    out += Line("traces evicted", stats.traces_evicted);
    char tail[96];
    std::snprintf(tail, sizeof tail, "%-22s %11.1f%%\n",
                  "replayed fraction", 100.0 * stats.ReplayedFraction());
    out += tail;
    std::snprintf(tail, sizeof tail, "%-22s %12.1f ms\n",
                  "analysis time", stats.total_analysis_us / 1000.0);
    out += tail;
    return out;
}

std::string
FormatTraceCache(const TraceCache& cache)
{
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "%zu trace template(s) memoizing %zu task(s)\n",
                  cache.Size(), cache.TotalTemplateTasks());
    return buf;
}

std::string
FormatOperationLog(const OperationLog& log)
{
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%zu op(s) logged, %zu retired; %.1f KiB resident "
                  "(peak %.1f KiB)\n",
                  log.size(), log.RetiredCount(),
                  static_cast<double>(log.ResidentBytes()) / 1024.0,
                  static_cast<double>(log.PeakResidentBytes()) / 1024.0);
    return buf;
}

}  // namespace apo::rt
