#include "runtime/dependence.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace apo::rt {

namespace {

/** Collects edges for one launch with on-the-fly deduplication by
 * (source, kind); a later-added true dependence on the same source
 * upgrades an anti/output edge (the stronger ordering subsumes). The
 * edges land in a caller-owned (reused) vector, appended after
 * whatever it already holds. */
class EdgeCollector {
  public:
    EdgeCollector(std::size_t to, std::optional<std::size_t> external_after,
                  std::vector<Dependence>& out)
        : to_(to), external_after_(external_after), out_(out),
          base_(out.size())
    {
    }

    void Add(std::size_t from, DependenceKind kind)
    {
        assert(from <= to_);
        if (from == to_) {
            // Multiple requirements of one launch on the same field:
            // an operation never depends on itself.
            return;
        }
        if (external_after_ && from >= *external_after_) {
            return;  // internal to a replayed trace: memoized already
        }
        for (std::size_t k = base_; k < out_.size(); ++k) {
            if (out_[k].from == from) {
                if (kind == DependenceKind::kTrue) {
                    out_[k].kind = kind;
                }
                return;
            }
        }
        out_.push_back(Dependence{from, to_, kind});
    }

    void Finish()
    {
        std::sort(out_.begin() + static_cast<std::ptrdiff_t>(base_),
                  out_.end());
    }

  private:
    std::size_t to_;
    std::optional<std::size_t> external_after_;
    std::vector<Dependence>& out_;
    std::size_t base_;
};

}  // namespace

FieldState&
DependenceAnalyzer::MutableState(RegionId region, FieldId field)
{
    const auto key = std::make_pair(region.value, field);
    auto it = states_.find(key);
    if (it == states_.end()) {
        it = states_.emplace(key, FieldState{}).first;
        if (forest_ != nullptr) {
            by_root_[{forest_->RootOf(region).value, field}].push_back(
                region);
        }
    }
    return it->second;
}

const FieldState*
DependenceAnalyzer::StateOf(RegionId region, FieldId field) const
{
    const auto it = states_.find({region.value, field});
    return it == states_.end() ? nullptr : &it->second;
}

namespace {

/**
 * Coalesce duplicate (region, field) requirements of one launch into
 * `merged` (cleared first; a reused scratch vector). A task holds one
 * effective privilege per field: identical privileges merge
 * trivially; any mixed combination (read+write, reduce+read,
 * reductions with different operators) escalates to read-write, which
 * serializes against everything — mirroring Legion's privilege
 * coalescing rules.
 */
void
CoalesceRequirements(std::span<const RegionRequirement> reqs,
                     std::vector<RegionRequirement>& merged)
{
    merged.clear();
    for (const RegionRequirement& req : reqs) {
        bool combined = false;
        for (RegionRequirement& m : merged) {
            if (m.region != req.region || m.field != req.field) {
                continue;
            }
            if (m.privilege != req.privilege || m.redop != req.redop) {
                m.privilege = Privilege::kReadWrite;
                m.redop = 0;
            }
            combined = true;
            break;
        }
        if (!combined) {
            merged.push_back(req);
        }
    }
}

}  // namespace

void
DependenceAnalyzer::AnalyzeInto(std::size_t index,
                                const TaskLaunchView& launch,
                                std::vector<Dependence>& out,
                                std::optional<std::size_t> external_only_after)
{
    EdgeCollector edges(index, external_only_after, out);
    CoalesceRequirements(launch.Requirements(), coalesce_scratch_);
    const std::vector<RegionRequirement>& coalesced = coalesce_scratch_;

    // Emit the ordering edges this requirement needs against one
    // coherence state (its own region's, or an aliasing region's).
    auto emit = [&edges](const FieldState& st,
                         const RegionRequirement& req) {
        switch (req.privilege) {
          case Privilege::kReadOnly:
            if (st.last_writer) {
                edges.Add(*st.last_writer, DependenceKind::kTrue);
            }
            for (std::size_t r : st.reducers) {
                edges.Add(r, DependenceKind::kTrue);
            }
            break;
          case Privilege::kReadWrite:
          case Privilege::kWriteDiscard:
            if (st.last_writer) {
                edges.Add(*st.last_writer,
                          req.privilege == Privilege::kReadWrite
                              ? DependenceKind::kTrue
                              : DependenceKind::kOutput);
            }
            for (std::size_t r : st.readers) {
                edges.Add(r, DependenceKind::kAnti);
            }
            for (std::size_t r : st.reducers) {
                edges.Add(r, DependenceKind::kOutput);
            }
            break;
          case Privilege::kReduce:
            if (st.last_writer) {
                edges.Add(*st.last_writer, DependenceKind::kTrue);
            }
            for (std::size_t r : st.readers) {
                edges.Add(r, DependenceKind::kAnti);
            }
            if (!st.reducers.empty() && st.redop != req.redop) {
                // Reductions with a different operator do not commute.
                for (std::size_t r : st.reducers) {
                    edges.Add(r, DependenceKind::kOutput);
                }
            }
            for (std::size_t r : st.prev_reducers) {
                edges.Add(r, DependenceKind::kOutput);
            }
            break;
        }
    };

    for (const RegionRequirement& req : coalesced) {
        // Edges against every aliasing region's state: the region
        // itself plus, in a forest, its ancestors and descendants
        // (Legion's parent/child interference).
        if (forest_ != nullptr) {
            const auto group_key = std::make_pair(
                forest_->RootOf(req.region).value, req.field);
            const auto git = by_root_.find(group_key);
            if (git != by_root_.end()) {
                for (RegionId other : git->second) {
                    if (other == req.region ||
                        !forest_->Aliases(other, req.region)) {
                        continue;
                    }
                    emit(states_.at({other.value, req.field}), req);
                }
            }
        }
        FieldState& st = MutableState(req.region, req.field);
        emit(st, req);

        // State transition on the requirement's own region only;
        // aliasing states keep their (now conservatively stale)
        // entries, which later operations still order against.
        switch (req.privilege) {
          case Privilege::kReadOnly:
            st.readers.push_back(index);
            break;
          case Privilege::kReadWrite:
          case Privilege::kWriteDiscard:
            st.last_writer = index;
            st.readers.clear();
            st.reducers.clear();
            st.prev_reducers.clear();
            break;
          case Privilege::kReduce:
            if (!st.reducers.empty() && st.redop != req.redop) {
                // A different operator closes the open epoch; the
                // closed epoch becomes the barrier every member of
                // the new epoch serializes against. Swap (not move)
                // so both vectors keep their capacity.
                std::swap(st.prev_reducers, st.reducers);
                st.reducers.clear();
            }
            st.redop = req.redop;
            st.reducers.push_back(index);
            break;
        }
    }
    edges.Finish();
}

// ---------------------------------------------------------------------------
// WindowedTransitiveReducer

WindowedTransitiveReducer::WindowedTransitiveReducer(std::size_t window)
    : window_(window)
{
    if (window == 0) {
        throw std::invalid_argument(
            "WindowedTransitiveReducer: an unbounded (window == 0) "
            "reduction needs the whole log; use the retained "
            "TransitiveReduction");
    }
    ring_.resize(window_ + 1);
    mark_.assign(window_ + 1, 0);
}

std::size_t
WindowedTransitiveReducer::Reduce(std::size_t index,
                                  std::vector<Dependence>& edges)
{
    if (index != next_index_) {
        throw std::invalid_argument(
            "WindowedTransitiveReducer: operations must be fed "
            "consecutively from 0");
    }
    ++next_index_;

    // Mirror of rt::TransitiveReduction's per-operation step (graph.cc)
    // with the log reads redirected into the ring. A below-window
    // direct predecessor is kept as-is and never explored: every edge
    // out of it lands even further below the window, exactly as the
    // retained reduction's bound would skip them.
    std::size_t removed_here = 0;
    if (edges.size() >= 2) {
        std::sort(edges.begin(), edges.end());
        const std::size_t low_bound = index > window_ ? index - window_ : 0;
        ++version_;
        below_window_marks_.clear();
        kept_.clear();
        const std::size_t before = edges.size();
        for (std::size_t k = edges.size(); k-- > 0;) {
            const Dependence d = edges[k];
            const bool implied =
                d.from >= low_bound
                    ? mark_[d.from % ring_.size()] == version_
                    : std::find(below_window_marks_.begin(),
                                below_window_marks_.end(),
                                d.from) != below_window_marks_.end();
            if (implied) {
                continue;
            }
            kept_.push_back(d);
            if (d.from < low_bound) {
                below_window_marks_.push_back(d.from);
                continue;
            }
            frontier_.clear();
            frontier_.push_back(d.from);
            mark_[d.from % ring_.size()] = version_;
            while (!frontier_.empty()) {
                const std::size_t node = frontier_.back();
                frontier_.pop_back();
                for (const Dependence& e : SlotOf(node)) {
                    if (e.from < low_bound ||
                        mark_[e.from % ring_.size()] == version_) {
                        continue;
                    }
                    mark_[e.from % ring_.size()] = version_;
                    frontier_.push_back(e.from);
                }
            }
        }
        std::sort(kept_.begin(), kept_.end());
        edges.assign(kept_.begin(), kept_.end());
        removed_here = before - edges.size();
        removed_ += removed_here;
    }

    // Remember the reduced list for later operations' path searches
    // (the slot it displaces has fallen out of the window).
    std::vector<Dependence>& slot = SlotOf(index);
    slot.assign(edges.begin(), edges.end());
    return removed_here;
}

namespace {

void
SaveIndexVector(fault::CheckpointWriter& writer,
                const std::vector<std::size_t>& values)
{
    writer.U64(values.size());
    for (const std::size_t v : values) {
        writer.U64(v);
    }
}

void
LoadIndexVector(fault::CheckpointReader& reader,
                std::vector<std::size_t>& values)
{
    const std::uint64_t count = reader.U64();
    values.clear();
    values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        values.push_back(reader.U64());
    }
}

}  // namespace

void
DependenceAnalyzer::SaveState(fault::CheckpointWriter& writer) const
{
    writer.BeginSection(fault::SectionTag::kDependenceAnalyzer);
    writer.U64(states_.size());
    for (const auto& [key, state] : states_) {
        writer.U64(key.first);
        writer.U64(key.second);
        writer.Bool(state.last_writer.has_value());
        writer.U64(state.last_writer.value_or(0));
        SaveIndexVector(writer, state.readers);
        SaveIndexVector(writer, state.reducers);
        writer.U64(state.redop);
        SaveIndexVector(writer, state.prev_reducers);
    }
    writer.U64(by_root_.size());
    for (const auto& [key, regions] : by_root_) {
        writer.U64(key.first);
        writer.U64(key.second);
        writer.U64(regions.size());
        for (const RegionId r : regions) {
            writer.U64(r.value);
        }
    }
    writer.EndSection();
}

void
DependenceAnalyzer::LoadState(fault::CheckpointReader& reader)
{
    reader.BeginSection(fault::SectionTag::kDependenceAnalyzer);
    states_.clear();
    const std::uint64_t state_count = reader.U64();
    for (std::uint64_t i = 0; i < state_count; ++i) {
        const std::uint64_t region = reader.U64();
        const FieldId field = static_cast<FieldId>(reader.U64());
        FieldState& state = states_[{region, field}];
        const bool has_writer = reader.Bool();
        const std::uint64_t writer_index = reader.U64();
        state.last_writer =
            has_writer ? std::optional<std::size_t>(writer_index)
                       : std::nullopt;
        LoadIndexVector(reader, state.readers);
        LoadIndexVector(reader, state.reducers);
        state.redop = static_cast<ReductionOpId>(reader.U64());
        LoadIndexVector(reader, state.prev_reducers);
    }
    by_root_.clear();
    const std::uint64_t root_count = reader.U64();
    for (std::uint64_t i = 0; i < root_count; ++i) {
        const std::uint64_t root = reader.U64();
        const FieldId field = static_cast<FieldId>(reader.U64());
        std::vector<RegionId>& regions = by_root_[{root, field}];
        const std::uint64_t region_count = reader.U64();
        regions.reserve(region_count);
        for (std::uint64_t j = 0; j < region_count; ++j) {
            regions.push_back(RegionId{reader.U64()});
        }
    }
    reader.EndSection();
}

}  // namespace apo::rt
