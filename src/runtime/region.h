/**
 * @file
 * Logical regions, fields, and privileges — the data model of the mini
 * task runtime ("mini-Legion").
 *
 * A region is a named multi-dimensional array tracked by the runtime;
 * tasks declare which (region, field) pairs they touch and with what
 * privilege, and the runtime's dynamic dependence analysis derives the
 * execution order from those declarations (paper section 2).
 */
#ifndef APOPHENIA_RUNTIME_REGION_H
#define APOPHENIA_RUNTIME_REGION_H

#include <cstdint>
#include <vector>

#include "fault/checkpoint.h"

namespace apo::rt {

/** Opaque handle to a logical region. */
struct RegionId {
    std::uint64_t value = 0;

    friend bool operator==(const RegionId&, const RegionId&) = default;
    friend auto operator<=>(const RegionId&, const RegionId&) = default;
};

/** A field within a region (cuPyNumeric arrays are single-field;
 * simulation codes like TorchSWE keep many fields per region). */
using FieldId = std::uint32_t;

/** Identifier of a reduction operator (sum, max, ...). */
using ReductionOpId = std::uint32_t;

/** Access privilege a task requests on a (region, field) pair. */
enum class Privilege : std::uint8_t {
    kReadOnly,      ///< reads the current value
    kReadWrite,     ///< reads and writes
    kWriteDiscard,  ///< overwrites without reading
    kReduce,        ///< applies a commutative reduction
};

/** True if the privilege mutates the field's contents. */
constexpr bool IsMutating(Privilege p)
{
    return p != Privilege::kReadOnly;
}

/** True if the privilege is a plain write (closes reduction epochs and
 * clears the reader set). */
constexpr bool IsWrite(Privilege p)
{
    return p == Privilege::kReadWrite || p == Privilege::kWriteDiscard;
}

/**
 * One region argument of a task launch: which region/field is touched
 * and how. The dependence analysis (and therefore trace validity) is a
 * function of exactly these values plus the task id (paper section 2:
 * "the same region arguments must be used across trace invocations").
 */
struct RegionRequirement {
    RegionId region;
    FieldId field = 0;
    Privilege privilege = Privilege::kReadOnly;
    ReductionOpId redop = 0;  ///< meaningful only for kReduce

    friend bool operator==(const RegionRequirement&,
                           const RegionRequirement&) = default;
};

/**
 * Region allocator with LIFO id reuse.
 *
 * cuPyNumeric-style libraries allocate a fresh region for every
 * operation result and free dead ones immediately; freed regions are
 * reused right away. This reuse is what eventually makes the issued
 * task stream periodic (with a period that need not match the source
 * program's loop structure — the paper's section 2 pathology), so the
 * allocator's policy is behaviour we must model, not an implementation
 * detail.
 */
class RegionAllocator {
  public:
    /** Allocate a region id, preferring the most recently freed one. */
    RegionId Allocate()
    {
        if (!free_list_.empty()) {
            const RegionId r = free_list_.back();
            free_list_.pop_back();
            return r;
        }
        return RegionId{next_++};
    }

    /** Return a region id to the allocator for reuse. */
    void Free(RegionId r) { free_list_.push_back(r); }

    /** Number of ids ever created (high-water mark). */
    std::uint64_t HighWater() const { return next_; }

    /** Checkpoint hook: id reuse order drives stream periodicity, so
     * both the counter and the exact LIFO free list are saved. */
    void SaveState(fault::CheckpointWriter& writer) const
    {
        writer.BeginSection(fault::SectionTag::kRegionAllocator);
        writer.U64(next_);
        writer.U64(free_list_.size());
        for (const RegionId r : free_list_) {
            writer.U64(r.value);
        }
        writer.EndSection();
    }

    void LoadState(fault::CheckpointReader& reader)
    {
        reader.BeginSection(fault::SectionTag::kRegionAllocator);
        next_ = reader.U64();
        const std::uint64_t count = reader.U64();
        free_list_.clear();
        free_list_.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            free_list_.push_back(RegionId{reader.U64()});
        }
        reader.EndSection();
    }

  private:
    std::uint64_t next_ = 1;  // id 0 reserved as "no region"
    std::vector<RegionId> free_list_;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_REGION_H
