/**
 * @file
 * Task launches and their hash tokens.
 *
 * Tasks are designated functions registered with the runtime; a launch
 * names the task and lists its region requirements. Apophenia converts
 * each launch into a 64-bit token capturing every aspect that affects
 * the dependence analysis (paper section 4.1), turning the task stream
 * into a string for the repeat-mining algorithms.
 */
#ifndef APOPHENIA_RUNTIME_TASK_H
#define APOPHENIA_RUNTIME_TASK_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/region.h"
#include "support/hash.h"

namespace apo::rt {

/** Identifier of a registered task function. */
using TaskId = std::uint64_t;

/** Make a task id from a human-readable name. */
inline TaskId TaskIdOf(std::string_view name)
{
    return support::Fnv1a(name);
}

/**
 * A single task launch: the unit of work issued to the runtime.
 *
 * `execution_us` and `shard` do not affect the dependence analysis
 * (and therefore are excluded from the token hash): they parameterize
 * the discrete-event execution model only — which processor runs the
 * task and for how long.
 */
struct TaskLaunch {
    TaskId task = 0;
    std::vector<RegionRequirement> requirements;

    /** Simulated kernel duration in microseconds. */
    double execution_us = 100.0;
    /** Which processor (GPU) executes this task. */
    std::uint32_t shard = 0;
    /** The application blocks on this task's result (a future read,
     * e.g. a training loop inspecting the loss): launches after it
     * stall until it finishes. Does not affect the dependence
     * analysis, so it is excluded from the token hash. */
    bool blocking = false;
    /** False for operations a practical tracing implementation cannot
     * memoize (external hand-offs, I/O, attach/detach). Issuing one
     * inside a trace is a runtime error — the paper's section 1
     * reason composed programs defeat manual annotations. Apophenia
     * assigns such operations unique tokens so they can never become
     * part of a candidate trace. */
    bool traceable = true;

    friend bool operator==(const TaskLaunch& a, const TaskLaunch& b)
    {
        return a.task == b.task && a.requirements == b.requirements;
    }
};

// Reserved task ids for non-task operations that still flow through
// the dependence analysis (and are traceable like tasks, paper
// section 4.1 "straightforward handling of traceable operations that
// are not tasks").
inline const TaskId kFillTaskId = TaskIdOf("__fill__");
inline const TaskId kCopyTaskId = TaskIdOf("__copy__");

/** A fill: overwrite one (region, field) with a constant. */
inline TaskLaunch FillLaunch(RegionId region, FieldId field,
                             std::uint32_t shard = 0,
                             double execution_us = 10.0)
{
    TaskLaunch launch;
    launch.task = kFillTaskId;
    launch.requirements = {
        {region, field, Privilege::kWriteDiscard, 0}};
    launch.shard = shard;
    launch.execution_us = execution_us;
    return launch;
}

/** An explicit region-to-region copy. */
inline TaskLaunch CopyLaunch(RegionId src, FieldId src_field,
                             RegionId dst, FieldId dst_field,
                             std::uint32_t shard = 0,
                             double execution_us = 20.0)
{
    TaskLaunch launch;
    launch.task = kCopyTaskId;
    launch.requirements = {{src, src_field, Privilege::kReadOnly, 0},
                           {dst, dst_field, Privilege::kWriteDiscard, 0}};
    launch.shard = shard;
    launch.execution_us = execution_us;
    return launch;
}

/** The 64-bit token type trace identification operates on. */
using TokenHash = std::uint64_t;

/**
 * Fold a tenant token namespace into a boundary-computed launch token.
 *
 * The multi-tenant service gives every tenant a distinct namespace
 * salt so no two tenants' streams ever share a token value — one
 * tenant's candidates can never match (or pollute decisions about)
 * another tenant's stream, even inside shared structures. The fold is
 * an XOR so that it is (a) free, (b) the identity for namespace 0
 * (classic single-tenant tokens are untouched, bit-for-bit), and
 * (c) invertible: the shared content-addressed mining cache recovers
 * the namespace-relative window (token ^ salt) to deduplicate
 * identical kernels *across* namespaces without ever mixing them up.
 */
inline TokenHash FoldNamespace(TokenHash name_space, TokenHash token)
{
    return token ^ name_space;
}

/** Seed of a launch token: the task id folded into the hash chain.
 * The launch token is built incrementally — seed, then one
 * HashRequirement step per region requirement in order — so the API
 * boundary (api::LaunchBuilder) can compute it while the launch is
 * being assembled instead of re-walking the requirements. */
inline TokenHash HashTaskId(TaskId task)
{
    return support::HashCombine(0x5eed, task);
}

/** Fold one region requirement into a launch token. */
inline TokenHash HashRequirement(TokenHash h, const RegionRequirement& req)
{
    using support::HashCombine;
    h = HashCombine(h, req.region.value);
    h = HashCombine(h, req.field);
    h = HashCombine(h, static_cast<std::uint64_t>(req.privilege));
    return HashCombine(h, req.redop);
}

/**
 * Hash a launch into its trace-identification token. Two launches get
 * equal tokens iff the dependence analysis treats them identically:
 * same task id and same ordered region requirements (region, field,
 * privilege, reduction op).
 */
inline TokenHash HashLaunch(const TaskLaunch& launch)
{
    TokenHash h = HashTaskId(launch.task);
    for (const RegionRequirement& req : launch.requirements) {
        h = HashRequirement(h, req);
    }
    return h;
}

/**
 * A non-owning view of a task launch: the unit the issue path passes
 * around. The requirements live in caller-owned storage (typically an
 * api::LaunchBuilder arena, or a materialized TaskLaunch), and the
 * token hash is computed once — at the API boundary — and carried
 * with the view, so neither the front-end nor the runtime re-hashes
 * or copies the requirement vector per launch. A view is valid only
 * as long as the storage behind it; consumers that buffer a launch
 * must Materialize() it.
 */
struct TaskLaunchView {
    TaskId task = 0;
    const RegionRequirement* requirements = nullptr;
    std::size_t requirement_count = 0;
    /** Simulated kernel duration in microseconds. */
    double execution_us = 100.0;
    /** Which processor (GPU) executes this launch. */
    std::uint32_t shard = 0;
    /** See TaskLaunch::blocking. */
    bool blocking = false;
    /** See TaskLaunch::traceable. */
    bool traceable = true;
    /** HashLaunch of the viewed launch, precomputed at the boundary. */
    TokenHash token = 0;

    std::span<const RegionRequirement> Requirements() const
    {
        return {requirements, requirement_count};
    }

    /** Copy the viewed launch into owned storage, reusing `out`'s
     * requirement capacity (the buffering pools rely on this). */
    void MaterializeInto(TaskLaunch& out) const
    {
        out.task = task;
        out.requirements.assign(requirements,
                                requirements + requirement_count);
        out.execution_us = execution_us;
        out.shard = shard;
        out.blocking = blocking;
        out.traceable = traceable;
    }

    /** Copy the viewed launch into a fresh TaskLaunch. */
    TaskLaunch Materialize() const
    {
        TaskLaunch out;
        MaterializeInto(out);
        return out;
    }

    /** View an owned launch whose token is already known. */
    static TaskLaunchView Of(const TaskLaunch& launch, TokenHash token)
    {
        TaskLaunchView view;
        view.task = launch.task;
        view.requirements = launch.requirements.data();
        view.requirement_count = launch.requirements.size();
        view.execution_us = launch.execution_us;
        view.shard = launch.shard;
        view.blocking = launch.blocking;
        view.traceable = launch.traceable;
        view.token = token;
        return view;
    }

    /** View an owned launch, hashing it here (the one place the old
     * vector-carrying API pays its hash). */
    static TaskLaunchView Of(const TaskLaunch& launch)
    {
        return Of(launch, HashLaunch(launch));
    }

    /** Dependence-analysis identity, mirroring TaskLaunch::operator==:
     * same task and same ordered requirements. */
    friend bool operator==(const TaskLaunchView& a, const TaskLaunchView& b)
    {
        return a.task == b.task &&
               std::equal(a.requirements,
                          a.requirements + a.requirement_count,
                          b.requirements,
                          b.requirements + b.requirement_count);
    }
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_TASK_H
