/**
 * @file
 * Task launches and their hash tokens.
 *
 * Tasks are designated functions registered with the runtime; a launch
 * names the task and lists its region requirements. Apophenia converts
 * each launch into a 64-bit token capturing every aspect that affects
 * the dependence analysis (paper section 4.1), turning the task stream
 * into a string for the repeat-mining algorithms.
 */
#ifndef APOPHENIA_RUNTIME_TASK_H
#define APOPHENIA_RUNTIME_TASK_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/region.h"
#include "support/hash.h"

namespace apo::rt {

/** Identifier of a registered task function. */
using TaskId = std::uint64_t;

/** Make a task id from a human-readable name. */
inline TaskId TaskIdOf(std::string_view name)
{
    return support::Fnv1a(name);
}

/**
 * A single task launch: the unit of work issued to the runtime.
 *
 * `execution_us` and `shard` do not affect the dependence analysis
 * (and therefore are excluded from the token hash): they parameterize
 * the discrete-event execution model only — which processor runs the
 * task and for how long.
 */
struct TaskLaunch {
    TaskId task = 0;
    std::vector<RegionRequirement> requirements;

    /** Simulated kernel duration in microseconds. */
    double execution_us = 100.0;
    /** Which processor (GPU) executes this task. */
    std::uint32_t shard = 0;
    /** The application blocks on this task's result (a future read,
     * e.g. a training loop inspecting the loss): launches after it
     * stall until it finishes. Does not affect the dependence
     * analysis, so it is excluded from the token hash. */
    bool blocking = false;
    /** False for operations a practical tracing implementation cannot
     * memoize (external hand-offs, I/O, attach/detach). Issuing one
     * inside a trace is a runtime error — the paper's section 1
     * reason composed programs defeat manual annotations. Apophenia
     * assigns such operations unique tokens so they can never become
     * part of a candidate trace. */
    bool traceable = true;

    friend bool operator==(const TaskLaunch& a, const TaskLaunch& b)
    {
        return a.task == b.task && a.requirements == b.requirements;
    }
};

// Reserved task ids for non-task operations that still flow through
// the dependence analysis (and are traceable like tasks, paper
// section 4.1 "straightforward handling of traceable operations that
// are not tasks").
inline const TaskId kFillTaskId = TaskIdOf("__fill__");
inline const TaskId kCopyTaskId = TaskIdOf("__copy__");

/** A fill: overwrite one (region, field) with a constant. */
inline TaskLaunch FillLaunch(RegionId region, FieldId field,
                             std::uint32_t shard = 0,
                             double execution_us = 10.0)
{
    TaskLaunch launch;
    launch.task = kFillTaskId;
    launch.requirements = {
        {region, field, Privilege::kWriteDiscard, 0}};
    launch.shard = shard;
    launch.execution_us = execution_us;
    return launch;
}

/** An explicit region-to-region copy. */
inline TaskLaunch CopyLaunch(RegionId src, FieldId src_field,
                             RegionId dst, FieldId dst_field,
                             std::uint32_t shard = 0,
                             double execution_us = 20.0)
{
    TaskLaunch launch;
    launch.task = kCopyTaskId;
    launch.requirements = {{src, src_field, Privilege::kReadOnly, 0},
                           {dst, dst_field, Privilege::kWriteDiscard, 0}};
    launch.shard = shard;
    launch.execution_us = execution_us;
    return launch;
}

/** The 64-bit token type trace identification operates on. */
using TokenHash = std::uint64_t;

/**
 * Hash a launch into its trace-identification token. Two launches get
 * equal tokens iff the dependence analysis treats them identically:
 * same task id and same ordered region requirements (region, field,
 * privilege, reduction op).
 */
inline TokenHash HashLaunch(const TaskLaunch& launch)
{
    using support::HashCombine;
    TokenHash h = HashCombine(0x5eed, launch.task);
    for (const RegionRequirement& req : launch.requirements) {
        h = HashCombine(h, req.region.value);
        h = HashCombine(h, req.field);
        h = HashCombine(h, static_cast<std::uint64_t>(req.privilege));
        h = HashCombine(h, req.redop);
    }
    return h;
}

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_TASK_H
