/**
 * @file
 * Trace templates and the trace cache — the memoization side of the
 * runtime's tracing engine (Lee et al., "Dynamic tracing", which the
 * paper builds on).
 *
 * A template captures everything needed to replay a recorded program
 * fragment: the validation token sequence and the dependence edges
 * *internal* to the fragment, stored as one shared edge table with a
 * per-operation (offset, count) span (CSR layout) — replaying
 * position p copies exactly EdgesOf(p) instead of scanning the whole
 * edge list, and recording never copies per-op edge vectors. Edges
 * crossing the fragment boundary are regenerated against the current
 * coherence state at replay time, so a replayed fragment composes
 * correctly with whatever preceded it.
 */
#ifndef APOPHENIA_RUNTIME_TRACE_H
#define APOPHENIA_RUNTIME_TRACE_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/dependence.h"
#include "runtime/task.h"

namespace apo::rt {

/** Identifier the application (or Apophenia) assigns to a trace. */
using TraceId = std::uint64_t;

/** Sentinel for "not inside any trace". */
inline constexpr TraceId kNoTrace = 0;

/** A memoized program fragment. */
struct TraceTemplate {
    TraceId id = kNoTrace;
    /** Per-launch validation tokens, in issue order. */
    std::vector<TokenHash> tokens;
    /** Dependence edges between operations of the fragment, expressed
     * as offsets from the fragment start, grouped by target op. */
    std::vector<Dependence> internal_edges;
    /** CSR offsets: op p's internal edges are
     * internal_edges[edge_begin[p] .. edge_begin[p + 1]). */
    std::vector<std::uint32_t> edge_begin = {0};
    /** How many times this template has been replayed. */
    std::size_t replay_count = 0;
    /** Monotonic stamp of the last recording or replay (LRU;
     * maintained by TraceCache). */
    std::uint64_t last_used = 0;

    std::size_t Length() const { return tokens.size(); }

    /** The recorded internal edges into fragment position `pos`. */
    std::span<const Dependence> EdgesOf(std::size_t pos) const
    {
        return {internal_edges.data() + edge_begin[pos],
                internal_edges.data() + edge_begin[pos + 1]};
    }

    /** Record one op: its token, then its internal edges (sources
     * rebased to fragment offsets, ascending). */
    void AddOp(TokenHash token) { tokens.push_back(token); }
    void AddInternalEdge(const Dependence& edge)
    {
        internal_edges.push_back(edge);
    }
    void SealOp()
    {
        edge_begin.push_back(
            static_cast<std::uint32_t>(internal_edges.size()));
    }
};

/**
 * The set of recorded templates, keyed by trace id, with an LRU index
 * so eviction is O(log n) instead of a full-map scan.
 */
class TraceCache {
  public:
    bool Contains(TraceId id) const { return templates_.count(id) != 0; }

    const TraceTemplate* Find(TraceId id) const
    {
        const auto it = templates_.find(id);
        return it == templates_.end() ? nullptr : &it->second;
    }

    TraceTemplate* FindMutable(TraceId id)
    {
        const auto it = templates_.find(id);
        return it == templates_.end() ? nullptr : &it->second;
    }

    /** Insert (or replace) a template; it becomes most recently used. */
    void Insert(TraceTemplate t)
    {
        const TraceId id = t.id;
        auto it = templates_.find(id);
        if (it != templates_.end()) {
            by_last_used_.erase(it->second.last_used);
            it->second = std::move(t);
        } else {
            it = templates_.emplace(id, std::move(t)).first;
        }
        it->second.last_used = ++clock_;
        by_last_used_.emplace(it->second.last_used, id);
    }

    /** Mark a template as just used (recorded against or replayed). */
    void Touch(TraceId id)
    {
        const auto it = templates_.find(id);
        if (it == templates_.end()) {
            return;
        }
        by_last_used_.erase(it->second.last_used);
        it->second.last_used = ++clock_;
        by_last_used_.emplace(it->second.last_used, id);
    }

    /** Evict the least-recently-used template; returns its id, or
     * kNoTrace if the cache is empty. O(log n). */
    TraceId EvictLeastRecentlyUsed()
    {
        if (by_last_used_.empty()) {
            return kNoTrace;
        }
        const auto oldest = by_last_used_.begin();
        const TraceId victim = oldest->second;
        by_last_used_.erase(oldest);
        templates_.erase(victim);
        return victim;
    }

    std::size_t Size() const { return templates_.size(); }

    /** Total tasks across all templates (memory accounting). */
    std::size_t TotalTemplateTasks() const
    {
        std::size_t total = 0;
        for (const auto& [id, t] : templates_) {
            total += t.Length();
        }
        return total;
    }

    /** Resident bytes across all templates (token, edge and CSR
     * offset storage) — the service health monitor's memory-pressure
     * input. On-demand sum; the template count is bounded by
     * RuntimeOptions::max_trace_templates. */
    std::size_t ResidentBytes() const
    {
        std::size_t bytes = 0;
        for (const auto& [id, t] : templates_) {
            bytes += t.tokens.size() * sizeof(TokenHash) +
                     t.internal_edges.size() * sizeof(Dependence) +
                     t.edge_begin.size() * sizeof(std::uint32_t);
        }
        return bytes;
    }

    /** Checkpoint hooks: every template (tokens, CSR edges, replay
     * count) plus the LRU clock and per-template stamps, so eviction
     * order after a restore matches the uninterrupted run exactly. */
    void SaveState(fault::CheckpointWriter& writer) const
    {
        writer.BeginSection(fault::SectionTag::kTraceCache);
        writer.U64(clock_);
        writer.U64(templates_.size());
        for (const auto& [id, t] : templates_) {
            writer.U64(id);
            writer.VecU64(t.tokens);
            writer.U64(t.internal_edges.size());
            for (const Dependence& d : t.internal_edges) {
                writer.U64(d.from);
                writer.U64(d.to);
                writer.U64(static_cast<std::uint64_t>(d.kind));
            }
            writer.U64(t.edge_begin.size());
            for (const std::uint32_t offset : t.edge_begin) {
                writer.U64(offset);
            }
            writer.U64(t.replay_count);
            writer.U64(t.last_used);
        }
        writer.EndSection();
    }

    void LoadState(fault::CheckpointReader& reader)
    {
        reader.BeginSection(fault::SectionTag::kTraceCache);
        templates_.clear();
        by_last_used_.clear();
        clock_ = reader.U64();
        const std::uint64_t count = reader.U64();
        for (std::uint64_t i = 0; i < count; ++i) {
            TraceTemplate t;
            t.id = reader.U64();
            t.tokens = reader.VecU64();
            const std::uint64_t edges = reader.U64();
            t.internal_edges.reserve(edges);
            for (std::uint64_t j = 0; j < edges; ++j) {
                Dependence d;
                d.from = reader.U64();
                d.to = reader.U64();
                d.kind = static_cast<DependenceKind>(reader.U64());
                t.internal_edges.push_back(d);
            }
            const std::uint64_t begins = reader.U64();
            t.edge_begin.clear();
            t.edge_begin.reserve(begins);
            for (std::uint64_t j = 0; j < begins; ++j) {
                t.edge_begin.push_back(
                    static_cast<std::uint32_t>(reader.U64()));
            }
            t.replay_count = reader.U64();
            t.last_used = reader.U64();
            by_last_used_.emplace(t.last_used, t.id);
            templates_.emplace(t.id, std::move(t));
        }
        reader.EndSection();
    }

  private:
    std::map<TraceId, TraceTemplate> templates_;
    /** last_used stamp (unique, monotonic) -> trace id. */
    std::map<std::uint64_t, TraceId> by_last_used_;
    std::uint64_t clock_ = 0;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_TRACE_H
