/**
 * @file
 * Trace templates and the trace cache — the memoization side of the
 * runtime's tracing engine (Lee et al., "Dynamic tracing", which the
 * paper builds on).
 *
 * A template captures everything needed to replay a recorded program
 * fragment: the validation token sequence, the task launches, and the
 * dependence edges *internal* to the fragment. Edges crossing the
 * fragment boundary are regenerated against the current coherence
 * state at replay time, so a replayed fragment composes correctly with
 * whatever preceded it.
 */
#ifndef APOPHENIA_RUNTIME_TRACE_H
#define APOPHENIA_RUNTIME_TRACE_H

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/dependence.h"
#include "runtime/task.h"

namespace apo::rt {

/** Identifier the application (or Apophenia) assigns to a trace. */
using TraceId = std::uint64_t;

/** Sentinel for "not inside any trace". */
inline constexpr TraceId kNoTrace = 0;

/** A memoized program fragment. */
struct TraceTemplate {
    TraceId id = kNoTrace;
    /** Per-launch validation tokens, in issue order. */
    std::vector<TokenHash> tokens;
    /** The recorded launches (replayed verbatim). */
    std::vector<TaskLaunch> launches;
    /** Dependence edges between operations of the fragment, expressed
     * as offsets from the fragment start. */
    std::vector<Dependence> internal_edges;
    /** How many times this template has been replayed. */
    std::size_t replay_count = 0;
    /** Monotonic stamp of the last recording or replay (LRU). */
    std::uint64_t last_used = 0;

    std::size_t Length() const { return launches.size(); }
};

/** The set of recorded templates, keyed by trace id. */
class TraceCache {
  public:
    bool Contains(TraceId id) const { return templates_.count(id) != 0; }

    const TraceTemplate* Find(TraceId id) const
    {
        const auto it = templates_.find(id);
        return it == templates_.end() ? nullptr : &it->second;
    }

    TraceTemplate* FindMutable(TraceId id)
    {
        const auto it = templates_.find(id);
        return it == templates_.end() ? nullptr : &it->second;
    }

    void Insert(TraceTemplate t) { templates_[t.id] = std::move(t); }

    /** Evict the least-recently-used template; returns its id, or
     * kNoTrace if the cache is empty. */
    TraceId EvictLeastRecentlyUsed()
    {
        TraceId victim = kNoTrace;
        std::uint64_t oldest = ~std::uint64_t{0};
        for (const auto& [id, t] : templates_) {
            if (t.last_used < oldest) {
                oldest = t.last_used;
                victim = id;
            }
        }
        if (victim != kNoTrace) {
            templates_.erase(victim);
        }
        return victim;
    }

    std::size_t Size() const { return templates_.size(); }

    /** Total tasks across all templates (memory accounting). */
    std::size_t TotalTemplateTasks() const
    {
        std::size_t total = 0;
        for (const auto& [id, t] : templates_) {
            total += t.Length();
        }
        return total;
    }

  private:
    std::map<TraceId, TraceTemplate> templates_;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_TRACE_H
