#include "runtime/graph.h"

#include <algorithm>
#include <vector>

namespace apo::rt {

bool
Reaches(const OperationLog& log, std::size_t from, std::size_t to)
{
    if (from >= to) {
        return from == to;
    }
    // Dependences always point backwards, so a forward sweep with a
    // reached-set suffices.
    std::vector<bool> reached(to - from + 1, false);
    reached[0] = true;
    for (std::size_t i = from + 1; i <= to; ++i) {
        for (const Dependence& d : log[i].dependences) {
            if (d.from >= from && reached[d.from - from]) {
                reached[i - from] = true;
                break;
            }
        }
    }
    return reached[to - from];
}

std::size_t
TransitiveReduction(OperationLog& log, std::size_t window)
{
    std::size_t removed = 0;
    // Scratch: for each op, whether it can reach the current target
    // through already-kept edges. Reused across ops via a version
    // stamp to avoid O(n) clears.
    std::vector<std::size_t> mark(log.size(), 0);
    std::size_t version = 0;

    for (std::size_t i = 0; i < log.size(); ++i) {
        std::span<Dependence> deps = log.MutableDependences(i);
        if (deps.size() < 2) {
            continue;
        }
        // The latest-to-earliest sweep below requires source order.
        std::sort(deps.begin(), deps.end());
        const std::size_t low_bound =
            window != 0 && i > window ? i - window : 0;
        ++version;
        // Process direct predecessors from latest to earliest: a later
        // predecessor can imply an earlier one, never vice versa.
        // `mark[p] == version` means p is reachable from some kept
        // predecessor of i.
        std::vector<Dependence> kept;
        kept.reserve(deps.size());
        std::vector<std::size_t> frontier;
        for (std::size_t k = deps.size(); k-- > 0;) {
            const Dependence d = deps[k];
            if (mark[d.from] == version) {
                ++removed;  // implied by a path through a kept pred
                continue;
            }
            kept.push_back(d);
            // Extend the reachable set with everything d.from reaches
            // (within the window), using already-reduced edges.
            frontier.clear();
            frontier.push_back(d.from);
            mark[d.from] = version;
            while (!frontier.empty()) {
                const std::size_t node = frontier.back();
                frontier.pop_back();
                for (const Dependence& e : log[node].dependences) {
                    if (e.from < low_bound || mark[e.from] == version) {
                        continue;
                    }
                    mark[e.from] = version;
                    frontier.push_back(e.from);
                }
            }
        }
        std::sort(kept.begin(), kept.end());
        std::copy(kept.begin(), kept.end(), deps.begin());
        log.ShrinkDependences(i, kept.size());
    }
    return removed;
}

std::size_t
CountEdges(const OperationLog& log)
{
    std::size_t edges = 0;
    for (const auto& op : log) {
        edges += op.dependences.size();
    }
    return edges;
}

}  // namespace apo::rt
