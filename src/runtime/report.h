/**
 * @file
 * Human-readable execution reports.
 *
 * Formats a runtime's statistics — and, when available, Apophenia's —
 * the way the examples and command-line tools print them, so output
 * stays consistent and testable.
 */
#ifndef APOPHENIA_RUNTIME_REPORT_H
#define APOPHENIA_RUNTIME_REPORT_H

#include <string>

#include "runtime/runtime.h"

namespace apo::rt {

/** Multi-line summary of a runtime's lifetime counters. */
std::string FormatStats(const RuntimeStats& stats);

/** One-line trace-cache summary (templates, tasks memoized). */
std::string FormatTraceCache(const TraceCache& cache);

/** One-line operation-log summary: ops appended/retired and resident
 * vs peak arena memory (the streaming-retire headline numbers). */
std::string FormatOperationLog(const OperationLog& log);

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_REPORT_H
