#include "runtime/region_tree.h"

#include <algorithm>
#include <string>

namespace apo::rt {

void
RegionTreeForest::AddRoot(RegionId region)
{
    Node node;
    node.parent = RegionId{0};
    node.depth = 0;
    node.root = region.value;
    nodes_[region.value] = node;
}

std::vector<RegionId>
RegionTreeForest::Partition(RegionId parent, std::size_t count,
                            RegionAllocator& allocator)
{
    if (count == 0) {
        throw RuntimeUsageError("cannot partition into zero subregions");
    }
    auto it = nodes_.find(parent.value);
    if (it == nodes_.end()) {
        // Tolerate partitioning a region created before the forest
        // tracked it: adopt it as a root.
        AddRoot(parent);
        it = nodes_.find(parent.value);
    }
    std::vector<RegionId> subregions;
    subregions.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const RegionId sub = allocator.Allocate();
        Node node;
        node.parent = parent;
        node.depth = it->second.depth + 1;
        node.root = it->second.root;
        nodes_[sub.value] = node;
        subregions.push_back(sub);
    }
    it->second.children += count;
    return subregions;
}

void
RegionTreeForest::Remove(RegionId region)
{
    const auto it = nodes_.find(region.value);
    if (it == nodes_.end()) {
        return;
    }
    if (it->second.children != 0) {
        throw RuntimeUsageError(
            "cannot remove region " + std::to_string(region.value) +
            ": it still has subregions");
    }
    const RegionId parent = it->second.parent;
    nodes_.erase(it);
    if (parent.value != 0) {
        const auto pit = nodes_.find(parent.value);
        if (pit != nodes_.end()) {
            pit->second.children -= 1;
        }
    }
}

RegionId
RegionTreeForest::ParentOf(RegionId region) const
{
    const auto it = nodes_.find(region.value);
    return it == nodes_.end() ? RegionId{0} : it->second.parent;
}

RegionId
RegionTreeForest::RootOf(RegionId region) const
{
    const auto it = nodes_.find(region.value);
    return it == nodes_.end() ? region : RegionId{it->second.root};
}

std::size_t
RegionTreeForest::DepthOf(RegionId region) const
{
    const auto it = nodes_.find(region.value);
    return it == nodes_.end() ? 0 : it->second.depth;
}

bool
RegionTreeForest::Aliases(RegionId a, RegionId b) const
{
    if (a == b) {
        return true;
    }
    const auto ia = nodes_.find(a.value);
    const auto ib = nodes_.find(b.value);
    if (ia == nodes_.end() || ib == nodes_.end()) {
        return false;  // unknown regions are independent
    }
    if (ia->second.root != ib->second.root) {
        return false;  // different trees never alias
    }
    // Same tree: walk the deeper node up to the other's depth; they
    // alias iff the walk lands exactly on the other (ancestry). With
    // disjoint partitions, any divergence means disjoint data.
    const Node* deep = &ia->second;
    RegionId deep_id = a;
    const Node* shallow = &ib->second;
    RegionId shallow_id = b;
    if (deep->depth < shallow->depth) {
        std::swap(deep, shallow);
        std::swap(deep_id, shallow_id);
    }
    while (deep->depth > shallow->depth) {
        deep_id = deep->parent;
        deep = &nodes_.at(deep_id.value);
    }
    return deep_id == shallow_id;
}

void
RegionTreeForest::SaveState(fault::CheckpointWriter& writer) const
{
    writer.BeginSection(fault::SectionTag::kRegionForest);
    std::vector<std::uint64_t> ids;
    ids.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) {
        ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    writer.U64(ids.size());
    for (const std::uint64_t id : ids) {
        const Node& node = nodes_.at(id);
        writer.U64(id);
        writer.U64(node.parent.value);
        writer.U64(node.depth);
        writer.U64(node.root);
        writer.U64(node.children);
    }
    writer.EndSection();
}

void
RegionTreeForest::LoadState(fault::CheckpointReader& reader)
{
    reader.BeginSection(fault::SectionTag::kRegionForest);
    const std::uint64_t count = reader.U64();
    nodes_.clear();
    nodes_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t id = reader.U64();
        Node node;
        node.parent = RegionId{reader.U64()};
        node.depth = reader.U64();
        node.root = reader.U64();
        node.children = reader.U64();
        nodes_[id] = node;
    }
    reader.EndSection();
}

}  // namespace apo::rt
