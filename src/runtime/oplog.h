/**
 * @file
 * The columnar operation log: structure-of-arrays storage for the
 * runtime's per-launch record, with chunked block allocation and an
 * optional streaming-retire mode.
 *
 * The seed kept the log as an AoS `std::vector<Operation>` whose every
 * entry owned a requirement vector and a dependence-edge vector — one
 * or more heap allocations per launch on the untraced hot path, and a
 * structure the simulator could only consume wholesale after the run
 * finished. This log stores three columns instead:
 *
 *  - flat POD op rows (task id, token, mode, costs, flags),
 *  - a shared requirement arena,
 *  - a shared dependence-edge arena,
 *
 * each grown in fixed-size blocks. A row addresses its payloads as
 * (pointer, count) spans into the arenas; a span never straddles a
 * block boundary, so reads are plain contiguous spans. Blocks are
 * recycled through free lists, so steady-state append performs zero
 * heap allocations per launch (see Reserve() and the streaming mode).
 *
 * Reading is by cursor/view: `log[i]` and iteration yield OpView, a
 * non-owning snapshot whose spans point into the arenas.
 *
 * **Streaming retire.** A registered consumer (EnableStreaming) is
 * handed every operation exactly once, in log order, as soon as the
 * producer declares it complete (SetRetireBound — the runtime keeps
 * operations of an open trace fragment resident so a replay mismatch
 * can still rewind them). Blocks whose operations have all been
 * retired return to the free lists, so resident memory is bounded by
 * a constant number of blocks regardless of stream length — the
 * "application stream far larger than memory" scenario.
 */
#ifndef APOPHENIA_RUNTIME_OPLOG_H
#define APOPHENIA_RUNTIME_OPLOG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/dependence.h"
#include "runtime/region.h"
#include "runtime/task.h"
#include "runtime/trace.h"

namespace apo::rt {

/** How a logged operation's dependences were obtained. */
enum class AnalysisMode : std::uint8_t {
    kAnalyzed,  ///< full dynamic dependence analysis (cost α)
    kRecorded,  ///< analyzed while memoizing a trace (cost α_m)
    kReplayed,  ///< replayed from a trace template (cost α_r)
};

/**
 * A non-owning view of one logged operation. The spans point into the
 * log's arenas: valid as long as the operation is resident (forever in
 * retained mode; until the consumer callback returns for an operation
 * being retired in streaming mode).
 */
struct OpView {
    std::size_t index = 0;
    /** The launch as recorded (requirements span the shared arena;
     * `launch.token` is the validation token). */
    TaskLaunchView launch;
    /** Convenience alias of launch.token. */
    TokenHash token = 0;
    /** Edges into earlier operations (deduplicated, sorted by source). */
    DependenceSpan dependences;
    AnalysisMode mode = AnalysisMode::kAnalyzed;
    TraceId trace = kNoTrace;
    /** Analysis-stage cost charged for this operation (µs). */
    double analysis_cost_us = 0.0;
    /** True for the first operation of a trace replay (carries the
     * per-replay constant c in analysis_cost_us). */
    bool replay_head = false;
};

/** See file comment. */
class OperationLog {
  public:
    /** Block-granularity tuning. The defaults keep blocks in the tens
     * of kilobytes; the streaming-retire resident ceiling is a small
     * multiple of these sizes. */
    struct Config {
        std::size_t ops_per_block = 1024;      ///< rows per row block
        std::size_t payload_block_elems = 4096;  ///< arena entries/block
    };

    /** Streaming-retire consumer: receives each operation exactly
     * once, in log order. The view's spans are valid only for the
     * duration of the call. */
    using Consumer = std::function<void(const OpView&)>;

    OperationLog() : OperationLog(Config{}) {}
    explicit OperationLog(const Config& config);

    OperationLog(const OperationLog&) = delete;
    OperationLog& operator=(const OperationLog&) = delete;
    OperationLog(OperationLog&&) = default;
    OperationLog& operator=(OperationLog&&) = default;

    // -- Append (the runtime's side) ---------------------------------------

    /**
     * Append one operation: the launch's requirements and the edge
     * list are copied into the arenas; nothing else is allocated once
     * the block free lists are warm.
     */
    void Append(const TaskLaunchView& launch, AnalysisMode mode,
                TraceId trace, double analysis_cost_us, bool replay_head,
                std::span<const Dependence> dependences);

    /** Pre-stock the block free lists so the next `ops` appends
     * (touching up to `requirement_slots` / `dependence_slots` arena
     * entries) allocate nothing. */
    void Reserve(std::size_t ops, std::size_t requirement_slots,
                 std::size_t dependence_slots);

    // -- Read (cursor/view API) --------------------------------------------

    /** Operations ever appended (including retired ones). */
    std::size_t size() const { return appended_; }
    bool empty() const { return appended_ == 0; }

    /** View one resident operation (streaming mode: index must be
     * >= RetiredCount()). */
    OpView operator[](std::size_t index) const;
    OpView back() const { return (*this)[appended_ - 1]; }

    class const_iterator {
      public:
        const_iterator(const OperationLog* log, std::size_t index)
            : log_(log), index_(index)
        {
        }
        OpView operator*() const { return (*log_)[index_]; }
        const_iterator& operator++()
        {
            ++index_;
            return *this;
        }
        friend bool operator==(const const_iterator&,
                               const const_iterator&) = default;

      private:
        const OperationLog* log_;
        std::size_t index_;
    };

    /** Iterates the resident suffix (everything in retained mode). */
    const_iterator begin() const
    {
        return const_iterator(this, retired_);
    }
    const_iterator end() const { return const_iterator(this, appended_); }

    // -- In-place mutation (transitive reduction, mismatch rewind) ---------

    /** The edge span of a resident operation, writable. */
    std::span<Dependence> MutableDependences(std::size_t index);

    /** Shrink an operation's edge count (transitive reduction removes
     * implied edges; the arena slots are simply abandoned). */
    void ShrinkDependences(std::size_t index, std::size_t new_count);

    /** Rewrite a resident operation as plainly analyzed: the fallback
     * mismatch policy rewinds the already-replayed prefix of an
     * abandoned fragment to full-analysis accounting. The edges are
     * untouched — a replayed operation's edges equal what fresh
     * analysis would have produced for the identical stream. */
    void RewriteAsAnalyzed(std::size_t index, double analysis_cost_us);

    // -- Streaming retire --------------------------------------------------

    /** Switch to streaming-retire mode. Must be called while the log
     * is empty. */
    void EnableStreaming(Consumer consumer);
    bool Streaming() const { return static_cast<bool>(consumer_); }

    /**
     * Declare operations below `bound` complete. In streaming mode
     * this drains them to the consumer (exactly once, in order) and
     * recycles exhausted blocks; in retained mode it is a no-op. The
     * bound is monotonic.
     */
    void SetRetireBound(std::size_t bound);

    /** Operations already handed to the consumer. */
    std::size_t RetiredCount() const { return retired_; }

    // -- Memory accounting -------------------------------------------------

    /** Bytes held in blocks right now (free lists included — they are
     * real memory). */
    std::size_t ResidentBytes() const { return resident_bytes_; }
    std::size_t PeakResidentBytes() const { return peak_resident_bytes_; }
    /** Live (non-free-list) blocks across all three columns. */
    std::size_t ResidentBlocks() const;

    const Config& GetConfig() const { return config_; }

    /** Deep copy (retained logs only; the reduction path simulates on
     * a pruned copy). */
    OperationLog Clone() const;

    // -- Checkpoint/restore ------------------------------------------------

    /** Serialize the log's append cursor. The log *content* is not
     * checkpointed: a restored log is re-based at the checkpointed
     * absolute index and continues appending there, so later
     * operations keep their absolute indices (dependence edges and
     * stream digests fold absolute indices, so the restore must
     * preserve them bit-for-bit). */
    void SaveState(fault::CheckpointWriter& writer) const;

    /** Restore onto a freshly constructed (empty) log with the same
     * Config and streaming mode as the checkpointed one.
     * @throws fault::CheckpointError on a non-empty log, a mode
     *   mismatch, or a malformed image. */
    void LoadState(fault::CheckpointReader& reader);

  private:
    /** One POD row; payload spans point into the arenas. */
    struct OpRow {
        TaskId task = 0;
        TokenHash token = 0;
        const RegionRequirement* requirements = nullptr;
        Dependence* dependences = nullptr;
        double execution_us = 0.0;
        double analysis_cost_us = 0.0;
        TraceId trace = kNoTrace;
        std::uint32_t requirement_count = 0;
        std::uint32_t dependence_count = 0;
        std::uint32_t shard = 0;
        AnalysisMode mode = AnalysisMode::kAnalyzed;
        bool blocking = false;
        bool traceable = true;
        bool replay_head = false;
    };

    struct RowBlock {
        std::unique_ptr<OpRow[]> rows;
        std::size_t begin = 0;  ///< index of rows[0]
        std::size_t count = 0;
    };

    /** A payload arena column: spans are contiguous within one block;
     * an append that would straddle seals the block (wasting its tail)
     * and opens the next. */
    template <typename T>
    struct PayloadColumn {
        struct Block {
            std::unique_ptr<T[]> data;
            std::size_t capacity = 0;
            std::size_t used = 0;
            /** Highest op index that allocated here: the block is
             * recyclable once every op through it has retired. */
            std::size_t last_op = 0;
        };
        /** Live blocks, oldest first. A vector (not a deque): retiring
         * erases from the front, which shifts a handful of block
         * handles but never allocates — the steady state must be
         * allocation-free. */
        std::vector<Block> blocks;
        std::vector<Block> free_list;
    };

    OpRow& Row(std::size_t index);
    const OpRow& Row(std::size_t index) const;
    OpView ViewOf(const OpRow& row, std::size_t index) const;
    void PushRowBlock();
    template <typename T>
    T* AllocSpan(PayloadColumn<T>& column, std::size_t count,
                 std::size_t op_index);
    template <typename T>
    void StockColumn(PayloadColumn<T>& column, std::size_t blocks);
    template <typename T>
    void RecycleColumnBefore(PayloadColumn<T>& column,
                             std::size_t first_live_op);
    void RecycleRetired();
    void NoteAllocated(std::size_t bytes);

    Config config_;
    std::vector<RowBlock> row_blocks_;
    std::vector<std::unique_ptr<OpRow[]>> row_free_list_;
    PayloadColumn<RegionRequirement> requirements_;
    PayloadColumn<Dependence> dependences_;

    std::size_t appended_ = 0;
    std::size_t retired_ = 0;
    std::size_t retire_bound_ = 0;
    Consumer consumer_;

    std::size_t resident_bytes_ = 0;
    std::size_t peak_resident_bytes_ = 0;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_OPLOG_H
