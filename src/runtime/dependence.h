/**
 * @file
 * The dynamic dependence analysis engine of the mini task runtime.
 *
 * For every (region, field) pair the analyzer tracks the most recent
 * writer, the readers since that write, and the open reduction epoch.
 * Each incoming task launch is given dependence edges on the earlier
 * operations it conflicts with, which is exactly the work that tracing
 * memoizes (paper sections 1-2). The per-task cost of this analysis is
 * the α of the paper's cost model.
 */
#ifndef APOPHENIA_RUNTIME_DEPENDENCE_H
#define APOPHENIA_RUNTIME_DEPENDENCE_H

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "runtime/region.h"
#include "runtime/region_tree.h"
#include "runtime/task.h"

namespace apo::rt {

/** Why one operation must wait for another. */
enum class DependenceKind : std::uint8_t {
    kTrue,    ///< read-after-write (data flows)
    kAnti,    ///< write-after-read
    kOutput,  ///< write-after-write (or reduce/write interactions)
};

/** A dependence edge: operation `to` must wait for operation `from`. */
struct Dependence {
    std::size_t from = 0;
    std::size_t to = 0;
    DependenceKind kind = DependenceKind::kTrue;

    friend bool operator==(const Dependence&, const Dependence&) = default;
    friend auto operator<=>(const Dependence&, const Dependence&) = default;
};

/** An edge span into a shared arena (the operation log's edge column,
 * a trace template's internal-edge table), element-comparable so
 * consumers that used to compare owned vectors keep working. */
struct DependenceSpan : std::span<const Dependence> {
    using std::span<const Dependence>::span;
    DependenceSpan(std::span<const Dependence> s)
        : std::span<const Dependence>(s)
    {
    }

    friend bool operator==(const DependenceSpan& a, const DependenceSpan& b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    friend bool operator==(const DependenceSpan& a,
                           const std::vector<Dependence>& b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    friend bool operator==(const std::vector<Dependence>& a,
                           const DependenceSpan& b)
    {
        return b == a;
    }
};

/**
 * Per-(region, field) coherence state.
 *
 * The model: a write serializes against everything and clears the
 * state; a read depends on the last writer and any open reducers;
 * reductions with the same operator commute with each other but
 * serialize against readers and writers; a reduction with a different
 * operator closes the previous reduction epoch.
 */
struct FieldState {
    std::optional<std::size_t> last_writer;
    std::vector<std::size_t> readers;   ///< reads since the last write
    std::vector<std::size_t> reducers;  ///< open reduction epoch
    ReductionOpId redop = 0;            ///< operator of the open epoch
    /** The previous (closed) reduction epoch. Every member of the open
     * epoch must serialize against these; one level suffices because
     * epoch members carry the ordering transitively. */
    std::vector<std::size_t> prev_reducers;
};

/**
 * The dependence analyzer. Feed it launches in program order via
 * Analyze(); it returns the dependence edges for each launch and
 * updates its coherence state.
 */
class DependenceAnalyzer {
  public:
    /** Attach the region forest. When set, requirements on a region
     * also serialize against the coherence state of every *aliasing*
     * region (ancestors and descendants in the tree) — the parent/
     * child interference of Legion's region model. Null keeps the
     * flat, forest-free behaviour. */
    void SetForest(const RegionTreeForest* forest) { forest_ = forest; }

    /**
     * Analyze the launch as operation `index` (indices must be given
     * in strictly increasing order), appending the deduplicated edges
     * — sorted by source index — to `out`. The caller owns (and
     * typically reuses) `out`, so the steady-state analysis allocates
     * nothing.
     *
     * @param external_only_after if set, only edges whose source is
     *   *before* this operation index are emitted. Trace replay uses
     *   this to regenerate just the boundary (pre-trace) edges while
     *   taking intra-trace edges from the memoized template.
     */
    void AnalyzeInto(
        std::size_t index, const TaskLaunchView& launch,
        std::vector<Dependence>& out,
        std::optional<std::size_t> external_only_after = std::nullopt);

    /** Read-only view of a field's coherence state (testing). */
    const FieldState* StateOf(RegionId region, FieldId field) const;

    /** Number of distinct (region, field) pairs ever touched. */
    std::size_t TrackedFields() const { return states_.size(); }

  private:
    FieldState& MutableState(RegionId region, FieldId field);

    /** Scratch for per-launch privilege coalescing; reused so the
     * steady-state analysis allocates nothing. */
    std::vector<RegionRequirement> coalesce_scratch_;

    const RegionTreeForest* forest_ = nullptr;
    std::map<std::pair<std::uint64_t, FieldId>, FieldState> states_;
    /** Alias index: (tree root, field) -> regions with live state. */
    std::map<std::pair<std::uint64_t, FieldId>, std::vector<RegionId>>
        by_root_;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_DEPENDENCE_H
