/**
 * @file
 * The dynamic dependence analysis engine of the mini task runtime.
 *
 * For every (region, field) pair the analyzer tracks the most recent
 * writer, the readers since that write, and the open reduction epoch.
 * Each incoming task launch is given dependence edges on the earlier
 * operations it conflicts with, which is exactly the work that tracing
 * memoizes (paper sections 1-2). The per-task cost of this analysis is
 * the α of the paper's cost model.
 */
#ifndef APOPHENIA_RUNTIME_DEPENDENCE_H
#define APOPHENIA_RUNTIME_DEPENDENCE_H

#include <algorithm>
#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/region.h"
#include "runtime/region_tree.h"
#include "runtime/task.h"

namespace apo::rt {

/** Why one operation must wait for another. */
enum class DependenceKind : std::uint8_t {
    kTrue,    ///< read-after-write (data flows)
    kAnti,    ///< write-after-read
    kOutput,  ///< write-after-write (or reduce/write interactions)
};

/** A dependence edge: operation `to` must wait for operation `from`. */
struct Dependence {
    std::size_t from = 0;
    std::size_t to = 0;
    DependenceKind kind = DependenceKind::kTrue;

    friend bool operator==(const Dependence&, const Dependence&) = default;
    friend auto operator<=>(const Dependence&, const Dependence&) = default;
};

/** An edge span into a shared arena (the operation log's edge column,
 * a trace template's internal-edge table), element-comparable so
 * consumers that used to compare owned vectors keep working. */
struct DependenceSpan : std::span<const Dependence> {
    using std::span<const Dependence>::span;
    DependenceSpan(std::span<const Dependence> s)
        : std::span<const Dependence>(s)
    {
    }

    friend bool operator==(const DependenceSpan& a, const DependenceSpan& b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    friend bool operator==(const DependenceSpan& a,
                           const std::vector<Dependence>& b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    friend bool operator==(const std::vector<Dependence>& a,
                           const DependenceSpan& b)
    {
        return b == a;
    }
};

/**
 * Per-(region, field) coherence state.
 *
 * The model: a write serializes against everything and clears the
 * state; a read depends on the last writer and any open reducers;
 * reductions with the same operator commute with each other but
 * serialize against readers and writers; a reduction with a different
 * operator closes the previous reduction epoch.
 */
struct FieldState {
    std::optional<std::size_t> last_writer;
    std::vector<std::size_t> readers;   ///< reads since the last write
    std::vector<std::size_t> reducers;  ///< open reduction epoch
    ReductionOpId redop = 0;            ///< operator of the open epoch
    /** The previous (closed) reduction epoch. Every member of the open
     * epoch must serialize against these; one level suffices because
     * epoch members carry the ordering transitively. */
    std::vector<std::size_t> prev_reducers;
};

/**
 * The dependence analyzer. Feed it launches in program order via
 * Analyze(); it returns the dependence edges for each launch and
 * updates its coherence state.
 */
class DependenceAnalyzer {
  public:
    /** Attach the region forest. When set, requirements on a region
     * also serialize against the coherence state of every *aliasing*
     * region (ancestors and descendants in the tree) — the parent/
     * child interference of Legion's region model. Null keeps the
     * flat, forest-free behaviour. */
    void SetForest(const RegionTreeForest* forest) { forest_ = forest; }

    /**
     * Analyze the launch as operation `index` (indices must be given
     * in strictly increasing order), appending the deduplicated edges
     * — sorted by source index — to `out`. The caller owns (and
     * typically reuses) `out`, so the steady-state analysis allocates
     * nothing.
     *
     * @param external_only_after if set, only edges whose source is
     *   *before* this operation index are emitted. Trace replay uses
     *   this to regenerate just the boundary (pre-trace) edges while
     *   taking intra-trace edges from the memoized template.
     */
    void AnalyzeInto(
        std::size_t index, const TaskLaunchView& launch,
        std::vector<Dependence>& out,
        std::optional<std::size_t> external_only_after = std::nullopt);

    /** Read-only view of a field's coherence state (testing). */
    const FieldState* StateOf(RegionId region, FieldId field) const;

    /** Number of distinct (region, field) pairs ever touched. */
    std::size_t TrackedFields() const { return states_.size(); }

    /** Checkpoint hooks: the full coherence state (field states plus
     * the alias index), with the absolute operation indices it holds —
     * the restored analyzer must emit bit-identical edges for the
     * continued stream. The forest pointer is reattached by the owner
     * (SetForest), not serialized. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    FieldState& MutableState(RegionId region, FieldId field);

    /** Scratch for per-launch privilege coalescing; reused so the
     * steady-state analysis allocates nothing. */
    std::vector<RegionRequirement> coalesce_scratch_;

    const RegionTreeForest* forest_ = nullptr;
    std::map<std::pair<std::uint64_t, FieldId>, FieldState> states_;
    /** Alias index: (tree root, field) -> regions with live state. */
    std::map<std::pair<std::uint64_t, FieldId>, std::vector<RegionId>>
        by_root_;
};

/**
 * Streaming (windowed) transitive reduction of a dependence graph.
 *
 * The retained `rt::TransitiveReduction(log, window)` (graph.h) walks
 * the whole operation log, pruning each operation's edges that are
 * implied by paths through *already reduced* earlier edges, with the
 * path search bounded to the last `window` operations. This class is
 * the same algorithm turned inside out: feed it every operation's
 * edge list, in log order, and it reduces each list in place against
 * a ring buffer holding the reduced edges of the previous `window`
 * operations — nothing older is needed, because a path step from a
 * below-window operation necessarily lands even further below the
 * window and is excluded by the bound. The result is *identical*,
 * edge for edge, to running the retained reduction with the same
 * window over the finished log (the differential fuzz corpus pins
 * this down), but the resident state is O(window), so the reduction
 * composes with the streaming-retire log for streams far larger than
 * memory (`-lg:inline_transitive_reduction` + `sim::LogMode::
 * kStreaming`).
 *
 * Steady state performs no allocations: ring slots, mark stamps and
 * scratch vectors are recycled across operations.
 */
class WindowedTransitiveReducer {
  public:
    /** @param window the path-search bound; must be nonzero (an
     *  unbounded reduction needs the retained log).
     *  @throws std::invalid_argument on window == 0. */
    explicit WindowedTransitiveReducer(std::size_t window);

    /**
     * Reduce the edges of operation `index` in place (the vector is
     * sorted, pruned and shrunk) and remember the reduced list for
     * later operations' path searches. Operations must be fed
     * consecutively from 0.
     * @return the number of edges removed from this operation.
     */
    std::size_t Reduce(std::size_t index, std::vector<Dependence>& edges);

    /** Total edges removed so far. */
    std::size_t RemovedEdges() const { return removed_; }

    /** The path-search bound this reducer was built with. */
    std::size_t Window() const { return window_; }

  private:
    /** Ring slot of an operation's reduced edges. The ring holds
     * `window_ + 1` slots: the `window_` predecessors a reduction may
     * consult plus the operation being written. */
    std::vector<Dependence>& SlotOf(std::size_t index)
    {
        return ring_[index % ring_.size()];
    }

    std::size_t window_;
    std::size_t next_index_ = 0;
    std::size_t removed_ = 0;
    /** Reduced edges of operations [next_index_ - window_,
     * next_index_), ring-addressed by operation index. */
    std::vector<std::vector<Dependence>> ring_;
    /** Version-stamped reachability marks, ring-addressed like
     * `ring_` (distinct in-window operations never collide). */
    std::vector<std::size_t> mark_;
    std::size_t version_ = 0;
    /** Direct predecessors below the window marked this operation
     * (they cannot use `mark_` — their slots alias in-window ops). */
    std::vector<std::size_t> below_window_marks_;
    std::vector<std::size_t> frontier_;  ///< DFS scratch
    std::vector<Dependence> kept_;       ///< per-op keep scratch
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_DEPENDENCE_H
