/**
 * @file
 * Dependence-graph utilities over the runtime's operation log:
 * reachability and transitive reduction.
 *
 * Legion's `-lg:inline_transitive_reduction` prunes dependence edges
 * that are implied by paths through other edges; the paper's artifact
 * enables it in every experiment. Fewer edges mean less event
 * plumbing in the real runtime; here the reduction is provided as a
 * log transformation — edges are pruned in place within each
 * operation's arena span — with the standard guarantee: the
 * transitive closure (i.e., the set of ordered pairs) is unchanged.
 */
#ifndef APOPHENIA_RUNTIME_GRAPH_H
#define APOPHENIA_RUNTIME_GRAPH_H

#include <cstddef>

#include "runtime/oplog.h"

namespace apo::rt {

/**
 * True iff a dependence path exists from operation `from` to the
 * later operation `to` in the log.
 */
bool Reaches(const OperationLog& log, std::size_t from, std::size_t to);

/**
 * Remove dependence edges implied transitively by other edges,
 * preserving the transitive closure exactly.
 *
 * @param window only paths through the last `window` operations are
 *   considered (0 = unbounded). Dependence locality in real programs
 *   makes a bounded window lose almost nothing while keeping the
 *   reduction linear-ish; Legion's inline reduction is similarly
 *   scoped to the operations still in flight.
 * @return the number of edges removed.
 */
std::size_t TransitiveReduction(OperationLog& log, std::size_t window = 0);

/** Total dependence edges in the log (before/after comparisons). */
std::size_t CountEdges(const OperationLog& log);

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_GRAPH_H
