/**
 * @file
 * Error types raised by the mini task runtime.
 */
#ifndef APOPHENIA_RUNTIME_ERRORS_H
#define APOPHENIA_RUNTIME_ERRORS_H

#include <stdexcept>
#include <string>

namespace apo::rt {

/** Misuse of the runtime interface (mismatched begin/end, nesting). */
class RuntimeUsageError : public std::runtime_error {
  public:
    explicit RuntimeUsageError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The sequence of tasks issued under a trace id differed from the
 * recorded sequence — the failure mode manual annotations hit on
 * programs like the paper's section 2 Jacobi example.
 */
class TraceMismatchError : public std::runtime_error {
  public:
    explicit TraceMismatchError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_ERRORS_H
