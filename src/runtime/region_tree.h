/**
 * @file
 * The region tree: partitions and aliasing.
 *
 * Legion regions form a forest: a region can be partitioned into
 * subregions, tasks can request privileges on any node of the tree,
 * and the dependence analysis must order operations whose regions
 * *alias* — one is an ancestor of the other (a disjoint partition's
 * siblings never alias). The paper's section 2 notes that trace
 * validity depends on "the usages of the regions and how they are
 * partitioned"; this module supplies that structure, and the
 * dependence analyzer consults it so that parent-level operations
 * (boundary conditions, I/O over the whole array) serialize correctly
 * against per-subregion tasks.
 */
#ifndef APOPHENIA_RUNTIME_REGION_TREE_H
#define APOPHENIA_RUNTIME_REGION_TREE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/errors.h"
#include "runtime/region.h"

namespace apo::rt {

/** The forest of region trees. Owned by the runtime. */
class RegionTreeForest {
  public:
    /** Register a root region (the allocator supplies the id). */
    void AddRoot(RegionId region);

    /**
     * Partition `parent` into `count` disjoint subregions, allocated
     * by `allocator`. Subregions are first-class regions: they can be
     * partitioned further and used in requirements.
     */
    std::vector<RegionId> Partition(RegionId parent, std::size_t count,
                                    RegionAllocator& allocator);

    /** Remove a leaf region (roots with no children included) from
     * the forest. Partitioned regions must be deleted bottom-up. */
    void Remove(RegionId region);

    /** True if the forest knows this region. */
    bool Contains(RegionId region) const
    {
        return nodes_.count(region.value) != 0;
    }

    /** Parent region, or RegionId{0} for roots/unknown regions. */
    RegionId ParentOf(RegionId region) const;

    /** Root of the tree containing `region` (itself if a root or
     * unknown — unknown regions are treated as independent roots). */
    RegionId RootOf(RegionId region) const;

    /** Depth from the root (root = 0; unknown regions = 0). */
    std::size_t DepthOf(RegionId region) const;

    /**
     * True iff accesses to `a` and `b` can touch the same data: equal
     * regions, or one an ancestor of the other. Distinct subtrees and
     * disjoint siblings never alias.
     */
    bool Aliases(RegionId a, RegionId b) const;

    std::size_t Size() const { return nodes_.size(); }

    /** Checkpoint hooks: the forest nodes, serialized in region-id
     * order so two identical forests produce identical images. */
    void SaveState(fault::CheckpointWriter& writer) const;
    void LoadState(fault::CheckpointReader& reader);

  private:
    struct Node {
        RegionId parent;  // 0 = root
        std::size_t depth = 0;
        std::uint64_t root = 0;
        std::size_t children = 0;
    };

    std::unordered_map<std::uint64_t, Node> nodes_;
};

}  // namespace apo::rt

#endif  // APOPHENIA_RUNTIME_REGION_TREE_H
