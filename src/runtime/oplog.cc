#include "runtime/oplog.h"

#include <algorithm>

namespace apo::rt {

OperationLog::OperationLog(const Config& config) : config_(config)
{
    if (config_.ops_per_block == 0) {
        config_.ops_per_block = 1;
    }
    if (config_.payload_block_elems == 0) {
        config_.payload_block_elems = 1;
    }
}

void
OperationLog::NoteAllocated(std::size_t bytes)
{
    resident_bytes_ += bytes;
    peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
}

OperationLog::OpRow&
OperationLog::Row(std::size_t index)
{
    assert(index < appended_);
    const std::size_t cap = config_.ops_per_block;
    // Every block holds exactly `cap` rows starting at its `begin`,
    // and retirement removes whole blocks from the front, so relative
    // addressing from the front block is O(1) — even when a checkpoint
    // restore re-based the log at an arbitrary absolute index (the
    // front `begin` then need not be a multiple of the block size).
    const std::size_t front_begin = row_blocks_.front().begin;
    assert(index >= front_begin);
    const std::size_t block = (index - front_begin) / cap;
    return row_blocks_[block].rows[(index - front_begin) % cap];
}

const OperationLog::OpRow&
OperationLog::Row(std::size_t index) const
{
    return const_cast<OperationLog*>(this)->Row(index);
}

OpView
OperationLog::ViewOf(const OpRow& row, std::size_t index) const
{
    OpView view;
    view.index = index;
    view.launch.task = row.task;
    view.launch.requirements = row.requirements;
    view.launch.requirement_count = row.requirement_count;
    view.launch.execution_us = row.execution_us;
    view.launch.shard = row.shard;
    view.launch.blocking = row.blocking;
    view.launch.traceable = row.traceable;
    view.launch.token = row.token;
    view.token = row.token;
    view.dependences =
        DependenceSpan{{row.dependences, row.dependence_count}};
    view.mode = row.mode;
    view.trace = row.trace;
    view.analysis_cost_us = row.analysis_cost_us;
    view.replay_head = row.replay_head;
    return view;
}

OpView
OperationLog::operator[](std::size_t index) const
{
    return ViewOf(Row(index), index);
}

void
OperationLog::PushRowBlock()
{
    RowBlock block;
    if (!row_free_list_.empty()) {
        block.rows = std::move(row_free_list_.back());
        row_free_list_.pop_back();
    } else {
        block.rows = std::make_unique<OpRow[]>(config_.ops_per_block);
        NoteAllocated(config_.ops_per_block * sizeof(OpRow));
    }
    block.begin = appended_;
    block.count = 0;
    row_blocks_.push_back(std::move(block));
}

template <typename T>
T*
OperationLog::AllocSpan(PayloadColumn<T>& column, std::size_t count,
                        std::size_t op_index)
{
    if (count == 0) {
        return nullptr;
    }
    const std::size_t standard = config_.payload_block_elems;
    if (column.blocks.empty() ||
        column.blocks.back().used + count >
            column.blocks.back().capacity) {
        typename PayloadColumn<T>::Block block;
        if (count <= standard && !column.free_list.empty()) {
            block = std::move(column.free_list.back());
            column.free_list.pop_back();
            block.used = 0;
        } else {
            block.capacity = std::max(standard, count);
            block.data = std::make_unique<T[]>(block.capacity);
            NoteAllocated(block.capacity * sizeof(T));
        }
        column.blocks.push_back(std::move(block));
    }
    auto& back = column.blocks.back();
    T* span = back.data.get() + back.used;
    back.used += count;
    back.last_op = op_index;
    return span;
}

template <typename T>
void
OperationLog::StockColumn(PayloadColumn<T>& column, std::size_t blocks)
{
    while (column.free_list.size() < blocks) {
        typename PayloadColumn<T>::Block block;
        block.capacity = config_.payload_block_elems;
        block.data = std::make_unique<T[]>(block.capacity);
        NoteAllocated(block.capacity * sizeof(T));
        column.free_list.push_back(std::move(block));
    }
    // The handle vector must not reallocate mid-append either.
    column.blocks.reserve(column.blocks.size() +
                          column.free_list.size());
}

template <typename T>
void
OperationLog::RecycleColumnBefore(PayloadColumn<T>& column,
                                  std::size_t first_live_op)
{
    while (column.blocks.size() > 1 &&
           column.blocks.front().last_op < first_live_op) {
        typename PayloadColumn<T>::Block block =
            std::move(column.blocks.front());
        column.blocks.erase(column.blocks.begin());
        if (block.capacity == config_.payload_block_elems) {
            block.used = 0;
            column.free_list.push_back(std::move(block));
        } else {
            // Oversized one-off block: actually release it.
            resident_bytes_ -= block.capacity * sizeof(T);
        }
    }
}

void
OperationLog::RecycleRetired()
{
    while (row_blocks_.size() > 1 &&
           row_blocks_.front().begin + config_.ops_per_block <=
               retired_) {
        row_free_list_.push_back(std::move(row_blocks_.front().rows));
        row_blocks_.erase(row_blocks_.begin());
    }
    RecycleColumnBefore(requirements_, retired_);
    RecycleColumnBefore(dependences_, retired_);
}

void
OperationLog::Append(const TaskLaunchView& launch, AnalysisMode mode,
                     TraceId trace, double analysis_cost_us,
                     bool replay_head,
                     std::span<const Dependence> dependences)
{
    const std::size_t index = appended_;
    if (row_blocks_.empty() ||
        row_blocks_.back().count == config_.ops_per_block) {
        PushRowBlock();
    }
    RowBlock& block = row_blocks_.back();
    OpRow& row = block.rows[block.count];
    block.count += 1;
    appended_ += 1;

    row.task = launch.task;
    row.token = launch.token;
    row.execution_us = launch.execution_us;
    row.shard = launch.shard;
    row.blocking = launch.blocking;
    row.traceable = launch.traceable;
    row.mode = mode;
    row.trace = trace;
    row.analysis_cost_us = analysis_cost_us;
    row.replay_head = replay_head;

    row.requirement_count =
        static_cast<std::uint32_t>(launch.requirement_count);
    RegionRequirement* reqs =
        AllocSpan(requirements_, launch.requirement_count, index);
    if (launch.requirement_count != 0) {
        std::copy(launch.requirements,
                  launch.requirements + launch.requirement_count, reqs);
    }
    row.requirements = reqs;

    row.dependence_count =
        static_cast<std::uint32_t>(dependences.size());
    Dependence* deps = AllocSpan(dependences_, dependences.size(), index);
    if (!dependences.empty()) {
        std::copy(dependences.begin(), dependences.end(), deps);
    }
    row.dependences = deps;
}

void
OperationLog::Reserve(std::size_t ops, std::size_t requirement_slots,
                      std::size_t dependence_slots)
{
    const std::size_t row_blocks =
        (ops + config_.ops_per_block - 1) / config_.ops_per_block + 1;
    while (row_free_list_.size() < row_blocks) {
        row_free_list_.push_back(
            std::make_unique<OpRow[]>(config_.ops_per_block));
        NoteAllocated(config_.ops_per_block * sizeof(OpRow));
    }
    row_blocks_.reserve(row_blocks_.size() + row_free_list_.size());
    const std::size_t payload = config_.payload_block_elems;
    StockColumn(requirements_,
                (requirement_slots + payload - 1) / payload + 1);
    StockColumn(dependences_,
                (dependence_slots + payload - 1) / payload + 1);
}

std::span<Dependence>
OperationLog::MutableDependences(std::size_t index)
{
    OpRow& row = Row(index);
    return {row.dependences, row.dependence_count};
}

void
OperationLog::ShrinkDependences(std::size_t index, std::size_t new_count)
{
    OpRow& row = Row(index);
    assert(new_count <= row.dependence_count);
    row.dependence_count = static_cast<std::uint32_t>(new_count);
}

void
OperationLog::RewriteAsAnalyzed(std::size_t index, double analysis_cost_us)
{
    OpRow& row = Row(index);
    row.mode = AnalysisMode::kAnalyzed;
    row.trace = kNoTrace;
    row.replay_head = false;
    row.analysis_cost_us = analysis_cost_us;
}

void
OperationLog::EnableStreaming(Consumer consumer)
{
    assert(empty() && "EnableStreaming requires an empty log");
    consumer_ = std::move(consumer);
}

void
OperationLog::SetRetireBound(std::size_t bound)
{
    retire_bound_ = std::max(retire_bound_, bound);
    if (!Streaming()) {
        return;
    }
    const std::size_t target = std::min(retire_bound_, appended_);
    while (retired_ < target) {
        consumer_(ViewOf(Row(retired_), retired_));
        retired_ += 1;
    }
    RecycleRetired();
}

std::size_t
OperationLog::ResidentBlocks() const
{
    return row_blocks_.size() + requirements_.blocks.size() +
           dependences_.blocks.size();
}

OperationLog
OperationLog::Clone() const
{
    assert(!Streaming() && "streaming logs cannot be cloned");
    OperationLog copy(config_);
    copy.Reserve(appended_ - retired_, 0, 0);
    // A checkpoint-restored retained log is resident only from its
    // restore base; the clone re-bases identically.
    copy.appended_ = copy.retired_ = copy.retire_bound_ = retired_;
    for (std::size_t i = retired_; i < appended_; ++i) {
        const OpView op = (*this)[i];
        copy.Append(op.launch, op.mode, op.trace, op.analysis_cost_us,
                    op.replay_head, op.dependences);
    }
    return copy;
}

void
OperationLog::SaveState(fault::CheckpointWriter& writer) const
{
    writer.BeginSection(fault::SectionTag::kOperationLog);
    writer.Bool(Streaming());
    writer.U64(appended_);
    writer.EndSection();
}

void
OperationLog::LoadState(fault::CheckpointReader& reader)
{
    if (!empty()) {
        throw fault::CheckpointError(
            "OperationLog::LoadState requires an empty log");
    }
    reader.BeginSection(fault::SectionTag::kOperationLog);
    const bool was_streaming = reader.Bool();
    const std::uint64_t base = reader.U64();
    reader.EndSection();
    if (was_streaming != Streaming()) {
        throw fault::CheckpointError(
            "checkpoint log mode does not match the restoring log");
    }
    // Re-base: the restored log continues appending at the
    // checkpointed absolute index. Everything below the base is gone
    // (retired in streaming mode; simply non-resident in retained
    // mode) — dependence edges keep their absolute source indices as
    // plain values, which is all the digests and the replay machinery
    // ever read from pre-base history.
    appended_ = retired_ = retire_bound_ = base;
}

}  // namespace apo::rt
