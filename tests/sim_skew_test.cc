/**
 * @file
 * SkewModel-in-the-makespan tests (PR: fault tolerance): the pipeline
 * simulator stretches per-task analysis/replay/execution costs by
 * SkewModel::Factor, so a straggler node now shows up in the
 * simulated makespan — monotonically in its slowdown factor — while
 * the unskewed configuration stays bit-identical to a run with no
 * skew model at all (kNone returns exactly 1.0).
 */
#include <gtest/gtest.h>

#include <vector>

#include "apps/s3d.h"
#include "sim/harness.h"
#include "sim/skew.h"

namespace apo {
namespace {

sim::ExperimentOptions BaseOptions()
{
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 40;
    options.auto_config.min_trace_length = 5;
    options.auto_config.batchsize = 400;
    options.auto_config.multi_scale_factor = 50;
    options.machine = apps::MachineConfig{.nodes = 2, .gpus_per_node = 2};
    return options;
}

double MakespanWithSkew(const sim::SkewModel& skew)
{
    sim::ExperimentOptions options = BaseOptions();
    options.skew = skew;
    apps::S3dApplication app(
        apps::S3dOptions{.machine = options.machine});
    return sim::RunExperiment(app, options).makespan_us;
}

TEST(SimSkew, StragglerMakespanIsMonotoneInItsFactor)
{
    std::vector<double> makespans;
    for (const double factor : {1.0, 2.0, 4.0, 8.0}) {
        sim::SkewModel skew;
        skew.kind = sim::SkewKind::kStraggler;
        skew.straggler_node = 1;
        skew.straggler_factor = factor;
        makespans.push_back(MakespanWithSkew(skew));
    }
    for (std::size_t i = 1; i < makespans.size(); ++i) {
        EXPECT_GE(makespans[i], makespans[i - 1])
            << "straggler factor " << (1 << i)
            << " shrank the makespan";
    }
    // An 8x straggler must actually stretch the critical path.
    EXPECT_GT(makespans.back(), makespans.front());
}

TEST(SimSkew, UnitStragglerIsBitIdenticalToNoSkew)
{
    sim::SkewModel unit;
    unit.kind = sim::SkewKind::kStraggler;
    unit.straggler_node = 1;
    unit.straggler_factor = 1.0;  // Factor() == 1.0 everywhere
    const double with_unit = MakespanWithSkew(unit);
    const double without = MakespanWithSkew(sim::SkewModel{});
    EXPECT_EQ(with_unit, without);
}

TEST(SimSkew, JitterAndInterferenceStretchTheMakespan)
{
    const double baseline = MakespanWithSkew(sim::SkewModel{});

    sim::SkewModel jitter;
    jitter.kind = sim::SkewKind::kJitter;
    jitter.jitter_amplitude = 0.5;
    EXPECT_GT(MakespanWithSkew(jitter), baseline);

    sim::SkewModel bursts;
    bursts.kind = sim::SkewKind::kInterference;
    bursts.burst_period_tasks = 512;
    bursts.burst_duration_tasks = 128;
    bursts.burst_factor = 8.0;
    EXPECT_GT(MakespanWithSkew(bursts), baseline);
}

TEST(SimSkew, StreamingAndRetainedAgreeUnderSkew)
{
    // The streaming-retire pipeline consumer and the wholesale
    // simulator must apply the same skew factors: identical makespan
    // and throughput, bit for bit.
    sim::SkewModel skew;
    skew.kind = sim::SkewKind::kStraggler;
    skew.straggler_node = 1;
    skew.straggler_factor = 3.0;

    sim::ExperimentOptions retained = BaseOptions();
    retained.skew = skew;
    sim::ExperimentOptions streaming = retained;
    streaming.log_mode = sim::LogMode::kStreaming;

    apps::S3dApplication app_a(
        apps::S3dOptions{.machine = retained.machine});
    apps::S3dApplication app_b(
        apps::S3dOptions{.machine = streaming.machine});
    const sim::ExperimentResult a = sim::RunExperiment(app_a, retained);
    const sim::ExperimentResult b = sim::RunExperiment(app_b, streaming);
    EXPECT_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.iterations_per_second, b.iterations_per_second);
}

}  // namespace
}  // namespace apo
