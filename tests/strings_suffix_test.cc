/**
 * @file
 * Unit and property tests for suffix array and LCP construction.
 *
 * The SA-IS (linear) and prefix-doubling (O(n log n)) constructions are
 * validated against a naive sort-the-suffixes oracle and against each
 * other on randomized inputs, including the low-entropy periodic
 * streams that task histories actually look like.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "strings/suffix_array.h"
#include "support/rng.h"
#include "test_util.h"

namespace apo::strings {
namespace {

using apo::test::PeriodicSeq;
using apo::test::RandomSeq;
using apo::test::Seq;

/** Oracle: sort suffix indices by direct suffix comparison. */
std::vector<std::size_t> NaiveSuffixArray(const Sequence& s)
{
    std::vector<std::size_t> sa(s.size());
    std::iota(sa.begin(), sa.end(), 0);
    std::sort(sa.begin(), sa.end(), [&](std::size_t a, std::size_t b) {
        return std::lexicographical_compare(s.begin() + a, s.end(),
                                            s.begin() + b, s.end());
    });
    return sa;
}

/** Oracle: directly measure the common prefix of adjacent suffixes. */
std::vector<std::size_t> NaiveLcp(const Sequence& s,
                                  const std::vector<std::size_t>& sa)
{
    std::vector<std::size_t> lcp;
    for (std::size_t i = 0; i + 1 < sa.size(); ++i) {
        std::size_t a = sa[i], b = sa[i + 1], l = 0;
        while (a + l < s.size() && b + l < s.size() &&
               s[a + l] == s[b + l]) {
            ++l;
        }
        lcp.push_back(l);
    }
    return lcp;
}

TEST(SuffixArray, EmptyAndSingleton)
{
    EXPECT_TRUE(BuildSuffixArray({}).empty());
    const Sequence one{42};
    const auto sa = BuildSuffixArray(one);
    ASSERT_EQ(sa.size(), 1u);
    EXPECT_EQ(sa[0], 0u);
    EXPECT_TRUE(ComputeLcp(one, sa).empty());
}

TEST(SuffixArray, KnownExampleBanana)
{
    // "banana": suffix array is 5 3 1 0 4 2.
    const auto sa = BuildSuffixArray(Seq("banana"));
    const std::vector<std::size_t> expected{5, 3, 1, 0, 4, 2};
    EXPECT_EQ(sa, expected);
}

TEST(SuffixArray, KnownExamplePaperFigure4)
{
    // "aabcbcbaa" (figure 4): 8 7 0 1 6 4 2 5 3.
    const auto sa = BuildSuffixArray(Seq("aabcbcbaa"));
    const std::vector<std::size_t> expected{8, 7, 0, 1, 6, 4, 2, 5, 3};
    EXPECT_EQ(sa, expected);
    const auto lcp = ComputeLcp(Seq("aabcbcbaa"), sa);
    // LCPs between adjacent figure-4 suffixes: 1 2 1 0 1 3 0 2.
    const std::vector<std::size_t> expected_lcp{1, 2, 1, 0, 1, 3, 0, 2};
    EXPECT_EQ(lcp, expected_lcp);
}

TEST(SuffixArray, RankCompressPreservesOrderAndReservesZero)
{
    const Sequence s{900, 5, 900, 7};
    const auto ranks = RankCompress(s);
    const std::vector<std::uint32_t> expected{3, 1, 3, 2};
    EXPECT_EQ(ranks, expected);
}

struct SuffixCase {
    std::size_t n;
    std::uint64_t sigma;
    std::uint64_t seed;
};

class SuffixArrayProperty
    : public ::testing::TestWithParam<SuffixCase> {};

TEST_P(SuffixArrayProperty, BothAlgorithmsMatchNaiveOracle)
{
    const auto [n, sigma, seed] = GetParam();
    support::Rng rng(seed);
    const Sequence s = RandomSeq(rng, n, sigma);
    const auto expected = NaiveSuffixArray(s);
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kSais), expected);
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kPrefixDoubling),
              expected);
    EXPECT_EQ(ComputeLcp(s, expected), NaiveLcp(s, expected));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, SuffixArrayProperty,
    ::testing::Values(SuffixCase{1, 1, 1}, SuffixCase{2, 1, 2},
                      SuffixCase{16, 2, 3}, SuffixCase{64, 2, 4},
                      SuffixCase{64, 4, 5}, SuffixCase{200, 3, 6},
                      SuffixCase{200, 26, 7}, SuffixCase{333, 2, 8},
                      SuffixCase{512, 8, 9}, SuffixCase{1000, 2, 10},
                      SuffixCase{1000, 64, 11}));

class PeriodicSuffixProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PeriodicSuffixProperty, AgreesOnPeriodicTaskStreams)
{
    const auto [period, noise] = GetParam();
    const Sequence s = PeriodicSeq(600, period, noise);
    const auto expected = NaiveSuffixArray(s);
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kSais), expected);
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kPrefixDoubling),
              expected);
    EXPECT_EQ(ComputeLcp(s, expected), NaiveLcp(s, expected));
}

INSTANTIATE_TEST_SUITE_P(
    PeriodicInputs, PeriodicSuffixProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 7, 24, 100),
                       ::testing::Values(0, 13, 50)));

TEST(SuffixArray, AlgorithmsAgreeOnLargeLowEntropyInput)
{
    // A long all-equal run is the classic suffix-array stress case.
    Sequence s(20000, 5);
    for (std::size_t i = 0; i < s.size(); i += 997) {
        s[i] = 6;
    }
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kSais),
              BuildSuffixArray(s, SuffixAlgorithm::kPrefixDoubling));
}

TEST(SuffixArray, SuffixArrayIsAPermutation)
{
    support::Rng rng(99);
    const Sequence s = RandomSeq(rng, 5000, 3);
    auto sa = BuildSuffixArray(s);
    std::sort(sa.begin(), sa.end());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(sa[i], i);
    }
}

}  // namespace
}  // namespace apo::strings
