/**
 * @file
 * Tests for the region tree: partitions, aliasing, and the parent/
 * child interference rules of the dependence analysis. Ends with the
 * combination that motivates the whole feature: tracing a stream that
 * mixes per-subregion tasks with whole-region (parent) operations.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/apophenia.h"
#include "runtime/runtime.h"

namespace apo::rt {
namespace {

std::set<std::size_t> Sources(const OpView& op)
{
    std::set<std::size_t> out;
    for (const Dependence& d : op.dependences) {
        out.insert(d.from);
    }
    return out;
}

TEST(RegionTree, PartitionCreatesDistinctSubregions)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 4);
    ASSERT_EQ(subs.size(), 4u);
    std::set<std::uint64_t> ids{parent.value};
    for (const RegionId s : subs) {
        EXPECT_TRUE(ids.insert(s.value).second);
        EXPECT_EQ(rt.Forest().ParentOf(s), parent);
        EXPECT_EQ(rt.Forest().RootOf(s), parent);
        EXPECT_EQ(rt.Forest().DepthOf(s), 1u);
    }
}

TEST(RegionTree, AliasingRules)
{
    Runtime rt;
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(a, 2);
    const auto grand = rt.PartitionRegion(subs[0], 2);
    const auto& forest = rt.Forest();
    // Self and ancestor/descendant alias.
    EXPECT_TRUE(forest.Aliases(a, a));
    EXPECT_TRUE(forest.Aliases(a, subs[0]));
    EXPECT_TRUE(forest.Aliases(subs[1], a));
    EXPECT_TRUE(forest.Aliases(a, grand[1]));
    EXPECT_TRUE(forest.Aliases(grand[0], subs[0]));
    // Disjoint siblings and cousins do not.
    EXPECT_FALSE(forest.Aliases(subs[0], subs[1]));
    EXPECT_FALSE(forest.Aliases(grand[0], grand[1]));
    EXPECT_FALSE(forest.Aliases(grand[0], subs[1]));
    // Different trees never alias.
    EXPECT_FALSE(forest.Aliases(a, b));
    EXPECT_FALSE(forest.Aliases(grand[0], b));
}

TEST(RegionTree, RemoveRequiresLeaf)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 2);
    EXPECT_THROW(rt.DestroyRegion(parent), RuntimeUsageError);
    rt.DestroyRegion(subs[0]);
    rt.DestroyRegion(subs[1]);
    rt.DestroyRegion(parent);  // now a leaf
    EXPECT_FALSE(rt.Forest().Contains(parent));
}

TEST(RegionTree, PartitionOfZeroThrows)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    EXPECT_THROW(rt.PartitionRegion(parent, 0), RuntimeUsageError);
}

TEST(PartitionAnalysis, SiblingsRunIndependently)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 2);
    rt.ExecuteTask(
        TaskLaunch{1, {{subs[0], 0, Privilege::kReadWrite, 0}}});
    rt.ExecuteTask(
        TaskLaunch{2, {{subs[1], 0, Privilege::kReadWrite, 0}}});
    EXPECT_TRUE(rt.Log()[1].dependences.empty());
}

TEST(PartitionAnalysis, ChildWriteOrdersAgainstParentWrite)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 2);
    rt.ExecuteTask(
        TaskLaunch{1, {{parent, 0, Privilege::kReadWrite, 0}}});
    rt.ExecuteTask(
        TaskLaunch{2, {{subs[0], 0, Privilege::kReadWrite, 0}}});
    EXPECT_EQ(Sources(rt.Log()[1]), (std::set<std::size_t>{0}));
}

TEST(PartitionAnalysis, ParentReadSeesChildWrites)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 3);
    for (std::size_t i = 0; i < subs.size(); ++i) {
        rt.ExecuteTask(TaskLaunch{
            static_cast<TaskId>(1 + i),
            {{subs[i], 0, Privilege::kWriteDiscard, 0}}});
    }
    rt.ExecuteTask(
        TaskLaunch{9, {{parent, 0, Privilege::kReadOnly, 0}}});
    EXPECT_EQ(Sources(rt.Log()[3]), (std::set<std::size_t>{0, 1, 2}));
}

TEST(PartitionAnalysis, ParentWriteFencesChildReaders)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 2);
    rt.ExecuteTask(
        TaskLaunch{1, {{subs[0], 0, Privilege::kReadOnly, 0}}});
    rt.ExecuteTask(
        TaskLaunch{2, {{subs[1], 0, Privilege::kReadOnly, 0}}});
    rt.ExecuteTask(
        TaskLaunch{3, {{parent, 0, Privilege::kWriteDiscard, 0}}});
    EXPECT_EQ(Sources(rt.Log()[2]), (std::set<std::size_t>{0, 1}));
}

TEST(PartitionAnalysis, GrandchildOrdersAgainstGrandparent)
{
    Runtime rt;
    const RegionId root = rt.CreateRegion();
    const auto mid = rt.PartitionRegion(root, 2);
    const auto leaf = rt.PartitionRegion(mid[0], 2);
    rt.ExecuteTask(TaskLaunch{1, {{root, 0, Privilege::kReadWrite, 0}}});
    rt.ExecuteTask(
        TaskLaunch{2, {{leaf[1], 0, Privilege::kReadOnly, 0}}});
    EXPECT_EQ(Sources(rt.Log()[1]), (std::set<std::size_t>{0}));
}

TEST(PartitionAnalysis, FieldsRemainIndependentAcrossTheTree)
{
    Runtime rt;
    const RegionId parent = rt.CreateRegion();
    const auto subs = rt.PartitionRegion(parent, 2);
    rt.ExecuteTask(
        TaskLaunch{1, {{parent, 0, Privilege::kReadWrite, 0}}});
    rt.ExecuteTask(
        TaskLaunch{2, {{subs[0], 1, Privilege::kReadWrite, 0}}});
    EXPECT_TRUE(rt.Log()[1].dependences.empty());
}

TEST(PartitionAnalysis, TracedPartitionStreamMatchesFreshAnalysis)
{
    // The payoff: a stencil over subregions with a periodic parent-
    // level boundary task, traced automatically, must produce the
    // same dependence graph as the untraced run.
    auto run = [](bool traced) {
        auto runtime = std::make_unique<Runtime>();
        core::ApopheniaConfig config;
        config.min_trace_length = 5;
        config.batchsize = 500;
        config.multi_scale_factor = 50;
        config.enabled = traced;
        core::Apophenia fe(*runtime, config);
        const RegionId grid = fe.CreateRegion();
        const auto shards = fe.PartitionRegion(grid, 4);
        for (int iter = 0; iter < 80; ++iter) {
            for (std::uint32_t g = 0; g < 4; ++g) {
                TaskLaunch stencil;
                stencil.task = 100 + g;
                stencil.shard = g;
                stencil.requirements.push_back(
                    {shards[g], 0, Privilege::kReadWrite, 0});
                if (g > 0) {
                    stencil.requirements.push_back(
                        {shards[g - 1], 0, Privilege::kReadOnly, 0});
                }
                fe.ExecuteTask(stencil);
            }
            // Whole-grid boundary conditions at the parent level.
            fe.ExecuteTask(TaskLaunch{
                200, {{grid, 0, Privilege::kReadWrite, 0}}});
        }
        fe.Flush();
        return runtime;
    };
    const auto traced = run(true);
    const auto fresh = run(false);
    ASSERT_EQ(traced->Log().size(), fresh->Log().size());
    for (std::size_t i = 0; i < traced->Log().size(); ++i) {
        ASSERT_EQ(traced->Log()[i].token, fresh->Log()[i].token);
        ASSERT_EQ(traced->Log()[i].dependences, fresh->Log()[i].dependences)
            << "op " << i;
    }
    EXPECT_GT(traced->Stats().tasks_replayed, 200u);
}

}  // namespace
}  // namespace apo::rt
