/**
 * @file
 * Differential tests of the incremental steady-state mining layer.
 *
 * The contract under test is bit-identity: IncrementalMiner::Mine must
 * return exactly what a from-scratch FindRepeats returns for every
 * window, whichever tier (fast path / repair / full rebuild) serves
 * it. The window sequences here are chosen to force every tier
 * transition — identical windows, grown windows, period changes
 * mid-stream, all-distinct token floods (table resets), single-token
 * runs, and shrink/grow patterns like the ruler schedule's wrap — plus
 * the scratch-reusing `*Into` overloads against their allocating
 * convenience twins, and the RankTable's order-preservation invariant
 * that makes the repair tier sound.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "strings/identifiers.h"
#include "strings/incremental.h"
#include "strings/repeats.h"
#include "strings/suffix_array.h"
#include "support/rng.h"
#include "test_util.h"

namespace apo::strings {
namespace {

using test::PeriodicSeq;
using test::RandomSeq;

Sequence FibonacciWord(std::size_t min_length)
{
    Sequence a{0}, b{1};
    while (a.size() < min_length) {
        Sequence next = a;
        next.insert(next.end(), b.begin(), b.end());
        b = a;
        a = std::move(next);
    }
    a.resize(min_length);
    return a;
}

Sequence ThueMorse(std::size_t n)
{
    Sequence s(n);
    for (std::size_t i = 0; i < n; ++i) {
        s[i] = static_cast<Symbol>(__builtin_popcountll(i) & 1);
    }
    return s;
}

void ExpectRepeatsEqual(const std::vector<Repeat>& got,
                        const std::vector<Repeat>& want,
                        const std::string& where)
{
    ASSERT_EQ(got.size(), want.size()) << where;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].tokens, want[i].tokens)
            << where << " repeat " << i;
        EXPECT_EQ(got[i].starts, want[i].starts)
            << where << " repeat " << i;
    }
}

/** Run every window through one persistent miner and a from-scratch
 * FindRepeats, demanding bit-identical repeat sets. */
void DifferentialRun(const std::vector<Sequence>& windows,
                     const RepeatOptions& options,
                     IncrementalMiner& miner)
{
    for (std::size_t w = 0; w < windows.size(); ++w) {
        const std::vector<Repeat>& got = miner.Mine(windows[w]);
        const std::vector<Repeat> want = FindRepeats(windows[w], options);
        ExpectRepeatsEqual(got, want,
                           "window " + std::to_string(w) + " (tier " +
                               std::to_string(static_cast<int>(
                                   miner.LastTier())) +
                               ")");
    }
    // Every window is classified into exactly one tier.
    const IncrementalMinerStats& stats = miner.Stats();
    EXPECT_EQ(stats.fast_path_hits + stats.repairs + stats.full_rebuilds,
              stats.windows);
}

TEST(IncrementalMiner, IdenticalWindowsTakeTheFastPath)
{
    const RepeatOptions options{.min_length = 4, .min_occurrences = 2};
    IncrementalMiner miner(options);
    const Sequence window = PeriodicSeq(256, 16);

    const std::vector<Repeat> want = FindRepeats(window, options);
    ExpectRepeatsEqual(miner.Mine(window), want, "first");
    EXPECT_EQ(miner.LastTier(), MiningTier::kFull);
    for (int i = 0; i < 5; ++i) {
        ExpectRepeatsEqual(miner.Mine(window), want, "repeat");
        EXPECT_EQ(miner.LastTier(), MiningTier::kFastPath);
    }
    EXPECT_EQ(miner.Stats().fast_path_hits, 5u);
    EXPECT_EQ(miner.Stats().full_rebuilds, 1u);
}

TEST(IncrementalMiner, GrownWindowsWithKnownSymbolsAreRepaired)
{
    const RepeatOptions options{.min_length = 4, .min_occurrences = 2};
    IncrementalMiner miner(options);
    const Sequence stream = PeriodicSeq(4096, 32);

    // Ruler-style growth: each window extends the previous one and
    // introduces no symbols the table has not admitted.
    std::vector<Sequence> windows;
    for (std::size_t len = 64; len <= 4096; len *= 2) {
        windows.emplace_back(stream.begin(), stream.begin() + len);
    }
    DifferentialRun(windows, options, miner);
    // Window 0 admits the whole alphabet; every later window splices
    // its predecessor's rank prefix.
    EXPECT_EQ(miner.Stats().full_rebuilds, 1u);
    EXPECT_EQ(miner.Stats().repairs, windows.size() - 1);
    EXPECT_EQ(miner.LastTier(), MiningTier::kRepair);
}

TEST(IncrementalMiner, PeriodChangeMidStreamStaysIdentical)
{
    const RepeatOptions options{.min_length = 4, .min_occurrences = 2};
    IncrementalMiner miner(options);

    // Phase one: period 8 (divides the 512 stride, so phase-one
    // windows are content-identical — the steady state). Phase two:
    // period 13 over a disjoint symbol range (novel alphabet, stride
    // not a multiple — every phase-two window is novel content).
    Sequence stream = PeriodicSeq(2048, 8);
    for (std::size_t i = 0; stream.size() < 4096; ++i) {
        stream.push_back(100 + (i % 13));
    }
    std::vector<Sequence> windows;
    for (std::size_t end = 512; end <= stream.size(); end += 512) {
        windows.emplace_back(stream.begin() + (end - 512),
                             stream.begin() + end);
    }
    DifferentialRun(windows, options, miner);
    EXPECT_GE(miner.Stats().fast_path_hits, 3u);  // phase-one steady state
    EXPECT_GE(miner.Stats().full_rebuilds, 2u);   // the period change
}

TEST(IncrementalMiner, AllDistinctTokensResetTheTableAndStayCorrect)
{
    const RepeatOptions options{.min_length = 2, .min_occurrences = 2};
    IncrementalMiner miner(options);

    // Every window is a fresh run of never-seen symbols: no repeats,
    // monotone alphabet growth, and eventually an alphabet-hygiene
    // reset of the persistent table.
    Symbol next = 1'000'000;
    std::vector<Sequence> windows;
    for (int w = 0; w < 40; ++w) {
        Sequence s(128);
        for (auto& v : s) {
            v = next++;
        }
        windows.push_back(std::move(s));
    }
    DifferentialRun(windows, options, miner);
    for (const Sequence& w : windows) {
        EXPECT_TRUE(FindRepeats(w, options).empty());
    }
    EXPECT_GT(miner.Stats().table_resets, 0u);
}

TEST(IncrementalMiner, SingleTokenRuns)
{
    const RepeatOptions options{.min_length = 4, .min_occurrences = 2};
    IncrementalMiner miner(options);
    std::vector<Sequence> windows;
    for (const std::size_t len : {64u, 64u, 96u, 32u, 7u, 200u}) {
        windows.push_back(Sequence(len, 42));
    }
    windows.push_back(Sequence(100, 43));  // different single symbol
    DifferentialRun(windows, options, miner);
}

TEST(IncrementalMiner, WindowShrinkAndGrowAtRingWrap)
{
    const RepeatOptions options{.min_length = 4, .min_occurrences = 2};
    IncrementalMiner miner(options);
    const Sequence stream = PeriodicSeq(8192, 64, /*noise_every=*/97);

    // The ruler schedule's wrap: lengths cycle small-large-small, each
    // window ending at a moving stream position (so shrink and grow
    // both happen against a shifted predecessor).
    std::vector<Sequence> windows;
    std::size_t at = 0;
    for (int cycle = 0; cycle < 12; ++cycle) {
        for (const std::size_t len : {256u, 512u, 2048u, 128u}) {
            const std::size_t end =
                std::min(stream.size(), at + len);
            windows.emplace_back(stream.begin() + (end - len),
                                 stream.begin() + end);
            at = (at + 64) % (stream.size() - 2048);
        }
    }
    DifferentialRun(windows, options, miner);
}

TEST(IncrementalMiner, AdversarialWordsAndRandomWindows)
{
    const RepeatOptions options{.min_length = 3, .min_occurrences = 2};
    IncrementalMiner miner(options);
    support::Rng rng(7);

    std::vector<Sequence> windows;
    windows.push_back(FibonacciWord(512));
    windows.push_back(FibonacciWord(800));  // grown: shared prefix
    windows.push_back(ThueMorse(777));
    for (int i = 0; i < 10; ++i) {
        windows.push_back(RandomSeq(rng, 300 + 37 * i, 5));
    }
    windows.push_back(ThueMorse(777));  // stale now, not the previous
    DifferentialRun(windows, options, miner);
}

TEST(IncrementalMiner, PrefixDoublingFallsBackAndStaysIdentical)
{
    const RepeatOptions options{.min_length = 4,
                                .min_occurrences = 2,
                                .suffix_algorithm =
                                    SuffixAlgorithm::kPrefixDoubling};
    IncrementalMiner miner(options);
    const Sequence stream = PeriodicSeq(2048, 24);
    std::vector<Sequence> windows;
    for (std::size_t len = 128; len <= 2048; len *= 2) {
        windows.emplace_back(stream.begin(), stream.begin() + len);
    }
    windows.push_back(windows.back());  // fast path works regardless
    DifferentialRun(windows, options, miner);
    EXPECT_EQ(miner.LastTier(), MiningTier::kFastPath);
}

TEST(IncrementalMiner, BelowViabilityWindowsYieldEmptySets)
{
    const RepeatOptions options{.min_length = 8, .min_occurrences = 2};
    IncrementalMiner miner(options);
    const Sequence tiny = PeriodicSeq(15, 4);  // < 2 * min_length
    EXPECT_TRUE(miner.Mine(tiny).empty());
    EXPECT_TRUE(FindRepeats(tiny, options).empty());
    // And a viable window right after is unaffected.
    const Sequence ok = PeriodicSeq(256, 4);
    ExpectRepeatsEqual(miner.Mine(ok), FindRepeats(ok, options), "ok");
}

TEST(IncrementalMiner, ResetDropsAllPersistentState)
{
    const RepeatOptions options{.min_length = 4, .min_occurrences = 2};
    IncrementalMiner miner(options);
    const Sequence window = PeriodicSeq(512, 16);
    miner.Mine(window);
    miner.Mine(window);
    EXPECT_EQ(miner.LastTier(), MiningTier::kFastPath);
    miner.Reset();
    ExpectRepeatsEqual(miner.Mine(window), FindRepeats(window, options),
                       "post-reset");
    EXPECT_EQ(miner.LastTier(), MiningTier::kFull);
}

TEST(RankTable, OrderPreservationMakesSuffixArraysIdentical)
{
    // The repair tier's soundness argument: a suffix array built over
    // persistent-table ranks equals the from-scratch one, even though
    // the table's alphabet is a superset of the window's.
    RankTable table;
    SuffixWorkspace workspace;
    std::vector<std::uint32_t> ranks;
    std::vector<std::size_t> sa;
    support::Rng rng(11);

    std::vector<Sequence> windows;
    windows.push_back(RandomSeq(rng, 400, 20));
    windows.push_back(RandomSeq(rng, 300, 50));   // new symbols
    windows.push_back(windows.front());           // old symbols again
    windows.push_back(PeriodicSeq(512, 8));
    for (const Sequence& w : windows) {
        ranks.resize(w.size() + 1);
        table.CompressInto(w, ranks.data());
        ranks[w.size()] = 0;
        SaisInto(ranks, table.AlphabetSize(), sa, workspace);
        EXPECT_EQ(sa, BuildSuffixArray(w, SuffixAlgorithm::kSais));
    }
}

TEST(RankTable, SecondCompressionOfKnownSymbolsAdmitsNothing)
{
    RankTable table;
    const Sequence w = PeriodicSeq(128, 16);
    std::vector<std::uint32_t> first(w.size()), second(w.size());
    EXPECT_EQ(table.CompressInto(w, first.data()), 16u);
    EXPECT_EQ(table.CompressInto(w, second.data()), 0u);
    EXPECT_EQ(first, second);  // rank stability: the splice invariant
    EXPECT_EQ(table.DistinctSymbols(), 16u);
    table.Clear();
    EXPECT_EQ(table.DistinctSymbols(), 0u);
    EXPECT_EQ(table.CompressInto(w, second.data()), 16u);
}

TEST(ScratchOverloads, MatchTheConvenienceLayerBitForBit)
{
    support::Rng rng(3);
    SuffixWorkspace workspace;
    RepeatsScratch repeats_scratch;
    TandemScratch tandem_scratch;
    std::vector<std::size_t> sa, lcp, inverse;
    std::vector<std::uint32_t> ranks;
    std::vector<Symbol> sorted;
    std::vector<Repeat> repeats, tandems;
    const RepeatOptions options{.min_length = 3, .min_occurrences = 2};

    std::vector<Sequence> inputs;
    inputs.push_back(FibonacciWord(600));
    inputs.push_back(ThueMorse(512));
    inputs.push_back(Sequence(300, 9));
    inputs.push_back(PeriodicSeq(1000, 12, /*noise_every=*/31));
    for (int i = 0; i < 8; ++i) {
        inputs.push_back(RandomSeq(rng, 50 + 113 * i, 7));
    }
    inputs.push_back(Sequence{});       // empty
    inputs.push_back(Sequence{5});      // single symbol
    // One workspace and scratch across all inputs, interleaved sizes:
    // the reuse path must not leak state between calls.
    for (const Sequence& s : inputs) {
        EXPECT_EQ(RankCompressInto(s, sorted, ranks),
                  static_cast<std::size_t>(
                      std::set<Symbol>(s.begin(), s.end()).size()));
        EXPECT_EQ(ranks, RankCompress(s));
        for (const SuffixAlgorithm algorithm :
             {SuffixAlgorithm::kSais, SuffixAlgorithm::kPrefixDoubling}) {
            BuildSuffixArrayInto(s, sa, workspace, algorithm);
            EXPECT_EQ(sa, BuildSuffixArray(s, algorithm));
        }
        ComputeLcpInto(s, sa, lcp, inverse);
        EXPECT_EQ(lcp, ComputeLcp(s, sa));
        FindRepeatsInto(s, options, repeats_scratch, repeats);
        ExpectRepeatsEqual(repeats, FindRepeats(s, options), "repeats");
        FindTandemRepeatsInto(s, 3, tandem_scratch, tandems);
        ExpectRepeatsEqual(tandems, FindTandemRepeats(s, 3), "tandems");
    }
}

TEST(ScratchOverloads, CommonPrefixLengthAgreesWithStdMismatch)
{
    support::Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const Sequence a = RandomSeq(rng, 1 + rng.UniformInt(0, 40), 3);
        Sequence b = a;
        if (rng.Bernoulli(0.7) && !b.empty()) {
            b[rng.UniformInt(0, b.size() - 1)] ^= 1;
        }
        const std::size_t limit = std::min(a.size(), b.size());
        const std::size_t want = static_cast<std::size_t>(
            std::mismatch(a.begin(), a.begin() + limit, b.begin()).first -
            a.begin());
        EXPECT_EQ(CommonPrefixLength(a.data(), b.data(), limit), want);
    }
}

}  // namespace
}  // namespace apo::strings
