/**
 * @file
 * Tests for the performance model's extended features: the blocking
 * future (application gate), the -lg:window run-ahead bound, and
 * simulating on transitively reduced graphs.
 */
#include <gtest/gtest.h>

#include "runtime/graph.h"
#include "sim/pipeline.h"

namespace apo::sim {
namespace {

rt::TaskLaunch Task(std::uint32_t shard, double exec_us, rt::RegionId r,
                    rt::Privilege priv, bool blocking = false)
{
    rt::TaskLaunch t{1, {{r, 0, priv, 0}}, exec_us, shard};
    t.blocking = blocking;
    return t;
}

PipelineOptions OneNode()
{
    PipelineOptions o;
    o.machine.nodes = 1;
    o.machine.gpus_per_node = 2;
    o.window = 0;  // unbounded unless a test sets it
    return o;
}

TEST(BlockingFuture, GatesSubsequentLaunches)
{
    rt::Runtime runtime;
    const rt::RegionId a = runtime.CreateRegion();
    const rt::RegionId b = runtime.CreateRegion();
    // Op 0 blocks the application; op 1 is independent but cannot be
    // launched until op 0 finishes executing.
    runtime.ExecuteTask(
        Task(0, 5000.0, a, rt::Privilege::kReadWrite, /*blocking=*/true));
    runtime.ExecuteTask(Task(1, 100.0, b, rt::Privilege::kReadWrite));
    const PipelineOptions o = OneNode();
    const PipelineResult result = SimulatePipeline(runtime.Log(), o);
    const double op0_finish =
        o.costs.launch_us + o.costs.analysis_us + 5000.0;
    EXPECT_DOUBLE_EQ(result.finish_us[0], op0_finish);
    // Op 1's launch waits for the gate, then analysis, then runs.
    EXPECT_DOUBLE_EQ(result.finish_us[1],
                     op0_finish + o.costs.launch_us + o.costs.analysis_us +
                         100.0);
}

TEST(BlockingFuture, NonBlockingTasksOverlapFreely)
{
    rt::Runtime runtime;
    const rt::RegionId a = runtime.CreateRegion();
    const rt::RegionId b = runtime.CreateRegion();
    runtime.ExecuteTask(Task(0, 5000.0, a, rt::Privilege::kReadWrite));
    runtime.ExecuteTask(Task(1, 100.0, b, rt::Privilege::kReadWrite));
    const PipelineOptions o = OneNode();
    const PipelineResult result = SimulatePipeline(runtime.Log(), o);
    // The second task finishes long before the first.
    EXPECT_LT(result.finish_us[1], result.finish_us[0]);
}

TEST(Window, BoundsAnalysisRunahead)
{
    // 50 independent 1000µs tasks on one GPU. Unbounded, the analysis
    // stage sprints ahead; with window = 1 it processes op i only
    // after op i-1 has finished executing — fully serial.
    rt::Runtime runtime;
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < 50; ++i) {
        regions.push_back(runtime.CreateRegion());
    }
    for (int i = 0; i < 50; ++i) {
        runtime.ExecuteTask(
            Task(0, 1000.0, regions[i], rt::Privilege::kReadWrite));
    }
    PipelineOptions o = OneNode();
    o.window = 0;
    const double unbounded = SimulatePipeline(runtime.Log(), o).makespan_us;
    o.window = 1;
    const double tight = SimulatePipeline(runtime.Log(), o).makespan_us;
    o.window = 30000;  // the artifact's setting: effectively unbounded here
    const double artifact = SimulatePipeline(runtime.Log(), o).makespan_us;
    EXPECT_GT(tight, unbounded * 1.5);
    EXPECT_DOUBLE_EQ(artifact, unbounded);
    // Serial bound: each op pays launch + analysis + execution.
    const double serial =
        50 * (o.costs.analysis_us + 1000.0) + o.costs.launch_us;
    EXPECT_NEAR(tight, serial, o.costs.launch_us * 50 + 1.0);
}

TEST(Reduction, SimulationTimingUnchangedByTransitiveReduction)
{
    // The reduced graph has the same closure, and in this DES the
    // same critical paths: makespan must be identical (cross-node
    // latency is charged per edge, but a removed edge is implied by a
    // path whose own latency dominates on a single node).
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    for (int i = 0; i < 30; ++i) {
        runtime.ExecuteTask(Task(0, 200.0, r, rt::Privilege::kReadWrite));
        runtime.ExecuteTask(Task(1, 200.0, r, rt::Privilege::kReadOnly));
    }
    PipelineOptions o = OneNode();
    const double plain = SimulatePipeline(runtime.Log(), o).makespan_us;
    o.inline_transitive_reduction = true;
    const double reduced = SimulatePipeline(runtime.Log(), o).makespan_us;
    EXPECT_DOUBLE_EQ(plain, reduced);
}

TEST(Reduction, ReducesEdgesOnRealStreams)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    // Reads accumulate; each write then depends on every reader AND
    // the previous writer — classic redundancy.
    for (int round = 0; round < 10; ++round) {
        runtime.ExecuteTask(Task(0, 100.0, r, rt::Privilege::kReadWrite));
        runtime.ExecuteTask(Task(0, 100.0, r, rt::Privilege::kReadOnly));
        runtime.ExecuteTask(Task(1, 100.0, r, rt::Privilege::kReadOnly));
    }
    rt::OperationLog log = runtime.Log().Clone();
    const std::size_t before = rt::CountEdges(log);
    const std::size_t removed = rt::TransitiveReduction(log);
    EXPECT_GT(removed, 0u);
    EXPECT_EQ(rt::CountEdges(log), before - removed);
}

}  // namespace
}  // namespace apo::sim
