/**
 * @file
 * svc::TraceService — the multi-tenant trace-finding service.
 *
 * The contracts under test, in dependency order:
 *  - token namespacing is a LaunchBuilder-boundary XOR fold: identity
 *    for namespace 0, self-inverse, survives Start();
 *  - the shared MiningCache is content-addressed by namespace-relative
 *    tokens: two tenants' identical kernels hit one entry, hits across
 *    namespaces are counted, eviction is counted;
 *  - a single-tenant service run is bit-identical — stream digest and
 *    candidate sets — to the direct harness, for every app skeleton;
 *  - tenants are isolated: disjoint token streams, no cross-tenant
 *    candidate pollution, per-tenant TraceCache (with its eviction
 *    counter surfaced);
 *  - M identical tenants mine each distinct window once service-wide
 *    and adopt cross-tenant at (M-1)/M of probes;
 *  - runs are deterministic for a fixed tenant set, seed and policy,
 *    and the deficit-weighted fair policy honors weights;
 *  - a replicated tenant (TenantOptions::replicas > 1) runs behind
 *    one sim::Cluster with one shared per-tenant decision engine,
 *    bit-identical to per-replica engines, and still shares the
 *    service-wide mining cache across tenants.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "api/launch.h"
#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "apps/torchswe.h"
#include "core/mining_cache.h"
#include "sim/cluster.h"
#include "sim/harness.h"
#include "support/executor.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace apo {
namespace {

// ---------------------------------------------------------------------------
// The namespace fold.

TEST(NamespaceFold, IdentityAndSelfInverse)
{
    EXPECT_EQ(rt::FoldNamespace(0, 0x1234u), 0x1234u);
    const rt::TokenHash ns = 0xabcdef0123456789ull;
    const rt::TokenHash token = 0x5eedf00dull;
    EXPECT_NE(rt::FoldNamespace(ns, token), token);
    EXPECT_EQ(rt::FoldNamespace(ns, rt::FoldNamespace(ns, token)), token);
}

TEST(NamespaceFold, LaunchBuilderBoundary)
{
    const rt::RegionRequirement req{rt::RegionId{3}, 1,
                                    rt::Privilege::kReadOnly, 0};
    api::LaunchBuilder plain;
    const rt::TokenHash classic =
        plain.Start(rt::TaskId{42}, 1, 10.0).Add(req).View().token;

    // Namespace 0 is the identity — the single-tenant guarantee.
    api::LaunchBuilder zero;
    zero.Namespace(0);
    EXPECT_EQ(zero.Start(rt::TaskId{42}, 1, 10.0).Add(req).View().token,
              classic);

    // A nonzero namespace is the XOR fold, and it survives Start().
    const rt::TokenHash ns = 0x7777777777777777ull;
    api::LaunchBuilder salted;
    salted.Namespace(ns);
    EXPECT_EQ(salted.Start(rt::TaskId{42}, 1, 10.0).Add(req).View().token,
              rt::FoldNamespace(ns, classic));
    EXPECT_EQ(salted.Start(rt::TaskId{42}, 1, 10.0).Add(req).View().token,
              rt::FoldNamespace(ns, classic));
    EXPECT_EQ(salted.GetNamespace(), ns);
}

// ---------------------------------------------------------------------------
// The namespace-aware mining cache.

std::vector<rt::TokenHash> SaltedWindow(
    const std::vector<rt::TokenHash>& window, rt::TokenHash ns)
{
    std::vector<rt::TokenHash> out = window;
    for (rt::TokenHash& token : out) {
        token = rt::FoldNamespace(ns, token);
    }
    return out;
}

TEST(MiningCacheNamespace, SaltedWindowsShareOneEntry)
{
    const std::vector<rt::TokenHash> window = {1, 2, 3, 4, 1, 2, 3, 4};
    const rt::TokenHash ns = 0xdead0000beefull;
    const std::vector<rt::TokenHash> salted = SaltedWindow(window, ns);

    // Namespace-relative content addresses are namespace-blind.
    EXPECT_EQ(core::MiningCache::KeyOf(window, 0),
              core::MiningCache::KeyOf(salted, ns));
    EXPECT_NE(core::MiningCache::KeyOf(window, 0),
              core::MiningCache::KeyOf(salted, 0));

    core::MiningCache cache;
    const core::MiningCache::Key key =
        core::MiningCache::KeyOf(window, 0);
    core::MiningCache::Claim claim =
        cache.AcquireOrBegin(key, std::span<const rt::TokenHash>(window), 0);
    ASSERT_TRUE(claim.miner);
    std::vector<core::CandidateTrace> mined(1);
    mined[0].tokens = {1, 2, 3, 4};
    mined[0].occurrences = 2.0;
    cache.Publish(key, window, std::move(mined), 0);

    // The other tenant probes with its salted window and adopts.
    claim = cache.AcquireOrBegin(
        core::MiningCache::KeyOf(salted, ns),
        std::span<const rt::TokenHash>(salted), ns);
    ASSERT_NE(claim.results, nullptr);
    EXPECT_FALSE(claim.miner);
    EXPECT_EQ(claim.owner, 0u);  // published by namespace 0

    // Stored candidates are namespace-relative; Rekey salts them into
    // the adopter's namespace, and is its own inverse.
    const std::vector<core::CandidateTrace> rekeyed =
        core::MiningCache::Rekey(*claim.results, ns);
    ASSERT_EQ(rekeyed.size(), 1u);
    EXPECT_EQ(rekeyed[0].tokens,
              SaltedWindow({1, 2, 3, 4}, ns));
    EXPECT_EQ(rekeyed[0].occurrences, 2.0);
    EXPECT_EQ(core::MiningCache::Rekey(rekeyed, ns)[0].tokens,
              (*claim.results)[0].tokens);

    const core::MiningCache::Stats stats = cache.Snapshot();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.windows, 1u);
    EXPECT_EQ(stats.cross_namespace_hits, 1u);
}

TEST(MiningCacheNamespace, SameNamespaceHitIsNotCross)
{
    const std::vector<rt::TokenHash> window = {9, 8, 7, 9, 8, 7};
    const rt::TokenHash ns = 0x42ull;
    core::MiningCache cache;
    const core::MiningCache::Key key =
        core::MiningCache::KeyOf(window, ns);
    core::MiningCache::Claim claim = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(window), ns);
    ASSERT_TRUE(claim.miner);
    cache.Publish(key, window, std::vector<core::CandidateTrace>{}, ns);
    claim = cache.AcquireOrBegin(
        key, std::span<const rt::TokenHash>(window), ns);
    ASSERT_NE(claim.results, nullptr);
    EXPECT_EQ(claim.owner, ns);
    const core::MiningCache::Stats stats = cache.Snapshot();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.cross_namespace_hits, 0u);
}

TEST(MiningCacheNamespace, EvictionsAreCounted)
{
    core::MiningCache cache(/*max_windows=*/2);
    for (std::uint64_t i = 0; i < 4; ++i) {
        const std::vector<rt::TokenHash> window = {i, i + 1, i, i + 1};
        const core::MiningCache::Key key =
            core::MiningCache::KeyOf(window, 0);
        const core::MiningCache::Claim claim = cache.AcquireOrBegin(
            key, std::span<const rt::TokenHash>(window), 0);
        ASSERT_TRUE(claim.miner);
        cache.Publish(key, window, std::vector<core::CandidateTrace>{},
                      0);
    }
    EXPECT_EQ(cache.Snapshot().evictions, 2u);
    EXPECT_EQ(cache.Size(), 2u);
}

// ---------------------------------------------------------------------------
// Single-tenant bit-identity against the direct harness.

core::ApopheniaConfig TestConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 10;
    config.batchsize = 1500;
    config.multi_scale_factor = 100;
    return config;
}

/** Drive one app through a single-tenant service and through the
 * direct harness with the same knobs; the issued stream and the
 * ingested candidate sets must agree bit for bit. */
template <typename App, typename Options>
void ExpectSingleTenantIdentity(const Options& app_options,
                                std::size_t iterations)
{
    sim::ExperimentOptions direct_options;
    direct_options.mode = sim::TracingMode::kAuto;
    direct_options.iterations = iterations;
    direct_options.machine = app_options.machine;
    direct_options.auto_config = TestConfig();
    App direct_app(app_options);
    const sim::ExperimentResult direct =
        sim::RunExperiment(direct_app, direct_options);
    ASSERT_NE(direct.stream_digest_ops, 0u);

    svc::ServiceOptions service_options;
    service_options.machine = app_options.machine;
    service_options.config = TestConfig();
    svc::TraceService service(service_options);
    App tenant_app(app_options);
    svc::TenantOptions tenant;
    tenant.name = std::string(tenant_app.Name());
    tenant.app = &tenant_app;
    tenant.iterations = iterations;
    service.AddTenant(tenant);
    EXPECT_EQ(service.TenantNamespace(0), 0u);
    const svc::ServiceResult result = service.Run();

    ASSERT_EQ(result.tenants.size(), 1u);
    const svc::TenantStats& stats = result.tenants[0];
    const sim::ExperimentResult& experiment = result.experiments[0];
    EXPECT_EQ(stats.stream_digest, direct.stream_digest);
    EXPECT_EQ(stats.stream_digest_ops, direct.stream_digest_ops);
    EXPECT_EQ(experiment.total_tasks, direct.total_tasks);
    EXPECT_EQ(experiment.iterations_per_second,
              direct.iterations_per_second);
    EXPECT_EQ(experiment.makespan_us, direct.makespan_us);
    EXPECT_EQ(experiment.replayed_fraction, direct.replayed_fraction);
    EXPECT_EQ(experiment.apophenia_stats.trace_replays,
              direct.apophenia_stats.trace_replays);
    EXPECT_EQ(experiment.apophenia_stats.trace_records,
              direct.apophenia_stats.trace_records);
    EXPECT_EQ(experiment.apophenia_stats.candidates_ingested,
              direct.apophenia_stats.candidates_ingested);
    // Latency in a single-tenant closed loop is identically zero —
    // the tenant is granted the moment it becomes ready.
    EXPECT_EQ(stats.p50_issue_latency, 0.0);
    EXPECT_EQ(stats.p99_issue_latency, 0.0);
}

TEST(SingleTenantIdentity, S3d)
{
    apps::S3dOptions options;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    ExpectSingleTenantIdentity<apps::S3dApplication>(options, 15);
}

TEST(SingleTenantIdentity, Htr)
{
    apps::HtrOptions options;
    options.machine.nodes = 2;
    options.machine.gpus_per_node = 2;
    ExpectSingleTenantIdentity<apps::HtrApplication>(options, 15);
}

TEST(SingleTenantIdentity, Cfd)
{
    apps::CfdOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 4;
    ExpectSingleTenantIdentity<apps::CfdApplication>(options, 25);
}

TEST(SingleTenantIdentity, TorchSwe)
{
    apps::TorchSweOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 4;
    ExpectSingleTenantIdentity<apps::TorchSweApplication>(options, 15);
}

TEST(SingleTenantIdentity, FlexFlow)
{
    apps::FlexFlowOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 4;
    ExpectSingleTenantIdentity<apps::FlexFlowApplication>(options, 15);
}

/** Same check for the synthetic workload, which also pins that the
 * generator is deterministic for a fixed seed. */
TEST(SingleTenantIdentity, SyntheticWorkload)
{
    svc::SyntheticOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 4;
    options.seed = 3;
    ExpectSingleTenantIdentity<svc::SyntheticWorkload>(options, 20);
}

// ---------------------------------------------------------------------------
// Tenant isolation.

svc::SyntheticOptions Synthetic(std::uint64_t seed)
{
    svc::SyntheticOptions options;
    options.machine.nodes = 1;
    options.machine.gpus_per_node = 4;
    options.seed = seed;
    options.kernel_tasks = 32;
    return options;
}

TEST(TenantIsolation, TokenStreamsAreDisjoint)
{
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    svc::TraceService service(service_options);
    svc::SyntheticWorkload a(Synthetic(7));
    svc::SyntheticWorkload b(Synthetic(7));  // identical kernels...
    svc::TenantOptions ta;
    ta.name = "a";
    ta.app = &a;
    ta.iterations = 10;
    svc::TenantOptions tb = ta;
    tb.name = "b";
    tb.app = &b;
    service.AddTenant(ta);
    service.AddTenant(tb);
    EXPECT_EQ(service.TenantNamespace(0), 0u);
    EXPECT_NE(service.TenantNamespace(1), 0u);
    (void)service.Run();

    // ...yet the issued token streams never collide: the namespace
    // fold keeps tenant b's tokens disjoint from tenant a's.
    std::set<rt::TokenHash> tokens_a;
    const rt::OperationLog& log_a = service.TenantRuntime(0).Log();
    for (std::size_t i = 0; i < log_a.size(); ++i) {
        tokens_a.insert(log_a[i].token);
    }
    const rt::OperationLog& log_b = service.TenantRuntime(1).Log();
    for (std::size_t i = 0; i < log_b.size(); ++i) {
        EXPECT_EQ(tokens_a.count(log_b[i].token), 0u)
            << "tenant token collision at op " << i;
    }
}

TEST(TenantIsolation, TraceCacheEvictionsSurfacePerTenant)
{
    // Tenant 0 runs with an unbounded TraceCache in the direct
    // harness as the reference; the bounded service run must evict
    // and report it per tenant.
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    service_options.max_trace_templates = 1;
    svc::TraceService service(service_options);
    apps::CfdApplication app(apps::CfdOptions{});
    svc::TenantOptions tenant;
    tenant.name = "cfd";
    tenant.app = &app;
    tenant.iterations = 60;
    service.AddTenant(tenant);
    const svc::ServiceResult result = service.Run();
    EXPECT_EQ(result.tenants[0].trace_cache_evictions,
              result.experiments[0].runtime_stats.traces_evicted);
    EXPECT_EQ(result.tenants[0].trace_cache_evictions,
              result.experiments[0].trace_cache_evictions);
    EXPECT_GT(result.tenants[0].trace_cache_evictions, 0u);
}

TEST(TenantIsolation, HarnessSurfacesEvictions)
{
    // The same counter through the single-run harness (satellite:
    // ExperimentResult::trace_cache_evictions).
    sim::ExperimentOptions options;
    options.mode = sim::TracingMode::kAuto;
    options.iterations = 60;
    options.auto_config = TestConfig();
    options.max_trace_templates = 1;
    apps::CfdApplication bounded(apps::CfdOptions{});
    const sim::ExperimentResult with_bound =
        sim::RunExperiment(bounded, options);
    EXPECT_EQ(with_bound.trace_cache_evictions,
              with_bound.runtime_stats.traces_evicted);
    EXPECT_GT(with_bound.trace_cache_evictions, 0u);

    options.max_trace_templates = 0;
    apps::CfdApplication unbounded(apps::CfdOptions{});
    const sim::ExperimentResult without_bound =
        sim::RunExperiment(unbounded, options);
    EXPECT_EQ(without_bound.trace_cache_evictions, 0u);
}

// ---------------------------------------------------------------------------
// Cross-tenant mining dedup.

TEST(CrossTenantSharing, IdenticalTenantsMineEachWindowOnce)
{
    constexpr std::size_t kTenants = 4;
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    svc::TraceService service(service_options);
    std::vector<std::unique_ptr<svc::SyntheticWorkload>> apps;
    for (std::size_t t = 0; t < kTenants; ++t) {
        apps.push_back(
            std::make_unique<svc::SyntheticWorkload>(Synthetic(7)));
        svc::TenantOptions tenant;
        tenant.name = "t" + std::to_string(t);
        tenant.app = apps.back().get();
        tenant.iterations = 30;
        service.AddTenant(tenant);
    }
    const svc::ServiceResult result = service.Run();

    const core::MiningCache::Stats cache = result.mining_cache;
    ASSERT_GT(cache.hits + cache.misses, 0u);
    // Each distinct window was mined once service-wide...
    EXPECT_EQ(cache.misses, cache.windows);
    // ...and of all probes, >= (M-1)/M were served by another
    // tenant's published mining.
    const double want = static_cast<double>(kTenants - 1) /
                        static_cast<double>(kTenants);
    EXPECT_GE(result.cross_tenant_sharing, want - 1e-9);

    // Per-tenant accounting sums to the service-wide counters, and
    // identical tenants make identical replay decisions.
    std::uint64_t cross = 0;
    for (const svc::TenantStats& tenant : result.tenants) {
        cross += tenant.cross_tenant_mining_hits;
        EXPECT_EQ(tenant.iterations_completed, 30u);
        EXPECT_EQ(tenant.tokens_issued,
                  result.tenants[0].tokens_issued);
        EXPECT_EQ(tenant.trace_cache_hit_rate,
                  result.tenants[0].trace_cache_hit_rate);
    }
    EXPECT_EQ(cross, cache.cross_namespace_hits);
}

TEST(CrossTenantSharing, DisjointTenantsNeverCross)
{
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    svc::TraceService service(service_options);
    svc::SyntheticWorkload a(Synthetic(11));
    svc::SyntheticWorkload b(Synthetic(12));
    svc::TenantOptions ta;
    ta.name = "a";
    ta.app = &a;
    ta.iterations = 20;
    svc::TenantOptions tb = ta;
    tb.name = "b";
    tb.app = &b;
    service.AddTenant(ta);
    service.AddTenant(tb);
    const svc::ServiceResult result = service.Run();
    EXPECT_EQ(result.mining_cache.cross_namespace_hits, 0u);
    EXPECT_EQ(result.cross_tenant_sharing, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism and admission policies.

svc::ServiceResult RunThreeTenants(svc::AdmissionPolicy* policy,
                                   double weight0 = 1.0)
{
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    service_options.policy = policy;
    svc::TraceService service(service_options);
    svc::SyntheticWorkload a(Synthetic(21));
    svc::SyntheticWorkload b(Synthetic(22));
    svc::SyntheticWorkload c(Synthetic(23));
    svc::TenantOptions tenant;
    tenant.iterations = 16;
    tenant.name = "a";
    tenant.app = &a;
    tenant.weight = weight0;
    service.AddTenant(tenant);
    tenant.name = "b";
    tenant.app = &b;
    tenant.weight = 1.0;
    service.AddTenant(tenant);
    tenant.name = "c";
    tenant.app = &c;
    tenant.weight = 1.0;
    tenant.arrival_gap = 25;  // one open-loop tenant in the mix
    service.AddTenant(tenant);
    return service.Run();
}

TEST(ServiceDeterminism, FixedSeedAndPolicyReproduce)
{
    svc::RoundRobinPolicy rr1;
    svc::RoundRobinPolicy rr2;
    const svc::ServiceResult one = RunThreeTenants(&rr1);
    const svc::ServiceResult two = RunThreeTenants(&rr2);
    ASSERT_EQ(one.tenants.size(), two.tenants.size());
    EXPECT_EQ(one.virtual_time, two.virtual_time);
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
        EXPECT_EQ(one.tenants[t].stream_digest,
                  two.tenants[t].stream_digest);
        EXPECT_EQ(one.tenants[t].candidate_digest,
                  two.tenants[t].candidate_digest);
        EXPECT_EQ(one.tenants[t].p99_issue_latency,
                  two.tenants[t].p99_issue_latency);
    }

    svc::DeficitWeightedFairPolicy dwf1;
    svc::DeficitWeightedFairPolicy dwf2;
    const svc::ServiceResult three = RunThreeTenants(&dwf1);
    const svc::ServiceResult four = RunThreeTenants(&dwf2);
    EXPECT_EQ(three.virtual_time, four.virtual_time);
    for (std::size_t t = 0; t < three.tenants.size(); ++t) {
        EXPECT_EQ(three.tenants[t].stream_digest,
                  four.tenants[t].stream_digest);
        EXPECT_EQ(three.tenants[t].p99_issue_latency,
                  four.tenants[t].p99_issue_latency);
    }

    // The per-tenant *streams* are policy-independent (isolation);
    // only the latency profile moves with the interleave.
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
        EXPECT_EQ(one.tenants[t].stream_digest,
                  three.tenants[t].stream_digest);
        EXPECT_EQ(one.tenants[t].candidate_digest,
                  three.tenants[t].candidate_digest);
    }
}

TEST(AdmissionPolicy, DeficitWeightedFairHonorsWeights)
{
    // Two always-ready closed-loop tenants, weight 4 vs 1: the heavy
    // tenant is granted in deficit-sized bursts, so its worst-case
    // wait is one light-tenant burst while the light tenant's is one
    // heavy-tenant burst — p99 latency orders by the inverse weights.
    // (p50 is 0 for both: most grants in a burst are back-to-back,
    // and whichever tenant finishes last runs uncontended.)
    svc::DeficitWeightedFairPolicy policy(64);
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    service_options.policy = &policy;
    svc::TraceService service(service_options);
    svc::SyntheticWorkload heavy(Synthetic(31));
    svc::SyntheticWorkload light(Synthetic(32));
    svc::TenantOptions tenant;
    tenant.iterations = 24;
    tenant.name = "heavy";
    tenant.app = &heavy;
    tenant.weight = 4.0;
    service.AddTenant(tenant);
    tenant.name = "light";
    tenant.app = &light;
    tenant.weight = 1.0;
    service.AddTenant(tenant);
    const svc::ServiceResult result = service.Run();
    EXPECT_GT(result.tenants[1].p99_issue_latency, 0.0);
    EXPECT_LT(result.tenants[0].p99_issue_latency,
              result.tenants[1].p99_issue_latency);
}

// ---------------------------------------------------------------------------
// The pooled-executor configuration (the TSan leg's target): mining
// jobs of all tenants run on shared background threads, racing on the
// shared cache; with eager-drain ingestion the outcome must equal the
// deterministic inline service bit for bit.

TEST(ServiceConcurrency, PooledMiningMatchesInline)
{
    auto run = [](support::Executor* executor) {
        svc::ServiceOptions service_options;
        service_options.config = TestConfig();
        service_options.config.ingest_mode = core::IngestMode::kEagerDrain;
        service_options.executor = executor;
        svc::TraceService service(service_options);
        std::vector<std::unique_ptr<svc::SyntheticWorkload>> apps;
        for (std::size_t t = 0; t < 3; ++t) {
            apps.push_back(
                std::make_unique<svc::SyntheticWorkload>(Synthetic(7)));
            svc::TenantOptions tenant;
            tenant.name = "t" + std::to_string(t);
            tenant.app = apps.back().get();
            tenant.iterations = 20;
            service.AddTenant(tenant);
        }
        return service.Run();
    };

    const svc::ServiceResult inline_run = run(nullptr);
    support::PooledExecutor pool(4);
    const svc::ServiceResult pooled_run = run(&pool);
    ASSERT_EQ(pooled_run.tenants.size(), inline_run.tenants.size());
    for (std::size_t t = 0; t < inline_run.tenants.size(); ++t) {
        EXPECT_EQ(pooled_run.tenants[t].stream_digest,
                  inline_run.tenants[t].stream_digest);
        EXPECT_EQ(pooled_run.tenants[t].stream_digest_ops,
                  inline_run.tenants[t].stream_digest_ops);
        EXPECT_EQ(pooled_run.tenants[t].candidate_digest,
                  inline_run.tenants[t].candidate_digest);
    }
    EXPECT_EQ(pooled_run.mining_cache.windows,
              inline_run.mining_cache.windows);
}

// ---------------------------------------------------------------------------
// Open-loop latency accounting.

TEST(OpenLoop, QueueingShowsUpInLatency)
{
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    svc::TraceService service(service_options);
    // A busy closed-loop tenant plus an open-loop tenant arriving
    // faster than the service can serve both: the open-loop tenant
    // must queue, and its measured latency must be nonzero.
    svc::SyntheticWorkload busy(Synthetic(41));
    svc::SyntheticWorkload open(Synthetic(42));
    svc::TenantOptions tenant;
    tenant.name = "busy";
    tenant.app = &busy;
    tenant.iterations = 20;
    service.AddTenant(tenant);
    tenant.name = "open";
    tenant.app = &open;
    tenant.iterations = 20;
    tenant.arrival_gap = 5;  // far below the per-iteration task cost
    service.AddTenant(tenant);
    const svc::ServiceResult result = service.Run();
    EXPECT_EQ(result.tenants[1].iterations_completed, 20u);
    EXPECT_GT(result.tenants[1].p99_issue_latency, 0.0);
    EXPECT_GE(result.tenants[1].p99_issue_latency,
              result.tenants[1].p50_issue_latency);
}

// ---------------------------------------------------------------------------
// Replicated tenants: one decision engine per tenant cluster.

/** A replicated-tenant run whose app and service outlive the result
 * (TenantOptions borrows the app pointer). */
struct ReplicatedRun {
    std::unique_ptr<svc::SyntheticWorkload> app;
    std::unique_ptr<svc::TraceService> service;
    svc::ServiceResult result;
};

ReplicatedRun RunReplicatedTenant(bool shared, std::size_t replicas)
{
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    service_options.shared_decisions = shared;
    service_options.replication.seed = 7;
    service_options.replication.mean_latency_tasks = 120.0;
    service_options.replication.jitter = 0.6;
    ReplicatedRun run;
    run.app = std::make_unique<svc::SyntheticWorkload>(Synthetic(31));
    run.service = std::make_unique<svc::TraceService>(service_options);
    svc::TenantOptions tenant;
    tenant.name = "wide";
    tenant.app = run.app.get();
    tenant.iterations = 25;
    tenant.replicas = replicas;
    run.service->AddTenant(tenant);
    run.result = run.service->Run();
    return run;
}

TEST(ReplicatedTenant, SharedEngineIsBitIdenticalToPerReplicaEngines)
{
    const ReplicatedRun shared = RunReplicatedTenant(true, 3);
    const ReplicatedRun per_node = RunReplicatedTenant(false, 3);

    // Both runs stand behind a 3-node cluster whose replicas agree.
    const sim::Cluster* shared_cluster = shared.service->TenantCluster(0);
    const sim::Cluster* per_node_cluster =
        per_node.service->TenantCluster(0);
    ASSERT_NE(shared_cluster, nullptr);
    ASSERT_NE(per_node_cluster, nullptr);
    EXPECT_TRUE(shared_cluster->SharedDecisions());
    EXPECT_FALSE(per_node_cluster->SharedDecisions());
    EXPECT_TRUE(shared_cluster->StreamDigestsAgree());
    EXPECT_TRUE(per_node_cluster->StreamDigestsAgree());

    // Tenant-level identity: the shared engine changed nothing the
    // tenant can observe.
    ASSERT_EQ(shared.result.tenants.size(), 1u);
    ASSERT_EQ(per_node.result.tenants.size(), 1u);
    const svc::TenantStats& a = shared.result.tenants[0];
    const svc::TenantStats& b = per_node.result.tenants[0];
    EXPECT_EQ(a.stream_digest, b.stream_digest);
    EXPECT_EQ(a.stream_digest_ops, b.stream_digest_ops);
    EXPECT_EQ(a.candidate_digest, b.candidate_digest);
    EXPECT_EQ(a.tokens_issued, b.tokens_issued);
    EXPECT_EQ(a.tokens_replayed, b.tokens_replayed);
    EXPECT_EQ(a.trace_cache_hit_rate, b.trace_cache_hit_rate);
    EXPECT_EQ(a.iterations_completed, 25u);
    EXPECT_EQ(b.iterations_completed, 25u);

    // Experiment-level identity plus the decision-path accounting:
    // only the shared run broadcast decisions, and neither diverged.
    const sim::ExperimentResult& se = shared.result.experiments[0];
    const sim::ExperimentResult& pe = per_node.result.experiments[0];
    EXPECT_TRUE(se.shared_decisions);
    EXPECT_FALSE(pe.shared_decisions);
    EXPECT_GT(se.decision_batches, 0u);
    EXPECT_GT(se.decisions_broadcast, 0u);
    EXPECT_EQ(se.decision_fallbacks, 0u);
    EXPECT_EQ(pe.decisions_broadcast, 0u);
    EXPECT_EQ(se.total_tasks, pe.total_tasks);
    EXPECT_EQ(se.replayed_fraction, pe.replayed_fraction);
    EXPECT_EQ(se.coordination.jobs_coordinated,
              pe.coordination.jobs_coordinated);
    EXPECT_EQ(se.coordination.final_slack, pe.coordination.final_slack);
    ASSERT_EQ(se.node_metrics.size(), 3u);
    ASSERT_EQ(pe.node_metrics.size(), 3u);

    // The shared decider is what any per-node engine would have been.
    EXPECT_EQ(shared.service->TenantEngine(0).CandidateDigest(),
              per_node.service->TenantEngine(0).CandidateDigest());
    const core::ApopheniaStats ss =
        shared.service->TenantEngine(0).Stats();
    const core::ApopheniaStats ps =
        per_node.service->TenantEngine(0).Stats();
    EXPECT_EQ(ss.tasks_observed, ps.tasks_observed);
    EXPECT_EQ(ss.trace_records, ps.trace_records);
    EXPECT_EQ(ss.trace_replays, ps.trace_replays);
    EXPECT_EQ(ss.candidates_ingested, ps.candidates_ingested);
    EXPECT_GT(ss.trace_replays, 0u);
}

TEST(ReplicatedTenant, CrossTenantSharingComposesWithReplication)
{
    // Two identical-kernel tenants, each 2-wide: each tenant mines
    // once for all its replicas, the *service* mines each window once
    // for both tenants, and half the probes cross tenants.
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    service_options.replication.seed = 7;
    svc::TraceService service(service_options);
    svc::SyntheticWorkload a(Synthetic(7));
    svc::SyntheticWorkload b(Synthetic(7));
    svc::TenantOptions tenant;
    tenant.iterations = 25;
    tenant.replicas = 2;
    tenant.name = "a";
    tenant.app = &a;
    service.AddTenant(tenant);
    tenant.name = "b";
    tenant.app = &b;
    service.AddTenant(tenant);
    const svc::ServiceResult result = service.Run();

    const core::MiningCache::Stats cache = result.mining_cache;
    ASSERT_GT(cache.hits + cache.misses, 0u);
    EXPECT_EQ(cache.misses, cache.windows);
    EXPECT_GT(cache.cross_namespace_hits, 0u);
    EXPECT_GE(result.cross_tenant_sharing, 0.5 - 1e-9);

    for (std::size_t t = 0; t < 2; ++t) {
        const sim::Cluster* cluster = service.TenantCluster(t);
        ASSERT_NE(cluster, nullptr);
        EXPECT_TRUE(cluster->SharedDecisions());
        EXPECT_TRUE(cluster->StreamDigestsAgree());
        EXPECT_EQ(result.tenants[t].iterations_completed, 25u);
    }
    // Identical tenants stay bit-identical even when replicated.
    EXPECT_EQ(result.tenants[0].tokens_issued,
              result.tenants[1].tokens_issued);
    EXPECT_EQ(result.tenants[0].trace_cache_hit_rate,
              result.tenants[1].trace_cache_hit_rate);
}

TEST(ReplicatedTenant, MixesWithUnreplicatedTenants)
{
    svc::ServiceOptions service_options;
    service_options.config = TestConfig();
    svc::TraceService service(service_options);
    svc::SyntheticWorkload flat(Synthetic(51));
    svc::SyntheticWorkload wide(Synthetic(52));
    svc::TenantOptions tenant;
    tenant.iterations = 20;
    tenant.name = "flat";
    tenant.app = &flat;
    service.AddTenant(tenant);
    tenant.name = "wide";
    tenant.app = &wide;
    tenant.replicas = 3;
    service.AddTenant(tenant);
    const svc::ServiceResult result = service.Run();

    EXPECT_EQ(service.TenantCluster(0), nullptr);
    ASSERT_NE(service.TenantCluster(1), nullptr);
    EXPECT_TRUE(service.TenantCluster(1)->StreamDigestsAgree());
    EXPECT_EQ(result.tenants[0].iterations_completed, 20u);
    EXPECT_EQ(result.tenants[1].iterations_completed, 20u);
    EXPECT_EQ(result.experiments[0].node_metrics.size(), 0u);
    EXPECT_EQ(result.experiments[1].node_metrics.size(), 3u);
    EXPECT_FALSE(result.experiments[0].shared_decisions);
    EXPECT_TRUE(result.experiments[1].shared_decisions);
}

}  // namespace
}  // namespace apo
