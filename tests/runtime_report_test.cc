/**
 * @file
 * Tests for the execution report formatting.
 */
#include <gtest/gtest.h>

#include "runtime/report.h"

namespace apo::rt {
namespace {

TEST(Report, FormatsAllCounters)
{
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    for (int i = 0; i < 3; ++i) {
        rt.BeginTrace(1);
        rt.ExecuteTask(TaskLaunch{1, {{r, 0, Privilege::kReadOnly, 0}}});
        rt.EndTrace(1);
    }
    rt.ExecuteTask(TaskLaunch{2, {{r, 0, Privilege::kReadOnly, 0}}});
    const std::string report = FormatStats(rt.Stats());
    EXPECT_NE(report.find("tasks total"), std::string::npos);
    EXPECT_NE(report.find("4"), std::string::npos);
    EXPECT_NE(report.find("replayed fraction"), std::string::npos);
    EXPECT_NE(report.find("trace replays"), std::string::npos);
    // Cache summary mentions the single one-task template.
    EXPECT_EQ(FormatTraceCache(rt.Traces()),
              "1 trace template(s) memoizing 1 task(s)\n");
}

TEST(Report, EmptyRuntime)
{
    Runtime rt;
    const std::string report = FormatStats(rt.Stats());
    EXPECT_NE(report.find("tasks total"), std::string::npos);
    EXPECT_NE(report.find("0.0%"), std::string::npos);
    EXPECT_EQ(FormatTraceCache(rt.Traces()),
              "0 trace template(s) memoizing 0 task(s)\n");
}

}  // namespace
}  // namespace apo::rt
