/**
 * @file
 * Tests for the non-overlapping repeated substring miner (paper
 * Algorithm 2). Includes the paper's worked example (figure 4),
 * structural invariants, and randomized property sweeps against the
 * exact DP coverage oracle.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "support/intervals.h"
#include "support/rng.h"
#include "test_util.h"

namespace apo::strings {
namespace {

using apo::test::PeriodicSeq;
using apo::test::RandomSeq;
using apo::test::Seq;
using apo::test::Str;

/** Check the structural invariants every FindRepeats result must obey:
 * every reported occurrence really matches, lengths respect the
 * minimum, all selected intervals are pairwise disjoint, and contents
 * are deduplicated. */
void CheckInvariants(const Sequence& s, const std::vector<Repeat>& repeats,
                     std::size_t min_length)
{
    support::IntervalSet all;
    std::set<Sequence> contents;
    for (const Repeat& r : repeats) {
        EXPECT_GE(r.Length(), min_length);
        EXPECT_FALSE(r.starts.empty());
        EXPECT_TRUE(contents.insert(r.tokens).second)
            << "duplicate repeat content";
        EXPECT_TRUE(std::is_sorted(r.starts.begin(), r.starts.end()));
        for (std::size_t start : r.starts) {
            ASSERT_LE(start + r.Length(), s.size());
            EXPECT_TRUE(std::equal(r.tokens.begin(), r.tokens.end(),
                                   s.begin() + start))
                << "occurrence does not match content";
            EXPECT_TRUE(all.InsertIfDisjoint(start, start + r.Length()))
                << "overlapping selected occurrences";
        }
    }
}

TEST(FindRepeats, PaperFigure4Example)
{
    // Figure 4: FindRepeats("aabcbcbaa") with min length 2 yields
    // {aa, bc} with two occurrences each.
    const Sequence s = Seq("aabcbcbaa");
    const auto repeats = FindRepeats(s, {.min_length = 2});
    CheckInvariants(s, repeats, 2);
    ASSERT_EQ(repeats.size(), 2u);
    std::set<std::string> found;
    for (const auto& r : repeats) {
        found.insert(Str(r.tokens));
        EXPECT_EQ(r.starts.size(), 2u);
    }
    EXPECT_TRUE(found.count("aa"));
    EXPECT_TRUE(found.count("bc"));
}

TEST(FindRepeats, EmptyAndTinyInputs)
{
    EXPECT_TRUE(FindRepeats({}, {.min_length = 2}).empty());
    EXPECT_TRUE(FindRepeats(Seq("a"), {.min_length = 2}).empty());
    EXPECT_TRUE(FindRepeats(Seq("ab"), {.min_length = 2}).empty());
    EXPECT_TRUE(FindRepeats(Seq("abc"), {.min_length = 2}).empty());
}

TEST(FindRepeats, NoRepeatsInAllDistinctStream)
{
    Sequence s(100);
    for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = i;
    }
    EXPECT_TRUE(FindRepeats(s, {.min_length = 2}).empty());
}

TEST(FindRepeats, PureTandemLoopIsFullyCovered)
{
    // A perfectly iterative program: loop body of 5 tasks, 20 times.
    const Sequence s = PeriodicSeq(100, 5);
    const auto repeats = FindRepeats(s, {.min_length = 2});
    CheckInvariants(s, repeats, 2);
    EXPECT_EQ(TotalCoverage(repeats), 100u);
    // All coverage should come from a small trace set (the loop body
    // or a small multiple of it), not from many fragments.
    EXPECT_LE(repeats.size(), 3u);
}

TEST(FindRepeats, FindsLoopDespiteConvergenceChecks)
{
    // The paper's motivation for relaxing tandem repeats: a repetitive
    // main loop interrupted by irregular one-off operations.
    const Sequence s = PeriodicSeq(400, 10, 35);
    const auto repeats = FindRepeats(s, {.min_length = 5});
    CheckInvariants(s, repeats, 5);
    // The loop body must still be discovered with high coverage.
    EXPECT_GE(TotalCoverage(repeats), s.size() * 3 / 4);
}

TEST(FindRepeats, MinLengthFiltersShortRepeats)
{
    const Sequence s = Seq("abab" "xy" "abab");
    const auto repeats = FindRepeats(s, {.min_length = 4});
    CheckInvariants(s, repeats, 4);
    for (const auto& r : repeats) {
        EXPECT_GE(r.Length(), 4u);
    }
    // "abab" repeats disjointly (positions 0 and 6).
    ASSERT_FALSE(repeats.empty());
    EXPECT_EQ(Str(repeats.front().tokens), "abab");
}

TEST(FindRepeats, MinOccurrencesFilter)
{
    const Sequence s = Seq("aabbaabb");
    const auto all = FindRepeats(s, {.min_length = 2, .min_occurrences = 2});
    CheckInvariants(s, all, 2);
    for (const auto& r : all) {
        EXPECT_GE(r.starts.size(), 2u);
    }
}

TEST(FindRepeats, OverlappingPeriodicRepeatIsSplit)
{
    // "ababab": "abab" overlaps itself; algorithm should emit "ab"-
    // periodic pieces that tile the string (paper's overlap case).
    const Sequence s = Seq("ababab");
    const auto repeats = FindRepeats(s, {.min_length = 2});
    CheckInvariants(s, repeats, 2);
    ASSERT_FALSE(repeats.empty());
    EXPECT_EQ(TotalCoverage(repeats), 6u);
}

struct RepeatCase {
    std::size_t n;
    std::uint64_t sigma;
    std::size_t min_length;
    std::uint64_t seed;
};

class FindRepeatsProperty : public ::testing::TestWithParam<RepeatCase> {};

TEST_P(FindRepeatsProperty, InvariantsHoldOnRandomInput)
{
    const auto [n, sigma, min_length, seed] = GetParam();
    support::Rng rng(seed);
    const Sequence s = RandomSeq(rng, n, sigma);
    const auto repeats = FindRepeats(s, {.min_length = min_length});
    CheckInvariants(s, repeats, min_length);
}

TEST_P(FindRepeatsProperty, CoverageIsBoundedByExactOptimum)
{
    const auto [n, sigma, min_length, seed] = GetParam();
    if (n > 160) {
        GTEST_SKIP() << "DP oracle is cubic; small inputs only";
    }
    support::Rng rng(seed ^ 0xabcdef);
    const Sequence s = RandomSeq(rng, n, sigma);
    const auto repeats = FindRepeats(s, {.min_length = min_length});
    CheckInvariants(s, repeats, min_length);
    EXPECT_LE(TotalCoverage(repeats), OptimalCoverage(s, min_length));
}

TEST_P(FindRepeatsProperty, CoverageIsCompetitiveWithOptimum)
{
    const auto [n, sigma, min_length, seed] = GetParam();
    if (n > 160) {
        GTEST_SKIP() << "DP oracle is cubic; small inputs only";
    }
    support::Rng rng(seed ^ 0x123456);
    const Sequence s = RandomSeq(rng, n, sigma);
    const auto repeats = FindRepeats(s, {.min_length = min_length});
    const std::size_t optimal = OptimalCoverage(s, min_length);
    // The algorithm trades optimality for O(n log n); the paper claims
    // "good" solutions. Empirically it stays well above half of the
    // exact optimum on random inputs; enforce that as a regression
    // floor.
    EXPECT_GE(2 * TotalCoverage(repeats) + 1, optimal);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FindRepeatsProperty,
    ::testing::Values(RepeatCase{32, 2, 2, 1}, RepeatCase{64, 2, 2, 2},
                      RepeatCase{64, 2, 4, 3}, RepeatCase{100, 3, 2, 4},
                      RepeatCase{100, 3, 5, 5}, RepeatCase{150, 4, 3, 6},
                      RepeatCase{150, 2, 6, 7}, RepeatCase{500, 2, 4, 8},
                      RepeatCase{1000, 3, 5, 9},
                      RepeatCase{2000, 8, 10, 10}));

TEST(FindRepeats, SaisAndDoublingBackendsAgree)
{
    support::Rng rng(31337);
    for (int round = 0; round < 10; ++round) {
        const Sequence s = RandomSeq(rng, 300, 3);
        const auto a = FindRepeats(
            s, {.min_length = 3,
                .suffix_algorithm = SuffixAlgorithm::kSais});
        const auto b = FindRepeats(
            s, {.min_length = 3,
                .suffix_algorithm = SuffixAlgorithm::kPrefixDoubling});
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].tokens, b[i].tokens);
            EXPECT_EQ(a[i].starts, b[i].starts);
        }
    }
}

TEST(FindRepeats, LongTraceInLargeBufferIsFound)
{
    // The paper notes real traces exceed 2000 tasks, requiring buffers
    // of at least twice that size. Simulate: one 2048-token body
    // repeated twice plus noise tail.
    support::Rng rng(5);
    Sequence body = RandomSeq(rng, 2048, 1 << 30);
    Sequence s;
    s.insert(s.end(), body.begin(), body.end());
    s.insert(s.end(), body.begin(), body.end());
    for (int i = 0; i < 100; ++i) {
        s.push_back(rng.UniformInt(1u << 31, (1ull << 32)));
    }
    const auto repeats = FindRepeats(s, {.min_length = 100});
    CheckInvariants(s, repeats, 100);
    ASSERT_FALSE(repeats.empty());
    EXPECT_GE(repeats.front().Length(), 2048u);
}

}  // namespace
}  // namespace apo::strings
