/**
 * @file
 * Shared helpers for the test suites.
 */
#ifndef APOPHENIA_TESTS_TEST_UTIL_H
#define APOPHENIA_TESTS_TEST_UTIL_H

#include <cstdint>
#include <string>
#include <string_view>

#include "strings/suffix_array.h"
#include "support/rng.h"

namespace apo::test {

/** Lift an ASCII string into a token sequence (each char one symbol). */
inline strings::Sequence Seq(std::string_view text)
{
    strings::Sequence s;
    s.reserve(text.size());
    for (char c : text) {
        s.push_back(static_cast<std::uint64_t>(c));
    }
    return s;
}

/** Render a token sequence of small symbols back to a string. */
inline std::string Str(const strings::Sequence& s)
{
    std::string out;
    out.reserve(s.size());
    for (auto v : s) {
        out.push_back(static_cast<char>(v));
    }
    return out;
}

/** Random sequence over an alphabet of `sigma` symbols. */
inline strings::Sequence RandomSeq(support::Rng& rng, std::size_t n,
                                   std::uint64_t sigma)
{
    strings::Sequence s(n);
    for (auto& v : s) {
        v = rng.UniformInt(0, sigma - 1);
    }
    return s;
}

/** A periodic sequence with `period` distinct symbols repeated to
 * length n, with optional noise symbols injected every `noise_every`
 * positions (0 disables noise). Models an iterative task stream with
 * interleaved convergence checks. */
inline strings::Sequence PeriodicSeq(std::size_t n, std::uint64_t period,
                                     std::size_t noise_every = 0)
{
    strings::Sequence s;
    s.reserve(n);
    std::uint64_t noise_symbol = 1'000'000;
    for (std::size_t i = 0; s.size() < n; ++i) {
        if (noise_every != 0 && i % noise_every == noise_every - 1) {
            s.push_back(noise_symbol++);
        }
        s.push_back(i % period);
    }
    s.resize(n);
    return s;
}

}  // namespace apo::test

#endif  // APOPHENIA_TESTS_TEST_UTIL_H
