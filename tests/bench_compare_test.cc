/**
 * @file
 * The bench_compare CI gate, unit-tested: the tool that fails a PR on
 * a perf regression must itself be pinned — direction typing (which
 * way is "worse" for each metric family), the exact >10% threshold
 * boundary, the flattening JSON reader, and the --require contract
 * (a bench that stops emitting its record fails CI, exit 2, which the
 * waiver env var never excuses).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "bench_compare_impl.h"

namespace apo::bench {
namespace {

// ---------------------------------------------------------------------------
// Direction typing.

TEST(DirectionOf, MetricFamilies)
{
    EXPECT_EQ(DirectionOf("micro_repeats.trie_insert_tokens_per_sec"),
              Direction::kHigherIsBetter);
    EXPECT_EQ(DirectionOf("steady_state_mining.rows.0.improvement"),
              Direction::kHigherIsBetter);
    EXPECT_EQ(DirectionOf("fig7.rows.2.speedup"),
              Direction::kHigherIsBetter);
    EXPECT_EQ(DirectionOf("fig_multitenant.rows.1.adoption_hit_rate"),
              Direction::kHigherIsBetter);
    EXPECT_EQ(DirectionOf("steady_state_mining.allocs_per_ingest"),
              Direction::kLowerIsBetter);
    // Counters, config echoes and latencies are not auto-gated.
    EXPECT_EQ(DirectionOf("micro_repeats.config.tokens"),
              Direction::kUntracked);
    EXPECT_EQ(DirectionOf("fig_multitenant.rows.0.p99_issue_latency"),
              Direction::kUntracked);
    EXPECT_EQ(DirectionOf("replication_scaling.hardware_concurrency"),
              Direction::kUntracked);
}

TEST(DirectionOf, AllocsPerBeatsSuffixTyping)
{
    // An allocation-rate metric is lower-is-better even when its name
    // also ends in a higher-is-better suffix: the substring rule wins.
    EXPECT_EQ(DirectionOf("x.allocs_per_sec"),
              Direction::kLowerIsBetter);
}

// ---------------------------------------------------------------------------
// The threshold boundary. Regression requires moving strictly past
// threshold: exactly -10% (or +10% for lower-is-better) still passes.

TEST(Regressed, HigherIsBetterBoundary)
{
    const Direction dir = Direction::kHigherIsBetter;
    EXPECT_FALSE(Regressed(dir, 100.0, 100.0, 0.10));
    EXPECT_FALSE(Regressed(dir, 100.0, 90.0, 0.10));  // exactly -10%
    EXPECT_TRUE(Regressed(dir, 100.0, 89.9, 0.10));
    EXPECT_FALSE(Regressed(dir, 100.0, 250.0, 0.10));  // improvement
    // A zero (or negative) baseline is no reference at all.
    EXPECT_FALSE(Regressed(dir, 0.0, 0.0, 0.10));
    EXPECT_FALSE(Regressed(dir, 0.0, -5.0, 0.10));
}

TEST(Regressed, LowerIsBetterBoundary)
{
    const Direction dir = Direction::kLowerIsBetter;
    EXPECT_FALSE(Regressed(dir, 100.0, 110.0, 0.10));  // exactly +10%
    EXPECT_TRUE(Regressed(dir, 100.0, 110.1, 0.10));
    EXPECT_FALSE(Regressed(dir, 100.0, 10.0, 0.10));  // improvement
    // allocs_per_* == 0 is a contract value: any materially nonzero
    // current is a regression, gated absolutely against the threshold.
    EXPECT_FALSE(Regressed(dir, 0.0, 0.0, 0.10));
    EXPECT_FALSE(Regressed(dir, 0.0, 0.1, 0.10));
    EXPECT_TRUE(Regressed(dir, 0.0, 0.2, 0.10));
}

// ---------------------------------------------------------------------------
// The flattening JSON reader.

TEST(FlatJsonParser, FlattensNestedObjectsAndArrays)
{
    const std::string text = R"({
      "top": 1,
      "section": {
        "name": "ignored-string",
        "nested": { "value": 2.5 },
        "rows": [ { "x": 3 }, { "x": 4 } ],
        "flags": [true, false, null],
        "empty_obj": {},
        "empty_arr": []
      },
      "negative": -1.5e2
    })";
    const std::map<std::string, double> values =
        FlatJsonParser(text).Parse();
    EXPECT_EQ(values.size(), 5u);
    EXPECT_EQ(values.at("top"), 1.0);
    EXPECT_EQ(values.at("section.nested.value"), 2.5);
    EXPECT_EQ(values.at("section.rows.0.x"), 3.0);
    EXPECT_EQ(values.at("section.rows.1.x"), 4.0);
    EXPECT_EQ(values.at("negative"), -150.0);
}

TEST(FlatJsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(FlatJsonParser(R"({"a": })").Parse(),
                 std::runtime_error);
    EXPECT_THROW(FlatJsonParser(R"({"a": 1} trailing)").Parse(),
                 std::runtime_error);
    EXPECT_THROW(FlatJsonParser(R"({"a": 1)").Parse(),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// The tool end to end, over real temp files.

class BenchCompareTool : public ::testing::Test {
  protected:
    std::string WriteRecord(const std::string& name,
                            const std::string& json)
    {
        const std::string path =
            ::testing::TempDir() + "bench_compare_test_" + name + ".json";
        std::ofstream out(path, std::ios::trunc);
        out << json;
        return path;
    }

    int Run(const CompareOptions& options)
    {
        std::FILE* sink = std::tmpfile();
        const int code = RunBenchCompare(options, sink, sink);
        std::fclose(sink);
        return code;
    }
};

TEST_F(BenchCompareTool, IdenticalRecordsPass)
{
    CompareOptions options;
    options.baseline_path = WriteRecord(
        "base_ok", R"({"m": {"tokens_per_sec": 100, "allocs_per_op": 0}})");
    options.current_path = options.baseline_path;
    EXPECT_EQ(Run(options), 0);
}

TEST_F(BenchCompareTool, RegressionFailsWithExitOne)
{
    CompareOptions options;
    options.baseline_path =
        WriteRecord("base_reg", R"({"m": {"tokens_per_sec": 100}})");
    options.current_path =
        WriteRecord("cur_reg", R"({"m": {"tokens_per_sec": 80}})");
    EXPECT_EQ(Run(options), 1);

    // The same pair under a looser threshold passes.
    options.threshold = 0.25;
    EXPECT_EQ(Run(options), 0);
}

TEST_F(BenchCompareTool, DroppedMetricIsReportedNotFatal)
{
    // A baseline metric absent from current is [dropped], not a
    // regression — only --require makes absence fatal.
    CompareOptions options;
    options.baseline_path = WriteRecord(
        "base_drop",
        R"({"m": {"tokens_per_sec": 100, "old_per_sec": 50}})");
    options.current_path =
        WriteRecord("cur_drop", R"({"m": {"tokens_per_sec": 100}})");
    EXPECT_EQ(Run(options), 0);
}

TEST_F(BenchCompareTool, RequiredRecordMissingIsExitTwo)
{
    CompareOptions options;
    options.baseline_path =
        WriteRecord("base_req", R"({"m": {"tokens_per_sec": 100}})");
    options.current_path =
        WriteRecord("cur_req", R"({"m": {"tokens_per_sec": 100}})");
    options.required = {"fig_multitenant"};
    EXPECT_EQ(Run(options), 2);

    // Present (as a path substring in the current file) passes, and
    // requirement is judged against *current*, not baseline.
    options.current_path = WriteRecord(
        "cur_req2",
        R"({"m": {"tokens_per_sec": 100},
            "fig_multitenant": {"rows": [{"adoption_hit_rate": 0.75}]}})");
    EXPECT_EQ(Run(options), 0);
}

TEST_F(BenchCompareTool, MetricFilterRestrictsComparison)
{
    CompareOptions options;
    options.baseline_path = WriteRecord(
        "base_filter",
        R"({"a": {"x_per_sec": 100}, "b": {"y_per_sec": 100}})");
    options.current_path = WriteRecord(
        "cur_filter",
        R"({"a": {"x_per_sec": 100}, "b": {"y_per_sec": 10}})");
    EXPECT_EQ(Run(options), 1);  // b regressed
    options.metrics = {"a."};    // ...but it is filtered out
    EXPECT_EQ(Run(options), 0);
}

TEST_F(BenchCompareTool, UnreadableFileIsExitTwo)
{
    CompareOptions options;
    options.baseline_path =
        ::testing::TempDir() + "bench_compare_test_does_not_exist.json";
    options.current_path =
        WriteRecord("cur_noent", R"({"m": {"tokens_per_sec": 1}})");
    EXPECT_EQ(Run(options), 2);
}

}  // namespace
}  // namespace apo::bench
