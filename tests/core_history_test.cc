/**
 * @file
 * Tests for the shared-block history ring and its zero-copy snapshots:
 * window semantics, span structure, block sharing between overlapping
 * snapshots, and block survival past eviction.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/history.h"

namespace apo::core {
namespace {

std::vector<rt::TokenHash> Materialize(const HistorySnapshot& snapshot)
{
    std::vector<rt::TokenHash> out;
    snapshot.CopyTo(out);
    return out;
}

TEST(HistoryRing, WindowTracksLastCapacityTokens)
{
    HistoryRing ring(/*capacity=*/10, /*block_size=*/4);
    for (rt::TokenHash t = 0; t < 7; ++t) {
        ring.Append(t);
    }
    EXPECT_EQ(ring.Size(), 7u);
    for (rt::TokenHash t = 7; t < 100; ++t) {
        ring.Append(t);
    }
    EXPECT_EQ(ring.Size(), 10u);
    // Blocks are evicted wholesale: never more than needed to cover
    // the window plus one partial block's slack.
    EXPECT_LE(ring.NumBlocks(), 10 / 4 + 2u);
}

TEST(HistoryRing, SnapshotMaterializesTheSuffix)
{
    HistoryRing ring(100, /*block_size=*/8);
    for (rt::TokenHash t = 0; t < 30; ++t) {
        ring.Append(t);
    }
    HistorySnapshot snapshot;
    ring.SnapshotLastN(13, snapshot);
    EXPECT_EQ(snapshot.Size(), 13u);
    const auto tokens = Materialize(snapshot);
    ASSERT_EQ(tokens.size(), 13u);
    for (std::size_t i = 0; i < 13; ++i) {
        EXPECT_EQ(tokens[i], 30 - 13 + i) << i;
    }
    // 13 tokens over 8-sized blocks span exactly 2 or 3 blocks.
    EXPECT_GE(snapshot.NumSpans(), 2u);
    EXPECT_LE(snapshot.NumSpans(), 3u);
}

TEST(HistoryRing, SnapshotIsZeroCopyAndShared)
{
    HistoryRing ring(1000, /*block_size=*/16);
    for (rt::TokenHash t = 0; t < 64; ++t) {
        ring.Append(t);
    }
    HistorySnapshot a, b;
    ring.SnapshotLastN(48, a);
    ring.SnapshotLastN(32, b);
    // Overlapping snapshots reference the same immutable blocks: the
    // data pointers for the shared suffix ranges alias.
    const auto a_tokens = Materialize(a);
    const auto b_tokens = Materialize(b);
    EXPECT_EQ(std::vector<rt::TokenHash>(a_tokens.end() - 32,
                                         a_tokens.end()),
              b_tokens);
    EXPECT_EQ(a.NumSpans(), 3u);  // 48 tokens = 3 full 16-blocks
    EXPECT_EQ(b.NumSpans(), 2u);
}

TEST(HistoryRing, SnapshotSurvivesEviction)
{
    HistoryRing ring(/*capacity=*/32, /*block_size=*/8);
    for (rt::TokenHash t = 0; t < 32; ++t) {
        ring.Append(t);
    }
    HistorySnapshot snapshot;
    ring.SnapshotLastN(32, snapshot);
    // Push the window far past the snapshotted tokens.
    for (rt::TokenHash t = 32; t < 500; ++t) {
        ring.Append(t);
    }
    // The snapshot still reads the original tokens: evicted blocks are
    // kept alive by the snapshot's references.
    const auto tokens = Materialize(snapshot);
    ASSERT_EQ(tokens.size(), 32u);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_EQ(tokens[i], i) << i;
    }
}

TEST(HistoryRing, AppendAfterSnapshotDoesNotDisturbIt)
{
    HistoryRing ring(100, /*block_size=*/8);
    for (rt::TokenHash t = 0; t < 12; ++t) {
        ring.Append(t);
    }
    HistorySnapshot snapshot;
    ring.SnapshotLastN(12, snapshot);
    // Later appends fill the same tail block the snapshot references;
    // the snapshot's extent must not grow with them.
    for (rt::TokenHash t = 100; t < 110; ++t) {
        ring.Append(t);
    }
    const auto tokens = Materialize(snapshot);
    ASSERT_EQ(tokens.size(), 12u);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(tokens[i], i) << i;
    }
}

TEST(HistorySnapshot, ClearReleasesBlocks)
{
    HistoryRing ring(64, 8);
    for (rt::TokenHash t = 0; t < 64; ++t) {
        ring.Append(t);
    }
    HistorySnapshot snapshot;
    ring.SnapshotLastN(64, snapshot);
    EXPECT_FALSE(snapshot.Empty());
    snapshot.Clear();
    EXPECT_TRUE(snapshot.Empty());
    EXPECT_EQ(snapshot.NumSpans(), 0u);
}

}  // namespace
}  // namespace apo::core
