/**
 * @file
 * Tests for Apophenia's configuration and flag parsing (the artifact's
 * -lg: flags, paper appendix A.7).
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"

namespace apo::core {
namespace {

std::vector<std::string> Args(std::initializer_list<const char*> list)
{
    return {list.begin(), list.end()};
}

TEST(Config, DefaultsMatchArtifact)
{
    const ApopheniaConfig config;
    EXPECT_TRUE(config.enabled);
    EXPECT_EQ(config.batchsize, 5000u);
    EXPECT_EQ(config.max_trace_length, 5000u);
    EXPECT_EQ(config.multi_scale_factor, 250u);
    EXPECT_EQ(config.identifier_algorithm, IdentifierAlgorithm::kMultiScale);
    EXPECT_EQ(config.repeats_algorithm,
              RepeatsAlgorithm::kQuickMatchingOfSubstrings);
}

TEST(Config, ParsesArtifactCommandLine)
{
    // The exact flag set from the paper's artifact appendix.
    auto args = Args({"candle_uno", "--warmup", "30",
                      "-lg:enable_automatic_tracing",
                      "-lg:auto_trace:min_trace_length", "25",
                      "-lg:auto_trace:max_trace_length", "200",
                      "-lg:auto_trace:batchsize", "5000",
                      "-lg:auto_trace:identifier_algorithm", "multi-scale",
                      "-lg:auto_trace:multi_scale_factor", "500",
                      "-lg:auto_trace:repeats_algorithm",
                      "quick_matching_of_substrings", "-ll:gpu", "8"});
    const ApopheniaConfig config = ParseApopheniaFlags(args);
    EXPECT_TRUE(config.enabled);
    EXPECT_EQ(config.min_trace_length, 25u);
    EXPECT_EQ(config.max_trace_length, 200u);
    EXPECT_EQ(config.batchsize, 5000u);
    EXPECT_EQ(config.multi_scale_factor, 500u);
    // Unrecognized application flags survive, in order.
    const std::vector<std::string> rest{"candle_uno", "--warmup", "30",
                                        "-ll:gpu", "8"};
    EXPECT_EQ(args, rest);
}

TEST(Config, DisabledWithoutEnableFlag)
{
    auto args = Args({"-lg:auto_trace:batchsize", "100"});
    EXPECT_FALSE(ParseApopheniaFlags(args).enabled);
}

TEST(Config, AlgorithmNames)
{
    const std::pair<const char*, RepeatsAlgorithm> cases[] = {
        {"quick_matching_of_substrings",
         RepeatsAlgorithm::kQuickMatchingOfSubstrings},
        {"tandem", RepeatsAlgorithm::kTandem},
        {"lzw", RepeatsAlgorithm::kLzw},
        {"quadratic", RepeatsAlgorithm::kQuadratic}};
    for (const auto& [name, expected] : cases) {
        auto args = Args({"-lg:auto_trace:repeats_algorithm", name});
        EXPECT_EQ(ParseApopheniaFlags(args).repeats_algorithm, expected);
    }
    auto args = Args({"-lg:auto_trace:identifier_algorithm", "batched"});
    EXPECT_EQ(ParseApopheniaFlags(args).identifier_algorithm,
              IdentifierAlgorithm::kBatched);
}

TEST(Config, RejectsMalformedValues)
{
    {
        auto args = Args({"-lg:auto_trace:batchsize", "abc"});
        EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
    }
    {
        auto args = Args({"-lg:auto_trace:batchsize"});
        EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
    }
    {
        auto args = Args({"-lg:auto_trace:repeats_algorithm", "magic"});
        EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
    }
    {
        auto args = Args({"-lg:auto_trace:identifier_algorithm", "magic"});
        EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
    }
    {
        auto args = Args({"-lg:auto_trace:min_trace_length", "0"});
        EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
    }
    {
        // max below min is inconsistent.
        auto args = Args({"-lg:auto_trace:min_trace_length", "100",
                          "-lg:auto_trace:max_trace_length", "10"});
        EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
    }
}

TEST(Config, NumberWithTrailingGarbageRejected)
{
    auto args = Args({"-lg:auto_trace:batchsize", "100x"});
    EXPECT_THROW(ParseApopheniaFlags(args), std::invalid_argument);
}

}  // namespace
}  // namespace apo::core
