/**
 * @file
 * Apophenia's handling of untraceable operations and the extended
 * runtime flags: traces must form around (never across) operations
 * that cannot be memoized, and the -lg:window /
 * -lg:inline_transitive_reduction flags parse.
 */
#include <gtest/gtest.h>

#include "core/apophenia.h"
#include "core/config.h"
#include "runtime/runtime.h"

namespace apo::core {
namespace {

ApopheniaConfig SmallConfig()
{
    ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 500;
    config.multi_scale_factor = 50;
    return config;
}

/** A loop whose every iteration ends with an untraceable hand-off —
 * the structure a manual annotation around the loop body cannot
 * handle and Apophenia must trace around. */
void DriveLoopWithHandoffs(Apophenia& fe, int iterations,
                           std::size_t body, int handoff_every)
{
    std::vector<rt::RegionId> regions;
    for (std::size_t i = 0; i < body; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int it = 0; it < iterations; ++it) {
        for (std::size_t i = 0; i < body; ++i) {
            fe.ExecuteTask(rt::TaskLaunch{
                100 + static_cast<rt::TaskId>(i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % body], 0, rt::Privilege::kReadWrite,
                  0}}});
        }
        if (handoff_every != 0 && it % handoff_every == handoff_every - 1) {
            rt::TaskLaunch io{999,
                              {{regions[0], 0, rt::Privilege::kReadWrite,
                                0}}};
            io.traceable = false;
            fe.ExecuteTask(io);
        }
    }
    fe.Flush();
}

TEST(Untraceable, ApopheniaNeverPutsThemInsideTraces)
{
    rt::Runtime runtime;  // strict: any attempt would throw
    Apophenia fe(runtime, SmallConfig());
    DriveLoopWithHandoffs(fe, 120, 10, 3);
    // Tracing succeeded around the hand-offs...
    EXPECT_GT(runtime.Stats().ReplayedFraction(), 0.5);
    EXPECT_EQ(runtime.Stats().trace_mismatches, 0u);
    // ...and every untraceable operation ran as plain analysis.
    for (const auto& op : runtime.Log()) {
        if (!op.launch.traceable) {
            EXPECT_EQ(op.mode, rt::AnalysisMode::kAnalyzed);
            EXPECT_EQ(op.trace, rt::kNoTrace);
        }
    }
}

TEST(Untraceable, FrequentHandoffsStillAllowPartialTracing)
{
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    DriveLoopWithHandoffs(fe, 150, 12, 1);  // hand-off EVERY iteration
    EXPECT_GT(runtime.Stats().ReplayedFraction(), 0.4);
    EXPECT_EQ(runtime.Stats().trace_mismatches, 0u);
}

TEST(Untraceable, UniqueTokensNeverFormCandidates)
{
    // A stream of nothing but untraceable operations must find no
    // traces at all (every token is unique).
    rt::Runtime runtime;
    Apophenia fe(runtime, SmallConfig());
    const rt::RegionId r = fe.CreateRegion();
    for (int i = 0; i < 300; ++i) {
        rt::TaskLaunch io{1, {{r, 0, rt::Privilege::kReadOnly, 0}}};
        io.traceable = false;
        fe.ExecuteTask(io);
    }
    fe.Flush();
    EXPECT_EQ(runtime.Stats().tasks_replayed, 0u);
    EXPECT_EQ(fe.Trie().NumCandidates(), 0u);
}

TEST(Config, WindowAndReductionFlagsParse)
{
    std::vector<std::string> args{
        "-lg:enable_automatic_tracing", "-lg:inline_transitive_reduction",
        "-lg:window", "30000"};
    const ApopheniaConfig config = ParseApopheniaFlags(args);
    EXPECT_TRUE(config.enabled);
    EXPECT_TRUE(config.inline_transitive_reduction);
    EXPECT_EQ(config.window, 30000u);
    EXPECT_TRUE(args.empty());
}

TEST(Config, DefaultWindowMatchesArtifact)
{
    const ApopheniaConfig config;
    EXPECT_EQ(config.window, 30000u);
    EXPECT_FALSE(config.inline_transitive_reduction);
}

}  // namespace
}  // namespace apo::core
