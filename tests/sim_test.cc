/**
 * @file
 * Tests for the pipeline discrete-event simulator, the metrics, and
 * the experiment harness. Verifies the cost-model mechanics that
 * produce every figure: analysis bottlenecks, replay blocks, cross-
 * node latency, and the traced-vs-untraced throughput relationships.
 */
#include <gtest/gtest.h>

#include "apps/cfd.h"
#include "apps/s3d.h"
#include "sim/harness.h"
#include "sim/metrics.h"
#include "sim/pipeline.h"

namespace apo::sim {
namespace {

rt::TaskLaunch SimpleTask(std::uint32_t shard, double exec_us,
                          rt::RegionId region, rt::Privilege priv)
{
    return rt::TaskLaunch{1, {{region, 0, priv, 0}}, exec_us, shard};
}

PipelineOptions OneNode()
{
    PipelineOptions o;
    o.machine.nodes = 1;
    o.machine.gpus_per_node = 2;
    return o;
}

TEST(Pipeline, SingleTaskTiming)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    runtime.ExecuteTask(SimpleTask(0, 500.0, r, rt::Privilege::kReadWrite));
    const PipelineOptions o = OneNode();
    const PipelineResult result = SimulatePipeline(runtime.Log(), o);
    // launch + analysis + execution, nothing overlaps for one task.
    EXPECT_DOUBLE_EQ(result.makespan_us,
                     o.costs.launch_us + o.costs.analysis_us + 500.0);
}

TEST(Pipeline, ApopheniaFrontEndAddsLaunchOverhead)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    runtime.ExecuteTask(SimpleTask(0, 500.0, r, rt::Privilege::kReadWrite));
    PipelineOptions o = OneNode();
    const double base = SimulatePipeline(runtime.Log(), o).makespan_us;
    o.apophenia_front_end = true;
    const double with_fe = SimulatePipeline(runtime.Log(), o).makespan_us;
    EXPECT_DOUBLE_EQ(with_fe - base, o.costs.apophenia_launch_us);
}

TEST(Pipeline, IndependentTasksOverlapAcrossGpus)
{
    rt::Runtime runtime;
    const rt::RegionId a = runtime.CreateRegion();
    const rt::RegionId b = runtime.CreateRegion();
    runtime.ExecuteTask(SimpleTask(0, 5000.0, a, rt::Privilege::kReadWrite));
    runtime.ExecuteTask(SimpleTask(1, 5000.0, b, rt::Privilege::kReadWrite));
    const PipelineOptions o = OneNode();
    const PipelineResult result = SimulatePipeline(runtime.Log(), o);
    // Execution overlaps; the second task is delayed only by the
    // serial analysis stage (which starts after the first launch).
    const double second_ready =
        o.costs.launch_us + 2 * o.costs.analysis_us;
    EXPECT_DOUBLE_EQ(result.makespan_us, second_ready + 5000.0);
}

TEST(Pipeline, DependentTasksSerializeOnExecution)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    runtime.ExecuteTask(SimpleTask(0, 5000.0, r, rt::Privilege::kReadWrite));
    runtime.ExecuteTask(SimpleTask(1, 5000.0, r, rt::Privilege::kReadOnly));
    const PipelineResult result =
        SimulatePipeline(runtime.Log(), OneNode());
    // Same node, so no communication charge; executions serialize:
    // the reader starts when the writer finishes.
    const PipelineOptions o = OneNode();
    EXPECT_DOUBLE_EQ(result.finish_us[1],
                     o.costs.launch_us + o.costs.analysis_us + 5000.0 +
                         5000.0);
}

TEST(Pipeline, CrossNodeDependencePaysLatency)
{
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    runtime.ExecuteTask(SimpleTask(0, 5000.0, r, rt::Privilege::kReadWrite));
    runtime.ExecuteTask(SimpleTask(1, 5000.0, r, rt::Privilege::kReadOnly));
    PipelineOptions o = OneNode();
    o.machine.nodes = 2;
    o.machine.gpus_per_node = 1;  // shard 1 now lives on node 1
    const PipelineResult result = SimulatePipeline(runtime.Log(), o);
    // The reader waits an extra cross-node latency...
    const double expected_extra = o.machine.CrossNodeLatencyUs();
    // ...but analysis now also runs on separate per-node resources.
    rt::RuntimeOptions ro;
    ro.nodes = 2;
    rt::Runtime scaled(ro);
    const rt::RegionId r2 = scaled.CreateRegion();
    scaled.ExecuteTask(SimpleTask(0, 5000.0, r2, rt::Privilege::kReadWrite));
    scaled.ExecuteTask(SimpleTask(1, 5000.0, r2, rt::Privilege::kReadOnly));
    const PipelineResult split = SimulatePipeline(scaled.Log(), o);
    EXPECT_GT(result.finish_us[1],
              result.finish_us[0] + 5000.0 + expected_extra - 1e-9);
    (void)split;
}

TEST(Pipeline, ReplayBlockReleasesTasksTogether)
{
    // Record a 3-task trace, replay it once; the replayed tasks all
    // become ready when the whole block's replay completes.
    rt::Runtime runtime;
    const rt::RegionId r = runtime.CreateRegion();
    auto issue_body = [&] {
        runtime.ExecuteTask(
            SimpleTask(0, 100.0, r, rt::Privilege::kReadWrite));
        runtime.ExecuteTask(
            SimpleTask(0, 100.0, r, rt::Privilege::kReadOnly));
        runtime.ExecuteTask(
            SimpleTask(1, 100.0, r, rt::Privilege::kReadOnly));
    };
    runtime.BeginTrace(1);
    issue_body();
    runtime.EndTrace(1);
    runtime.BeginTrace(1);
    issue_body();
    runtime.EndTrace(1);
    const PipelineOptions o = OneNode();
    const PipelineResult result = SimulatePipeline(runtime.Log(), o);
    // Ops 3..5 are the replay. The block completes after all three
    // launches plus c + 3 * alpha_r of analysis; no replayed task can
    // start executing before that.
    const double app_done = 6 * o.costs.launch_us;
    const double block_cost =
        o.costs.replay_constant_us + 3 * o.costs.replay_us;
    for (std::size_t k = 3; k < 6; ++k) {
        EXPECT_GE(result.finish_us[k] - runtime.Log()[k].launch.execution_us,
                  app_done + block_cost - 1e-9);
    }
}

TEST(Pipeline, LongReplayBlocksExposeLatencyOnSmallTasks)
{
    // Figure 8's mechanism. Each round updates 64 independent region
    // groups; chunked traces over disjoint groups have preconditions
    // that resolve early (the previous round's *same* chunk), so the
    // replay of chunk c+1 overlaps the execution of chunk c. One
    // monolithic trace's precondition set includes the final tasks of
    // the previous round, so its whole replay sits on the critical
    // path once per-task execution time shrinks below the per-task
    // replay cost.
    auto build = [](std::size_t chunk) {
        auto runtime = std::make_unique<rt::Runtime>();
        std::vector<rt::RegionId> regions;
        for (int i = 0; i < 64; ++i) {
            regions.push_back(runtime->CreateRegion());
        }
        auto issue = [&](std::size_t begin, std::size_t len,
                         rt::TraceId id) {
            runtime->BeginTrace(id);
            for (std::size_t i = begin; i < begin + len; ++i) {
                runtime->ExecuteTask(SimpleTask(
                    0, 80.0, regions[i], rt::Privilege::kReadWrite));
            }
            runtime->EndTrace(id);
        };
        for (int round = 0; round < 6; ++round) {
            for (std::size_t c = 0; c < 64; c += chunk) {
                issue(c, chunk, 100 + c);
            }
        }
        return runtime;
    };
    const auto big = build(64);
    const auto small = build(16);
    const PipelineOptions o = OneNode();
    const double t_big = SimulatePipeline(big->Log(), o).makespan_us;
    const double t_small = SimulatePipeline(small->Log(), o).makespan_us;
    EXPECT_LT(t_small, t_big);
}

TEST(Metrics, IterationEndTimesAreMonotone)
{
    PipelineResult sim;
    sim.finish_us = {10, 5, 30, 20, 50};
    const std::vector<std::size_t> boundaries{2, 4, 5};
    const auto ends = IterationEndTimes(sim, boundaries);
    const std::vector<double> expected{10, 30, 50};
    EXPECT_EQ(ends, expected);
}

TEST(Metrics, SteadyThroughputUsesTail)
{
    // 10 iterations: first five take 100µs, last five take 50µs.
    std::vector<double> ends;
    double t = 0;
    for (int i = 0; i < 5; ++i) {
        ends.push_back(t += 100);
    }
    for (int i = 0; i < 5; ++i) {
        ends.push_back(t += 50);
    }
    // Tail of 4 iterations at 50µs each -> 20k iters/sec.
    EXPECT_NEAR(SteadyThroughput(ends, 4), 1e6 / 50.0, 1e-6);
}

/** A synthetic log whose op `i` is traced iff `i >= analyzed_prefix`. */
rt::OperationLog ModeLog(std::size_t n, std::size_t analyzed_prefix)
{
    rt::OperationLog log;
    const rt::TaskLaunch launch;
    const rt::TaskLaunchView view = rt::TaskLaunchView::Of(launch);
    for (std::size_t i = 0; i < n; ++i) {
        log.Append(view,
                   i < analyzed_prefix ? rt::AnalysisMode::kAnalyzed
                                       : rt::AnalysisMode::kReplayed,
                   rt::kNoTrace, 0.0, /*replay_head=*/false, {});
    }
    return log;
}

TEST(Metrics, WarmupIterationsFindsSteadyPoint)
{
    std::vector<std::size_t> boundaries;
    for (std::size_t b = 10; b <= 100; b += 10) {
        boundaries.push_back(b);
    }
    EXPECT_EQ(WarmupIterations(ModeLog(100, 30), boundaries, 0.9), 3u);
    // All analyzed: never steady (the final two iterations are
    // excluded from the scan as flush-polluted).
    EXPECT_EQ(WarmupIterations(ModeLog(100, 100), boundaries, 0.9), 8u);
}

TEST(Metrics, TracedCoverageSeries)
{
    const rt::OperationLog log = ModeLog(100, 50);
    const auto series = TracedCoverageSeries(log, 50, 25);
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0].second, 0.0);    // ops 0-25
    EXPECT_DOUBLE_EQ(series[3].second, 100.0);  // ops 50-100
}

TEST(Harness, TracingBeatsUntracedWhenAnalysisBound)
{
    apps::S3dOptions app_options;
    app_options.machine.nodes = 2;
    app_options.machine.gpus_per_node = 2;
    app_options.size = apps::ProblemSize::kSmall;
    // Force the analysis-bound regime: tiny kernels cannot hide the
    // per-task dependence analysis, so tracing must win.
    app_options.exec_small_us = 500.0;

    ExperimentOptions options;
    options.machine = app_options.machine;
    options.iterations = 100;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 2000;
    options.auto_config.multi_scale_factor = 100;

    apps::S3dApplication app_auto(app_options);
    options.mode = TracingMode::kAuto;
    const ExperimentResult auto_result = RunExperiment(app_auto, options);

    apps::S3dApplication app_untraced(app_options);
    options.mode = TracingMode::kUntraced;
    const ExperimentResult untraced = RunExperiment(app_untraced, options);

    apps::S3dApplication app_manual(app_options);
    options.mode = TracingMode::kManual;
    const ExperimentResult manual = RunExperiment(app_manual, options);

    EXPECT_GT(auto_result.replayed_fraction, 0.5);
    EXPECT_GT(auto_result.iterations_per_second,
              untraced.iterations_per_second);
    // Auto is in the same ballpark as the expert manual annotation
    // (paper: 0.92x-1.03x).
    EXPECT_GT(auto_result.iterations_per_second,
              0.8 * manual.iterations_per_second);
    EXPECT_LT(auto_result.iterations_per_second,
              1.2 * manual.iterations_per_second);
}

TEST(Harness, PooledEagerDrainMatchesInlineExperiment)
{
    // The pooled experiment configuration with eager-drain ingestion
    // must reproduce the inline (deterministic) figures exactly: same
    // decisions, same simulated timeline.
    apps::S3dOptions app_options;
    app_options.machine.nodes = 1;
    app_options.machine.gpus_per_node = 4;

    ExperimentOptions options;
    options.machine = app_options.machine;
    options.iterations = 80;
    options.mode = TracingMode::kAuto;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 2000;
    options.auto_config.multi_scale_factor = 100;

    apps::S3dApplication app_inline(app_options);
    options.executor_mode = ExecutorMode::kInline;
    const ExperimentResult inline_result =
        RunExperiment(app_inline, options);

    apps::S3dApplication app_pooled(app_options);
    options.executor_mode = ExecutorMode::kPooled;
    options.pool_threads = 3;
    options.auto_config.ingest_mode = core::IngestMode::kEagerDrain;
    const ExperimentResult pooled_result =
        RunExperiment(app_pooled, options);

    EXPECT_DOUBLE_EQ(pooled_result.makespan_us, inline_result.makespan_us);
    EXPECT_DOUBLE_EQ(pooled_result.iterations_per_second,
                     inline_result.iterations_per_second);
    EXPECT_DOUBLE_EQ(pooled_result.replayed_fraction,
                     inline_result.replayed_fraction);
    EXPECT_EQ(pooled_result.apophenia_stats.traces_fired,
              inline_result.apophenia_stats.traces_fired);
}

TEST(Harness, PooledOnCompletionModeStillTraces)
{
    apps::S3dOptions app_options;
    app_options.machine.nodes = 1;
    app_options.machine.gpus_per_node = 4;
    apps::S3dApplication app(app_options);

    ExperimentOptions options;
    options.machine = app_options.machine;
    // Enough iterations that the pool keeps up with the issue path
    // even as successive PRs keep making it faster (allocation-free
    // builder, now the arena log append): ingestion timing decides
    // *where* tracing engages, not *whether*. Raised 300 -> 900 after
    // the columnar log sped the untraced path up again.
    options.iterations = 900;
    options.mode = TracingMode::kAuto;
    options.executor_mode = ExecutorMode::kPooled;
    options.pool_threads = 3;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 2000;
    options.auto_config.multi_scale_factor = 100;
    const ExperimentResult result = RunExperiment(app, options);
    // Ingestion timing is nondeterministic, but tracing must engage
    // and the issued stream stays a valid program.
    EXPECT_GT(result.replayed_fraction, 0.0);
    EXPECT_EQ(result.total_tasks, result.runtime_stats.tasks_analyzed +
                                      result.runtime_stats.tasks_recorded +
                                      result.runtime_stats.tasks_replayed);
}

TEST(Harness, WarmupIsReportedForAutoMode)
{
    apps::CfdOptions app_options;
    app_options.machine.nodes = 1;
    app_options.machine.gpus_per_node = 4;
    apps::CfdApplication app(app_options);

    ExperimentOptions options;
    options.machine = app_options.machine;
    options.iterations = 120;
    options.mode = TracingMode::kAuto;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 2000;
    options.auto_config.multi_scale_factor = 100;
    const ExperimentResult result = RunExperiment(app, options);
    EXPECT_GT(result.warmup_iterations, 0u);
    EXPECT_LT(result.warmup_iterations, 120u);
}

TEST(Harness, CoverageSeriesClimbsToPlateau)
{
    apps::S3dOptions app_options;
    app_options.machine.nodes = 1;
    app_options.machine.gpus_per_node = 4;
    apps::S3dApplication app(app_options);

    ExperimentOptions options;
    options.machine = app_options.machine;
    options.iterations = 70;
    options.mode = TracingMode::kAuto;
    options.auto_config.min_trace_length = 10;
    options.auto_config.batchsize = 2000;
    options.auto_config.multi_scale_factor = 100;
    options.keep_coverage_series = true;
    options.coverage_window = 1000;
    options.coverage_stride = 100;
    const ExperimentResult result = RunExperiment(app, options);
    ASSERT_GT(result.coverage_series.size(), 10u);
    EXPECT_LT(result.coverage_series.front().second, 50.0);
    EXPECT_GT(result.coverage_series.back().second, 80.0);
}

}  // namespace
}  // namespace apo::sim
