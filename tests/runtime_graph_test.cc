/**
 * @file
 * Tests for the dependence-graph utilities: reachability and the
 * transitive reduction behind -lg:inline_transitive_reduction.
 *
 * The defining property: reduction changes the edge set but never the
 * transitive closure — every ordered pair of operations remains
 * ordered exactly when it was before.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/graph.h"
#include "runtime/runtime.h"
#include "support/rng.h"

namespace apo::rt {
namespace {

/** Hand-build a log with the given edges (kinds irrelevant here). */
OperationLog MakeLog(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>&
                       edges)
{
    OperationLog log;
    std::vector<std::vector<Dependence>> deps(n);
    for (const auto& [from, to] : edges) {
        deps[to].push_back(Dependence{from, to, DependenceKind::kTrue});
    }
    TaskLaunch launch;
    const TaskLaunchView view = TaskLaunchView::Of(launch);
    for (std::size_t i = 0; i < n; ++i) {
        log.Append(view, AnalysisMode::kAnalyzed, kNoTrace, 0.0,
                   /*replay_head=*/false, deps[i]);
    }
    return log;
}

TEST(Graph, ReachesDirectAndTransitive)
{
    const auto log = MakeLog(4, {{0, 1}, {1, 2}});
    EXPECT_TRUE(Reaches(log, 0, 0));
    EXPECT_TRUE(Reaches(log, 0, 1));
    EXPECT_TRUE(Reaches(log, 0, 2));
    EXPECT_TRUE(Reaches(log, 1, 2));
    EXPECT_FALSE(Reaches(log, 0, 3));
    EXPECT_FALSE(Reaches(log, 2, 1));  // never backwards
}

TEST(Graph, ReductionRemovesImpliedEdge)
{
    // 0 -> 1 -> 2 plus the redundant 0 -> 2.
    auto log = MakeLog(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_EQ(TransitiveReduction(log), 1u);
    EXPECT_EQ(CountEdges(log), 2u);
    EXPECT_TRUE(Reaches(log, 0, 2));
}

TEST(Graph, ReductionKeepsDiamond)
{
    // 0 -> {1, 2} -> 3: no edge is redundant.
    auto log = MakeLog(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
    EXPECT_EQ(TransitiveReduction(log), 0u);
    EXPECT_EQ(CountEdges(log), 4u);
}

TEST(Graph, ReductionRemovesLongChainShortcuts)
{
    // Chain 0..5 plus shortcuts from 0 to everything.
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i + 1 < 6; ++i) {
        edges.push_back({i, i + 1});
    }
    for (std::size_t i = 2; i < 6; ++i) {
        edges.push_back({0, i});
    }
    auto log = MakeLog(6, edges);
    EXPECT_EQ(TransitiveReduction(log), 4u);
    EXPECT_EQ(CountEdges(log), 5u);  // only the chain remains
}

TEST(Graph, WindowLimitsWhatCanBeRemoved)
{
    // 0 -> 1 -> 2 with shortcut 0 -> 2. A window of 1 cannot see the
    // path through op 1 when... the path runs through recent ops, so
    // a window of 1 still finds it; a window that excludes op 1's
    // edges would not. Build a longer shortcut: 0 -> 9 implied via the
    // chain 0..9; a tiny window cannot walk the whole chain.
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i + 1 < 10; ++i) {
        edges.push_back({i, i + 1});
    }
    edges.push_back({0, 9});
    auto unbounded = MakeLog(10, edges);
    EXPECT_EQ(TransitiveReduction(unbounded, 0), 1u);
    auto windowed = MakeLog(10, edges);
    // Window 2: the backward walk from op 8 stops at op 6, never
    // reaching op 0, so the shortcut is (conservatively) kept.
    EXPECT_EQ(TransitiveReduction(windowed, 2), 0u);
}

/** Property: reduction preserves the transitive closure exactly. */
TEST(Graph, ReductionPreservesClosureOnRandomStreams)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        support::Rng rng(seed);
        Runtime rt;
        std::vector<RegionId> regions;
        for (int i = 0; i < 5; ++i) {
            regions.push_back(rt.CreateRegion());
        }
        for (int i = 0; i < 80; ++i) {
            TaskLaunch t;
            t.task = rng.UniformInt(1, 4);
            const int reqs = static_cast<int>(rng.UniformInt(1, 2));
            for (int q = 0; q < reqs; ++q) {
                t.requirements.push_back(RegionRequirement{
                    regions[rng.UniformInt(0, regions.size() - 1)], 0,
                    static_cast<Privilege>(rng.UniformInt(0, 3)),
                    static_cast<ReductionOpId>(rng.UniformInt(1, 2))});
            }
            rt.ExecuteTask(t);
        }
        OperationLog reduced = rt.Log().Clone();
        const std::size_t removed = TransitiveReduction(reduced);
        EXPECT_EQ(CountEdges(reduced) + removed, CountEdges(rt.Log()));
        for (std::size_t i = 0; i < reduced.size(); ++i) {
            for (std::size_t j = i + 1; j < reduced.size(); ++j) {
                ASSERT_EQ(Reaches(rt.Log(), i, j), Reaches(reduced, i, j))
                    << "closure changed for (" << i << ", " << j
                    << ") at seed " << seed;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The streaming (windowed) reducer: identical output to the retained
// reduction, fed one operation at a time.

/** Stream `log` through a WindowedTransitiveReducer and compare every
 * operation's reduced edges (and the removal count) against the
 * retained TransitiveReduction with the same window. */
void ExpectWindowedMatchesRetained(const OperationLog& log,
                                   std::size_t window)
{
    SCOPED_TRACE("window " + std::to_string(window));
    OperationLog retained = log.Clone();
    const std::size_t removed_retained =
        TransitiveReduction(retained, window);

    WindowedTransitiveReducer reducer(window);
    std::vector<Dependence> scratch;
    for (std::size_t i = 0; i < log.size(); ++i) {
        scratch.assign(log[i].dependences.begin(),
                       log[i].dependences.end());
        reducer.Reduce(i, scratch);
        ASSERT_EQ(retained[i].dependences, scratch)
            << "edges diverged at op " << i;
    }
    EXPECT_EQ(reducer.RemovedEdges(), removed_retained);
}

TEST(WindowedReducer, MatchesRetainedOnHandBuiltGraphs)
{
    // Chain + shortcuts (removals), diamond (no removals), and the
    // window-bounded case where the shortcut survives.
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i + 1 < 10; ++i) {
        edges.push_back({i, i + 1});
    }
    for (std::size_t i = 2; i < 10; ++i) {
        edges.push_back({0, i});
    }
    const auto chain = MakeLog(10, edges);
    for (const std::size_t window : {2u, 3u, 5u, 64u}) {
        ExpectWindowedMatchesRetained(chain, window);
    }
    const auto diamond = MakeLog(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
    ExpectWindowedMatchesRetained(diamond, 2);
}

TEST(WindowedReducer, MatchesRetainedOnRandomStreams)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        support::Rng rng(seed);
        Runtime rt;
        std::vector<RegionId> regions;
        for (int i = 0; i < 5; ++i) {
            regions.push_back(rt.CreateRegion());
        }
        for (int i = 0; i < 200; ++i) {
            TaskLaunch t;
            t.task = rng.UniformInt(1, 4);
            const int reqs = static_cast<int>(rng.UniformInt(1, 2));
            for (int q = 0; q < reqs; ++q) {
                t.requirements.push_back(RegionRequirement{
                    regions[rng.UniformInt(0, regions.size() - 1)], 0,
                    static_cast<Privilege>(rng.UniformInt(0, 3)),
                    static_cast<ReductionOpId>(rng.UniformInt(1, 2))});
            }
            rt.ExecuteTask(t);
        }
        for (const std::size_t window : {1u, 7u, 30u, 1000u}) {
            ExpectWindowedMatchesRetained(rt.Log(), window);
        }
    }
}

TEST(WindowedReducer, RejectsMisuse)
{
    EXPECT_THROW(WindowedTransitiveReducer(0), std::invalid_argument);
    WindowedTransitiveReducer reducer(8);
    std::vector<Dependence> edges;
    reducer.Reduce(0, edges);
    // Operations must be consecutive: skipping or repeating throws.
    EXPECT_THROW(reducer.Reduce(0, edges), std::invalid_argument);
    EXPECT_THROW(reducer.Reduce(2, edges), std::invalid_argument);
    reducer.Reduce(1, edges);  // the successor is fine
}

TEST(Graph, ReductionIsIdempotent)
{
    support::Rng rng(99);
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    const RegionId q = rt.CreateRegion();
    for (int i = 0; i < 60; ++i) {
        rt.ExecuteTask(TaskLaunch{
            1,
            {{rng.Bernoulli(0.5) ? r : q, 0,
              static_cast<Privilege>(rng.UniformInt(0, 2)), 0}}});
    }
    OperationLog once = rt.Log().Clone();
    TransitiveReduction(once);
    OperationLog twice = once.Clone();
    EXPECT_EQ(TransitiveReduction(twice), 0u);
    for (std::size_t i = 0; i < once.size(); ++i) {
        EXPECT_EQ(once[i].dependences, twice[i].dependences);
    }
}

}  // namespace
}  // namespace apo::rt
