/**
 * @file
 * Tests for the control-replicated front-end (paper section 5.1): the
 * agreement protocol must make every node issue a bit-identical call
 * sequence to its runtime shard, regardless of per-node analysis
 * completion jitter.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "core/replication.h"
#include "support/rng.h"

namespace apo::core {
namespace {

ApopheniaConfig SmallConfig()
{
    ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    return config;
}

void DriveLoop(ReplicatedFrontEnd& fe, int iterations, int body)
{
    // Region management broadcasts to every node; the deterministic
    // per-node allocators must agree on the id.
    std::vector<rt::RegionId> regions;
    for (int i = 0; i < body; ++i) {
        regions.push_back(fe.CreateRegion());
    }
    for (int iter = 0; iter < iterations; ++iter) {
        for (int i = 0; i < body; ++i) {
            fe.ExecuteTask(rt::TaskLaunch{
                static_cast<rt::TaskId>(100 + i),
                {{regions[i], 0, rt::Privilege::kReadOnly, 0},
                 {regions[(i + 1) % body], 0, rt::Privilege::kReadWrite,
                  0}}});
        }
    }
    fe.Flush();
}

class ReplicationProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ReplicationProperty, NodesIssueIdenticalStreams)
{
    const auto [nodes, seed] = GetParam();
    ReplicationOptions options;
    options.nodes = static_cast<std::size_t>(nodes);
    options.seed = seed;
    options.mean_latency_tasks = 120.0;
    options.jitter = 0.9;  // adversarial: nodes finish far apart
    ReplicatedFrontEnd fe(options, SmallConfig(), rt::RuntimeOptions{});
    DriveLoop(fe, /*iterations=*/80, /*body=*/10);
    EXPECT_TRUE(fe.StreamsIdentical());
    // Tracing actually happened on every node.
    for (std::size_t n = 0; n < fe.Nodes(); ++n) {
        EXPECT_GT(fe.NodeRuntime(n).Stats().tasks_replayed, 0u)
            << "node " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplicationProperty,
    ::testing::Combine(::testing::Values(2, 3, 8),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

TEST(Replication, SlackAdaptsToSlowAnalyses)
{
    ReplicationOptions options;
    options.nodes = 2;
    options.seed = 5;
    options.initial_slack = 1;        // far too tight
    options.mean_latency_tasks = 300;  // analyses are slow
    ReplicatedFrontEnd fe(options, SmallConfig(), rt::RuntimeOptions{});
    DriveLoop(fe, 100, 10);
    const auto& stats = fe.Coordination();
    EXPECT_GT(stats.jobs_coordinated, 0u);
    EXPECT_GT(stats.late_jobs, 0u);
    EXPECT_GT(stats.final_slack, options.initial_slack);
    EXPECT_TRUE(fe.StreamsIdentical());
}

TEST(Replication, GenerousSlackAvoidsLateJobs)
{
    ReplicationOptions options;
    options.nodes = 2;
    options.seed = 5;
    options.initial_slack = 10000;  // comfortably above any latency
    options.mean_latency_tasks = 50;
    options.jitter = 0.5;
    ReplicatedFrontEnd fe(options, SmallConfig(), rt::RuntimeOptions{});
    DriveLoop(fe, 100, 10);
    EXPECT_EQ(fe.Coordination().late_jobs, 0u);
    EXPECT_TRUE(fe.StreamsIdentical());
}

TEST(Replication, SingleNodeDegeneratesGracefully)
{
    ReplicationOptions options;
    options.nodes = 1;
    ReplicatedFrontEnd fe(options, SmallConfig(), rt::RuntimeOptions{});
    DriveLoop(fe, 50, 10);
    EXPECT_TRUE(fe.StreamsIdentical());
    EXPECT_GT(fe.NodeRuntime(0).Stats().tasks_replayed, 0u);
}

}  // namespace
}  // namespace apo::core
