/**
 * @file
 * Tests for the baseline identifiers (tandem repeats, LZW, quadratic
 * greedy) and the coverage oracles. Also reproduces, as assertions,
 * the paper's section 4.2 claim that tandem-repeat analysis fails on
 * loops interrupted by irregular operations while Algorithm 2 does not.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "support/rng.h"
#include "test_util.h"

namespace apo::strings {
namespace {

using apo::test::PeriodicSeq;
using apo::test::RandomSeq;
using apo::test::Seq;
using apo::test::Str;

TEST(TandemRepeats, FindsContiguousRepetition)
{
    const auto repeats = FindTandemRepeats(Seq("abababab"), 2);
    ASSERT_FALSE(repeats.empty());
    EXPECT_EQ(Str(repeats.front().tokens), "ab");
    EXPECT_EQ(repeats.front().starts.size(), 4u);
}

TEST(TandemRepeats, IgnoresSeparatedRepeats)
{
    // "ab" repeats but never contiguously: no tandem repeat exists.
    EXPECT_TRUE(FindTandemRepeats(Seq("abxabyabz"), 2).empty());
}

TEST(TandemRepeats, RespectsMinLength)
{
    const auto repeats = FindTandemRepeats(Seq("aaaa"), 2);
    for (const auto& r : repeats) {
        EXPECT_GE(r.Length(), 2u);
    }
}

TEST(TandemRepeats, Section42FailureCase)
{
    // A repetitive main loop with a convergence check between
    // iterations: tandem analysis finds (at best) fragments, while
    // Algorithm 2 recovers nearly all coverage. This is the paper's
    // stated reason for relaxing tandem repeats.
    const Sequence s = PeriodicSeq(440, 10, 11);  // noise every body
    const auto tandem = FindTandemRepeats(s, 5);
    const auto ours = FindRepeats(s, {.min_length = 5});
    const std::size_t tandem_cov = TotalCoverage(tandem);
    const std::size_t ours_cov = TotalCoverage(ours);
    EXPECT_LT(tandem_cov, s.size() / 4)
        << "tandem analysis should fail on interrupted loops";
    EXPECT_GE(ours_cov, s.size() * 3 / 4)
        << "Algorithm 2 should still find the loop";
}

TEST(Lzw, FindsRepeatedPhrasesEventually)
{
    // LZW grows phrases one token per sighting; a short loop repeated
    // many times is eventually detected.
    const Sequence s = PeriodicSeq(300, 3);
    const auto repeats = FindRepeatsLzw(s, 2);
    EXPECT_FALSE(repeats.empty());
}

TEST(Lzw, NeedsManySightingsForLongRepeats)
{
    // A 64-token body repeated 3 times: LZW cannot have built a
    // phrase anywhere near the body length yet (the paper's argument
    // for not using LZW-style detection).
    const Sequence s = PeriodicSeq(192, 64);
    const auto lzw = FindRepeatsLzw(s, 2);
    std::size_t longest = 0;
    for (const auto& r : lzw) {
        longest = std::max(longest, r.Length());
    }
    EXPECT_LT(longest, 64u);
    // Algorithm 2 finds the full body from two sightings.
    const auto ours = FindRepeats(s, {.min_length = 2});
    std::size_t ours_longest = 0;
    for (const auto& r : ours) {
        ours_longest = std::max(ours_longest, r.Length());
    }
    EXPECT_GE(ours_longest, 64u);
}

TEST(Lzw, OccurrencesAreGenuine)
{
    support::Rng rng(17);
    const Sequence s = RandomSeq(rng, 400, 2);
    for (const auto& r : FindRepeatsLzw(s, 2)) {
        for (std::size_t start : r.starts) {
            ASSERT_LE(start + r.Length(), s.size());
            EXPECT_TRUE(std::equal(r.tokens.begin(), r.tokens.end(),
                                   s.begin() + start));
        }
    }
}

TEST(QuadraticGreedy, MatchesMainAlgorithmOnSimpleLoop)
{
    const Sequence s = PeriodicSeq(60, 6);
    const auto quad = FindRepeatsQuadratic(s, 2);
    ASSERT_FALSE(quad.empty());
    EXPECT_GE(quad.front().Length(), 6u);
}

TEST(QuadraticGreedy, OccurrencesAreGenuineAndDisjoint)
{
    support::Rng rng(23);
    const Sequence s = RandomSeq(rng, 300, 2);
    const auto quad = FindRepeatsQuadratic(s, 3);
    std::set<std::size_t> used;
    for (const auto& r : quad) {
        for (std::size_t start : r.starts) {
            EXPECT_TRUE(std::equal(r.tokens.begin(), r.tokens.end(),
                                   s.begin() + start));
            for (std::size_t k = 0; k < r.Length(); ++k) {
                EXPECT_TRUE(used.insert(start + k).second);
            }
        }
    }
}

TEST(OptimalCoverage, KnownSmallCases)
{
    // "abab": cover both "ab" occurrences => 4.
    EXPECT_EQ(OptimalCoverage(Seq("abab"), 2), 4u);
    // "abcab": only "ab" repeats disjointly => 4 of 5.
    EXPECT_EQ(OptimalCoverage(Seq("abcab"), 2), 4u);
    // all-distinct: nothing repeats.
    EXPECT_EQ(OptimalCoverage(Seq("abcdef"), 2), 0u);
    // min length above any repeat: zero.
    EXPECT_EQ(OptimalCoverage(Seq("abab"), 3), 0u);
    // "aaaa": split into two "aa" => full coverage.
    EXPECT_EQ(OptimalCoverage(Seq("aaaa"), 2), 4u);
}

TEST(GreedyCoverage, MatchesHandComputedExample)
{
    // Figure 2's flavor: stream T1 T2 T3 repeated; trace set {T1T2T3}.
    const Sequence s = Seq("abcabcabab");
    const std::vector<Repeat> traces{Repeat{Seq("abc"), {}},
                                     Repeat{Seq("ab"), {}}};
    // Greedy longest-first: abc abc ab ab => covers all 10.
    EXPECT_EQ(GreedyCoverageOf(s, traces), 10u);
    const std::vector<Repeat> only_long{Repeat{Seq("abc"), {}}};
    EXPECT_EQ(GreedyCoverageOf(s, only_long), 6u);
}

TEST(GreedyCoverage, EmptyTraceSetCoversNothing)
{
    EXPECT_EQ(GreedyCoverageOf(Seq("abcabc"), {}), 0u);
}

TEST(CoverageComparison, MainAlgorithmBeatsBaselinesOnRealisticStream)
{
    // An iterative application with a 12-task body, occasional
    // convergence checks, run for many iterations.
    const Sequence s = PeriodicSeq(1200, 12, 49);
    const std::size_t ours = TotalCoverage(FindRepeats(s, {.min_length = 6}));
    const std::size_t tandem = TotalCoverage(FindTandemRepeats(s, 6));
    const std::size_t lzw = TotalCoverage(FindRepeatsLzw(s, 6));
    EXPECT_GT(ours, tandem);
    EXPECT_GT(ours, lzw);
    EXPECT_GE(ours, s.size() * 3 / 4);
}

}  // namespace
}  // namespace apo::strings
