/**
 * @file
 * Unit tests for the support library: hashing, interval sets, the
 * ruler-function sampling schedule, and the background worker pool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "support/executor.h"
#include "support/hash.h"
#include "support/intervals.h"
#include "support/rng.h"
#include "support/ruler.h"

namespace apo::support {
namespace {

TEST(Hash, SplitMixIsDeterministicAndDispersive)
{
    EXPECT_EQ(SplitMix64(42), SplitMix64(42));
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        outputs.insert(SplitMix64(i));
    }
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hash, CombineIsOrderSensitive)
{
    const auto ab = HashCombine(HashCombine(0, 1), 2);
    const auto ba = HashCombine(HashCombine(0, 2), 1);
    EXPECT_NE(ab, ba);
}

TEST(Hash, FnvDistinguishesStrings)
{
    EXPECT_NE(Fnv1a("DOT"), Fnv1a("SUB"));
    EXPECT_EQ(Fnv1a("DOT"), Fnv1a("DOT"));
    EXPECT_NE(Fnv1a(""), Fnv1a("a"));
}

TEST(Intervals, OverlapPredicate)
{
    EXPECT_TRUE(Overlaps({0, 5}, {4, 6}));
    EXPECT_TRUE(Overlaps({4, 6}, {0, 5}));
    EXPECT_FALSE(Overlaps({0, 5}, {5, 6}));  // half-open: touching is ok
    EXPECT_FALSE(Overlaps({0, 0}, {0, 1}));  // empty never overlaps
}

TEST(Intervals, InsertIfDisjointRejectsOverlaps)
{
    IntervalSet set;
    EXPECT_TRUE(set.InsertIfDisjoint(10, 20));
    EXPECT_TRUE(set.InsertIfDisjoint(0, 10));
    EXPECT_TRUE(set.InsertIfDisjoint(20, 25));
    EXPECT_FALSE(set.InsertIfDisjoint(19, 21));
    EXPECT_FALSE(set.InsertIfDisjoint(5, 6));
    EXPECT_FALSE(set.InsertIfDisjoint(0, 30));
    EXPECT_EQ(set.Size(), 3u);
    EXPECT_EQ(set.CoveredPositions(), 25u);
}

TEST(Intervals, EmptyIntervalNeverInserts)
{
    IntervalSet set;
    EXPECT_FALSE(set.InsertIfDisjoint(5, 5));
    EXPECT_TRUE(set.Empty());
}

TEST(Intervals, MatchesBruteForceOnRandomInput)
{
    Rng rng(7);
    IntervalSet set;
    std::vector<Interval> accepted;
    for (int step = 0; step < 2000; ++step) {
        const std::size_t b = rng.UniformInt(0, 500);
        const std::size_t e = b + rng.UniformInt(0, 20);
        bool brute_ok = e > b;
        for (const Interval& i : accepted) {
            if (Overlaps(i, {b, e})) {
                brute_ok = false;
                break;
            }
        }
        EXPECT_EQ(set.InsertIfDisjoint(b, e), brute_ok);
        if (brute_ok) {
            accepted.push_back({b, e});
        }
    }
    std::size_t covered = 0;
    for (const Interval& i : accepted) {
        covered += i.Length();
    }
    EXPECT_EQ(set.CoveredPositions(), covered);
    EXPECT_EQ(set.Size(), accepted.size());
}

TEST(Ruler, MatchesDefinition)
{
    // ruler(1..8) = 0 1 0 2 0 1 0 3
    const unsigned expected[] = {0, 1, 0, 2, 0, 1, 0, 3};
    for (std::uint64_t k = 1; k <= 8; ++k) {
        EXPECT_EQ(Ruler(k), expected[k - 1]) << "k=" << k;
    }
    EXPECT_EQ(Ruler(0), 0u);
    EXPECT_EQ(Ruler(1024), 10u);
}

TEST(Ruler, SampleLengthsMatchFigure5)
{
    // Buffer of size 8, scale 1: slices of length 1 2 1 4 1 2 1 8.
    const std::size_t expected[] = {1, 2, 1, 4, 1, 2, 1, 8};
    for (std::uint64_t k = 1; k <= 8; ++k) {
        EXPECT_EQ(RulerSampleLength(k, 1, 8), expected[k - 1]) << "k=" << k;
    }
}

TEST(Ruler, SampleLengthIsCapped)
{
    EXPECT_EQ(RulerSampleLength(1 << 20, 250, 5000), 5000u);
    EXPECT_EQ(RulerSampleLength(2, 250, 5000), 500u);
    EXPECT_EQ(RulerSampleLength(3, 250, 5000), 250u);
}

TEST(Ruler, TotalSampledWorkIsNLogN)
{
    // Over one full buffer of n = scale * 2^k sampling points, the
    // total sampled length is n * (log2(n/scale)/2 + 1): each level of
    // the ruler contributes ~n/2 positions. Verify the bound.
    const std::size_t scale = 1, cap = 1024;
    std::size_t total = 0;
    for (std::uint64_t k = 1; k <= cap; ++k) {
        total += RulerSampleLength(k, scale, cap);
    }
    // Exact: sum = n/2 * 1 + n/4 * 2 + ... = n * (log2(n)/2 + 1).
    EXPECT_EQ(total, cap * (10 / 2 + 1));
}

TEST(Executor, InlineExecutorRunsSynchronously)
{
    InlineExecutor exec;
    int value = 0;
    exec.Submit([&] { value = 42; });
    EXPECT_EQ(value, 42);
}

TEST(Executor, InlineExecutorRunsCompletionAfterJob)
{
    InlineExecutor exec;
    std::vector<int> order;
    exec.Submit([&] { order.push_back(1); }, [&] { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Executor, WorkerPoolRunsCompletionCallbacks)
{
    WorkerPool pool(2);
    std::atomic<int> jobs{0};
    std::atomic<int> completions{0};
    for (int i = 0; i < 50; ++i) {
        pool.Submit([&] { jobs.fetch_add(1); },
                    [&] { completions.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(jobs.load(), 50);
    EXPECT_EQ(completions.load(), 50);
}

TEST(Executor, PooledExecutorDefersCompletionsToPump)
{
    PooledExecutor exec(2);
    std::atomic<bool> job_ran{false};
    bool completed = false;  // only ever touched on this thread
    exec.Submit([&] { job_ran.store(true); }, [&] { completed = true; });
    // The job finishes on a worker, but the completion waits for us.
    while (!job_ran.load()) {
        std::this_thread::yield();
    }
    EXPECT_FALSE(completed);
    exec.Drain();
    EXPECT_TRUE(completed);
}

TEST(Executor, WorkerPoolRunsAllJobs)
{
    WorkerPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.Submit([&] { count.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(count.load(), 100);
}

TEST(Executor, DrainWaitsForInFlightJobs)
{
    WorkerPool pool(2);
    std::atomic<bool> done{false};
    pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        done = true;
    });
    pool.Drain();
    EXPECT_TRUE(done.load());
}

TEST(Rng, IsDeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    const auto x = a.UniformInt(0, 1'000'000);
    EXPECT_EQ(x, b.UniformInt(0, 1'000'000));
    // Overwhelmingly likely to differ.
    EXPECT_NE(x, c.UniformInt(0, 1'000'000));
}

}  // namespace
}  // namespace apo::support
