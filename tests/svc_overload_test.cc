/**
 * @file
 * Overload robustness of svc::TraceService (ROADMAP item 3's
 * sustained-serving half). The contracts under test:
 *
 *  - incoherent tenant/overload configurations are rejected up front
 *    with a typed svc::ServiceUsageError naming the tenant and the
 *    rule, before any tenant state is touched;
 *  - kShed keeps the backlog at the admission bound by dropping
 *    arrivals (never issuing their payloads), and the run still
 *    terminates with completed + shed == offered;
 *  - kDegrade admits everything, issues backlogged windows untraced
 *    through core::Apophenia::SetDegraded, re-enables tracing with
 *    hysteresis (multiple degrade windows under sustained overload),
 *    and is bit-safe: degraded tokens never reach the finder;
 *  - at sustainable load the overload machinery is inert — all three
 *    policies produce bit-identical per-tenant streams;
 *  - the `-lg:auto_trace:no_overload_control` escape hatch turns every
 *    policy back into kBlock and silences the health monitor;
 *  - DeficitWeightedFairPolicy still converges granted shares to the
 *    weights when the mix holds a shedding and a degrading tenant at
 *    sustained saturation, with no starvation and bounded shed-tenant
 *    latency;
 *  - the watchdog abandons analysis jobs stuck past
 *    analysis_timeout_tasks (a stalling executor cannot hang the
 *    service), and MiningCache::AbandonInProgress wakes waiters
 *    blocked on a stuck miner;
 *  - LatencyReservoir reports exact percentiles below capacity
 *    (bit-identical to the unbounded vectors it replaced) and never
 *    allocates after construction (counting-allocator pin);
 *  - a sustained streaming-mode overload run holds a resident-memory
 *    plateau: quadrupling the task budget leaves peak resident bytes
 *    flat.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/mining_cache.h"
#include "support/counting_allocator.h"
#include "support/executor.h"
#include "support/hash.h"
#include "svc/load_driver.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace apo {
namespace {

constexpr std::size_t kKernelTasks = 40;

apps::MachineConfig TestMachine()
{
    apps::MachineConfig machine;
    machine.nodes = 1;
    machine.gpus_per_node = 4;
    return machine;
}

/** Kernel-aligned service tuning (mirrors fig_overload). */
svc::ServiceOptions OverloadServiceOptions()
{
    svc::ServiceOptions options;
    options.machine = TestMachine();
    options.config.min_trace_length = 10;
    options.config.batchsize = 960;
    options.config.multi_scale_factor = 40;
    return options;
}

/** Noise-free synthetic kernel: exactly kKernelTasks per iteration,
 * so offered-load algebra is exact. */
svc::SyntheticOptions KernelOptions(std::uint64_t seed)
{
    svc::SyntheticOptions synthetic;
    synthetic.machine = TestMachine();
    synthetic.seed = seed;
    synthetic.kernel_tasks = kKernelTasks;
    synthetic.noise_interval = 0;
    return synthetic;
}

svc::TenantOptions OpenLoopTenant(apps::Application* app,
                                  std::size_t iterations,
                                  std::uint64_t arrival_gap,
                                  svc::OverloadPolicy policy,
                                  std::size_t bound, std::size_t resume)
{
    svc::TenantOptions tenant;
    tenant.name = "overload";
    tenant.app = app;
    tenant.iterations = iterations;
    tenant.arrival_gap = arrival_gap;
    tenant.overload_policy = policy;
    tenant.max_queue_iterations = bound;
    tenant.degrade_resume_iterations = resume;
    return tenant;
}

/** Asserts `body` throws ServiceUsageError whose message carries every
 * needle. */
template <typename Fn>
void ExpectUsageError(Fn&& body,
                      std::initializer_list<std::string_view> needles)
{
    try {
        body();
        ADD_FAILURE() << "expected ServiceUsageError, got no exception";
    } catch (const svc::ServiceUsageError& error) {
        const std::string what = error.what();
        for (const std::string_view needle : needles) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "message \"" << what << "\" lacks \"" << needle
                << "\"";
        }
    }
}

// ---------------------------------------------------------------------------
// Typed up-front validation.

TEST(OverloadValidation, RejectsEmptyService)
{
    ExpectUsageError(
        [] {
            svc::TraceService service(OverloadServiceOptions());
            service.Run();
        },
        {"no tenants registered"});
}

TEST(OverloadValidation, RejectsNullApplication)
{
    ExpectUsageError(
        [] {
            svc::TraceService service(OverloadServiceOptions());
            svc::TenantOptions tenant;
            tenant.name = "ghost";
            service.AddTenant(std::move(tenant));
            service.Run();
        },
        {"'ghost'", "no application"});
}

TEST(OverloadValidation, ShedNeedsOpenLoopArrivals)
{
    ExpectUsageError(
        [] {
            svc::TraceService service(OverloadServiceOptions());
            svc::SyntheticWorkload app(KernelOptions(1));
            service.AddTenant(OpenLoopTenant(
                &app, 10, /*arrival_gap=*/0,
                svc::OverloadPolicy::kShed, /*bound=*/4, 0));
            service.Run();
        },
        {"'overload'", "open-loop arrival model", "arrival_gap"});
}

TEST(OverloadValidation, ShedNeedsAnAdmissionBound)
{
    ExpectUsageError(
        [] {
            svc::TraceService service(OverloadServiceOptions());
            svc::SyntheticWorkload app(KernelOptions(1));
            service.AddTenant(OpenLoopTenant(
                &app, 10, /*arrival_gap=*/20,
                svc::OverloadPolicy::kShed, /*bound=*/0, 0));
            service.Run();
        },
        {"'overload'", "admission bound", "max_queue_iterations"});
}

TEST(OverloadValidation, DegradeRejectsReplicatedTenants)
{
    ExpectUsageError(
        [] {
            svc::TraceService service(OverloadServiceOptions());
            svc::SyntheticWorkload app(KernelOptions(1));
            svc::TenantOptions tenant = OpenLoopTenant(
                &app, 10, /*arrival_gap=*/20,
                svc::OverloadPolicy::kDegrade, /*bound=*/4,
                /*resume=*/1);
            tenant.replicas = 2;
            service.AddTenant(std::move(tenant));
            service.Run();
        },
        {"'overload'", "kDegrade", "replicated"});
}

TEST(OverloadValidation, DegradeResumeMustSitBelowTheBound)
{
    ExpectUsageError(
        [] {
            svc::TraceService service(OverloadServiceOptions());
            svc::SyntheticWorkload app(KernelOptions(1));
            service.AddTenant(OpenLoopTenant(
                &app, 10, /*arrival_gap=*/20,
                svc::OverloadPolicy::kDegrade, /*bound=*/4,
                /*resume=*/4));
            service.Run();
        },
        {"'overload'", "degrade_resume_iterations (4)",
         "max_queue_iterations (4)"});
}

TEST(OverloadValidation, StreamingRejectsReplicatedTenants)
{
    ExpectUsageError(
        [] {
            svc::ServiceOptions options = OverloadServiceOptions();
            options.log_mode = sim::LogMode::kStreaming;
            svc::TraceService service(std::move(options));
            svc::SyntheticWorkload app(KernelOptions(1));
            svc::TenantOptions tenant;
            tenant.name = "wide";
            tenant.app = &app;
            tenant.replicas = 2;
            service.AddTenant(std::move(tenant));
        },
        {"'wide'", "kStreaming", "replicated"});
}

TEST(OverloadValidation, DriverRejectsNonPositiveLoad)
{
    ExpectUsageError(
        [] { svc::LoadDriver::DeriveArrivalGap(0, kKernelTasks, 1.0); },
        {"LoadDriver", "positive"});
    ExpectUsageError(
        [] { svc::LoadDriver::DeriveArrivalGap(4, kKernelTasks, 0.0); },
        {"LoadDriver", "positive"});
}

// ---------------------------------------------------------------------------
// kShed: bounded backlog, dropped arrivals, terminating runs.

TEST(OverloadShed, BoundsBacklogAndDropsArrivals)
{
    constexpr std::size_t kIterations = 200;
    constexpr std::size_t kBound = 4;
    svc::TraceService service(OverloadServiceOptions());
    svc::SyntheticWorkload app(KernelOptions(7));
    // gap 20 against a 40-task kernel: 2x the traced issue capacity.
    service.AddTenant(OpenLoopTenant(&app, kIterations,
                                     /*arrival_gap=*/20,
                                     svc::OverloadPolicy::kShed, kBound,
                                     0));
    const svc::ServiceResult result = service.Run();
    const svc::TenantStats& stats = result.tenants[0];

    // Every offered iteration was either granted or shed — the run
    // terminated without issuing the shed payloads.
    EXPECT_EQ(stats.iterations_completed + stats.iterations_shed,
              kIterations);
    // At 2x sustained load roughly half the arrivals must go.
    EXPECT_GE(stats.iterations_shed, kIterations / 4);
    EXPECT_GE(stats.iterations_completed, kIterations / 4);
    // The admission bound held.
    EXPECT_LE(stats.max_backlog, kBound);
    // Shed arrivals were never issued: the token count is exactly the
    // granted iterations times the noise-free kernel size.
    EXPECT_EQ(stats.tokens_issued,
              stats.iterations_completed * kKernelTasks);
    EXPECT_EQ(stats.iterations_degraded, 0u);
}

TEST(OverloadShed, EscapeHatchRestoresBlocking)
{
    constexpr std::size_t kIterations = 60;
    svc::ServiceOptions options = OverloadServiceOptions();
    // The -lg:auto_trace:no_overload_control escape hatch: every
    // policy behaves like kBlock, no health-monitor action fires.
    options.config.overload_control = false;
    options.memory_high_watermark_bytes = 1;  // would breach instantly
    svc::TraceService service(std::move(options));
    svc::SyntheticWorkload app(KernelOptions(7));
    service.AddTenant(OpenLoopTenant(&app, kIterations,
                                     /*arrival_gap=*/20,
                                     svc::OverloadPolicy::kShed,
                                     /*bound=*/4, 0));
    const svc::ServiceResult result = service.Run();
    const svc::TenantStats& stats = result.tenants[0];

    EXPECT_EQ(stats.iterations_completed, kIterations);
    EXPECT_EQ(stats.iterations_shed, 0u);
    EXPECT_EQ(stats.iterations_degraded, 0u);
    // The backlog grew past the (ignored) bound — kBlock behaviour.
    EXPECT_GT(stats.max_backlog, 4u);
    // The health monitor never sampled.
    EXPECT_EQ(result.health.samples, 0u);
    EXPECT_EQ(result.health.pressure_events, 0u);
}

// ---------------------------------------------------------------------------
// kDegrade: hysteresis, liveness, bit-safety.

TEST(OverloadDegrade, HysteresisCyclesAndBitSafety)
{
    constexpr std::size_t kIterations = 200;
    constexpr std::size_t kBound = 4;
    svc::ServiceOptions options = OverloadServiceOptions();
    options.degraded_task_cost = 0.25;
    svc::TraceService service(std::move(options));
    svc::SyntheticWorkload app(KernelOptions(11));
    service.AddTenant(OpenLoopTenant(&app, kIterations,
                                     /*arrival_gap=*/20,
                                     svc::OverloadPolicy::kDegrade,
                                     kBound, /*resume=*/1));
    const svc::ServiceResult result = service.Run();
    const svc::TenantStats& stats = result.tenants[0];

    // Degrade admits everything: nothing shed, every iteration ran.
    EXPECT_EQ(stats.iterations_completed, kIterations);
    EXPECT_EQ(stats.iterations_shed, 0u);
    // Under sustained 2x load the tenant oscillates: some iterations
    // degraded, some traced, across more than one hysteresis window.
    EXPECT_GT(stats.iterations_degraded, 0u);
    EXPECT_LT(stats.iterations_degraded, kIterations);
    EXPECT_GE(stats.degrade_windows, 2u);
    // The discounted degraded issue rate bounds the backlog near the
    // admission bound (slack: the traced phase of each cycle).
    EXPECT_LE(stats.max_backlog, 4 * kBound);

    // Bit-safety: degraded tasks never reached the finder — the
    // finder observed exactly the non-degraded tokens, so re-enabling
    // tracing cannot have been perturbed by degraded windows.
    const core::Apophenia& engine = service.TenantEngine(0);
    EXPECT_GT(engine.Stats().tasks_degraded, 0u);
    EXPECT_EQ(stats.tokens_degraded, engine.Stats().tasks_degraded);
    EXPECT_EQ(engine.Finder().tokens_observed,
              engine.Stats().tasks_observed -
                  engine.Stats().tasks_degraded);
}

// ---------------------------------------------------------------------------
// Sustainable load: the policies are behaviour-identical.

TEST(OverloadPolicies, InertAtSustainableLoad)
{
    std::vector<std::vector<std::uint64_t>> digests;
    for (const svc::OverloadPolicy policy :
         {svc::OverloadPolicy::kBlock, svc::OverloadPolicy::kShed,
          svc::OverloadPolicy::kDegrade}) {
        svc::LoadDriverOptions options;
        options.service = OverloadServiceOptions();
        options.tenants = 2;
        options.offered_load = 0.8;
        options.task_budget = 16000;
        options.policy = policy;
        options.max_queue_iterations = 4;
        options.degrade_resume_iterations = 1;
        options.kernel_tasks = kKernelTasks;
        svc::LoadDriver driver(std::move(options));
        const svc::DriverResult result = driver.Run();
        EXPECT_EQ(result.shed_fraction, 0.0);
        EXPECT_EQ(result.degraded_fraction, 0.0);
        digests.push_back(result.tenant_digests);
    }
    // Bit-identical per-tenant streams under every policy.
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
}

// ---------------------------------------------------------------------------
// Fairness under saturation with a mixed-policy tenant set.

TEST(OverloadFairness, DeficitWeightedSharesUnderSaturation)
{
    constexpr std::size_t kIterations = 120;
    constexpr std::size_t kBound = 4;
    constexpr std::uint64_t kGap = kKernelTasks;  // 1x per tenant, 3x total

    svc::DeficitWeightedFairPolicy policy;
    svc::ServiceOptions options = OverloadServiceOptions();
    options.policy = &policy;
    svc::TraceService service(std::move(options));

    svc::SyntheticWorkload shed_light(KernelOptions(21));
    svc::SyntheticWorkload shed_heavy(KernelOptions(22));
    svc::SyntheticWorkload degrading(KernelOptions(23));

    svc::TenantOptions light = OpenLoopTenant(
        &shed_light, kIterations, kGap, svc::OverloadPolicy::kShed,
        kBound, 0);
    light.name = "shed-w1";
    light.weight = 1.0;
    svc::TenantOptions heavy = OpenLoopTenant(
        &shed_heavy, kIterations, kGap, svc::OverloadPolicy::kShed,
        kBound, 0);
    heavy.name = "shed-w3";
    heavy.weight = 3.0;
    svc::TenantOptions soft = OpenLoopTenant(
        &degrading, kIterations, kGap, svc::OverloadPolicy::kDegrade,
        kBound, /*resume=*/1);
    soft.name = "degrade-w1";
    soft.weight = 1.0;
    service.AddTenant(std::move(light));
    service.AddTenant(std::move(heavy));
    service.AddTenant(std::move(soft));

    const svc::ServiceResult result = service.Run();
    const svc::TenantStats& w1 = result.tenants[0];
    const svc::TenantStats& w3 = result.tenants[1];
    const svc::TenantStats& deg = result.tenants[2];

    // No starvation: every tenant made real progress, the shedding
    // pair terminated by granting or dropping every arrival, and the
    // degrading tenant ran everything.
    EXPECT_GT(w1.iterations_completed, 0u);
    EXPECT_GT(w3.iterations_completed, 0u);
    EXPECT_EQ(w1.iterations_completed + w1.iterations_shed, kIterations);
    EXPECT_EQ(w3.iterations_completed + w3.iterations_shed, kIterations);
    EXPECT_EQ(deg.iterations_completed, kIterations);
    EXPECT_GT(deg.iterations_degraded, 0u);

    // Weight convergence: both shed tenants offer identical streams,
    // so their granted-iteration ratio tracks the 3:1 weights.
    const double ratio =
        static_cast<double>(w3.iterations_completed) /
        static_cast<double>(w1.iterations_completed);
    EXPECT_GE(ratio, 2.0) << "w3 granted " << w3.iterations_completed
                          << ", w1 granted " << w1.iterations_completed;
    EXPECT_LE(ratio, 4.0);

    // Bounded wait: the shed tenants' issue latency is pinned by the
    // admission bound, not by the run length.
    const double latency_ceiling =
        static_cast<double>((kBound + 2) * kGap * 3);
    EXPECT_LE(w1.p99_issue_latency, latency_ceiling);
    EXPECT_LE(w3.p99_issue_latency, latency_ceiling);
    EXPECT_LE(w1.max_backlog, kBound);
    EXPECT_LE(w3.max_backlog, kBound);
}

// ---------------------------------------------------------------------------
// Watchdog: a stuck executor cannot hang the service.

/** Holds every submitted job un-run until Drain() — a mining backend
 * that never completes while the service runs, then floods its stale
 * publications at teardown (exercising the tolerant-publish path). */
class StallingExecutor final : public support::Executor {
  public:
    using support::Executor::Submit;

    void Submit(std::function<void()> job) override
    {
        stalled_.push_back(std::move(job));
    }

    void Drain() override
    {
        std::vector<std::function<void()>> jobs;
        jobs.swap(stalled_);
        for (auto& job : jobs) {
            job();
        }
    }

    std::size_t Stalled() const { return stalled_.size(); }

  private:
    std::vector<std::function<void()>> stalled_;
};

TEST(OverloadWatchdog, AbandonsStuckAnalyses)
{
    constexpr std::size_t kIterations = 60;
    // Destroyed after the service: the finder's teardown Drain() runs
    // the stale jobs late, against already-abandoned state.
    StallingExecutor stalling;

    svc::ServiceOptions options = OverloadServiceOptions();
    options.config.min_trace_length = 5;
    options.config.batchsize = 400;
    options.config.multi_scale_factor = 50;
    // Manual ingest: the service never waits on a stuck job's result.
    options.config.ingest_mode = core::IngestMode::kManual;
    options.executor = &stalling;
    options.analysis_timeout_tasks = 200;
    svc::TraceService service(std::move(options));

    svc::SyntheticWorkload app(KernelOptions(31));
    svc::TenantOptions tenant;
    tenant.name = "stuck";
    tenant.app = &app;
    tenant.iterations = kIterations;
    service.AddTenant(std::move(tenant));

    // The run itself is the liveness assertion: with the watchdog off
    // a stuck miner would pin its job slots forever.
    const svc::ServiceResult result = service.Run();
    EXPECT_EQ(result.tenants[0].iterations_completed, kIterations);
    EXPECT_GT(result.health.watchdog_job_abandons, 0u);
    EXPECT_GT(service.TenantEngine(0).Finder().jobs_abandoned, 0u);
    EXPECT_GT(stalling.Stalled(), 0u);
}

TEST(MiningCacheOverload, AbandonInProgressReleasesWaiters)
{
    core::MiningCache cache;
    const std::vector<rt::TokenHash> window = {11, 22, 33, 44, 55,
                                               66, 77, 88, 99, 110};
    const core::MiningCache::Key key = core::MiningCache::KeyOf(window);
    const core::MiningCache::Claim first =
        cache.AcquireOrBegin(key, window);
    ASSERT_TRUE(first.miner);

    std::atomic<bool> released{false};
    std::atomic<bool> waiter_became_miner{false};
    std::thread waiter([&] {
        const core::MiningCache::Claim claim =
            cache.AcquireOrBegin(key, window);
        waiter_became_miner.store(claim.miner);
        released.store(true);
    });

    // The waiter blocks on the in-progress entry: nothing can release
    // it but a publish, an abandon — or the watchdog sweep below.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(released.load());

    EXPECT_EQ(cache.AbandonInProgress(), 1u);
    waiter.join();
    EXPECT_TRUE(released.load());
    // The released waiter re-probed and claimed the window itself.
    EXPECT_TRUE(waiter_became_miner.load());
}

// ---------------------------------------------------------------------------
// LatencyReservoir: exactness below capacity, zero steady-state
// allocation beyond it.

TEST(LatencyReservoir, ExactBelowCapacityMatchesVectorReference)
{
    svc::LatencyReservoir reservoir(128);
    std::vector<std::uint64_t> reference;
    for (std::uint64_t i = 0; i < 100; ++i) {
        const std::uint64_t sample = support::SplitMix64(i) % 1000;
        reservoir.Add(sample);
        reference.push_back(sample);
    }
    // The exact quantile the unbounded-vector path used to compute:
    // nearest-rank over the sorted samples.
    std::sort(reference.begin(), reference.end());
    const auto exact = [&](double q) {
        const double rank =
            q * static_cast<double>(reference.size() - 1);
        const std::size_t at = static_cast<std::size_t>(rank + 0.5);
        return static_cast<double>(
            reference[std::min(at, reference.size() - 1)]);
    };
    EXPECT_EQ(reservoir.Count(), 100u);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_EQ(reservoir.Percentile(q), exact(q)) << "q=" << q;
    }
}

TEST(LatencyReservoir, AddNeverAllocatesAfterConstruction)
{
    svc::LatencyReservoir reservoir(512);
    const std::uint64_t before = support::AllocationCount();
    for (std::uint64_t i = 0; i < 100000; ++i) {
        reservoir.Add(support::SplitMix64(i));
    }
    EXPECT_EQ(support::AllocationCount(), before)
        << "Add() allocated on the sustained-serving hot path";
    EXPECT_EQ(reservoir.Count(), 100000u);
    // Sanity: the estimate is still inside the sample range.
    const double p50 = reservoir.Percentile(0.5);
    EXPECT_GT(p50, 0.0);
}

// ---------------------------------------------------------------------------
// Health monitor: pressure eviction + forced degrade.

TEST(OverloadHealth, PressureEvictsAndForceDegrades)
{
    constexpr std::size_t kIterations = 60;
    svc::ServiceOptions options = OverloadServiceOptions();
    // A watermark every retained-log run breaches almost immediately.
    options.memory_high_watermark_bytes = 64 * 1024;
    svc::TraceService service(std::move(options));
    svc::SyntheticWorkload app(KernelOptions(41));
    // Sustainable load: any degraded iteration below is the memory
    // latch, not queue pressure.
    service.AddTenant(OpenLoopTenant(&app, kIterations,
                                     /*arrival_gap=*/45,
                                     svc::OverloadPolicy::kDegrade,
                                     /*bound=*/8, /*resume=*/2));
    const svc::ServiceResult result = service.Run();

    EXPECT_GT(result.health.samples, 0u);
    EXPECT_GT(result.health.pressure_events, 0u);
    EXPECT_GT(result.health.peak_resident_bytes,
              static_cast<std::size_t>(64 * 1024));
    EXPECT_GT(result.health.forced_degrades, 0u);
    // The memory latch degraded iterations the queue never would
    // have, and the tenant still ran to completion.
    EXPECT_GT(result.tenants[0].iterations_degraded, 0u);
    EXPECT_EQ(result.tenants[0].iterations_completed, kIterations);
}

// ---------------------------------------------------------------------------
// Sustained serving: resident memory plateaus under streaming logs.

std::size_t PeakResidentAt(std::uint64_t task_budget,
                           svc::OverloadPolicy policy)
{
    svc::LoadDriverOptions options;
    options.service = OverloadServiceOptions();
    options.service.log_mode = sim::LogMode::kStreaming;
    // Sample resident bytes without ever breaching: the plateau must
    // come from streaming retirement + bounded reservoirs alone.
    options.service.memory_high_watermark_bytes = 1u << 30;
    options.tenants = 2;
    options.offered_load = 2.0;
    options.task_budget = task_budget;
    options.policy = policy;
    options.max_queue_iterations = 6;
    options.degrade_resume_iterations = 1;
    options.kernel_tasks = kKernelTasks;
    svc::LoadDriver driver(std::move(options));
    const svc::DriverResult result = driver.Run();
    EXPECT_EQ(result.service.health.pressure_events, 0u);
    EXPECT_GT(result.peak_resident_bytes, 0u);
    return result.peak_resident_bytes;
}

TEST(OverloadSustained, ResidentMemoryPlateausUnderStreaming)
{
    for (const svc::OverloadPolicy policy :
         {svc::OverloadPolicy::kShed, svc::OverloadPolicy::kDegrade}) {
        const std::size_t short_run = PeakResidentAt(120000, policy);
        const std::size_t long_run = PeakResidentAt(480000, policy);
        // 4x the task budget, flat peak resident bytes: the sustained
        // run holds a memory plateau instead of scaling with stream
        // length.
        EXPECT_LE(long_run,
                  static_cast<std::size_t>(1.10 * short_run))
            << "policy " << static_cast<int>(policy) << ": "
            << short_run << " -> " << long_run;
    }
}

}  // namespace
}  // namespace apo
