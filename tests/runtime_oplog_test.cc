/**
 * @file
 * Tests for the columnar operation log (runtime/oplog.h): append/view
 * round-trips across block boundaries, streaming retire with block
 * recycling and bounded resident memory, the fallback-policy rewind of
 * abandoned replay fragments, and the end-to-end zero-allocation
 * contract of the untraced issue path (api::LaunchBuilder -> Runtime ->
 * log append), verified with the counting allocator.
 */
#include <gtest/gtest.h>

#include <vector>

#include "api/frontend.h"
#include "api/launch.h"
#include "runtime/graph.h"
#include "runtime/report.h"
#include "runtime/runtime.h"

#include "support/counting_allocator.h"

namespace apo::rt {
namespace {

TaskLaunch MakeLaunch(TaskId task, std::size_t requirements,
                      std::uint32_t shard = 0)
{
    TaskLaunch launch;
    launch.task = task;
    launch.shard = shard;
    launch.execution_us = 10.0 * static_cast<double>(task);
    for (std::size_t q = 0; q < requirements; ++q) {
        launch.requirements.push_back(RegionRequirement{
            RegionId{1 + q}, static_cast<FieldId>(q),
            Privilege::kReadOnly, 0});
    }
    return launch;
}

/** Tiny blocks so a handful of appends crosses many boundaries. */
OperationLog::Config TinyBlocks()
{
    OperationLog::Config config;
    config.ops_per_block = 4;
    config.payload_block_elems = 8;
    return config;
}

TEST(OperationLog, AppendViewRoundTripAcrossBlockBoundaries)
{
    OperationLog log(TinyBlocks());
    std::vector<TaskLaunch> launches;
    std::vector<std::vector<Dependence>> edges;
    for (std::size_t i = 0; i < 41; ++i) {
        // Requirement counts 0..6 force mid-block seals; count 17
        // exceeds the payload block size entirely (oversize block).
        const std::size_t reqs = i == 20 ? 17 : i % 7;
        launches.push_back(MakeLaunch(100 + i, reqs,
                                      static_cast<std::uint32_t>(i % 3)));
        std::vector<Dependence> deps;
        for (std::size_t d = 0; d < i % 4; ++d) {
            deps.push_back(Dependence{i > d ? i - d - 1 : 0, i,
                                      DependenceKind::kTrue});
        }
        edges.push_back(deps);
        log.Append(TaskLaunchView::Of(launches.back()),
                   i % 2 ? AnalysisMode::kRecorded
                         : AnalysisMode::kAnalyzed,
                   TraceId{i % 5}, 1.5 * static_cast<double>(i),
                   i % 8 == 0, edges.back());
    }
    ASSERT_EQ(log.size(), 41u);
    for (std::size_t i = 0; i < log.size(); ++i) {
        const OpView op = log[i];
        EXPECT_EQ(op.index, i);
        EXPECT_EQ(op.launch.task, launches[i].task);
        EXPECT_EQ(op.token, HashLaunch(launches[i]));
        EXPECT_EQ(op.launch.requirement_count,
                  launches[i].requirements.size());
        EXPECT_TRUE(std::equal(op.launch.Requirements().begin(),
                               op.launch.Requirements().end(),
                               launches[i].requirements.begin(),
                               launches[i].requirements.end()));
        EXPECT_EQ(op.dependences, edges[i]);
        EXPECT_EQ(op.analysis_cost_us, 1.5 * static_cast<double>(i));
        EXPECT_EQ(op.replay_head, i % 8 == 0);
        EXPECT_EQ(op.trace, TraceId{i % 5});
    }
    // Iteration agrees with indexing.
    std::size_t seen = 0;
    for (const auto& op : log) {
        EXPECT_EQ(op.index, seen);
        ++seen;
    }
    EXPECT_EQ(seen, log.size());
    EXPECT_EQ(log.back().launch.task, launches.back().task);
}

TEST(OperationLog, StreamingRetireEmitsEachOpOnceInOrder)
{
    OperationLog log(TinyBlocks());
    std::vector<std::size_t> emitted;
    log.EnableStreaming([&](const OpView& op) {
        emitted.push_back(op.index);
        // Spans are valid during the callback.
        EXPECT_EQ(op.launch.requirement_count, 2u);
    });
    const TaskLaunch launch = MakeLaunch(7, 2);
    const TaskLaunchView view = TaskLaunchView::Of(launch);
    for (std::size_t i = 0; i < 100; ++i) {
        log.Append(view, AnalysisMode::kAnalyzed, kNoTrace, 1.0, false,
                   {});
        log.SetRetireBound(log.size());
    }
    ASSERT_EQ(emitted.size(), 100u);
    for (std::size_t i = 0; i < emitted.size(); ++i) {
        EXPECT_EQ(emitted[i], i);
    }
    EXPECT_EQ(log.RetiredCount(), 100u);
}

TEST(OperationLog, StreamingRetireBoundHoldsBackOpenSuffix)
{
    OperationLog log(TinyBlocks());
    std::size_t emitted = 0;
    log.EnableStreaming([&](const OpView&) { ++emitted; });
    const TaskLaunch launch = MakeLaunch(7, 1);
    const TaskLaunchView view = TaskLaunchView::Of(launch);
    for (std::size_t i = 0; i < 30; ++i) {
        log.Append(view, AnalysisMode::kReplayed, TraceId{1}, 1.0,
                   i == 10, {});
        log.SetRetireBound(10);  // ops >= 10 form an open fragment
    }
    EXPECT_EQ(emitted, 10u);
    // The held-back suffix is still addressable and mutable (rewind).
    EXPECT_EQ(log[10].mode, AnalysisMode::kReplayed);
    log.RewriteAsAnalyzed(10, 9.0);
    EXPECT_EQ(log[10].mode, AnalysisMode::kAnalyzed);
    EXPECT_EQ(log[10].trace, kNoTrace);
    EXPECT_FALSE(log[10].replay_head);
    EXPECT_EQ(log[10].analysis_cost_us, 9.0);
    log.SetRetireBound(log.size());
    EXPECT_EQ(emitted, 30u);
}

TEST(OperationLog, StreamingRecyclesBlocksResidentStaysBounded)
{
    OperationLog::Config config;
    config.ops_per_block = 64;
    config.payload_block_elems = 256;
    OperationLog log(config);
    log.EnableStreaming([](const OpView&) {});
    const TaskLaunch launch = MakeLaunch(3, 3);
    const TaskLaunchView view = TaskLaunchView::Of(launch);
    const Dependence dep{0, 1, DependenceKind::kTrue};
    std::size_t steady_resident = 0;
    for (std::size_t i = 0; i < 100000; ++i) {
        log.Append(view, AnalysisMode::kAnalyzed, kNoTrace, 1.0, false,
                   {&dep, 1});
        log.SetRetireBound(log.size());
        if (i == 1000) {
            steady_resident = log.ResidentBytes();
        }
    }
    ASSERT_GT(steady_resident, 0u);
    // 100k ops later, resident memory has not grown past the warm
    // steady state — blocks recycle instead of accumulating.
    EXPECT_LE(log.ResidentBytes(), steady_resident);
    EXPECT_LE(log.PeakResidentBytes(), steady_resident);
    EXPECT_LE(log.ResidentBlocks(), 8u);
    EXPECT_EQ(log.RetiredCount(), 100000u);
    // The report formatter reflects the retire state.
    const std::string report = FormatOperationLog(log);
    EXPECT_NE(report.find("100000 op(s) logged, 100000 retired"),
              std::string::npos);
}

TEST(OperationLog, CloneIsDeepAndIndependent)
{
    OperationLog log(TinyBlocks());
    const TaskLaunch a = MakeLaunch(1, 2);
    const TaskLaunch b = MakeLaunch(2, 3);
    const Dependence dep{0, 1, DependenceKind::kAnti};
    log.Append(TaskLaunchView::Of(a), AnalysisMode::kAnalyzed, kNoTrace,
               1.0, false, {});
    log.Append(TaskLaunchView::Of(b), AnalysisMode::kRecorded, TraceId{4},
               2.0, false, {&dep, 1});
    OperationLog copy = log.Clone();
    ASSERT_EQ(copy.size(), 2u);
    EXPECT_EQ(copy[1].token, log[1].token);
    EXPECT_EQ(copy[1].dependences, log[1].dependences);
    // Mutating the copy leaves the original untouched.
    copy.ShrinkDependences(1, 0);
    EXPECT_EQ(copy[1].dependences.size(), 0u);
    EXPECT_EQ(log[1].dependences.size(), 1u);
}

TEST(OperationLog, TransitiveReductionPrunesInPlace)
{
    // 0 -> 1 -> 2 plus the implied 0 -> 2, built through the real
    // analyzer (write/read-write chain).
    Runtime rt;
    const RegionId r = rt.CreateRegion();
    rt.ExecuteTask(TaskLaunch{1, {{r, 0, Privilege::kReadWrite, 0}}});
    rt.ExecuteTask(TaskLaunch{2, {{r, 0, Privilege::kReadOnly, 0}}});
    rt.ExecuteTask(TaskLaunch{3, {{r, 0, Privilege::kReadWrite, 0}}});
    OperationLog reduced = rt.Log().Clone();
    const std::size_t before = CountEdges(reduced);
    const std::size_t removed = TransitiveReduction(reduced);
    EXPECT_EQ(CountEdges(reduced), before - removed);
    for (std::size_t i = 0; i < reduced.size(); ++i) {
        for (std::size_t j = i; j < reduced.size(); ++j) {
            EXPECT_EQ(Reaches(rt.Log(), i, j), Reaches(reduced, i, j));
        }
    }
}

// ---------------------------------------------------------------------------
// Fallback rewind.

TEST(FallbackRewind, MidReplayMismatchRewindsThePrefix)
{
    auto write = [](RegionId r) {
        return TaskLaunch{1, {{r, 0, Privilege::kReadWrite, 0}}};
    };
    auto read = [](RegionId r) {
        return TaskLaunch{2, {{r, 0, Privilege::kReadOnly, 0}}};
    };
    // The traced fragment carries real internal edges (read-after-
    // write), so the rewind path is exercised on ops whose edges came
    // partly from the template.
    auto drive = [&](Runtime& rt, RegionId a, RegionId b, bool traced) {
        if (traced) {
            rt.BeginTrace(1);
        }
        rt.ExecuteTask(write(a));
        rt.ExecuteTask(read(a));
        rt.ExecuteTask(read(a));
        if (traced) {
            rt.EndTrace(1);
            rt.BeginTrace(1);
        }
        rt.ExecuteTask(write(a));  // replays (position 0)
        rt.ExecuteTask(read(a));   // replays (position 1)
        if (traced) {
            EXPECT_EQ(rt.Stats().tasks_replayed, 2u);
        }
        rt.ExecuteTask(read(b));  // deviates -> fallback + rewind
        if (traced) {
            rt.EndTrace(1);
        }
    };

    RuntimeOptions options;
    options.mismatch_policy = MismatchPolicy::kFallback;
    Runtime rt(options);
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    drive(rt, a, b, /*traced=*/true);
    EXPECT_EQ(rt.Stats().trace_mismatches, 1u);
    // The two already-replayed ops were rewound to analyzed
    // accounting; nothing in the log claims a replay happened.
    EXPECT_EQ(rt.Stats().tasks_replayed, 0u);
    EXPECT_EQ(rt.Stats().tasks_rewound, 2u);
    EXPECT_EQ(rt.Stats().tasks_analyzed, 3u);
    EXPECT_EQ(rt.Stats().tasks_recorded, 3u);
    for (std::size_t i = 3; i < rt.Log().size(); ++i) {
        EXPECT_EQ(rt.Log()[i].mode, AnalysisMode::kAnalyzed);
        EXPECT_EQ(rt.Log()[i].trace, kNoTrace);
        EXPECT_FALSE(rt.Log()[i].replay_head);
        EXPECT_EQ(rt.Log()[i].analysis_cost_us, rt.ScaledAnalysisUs());
    }
    // The dependence graph equals what a fresh runtime analyzing the
    // same stream produces (the rewind touches accounting only).
    Runtime fresh;
    const RegionId fa = fresh.CreateRegion();
    const RegionId fb = fresh.CreateRegion();
    drive(fresh, fa, fb, /*traced=*/false);
    ASSERT_EQ(rt.Log().size(), fresh.Log().size());
    for (std::size_t i = 0; i < rt.Log().size(); ++i) {
        EXPECT_EQ(rt.Log()[i].dependences, fresh.Log()[i].dependences)
            << "op " << i;
    }
}

TEST(FallbackRewind, ShortReplayAtEndRewinds)
{
    RuntimeOptions options;
    options.mismatch_policy = MismatchPolicy::kFallback;
    Runtime rt(options);
    const RegionId a = rt.CreateRegion();
    const TaskLaunch read{1, {{a, 0, Privilege::kReadOnly, 0}}};
    rt.BeginTrace(1);
    rt.ExecuteTask(read);
    rt.ExecuteTask(read);
    rt.EndTrace(1);
    rt.BeginTrace(1);
    rt.ExecuteTask(read);
    rt.EndTrace(1);  // one task short: fallback rewinds, no throw
    EXPECT_EQ(rt.Stats().trace_mismatches, 1u);
    EXPECT_EQ(rt.Stats().tasks_replayed, 0u);
    EXPECT_EQ(rt.Stats().tasks_rewound, 1u);
    EXPECT_EQ(rt.Log().back().mode, AnalysisMode::kAnalyzed);
    EXPECT_EQ(rt.Stats().trace_replays, 0u);
}

TEST(FallbackRewind, WorksUnderStreamingBecauseFragmentsStayResident)
{
    RuntimeOptions options;
    options.mismatch_policy = MismatchPolicy::kFallback;
    options.log_config.ops_per_block = 2;  // aggressive retirement
    Runtime rt(options);
    std::vector<AnalysisMode> emitted;
    rt.EnableLogStreaming(
        [&](const OpView& op) { emitted.push_back(op.mode); });
    const RegionId a = rt.CreateRegion();
    const RegionId b = rt.CreateRegion();
    auto read = [&](RegionId r) {
        return TaskLaunch{1, {{r, 0, Privilege::kReadOnly, 0}}};
    };
    rt.BeginTrace(1);
    rt.ExecuteTask(read(a));
    rt.ExecuteTask(read(a));
    rt.ExecuteTask(read(a));
    rt.EndTrace(1);
    rt.BeginTrace(1);
    rt.ExecuteTask(read(a));
    rt.ExecuteTask(read(a));
    rt.ExecuteTask(read(b));  // mismatch -> rewind, then retire
    rt.EndTrace(1);
    rt.DrainLogStream();
    ASSERT_EQ(emitted.size(), 6u);
    // The consumer observed the rewound modes, never kReplayed.
    EXPECT_EQ(emitted[3], AnalysisMode::kAnalyzed);
    EXPECT_EQ(emitted[4], AnalysisMode::kAnalyzed);
    EXPECT_EQ(emitted[5], AnalysisMode::kAnalyzed);
}

// ---------------------------------------------------------------------------
// The end-to-end zero-allocation contract (acceptance criterion):
// api::LaunchBuilder -> api::Frontend -> Runtime -> arena log append.

TEST(ZeroAlloc, UntracedSteadyStateIssuesWithoutAllocating)
{
    Runtime rt;
    api::UntracedFrontend frontend(rt);
    api::LaunchBuilder builder;
    const RegionId r0 = rt.CreateRegion();
    const RegionId r1 = rt.CreateRegion();
    const RegionId out = rt.CreateRegion();

    // Write-carrying privileges keep the analyzer's reader lists from
    // growing without bound, the way real iterative workloads do.
    auto issue_one = [&](std::size_t i) {
        const FieldId f = static_cast<FieldId>(i % 4);
        builder
            .Start(static_cast<TaskId>(100 + i % 8),
                   static_cast<std::uint32_t>(i % 4), 50.0)
            .Add(RegionRequirement{r0, f, Privilege::kReadWrite, 0})
            .Add(RegionRequirement{r1, f, Privilege::kReadWrite, 0})
            .Add(RegionRequirement{out, f, Privilege::kWriteDiscard, 0})
            .LaunchOn(frontend);
    };
    // Warm up: field states materialize, scratch vectors reach steady
    // capacity.
    for (std::size_t i = 0; i < 64; ++i) {
        issue_one(i);
    }
    // Pre-stock the log's block free lists for the measured window —
    // what a long-running retained-mode service does; streaming mode
    // reaches the same state perpetually by recycling.
    constexpr std::size_t kMeasured = 3000;
    rt.ReserveLog(kMeasured, kMeasured * 3, kMeasured * 4);

    const std::uint64_t before = support::AllocationCount();
    for (std::size_t i = 0; i < kMeasured; ++i) {
        issue_one(64 + i);
    }
    EXPECT_EQ(support::AllocationCount() - before, 0u)
        << "untraced issue path allocated per launch";
    EXPECT_EQ(rt.Log().size(), 64 + kMeasured);
}

TEST(ZeroAlloc, StreamingSteadyStateIsStrictlyAllocationFree)
{
    RuntimeOptions options;
    options.log_config.ops_per_block = 256;
    options.log_config.payload_block_elems = 1024;
    Runtime rt(options);
    rt.EnableLogStreaming([](const OpView&) {});
    api::UntracedFrontend frontend(rt);
    api::LaunchBuilder builder;
    const RegionId r0 = rt.CreateRegion();
    const RegionId out = rt.CreateRegion();
    auto issue_one = [&](std::size_t i) {
        const FieldId f = static_cast<FieldId>(i % 4);
        builder.Start(static_cast<TaskId>(100 + i % 8), 0, 50.0)
            .Add(RegionRequirement{r0, f, Privilege::kReadWrite, 0})
            .Add(RegionRequirement{out, f, Privilege::kWriteDiscard, 0})
            .LaunchOn(frontend);
    };
    // Warm through several full block cycles so every column recycles.
    for (std::size_t i = 0; i < 4096; ++i) {
        issue_one(i);
    }
    const std::uint64_t before = support::AllocationCount();
    for (std::size_t i = 0; i < 10000; ++i) {
        issue_one(4096 + i);
    }
    EXPECT_EQ(support::AllocationCount() - before, 0u)
        << "streaming steady state must be allocation-free per launch";
    EXPECT_EQ(rt.Log().RetiredCount(), 14096u);
}

}  // namespace
}  // namespace apo::rt
