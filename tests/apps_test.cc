/**
 * @file
 * Tests for the workload skeletons: determinism, manual-annotation
 * validity (S3D/HTR/FlexFlow), steady-state periodicity of the
 * cuPyNumeric-style streams, and tracing behaviour through Apophenia.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "api/frontend.h"
#include "apps/torchswe.h"
#include "core/apophenia.h"

namespace apo::apps {
namespace {

MachineConfig SmallMachine()
{
    MachineConfig m;
    m.nodes = 2;
    m.gpus_per_node = 2;
    return m;
}

std::vector<rt::TokenHash> TokenStream(Application& app,
                                       std::size_t iterations,
                                       bool manual = false)
{
    rt::Runtime runtime;
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    for (std::size_t i = 0; i < iterations; ++i) {
        app.Iteration(sink, i, manual);
    }
    std::vector<rt::TokenHash> tokens;
    tokens.reserve(runtime.Log().size());
    for (const auto& op : runtime.Log()) {
        tokens.push_back(op.token);
    }
    return tokens;
}

template <typename App, typename Options>
void ExpectDeterministicStream(Options options)
{
    App a(options), b(options);
    EXPECT_EQ(TokenStream(a, 20), TokenStream(b, 20));
}

TEST(Apps, StreamsAreDeterministic)
{
    ExpectDeterministicStream<S3dApplication>(
        S3dOptions{.machine = SmallMachine()});
    ExpectDeterministicStream<HtrApplication>(
        HtrOptions{.machine = SmallMachine()});
    ExpectDeterministicStream<CfdApplication>(
        CfdOptions{.machine = SmallMachine()});
    ExpectDeterministicStream<TorchSweApplication>(
        TorchSweOptions{.machine = SmallMachine()});
    ExpectDeterministicStream<FlexFlowApplication>(
        FlexFlowOptions{.machine = SmallMachine()});
}

TEST(S3d, HandoffSchedule)
{
    // Every iteration for the first 10, every 10th afterwards.
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_TRUE(S3dApplication::NeedsHandoff(i));
    }
    EXPECT_FALSE(S3dApplication::NeedsHandoff(11));
    EXPECT_TRUE(S3dApplication::NeedsHandoff(20));
    EXPECT_FALSE(S3dApplication::NeedsHandoff(21));
    EXPECT_TRUE(S3dApplication::NeedsHandoff(30));
}

TEST(S3d, ManualAnnotationsAreValidUnderStrictReplay)
{
    // The hand-traced port must never trip TraceMismatchError even
    // across hand-off boundary changes (iteration 10's regime switch).
    S3dApplication app(S3dOptions{.machine = SmallMachine()});
    rt::Runtime runtime;  // strict mismatch policy
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    for (std::size_t i = 0; i < 40; ++i) {
        ASSERT_NO_THROW(app.Iteration(sink, i, /*manual=*/true));
    }
    EXPECT_EQ(runtime.Stats().traces_recorded, 1u);
    EXPECT_EQ(runtime.Stats().trace_replays, 39u);
    EXPECT_GT(runtime.Stats().ReplayedFraction(), 0.8);
}

TEST(Htr, ManualAnnotationsAreValidUnderStrictReplay)
{
    HtrApplication app(HtrOptions{.machine = SmallMachine()});
    rt::Runtime runtime;
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    for (std::size_t i = 0; i < 30; ++i) {
        ASSERT_NO_THROW(app.Iteration(sink, i, true));
    }
    EXPECT_EQ(runtime.Stats().traces_recorded, 1u);
    EXPECT_EQ(runtime.Stats().trace_replays, 29u);
}

TEST(FlexFlow, ManualAnnotationsAreValidUnderStrictReplay)
{
    FlexFlowApplication app(FlexFlowOptions{.machine = SmallMachine()});
    rt::Runtime runtime;
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    for (std::size_t i = 0; i < 20; ++i) {
        ASSERT_NO_THROW(app.Iteration(sink, i, true));
    }
    // Seven segment traces per iteration, recorded once each.
    EXPECT_EQ(runtime.Stats().traces_recorded, 7u);
    EXPECT_EQ(runtime.Stats().trace_replays, 7u * 19u);
}

TEST(FlexFlow, StrongScalingShrinksKernels)
{
    FlexFlowOptions one;
    one.machine.nodes = 1;
    one.machine.gpus_per_node = 1;
    FlexFlowOptions eight = one;
    eight.machine.gpus_per_node = 8;
    EXPECT_DOUBLE_EQ(FlexFlowApplication(one).LayerExecUs(),
                     8.0 * FlexFlowApplication(eight).LayerExecUs());
}

/** Find the steady-state period (in iterations) of an application's
 * token stream, comparing per-iteration token chunks after warmup. */
std::size_t StreamPeriod(Application& app, std::size_t iterations,
                         std::size_t max_period)
{
    rt::Runtime runtime;
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    std::vector<std::size_t> boundaries{0};
    for (std::size_t i = 0; i < iterations; ++i) {
        app.Iteration(sink, i, false);
        boundaries.push_back(runtime.Log().size());
    }
    auto chunk = [&](std::size_t iter) {
        std::vector<rt::TokenHash> tokens;
        for (std::size_t k = boundaries[iter]; k < boundaries[iter + 1];
             ++k) {
            tokens.push_back(runtime.Log()[k].token);
        }
        return tokens;
    };
    const std::size_t probe = iterations - max_period - 1;
    for (std::size_t period = 1; period <= max_period; ++period) {
        bool matches = true;
        for (std::size_t k = 0; k < max_period && matches; ++k) {
            matches = chunk(probe + k) ==
                      chunk(probe + k >= period ? probe + k - period : 0);
        }
        if (matches) {
            return period;
        }
    }
    return 0;
}

TEST(Cfd, RegionRecyclingMakesStreamMultiIterationPeriodic)
{
    // The section 2 pathology at application scale: the steady-state
    // period exceeds one source-level iteration.
    CfdOptions options{.machine = SmallMachine()};
    options.check_interval = 1000;  // keep checks out of the probe
    CfdApplication app(options);
    const std::size_t period = StreamPeriod(app, 40, 8);
    ASSERT_GT(period, 0u) << "stream never became periodic";
    EXPECT_GT(period, 1u)
        << "expected region recycling to defeat 1-iteration traces";
}

TEST(TorchSwe, SteadyStateIsPeriodic)
{
    TorchSweOptions options{.machine = SmallMachine()};
    options.allocation_pool_budget = 100;  // shorten the pool warmup
    TorchSweApplication app(options);
    EXPECT_GT(StreamPeriod(app, 30, 8), 0u);
}

TEST(TorchSwe, PoolGrowthDelaysRepetition)
{
    // Until the allocation pool reaches its budget, every iteration
    // allocates fresh regions and the stream never repeats — the
    // mechanism behind the paper's ~300-iteration cuPyNumeric warmups.
    TorchSweOptions options{.machine = SmallMachine()};
    options.allocation_pool_budget = 1000;
    TorchSweApplication app(options);
    rt::Runtime runtime;
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    std::vector<std::size_t> boundaries{0};
    for (std::size_t i = 0; i < 40; ++i) {
        app.Iteration(sink, i, false);
        boundaries.push_back(runtime.Log().size());
    }
    // Early iterations must all differ (fresh regions every time).
    auto chunk = [&](std::size_t iter) {
        std::vector<rt::TokenHash> tokens;
        for (std::size_t k = boundaries[iter]; k < boundaries[iter + 1];
             ++k) {
            tokens.push_back(runtime.Log()[k].token);
        }
        return tokens;
    };
    for (std::size_t it = 2; it < 20; ++it) {
        EXPECT_NE(chunk(it), chunk(it - 1));
    }
}

TEST(TorchSwe, TracesExceed2000TasksAt64Gpus)
{
    // The paper: "Real-world applications ... have traces that contain
    // more than 2000 tasks".
    TorchSweOptions options;
    options.machine.nodes = 8;
    options.machine.gpus_per_node = 8;
    TorchSweApplication app(options);
    rt::Runtime runtime;
    api::DirectFrontend sink(runtime);
    app.Setup(sink);
    const std::size_t before = runtime.Log().size();
    app.Iteration(sink, 0, false);
    EXPECT_GT(runtime.Log().size() - before, 2000u);
}

template <typename App, typename Options>
double AutoReplayFraction(Options options, std::size_t iterations)
{
    rt::Runtime runtime;
    core::ApopheniaConfig config;
    config.min_trace_length = 10;
    config.batchsize = 2000;
    config.multi_scale_factor = 100;
    core::Apophenia fe(runtime, config);
    api::Frontend& sink = fe;
    App app(options);
    app.Setup(sink);
    for (std::size_t i = 0; i < iterations; ++i) {
        app.Iteration(sink, i, false);
    }
    sink.Flush();
    return runtime.Stats().ReplayedFraction();
}

TEST(Apps, ApopheniaTracesEveryWorkload)
{
    EXPECT_GT(AutoReplayFraction<S3dApplication>(
                  S3dOptions{.machine = SmallMachine()}, 80),
              0.5);
    EXPECT_GT(AutoReplayFraction<HtrApplication>(
                  HtrOptions{.machine = SmallMachine()}, 80),
              0.5);
    EXPECT_GT(AutoReplayFraction<CfdApplication>(
                  CfdOptions{.machine = SmallMachine()}, 150),
              0.5);
    EXPECT_GT(AutoReplayFraction<TorchSweApplication>(
                  TorchSweOptions{.machine = SmallMachine()}, 150),
              0.5);
    EXPECT_GT(AutoReplayFraction<FlexFlowApplication>(
                  FlexFlowOptions{.machine = SmallMachine()}, 80),
              0.5);
}

TEST(TorchSwe, WarmupGrowsWithAllocationPoolBudget)
{
    // The figure 9 mechanism, as an assertion: a bigger allocation
    // pool means more iterations of never-repeating fresh-region
    // tokens before tracing can begin, so the first replay moves
    // later roughly in proportion to the budget.
    auto first_replay = [](std::size_t budget) {
        rt::Runtime runtime;
        core::ApopheniaConfig config;
        config.min_trace_length = 10;
        config.batchsize = 2000;
        config.multi_scale_factor = 100;
        core::Apophenia fe(runtime, config);
        api::Frontend& sink = fe;
        TorchSweOptions options{.machine = SmallMachine()};
        options.allocation_pool_budget = budget;
        TorchSweApplication app(options);
        app.Setup(sink);
        for (int i = 0; i < 120; ++i) {
            app.Iteration(sink, i, false);
        }
        sink.Flush();
        for (std::size_t k = 0; k < runtime.Log().size(); ++k) {
            if (runtime.Log()[k].mode == rt::AnalysisMode::kReplayed) {
                return k;
            }
        }
        return runtime.Log().size();
    };
    const std::size_t fast = first_replay(50);
    const std::size_t slow = first_replay(1500);
    EXPECT_LT(fast, slow);
    EXPECT_GT(slow, 3 * fast / 2);
}

TEST(Cfd, ApopheniaHandlesResidualCheckInterruptions)
{
    CfdOptions options{.machine = SmallMachine()};
    options.check_interval = 10;  // frequent irregular interruptions
    EXPECT_GT(AutoReplayFraction<CfdApplication>(options, 200), 0.4);
}

}  // namespace
}  // namespace apo::apps
