/**
 * @file
 * Elastic-membership tests (PR: fault tolerance): scheduled node
 * crashes and rejoins on sim::Cluster. A rejoining node resyncs from
 * a healthy peer — newest checkpoint + retained decision tail — after
 * which every node's stream digest must equal the churn-free run's,
 * bit for bit; healthy nodes must never notice the churn. The same
 * resync path heals transiently corrupted (quarantined) replicas,
 * automatically when the injection window closes and manually via
 * ResyncQuarantined(). Misuse (bad fault plans, touching a crashed
 * node) is a typed rt::RuntimeUsageError; malformed checkpoint images
 * are a typed fault::CheckpointError.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "apps/htr.h"
#include "apps/s3d.h"
#include "fault/checkpoint.h"
#include "runtime/errors.h"
#include "sim/cluster.h"

namespace apo {
namespace {

core::ApopheniaConfig SmallConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 5;
    config.batchsize = 400;
    config.multi_scale_factor = 50;
    return config;
}

sim::ClusterOptions BaseOptions(std::size_t nodes, bool streaming)
{
    sim::ClusterOptions options;
    options.coordination.nodes = nodes;
    options.coordination.seed = 7;
    options.coordination.mean_latency_tasks = 120.0;
    options.coordination.jitter = 0.6;
    options.config = SmallConfig();
    options.runtime_options.nodes = nodes;
    options.stream_logs = streaming;
    return options;
}

/** Drive `iterations` of App through the cluster; returns the total
 * issued task count (the coordinate fault plans are expressed in). */
template <typename App, typename Options>
std::uint64_t Drive(sim::Cluster& cluster, const Options& app_options,
                    std::size_t iterations)
{
    App app(app_options);
    app.Setup(cluster);
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        app.Iteration(cluster, iter, /*manual_tracing=*/false);
    }
    cluster.Flush();
    cluster.DrainLogStreams();
    return cluster.Stats().tasks_executed;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> DigestsOf(
    const sim::Cluster& cluster)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> digests;
    for (std::size_t n = 0; n < cluster.Nodes(); ++n) {
        const sim::StreamDigest d = cluster.NodeDigest(n);
        digests.emplace_back(d.Value(), d.Count());
    }
    return digests;
}

/**
 * The headline property: crash node 1 a third of the way in, rejoin
 * it two thirds of the way in (peer resync = checkpoint install +
 * decision-tail replay) — and every node's final digest, including
 * the rejoiner's, is bit-identical to a churn-free run.
 */
template <typename App, typename Options>
void ExpectCrashRejoinMatchesChurnFree(const Options& app_options,
                                       std::size_t iterations,
                                       bool streaming)
{
    SCOPED_TRACE(streaming ? "streaming" : "retained");
    // Churn-free reference (no plan, no checkpoints).
    sim::Cluster reference(BaseOptions(3, streaming));
    const std::uint64_t total =
        Drive<App>(reference, app_options, iterations);
    ASSERT_GT(total, 600u);
    const auto want = DigestsOf(reference);

    sim::ClusterOptions options = BaseOptions(3, streaming);
    options.checkpoint_interval_tasks = 300;
    options.fault_plan.events.push_back(
        {.node = 1, .crash_at_task = total / 3,
         .rejoin_at_task = 2 * total / 3});
    sim::Cluster churned(options);
    EXPECT_EQ(Drive<App>(churned, app_options, iterations), total);

    EXPECT_EQ(DigestsOf(churned), want);
    EXPECT_TRUE(churned.StreamDigestsAgree());
    EXPECT_FALSE(churned.NodeCrashed(1));
    const sim::FaultStats& fault = churned.FaultRecovery();
    EXPECT_EQ(fault.crashes, 1u);
    EXPECT_EQ(fault.rejoins, 1u);
    EXPECT_GE(fault.checkpoints_taken, 1u);
    EXPECT_GT(fault.last_checkpoint_bytes, 0u);
    EXPECT_GT(fault.tail_events_replayed, 0u);
    EXPECT_GT(fault.checkpoint_pause_tasks, 0.0);
    EXPECT_GT(fault.recovery_stall_tasks, 0.0);
}

TEST(ElasticMembership, S3dCrashRejoinRetained)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRejoinMatchesChurnFree<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 30, false);
}

TEST(ElasticMembership, S3dCrashRejoinStreaming)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRejoinMatchesChurnFree<apps::S3dApplication>(
        apps::S3dOptions{.machine = machine}, 30, true);
}

TEST(ElasticMembership, HtrCrashRejoinRetained)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRejoinMatchesChurnFree<apps::HtrApplication>(
        apps::HtrOptions{.machine = machine}, 30, false);
}

TEST(ElasticMembership, HtrCrashRejoinStreaming)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    ExpectCrashRejoinMatchesChurnFree<apps::HtrApplication>(
        apps::HtrOptions{.machine = machine}, 30, true);
}

TEST(ElasticMembership, MultipleStaggeredFailuresAllRecover)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    const apps::S3dOptions app_options{.machine = machine};
    sim::Cluster reference(BaseOptions(3, false));
    const std::uint64_t total =
        Drive<apps::S3dApplication>(reference, app_options, 30);
    const auto want = DigestsOf(reference);

    sim::ClusterOptions options = BaseOptions(3, false);
    options.checkpoint_interval_tasks = 250;
    options.fault_plan.events.push_back(
        {.node = 1, .crash_at_task = total / 4,
         .rejoin_at_task = total / 2});
    options.fault_plan.events.push_back(
        {.node = 2, .crash_at_task = total / 2,
         .rejoin_at_task = 3 * total / 4});
    sim::Cluster churned(options);
    Drive<apps::S3dApplication>(churned, app_options, 30);

    EXPECT_EQ(DigestsOf(churned), want);
    EXPECT_EQ(churned.FaultRecovery().crashes, 2u);
    EXPECT_EQ(churned.FaultRecovery().rejoins, 2u);
}

TEST(ElasticMembership, PermanentCrashLeavesNodeDownHealthyUnaffected)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    const apps::S3dOptions app_options{.machine = machine};
    sim::Cluster reference(BaseOptions(3, false));
    const std::uint64_t total =
        Drive<apps::S3dApplication>(reference, app_options, 30);
    const auto want = DigestsOf(reference);

    sim::ClusterOptions options = BaseOptions(3, false);
    options.fault_plan.events.push_back(
        {.node = 1, .crash_at_task = total / 3});  // never rejoins
    sim::Cluster churned(options);
    Drive<apps::S3dApplication>(churned, app_options, 30);

    EXPECT_TRUE(churned.NodeCrashed(1));
    EXPECT_THROW(churned.NodeRuntime(1), rt::RuntimeUsageError);
    EXPECT_EQ(churned.FaultRecovery().crashes, 1u);
    EXPECT_EQ(churned.FaultRecovery().rejoins, 0u);
    // The survivors never notice: their digests equal the churn-free
    // run's (the coordination schedule spans the full fixed roster).
    const auto got = DigestsOf(churned);
    EXPECT_EQ(got[0], want[0]);
    EXPECT_EQ(got[2], want[2]);
    // The crashed node's digest is frozen at the crash point.
    EXPECT_LT(got[1].second, want[1].second);
}

TEST(ElasticMembership, NoCheckpointsEscapeHatchFallsBackToFullTailReplay)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    const apps::S3dOptions app_options{.machine = machine};
    sim::Cluster reference(BaseOptions(3, false));
    const std::uint64_t total =
        Drive<apps::S3dApplication>(reference, app_options, 30);
    const auto want = DigestsOf(reference);

    sim::ClusterOptions options = BaseOptions(3, false);
    options.checkpoint_interval_tasks = 300;
    options.config.checkpoints = false;  // -lg:auto_trace:no_checkpoints
    options.fault_plan.events.push_back(
        {.node = 1, .crash_at_task = total / 3,
         .rejoin_at_task = 2 * total / 3});
    sim::Cluster churned(options);
    Drive<apps::S3dApplication>(churned, app_options, 30);

    // No images were ever written; the rejoiner replayed the full
    // decision tail from stream start — and still re-converged.
    EXPECT_EQ(churned.FaultRecovery().checkpoints_taken, 0u);
    EXPECT_TRUE(churned.CheckpointImage().empty());
    EXPECT_EQ(churned.FaultRecovery().rejoins, 1u);
    EXPECT_GT(churned.FaultRecovery().tail_events_replayed, 0u);
    EXPECT_EQ(DigestsOf(churned), want);
}

TEST(ElasticMembership, TransientCorruptionQuarantinesThenHeals)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    const apps::S3dOptions app_options{.machine = machine};
    // The corrupted replica replays against templates recorded from
    // its corrupted stream; deviations must degrade, not throw
    // (Legion's fallback mode). Same policy in the reference run so
    // the two configurations differ only in the injection.
    sim::ClusterOptions reference_options = BaseOptions(3, false);
    reference_options.runtime_options.mismatch_policy =
        rt::MismatchPolicy::kFallback;
    sim::Cluster reference(reference_options);
    const std::uint64_t total =
        Drive<apps::S3dApplication>(reference, app_options, 30);
    const auto want = DigestsOf(reference);

    sim::ClusterOptions options = reference_options;
    options.checkpoint_interval_tasks = 300;
    options.fault.enabled = true;
    options.fault.node = 1;
    options.fault.from_task = total / 4;
    options.fault.until_task = total / 2;
    options.fault.token_xor = 0xdeadbeefULL;
    sim::Cluster churned(options);
    Drive<apps::S3dApplication>(churned, app_options, 30);

    // The corrupted replica was detected (quarantined), then healed
    // by peer resync once the injection window closed — and the final
    // streams are the clean run's.
    EXPECT_GE(churned.FaultRecovery().heals, 1u);
    EXPECT_FALSE(churned.NodeQuarantined(1));
    EXPECT_EQ(DigestsOf(churned), want);
    EXPECT_TRUE(churned.StreamDigestsAgree());
}

TEST(ElasticMembership, ManualResyncHealsAQuarantinedNode)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    const apps::S3dOptions app_options{.machine = machine};
    sim::ClusterOptions reference_options = BaseOptions(3, false);
    reference_options.runtime_options.mismatch_policy =
        rt::MismatchPolicy::kFallback;  // see the transient test
    sim::Cluster reference(reference_options);
    const std::uint64_t total =
        Drive<apps::S3dApplication>(reference, app_options, 30);
    const auto want = DigestsOf(reference);

    // A corruption window that never closes before end of stream:
    // no auto-heal, the node stays quarantined through Flush.
    sim::ClusterOptions options = reference_options;
    options.fault.enabled = true;
    options.fault.node = 1;
    options.fault.from_task = total / 4;
    options.fault.until_task = total * 10;
    options.fault.token_xor = 0xfeedULL;
    sim::Cluster churned(options);
    Drive<apps::S3dApplication>(churned, app_options, 30);
    ASSERT_TRUE(churned.NodeQuarantined(1));
    EXPECT_FALSE(churned.StreamDigestsAgree());

    // Operator-initiated recovery (no checkpoint interval: the full
    // decision tail from stream start carries the whole resync).
    churned.ResyncQuarantined(1);
    EXPECT_FALSE(churned.NodeQuarantined(1));
    EXPECT_EQ(churned.FaultRecovery().heals, 1u);
    EXPECT_EQ(DigestsOf(churned), want);
    EXPECT_TRUE(churned.StreamDigestsAgree());

    // Healthy nodes cannot be "resynced".
    EXPECT_THROW(churned.ResyncQuarantined(0), rt::RuntimeUsageError);
}

TEST(ElasticMembership, FaultPlanValidation)
{
    {
        sim::ClusterOptions options = BaseOptions(3, false);
        options.fault_plan.events.push_back({.node = 5, .crash_at_task = 10});
        EXPECT_THROW(sim::Cluster{options}, rt::RuntimeUsageError);
    }
    {
        sim::ClusterOptions options = BaseOptions(3, false);
        options.fault_plan.events.push_back(
            {.node = 1, .crash_at_task = 100, .rejoin_at_task = 100});
        EXPECT_THROW(sim::Cluster{options}, rt::RuntimeUsageError);
    }
    {
        // Fault tolerance rides the shared decision engine's tail.
        sim::ClusterOptions options = BaseOptions(3, false);
        options.shared_decisions = false;
        options.fault_plan.events.push_back(
            {.node = 1, .crash_at_task = 100, .rejoin_at_task = 200});
        EXPECT_THROW(sim::Cluster{options}, rt::RuntimeUsageError);
    }
}

TEST(ElasticMembership, CorruptClusterCheckpointImagesAreRejected)
{
    apps::MachineConfig machine{.nodes = 2, .gpus_per_node = 2};
    sim::ClusterOptions options = BaseOptions(3, false);
    options.checkpoint_interval_tasks = 200;
    sim::Cluster cluster(options);
    Drive<apps::S3dApplication>(
        cluster, apps::S3dOptions{.machine = machine}, 20);
    const std::vector<std::uint8_t> image = cluster.CheckpointImage();
    ASSERT_GT(cluster.FaultRecovery().checkpoints_taken, 0u);
    ASSERT_FALSE(image.empty());

    // The install path a rejoining node runs, on a fresh runtime.
    const auto install = [&](const std::vector<std::uint8_t>& bytes) {
        fault::CheckpointReader reader(bytes);
        reader.BeginSection(fault::SectionTag::kClusterNode);
        reader.U64();
        reader.U64();
        reader.U64();
        reader.EndSection();
        rt::Runtime fresh(options.runtime_options);
        fresh.LoadState(reader);
    };
    install(image);  // the intact image must install cleanly

    std::vector<std::uint8_t> truncated(
        image.begin(),
        image.begin() + static_cast<std::ptrdiff_t>(image.size() / 2));
    EXPECT_THROW(install(truncated), fault::CheckpointError);

    std::vector<std::uint8_t> flipped = image;
    flipped[flipped.size() * 3 / 4] ^= 0x01;
    EXPECT_THROW(install(flipped), fault::CheckpointError);
}

}  // namespace
}  // namespace apo
