/**
 * @file
 * Tests for the candidate trie, trace scoring, and the trace finder's
 * sampling schedule and mining jobs.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/finder.h"
#include "core/trie.h"
#include "support/executor.h"

namespace apo::core {
namespace {

std::vector<rt::TokenHash> Tokens(std::initializer_list<int> list)
{
    std::vector<rt::TokenHash> out;
    for (int v : list) {
        out.push_back(static_cast<rt::TokenHash>(v));
    }
    return out;
}

TEST(Trie, InsertAndStep)
{
    CandidateTrie trie;
    trie.Insert(Tokens({1, 2, 3}), 2.0, 0, 1e9);
    EXPECT_EQ(trie.NumCandidates(), 1u);
    const auto* n1 = trie.Step(nullptr, 1);
    ASSERT_NE(n1, nullptr);
    EXPECT_EQ(CandidateTrie::CandidateAt(n1), nullptr);
    const auto* n2 = trie.Step(n1, 2);
    const auto* n3 = trie.Step(n2, 3);
    ASSERT_NE(n3, nullptr);
    const CandidateStats* stats = CandidateTrie::CandidateAt(n3);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->length, 3u);
    EXPECT_DOUBLE_EQ(stats->count, 2.0);
    EXPECT_EQ(trie.Step(n3, 4), nullptr);
    EXPECT_EQ(trie.Step(nullptr, 9), nullptr);
}

TEST(Trie, SharedPrefixesShareNodes)
{
    CandidateTrie trie;
    trie.Insert(Tokens({1, 2, 3}), 1.0, 0, 1e9);
    trie.Insert(Tokens({1, 2, 4}), 1.0, 0, 1e9);
    trie.Insert(Tokens({1, 2}), 1.0, 0, 1e9);
    EXPECT_EQ(trie.NumCandidates(), 3u);
    // Root + nodes 1, 2, 3, 4 = 5 total.
    EXPECT_EQ(trie.NumNodes(), 5u);
    // {1,2} is a candidate at an interior node.
    const auto* n = trie.Step(trie.Step(nullptr, 1), 2);
    ASSERT_NE(CandidateTrie::CandidateAt(n), nullptr);
    EXPECT_EQ(CandidateTrie::CandidateAt(n)->length, 2u);
}

TEST(Trie, ReinsertionAccumulatesCount)
{
    CandidateTrie trie;
    auto& first = trie.Insert(Tokens({5, 6}), 2.0, 100, 1e9);
    auto& second = trie.Insert(Tokens({5, 6}), 3.0, 200, 1e9);
    EXPECT_EQ(&first, &second);
    // Huge half-life: decay over 100 tasks is negligible.
    EXPECT_NEAR(second.count, 5.0, 1e-6);
    EXPECT_EQ(second.last_seen, 200u);
    EXPECT_EQ(trie.NumCandidates(), 1u);
}

TEST(Trie, ReinsertionDecaysOldCount)
{
    CandidateTrie trie;
    trie.Insert(Tokens({5, 6}), 8.0, 0, /*half_life=*/100);
    // 100 tasks later the old count has halved.
    auto& stats = trie.Insert(Tokens({5, 6}), 1.0, 100, 100);
    EXPECT_DOUBLE_EQ(stats.count, 5.0);
}

TEST(Scorer, PrefersLongTraces)
{
    ApopheniaConfig config;
    TraceScorer scorer(config);
    CandidateStats short_trace{.id = 1, .length = 10, .count = 4,
                               .last_seen = 0};
    CandidateStats long_trace{.id = 2, .length = 100, .count = 4,
                              .last_seen = 0};
    EXPECT_GT(scorer.Score(long_trace, 0), scorer.Score(short_trace, 0));
}

TEST(Scorer, CountIsCapped)
{
    ApopheniaConfig config;
    config.score_count_cap = 16.0;
    TraceScorer scorer(config);
    CandidateStats a{.id = 1, .length = 10, .count = 16, .last_seen = 0};
    CandidateStats b{.id = 2, .length = 10, .count = 1000, .last_seen = 0};
    EXPECT_DOUBLE_EQ(scorer.Score(a, 0), scorer.Score(b, 0));
}

TEST(Scorer, CountDecaysWithInactivity)
{
    ApopheniaConfig config;
    config.score_decay_half_life = 1000.0;
    TraceScorer scorer(config);
    CandidateStats c{.id = 1, .length = 10, .count = 8, .last_seen = 0};
    const double fresh = scorer.Score(c, 0);
    const double stale = scorer.Score(c, 2000);  // two half-lives
    EXPECT_DOUBLE_EQ(stale, fresh / 4.0);
}

TEST(Scorer, ReplayedTraceGetsBonus)
{
    ApopheniaConfig config;
    TraceScorer scorer(config);
    CandidateStats a{.id = 1, .length = 10, .count = 4, .last_seen = 0};
    CandidateStats b = a;
    b.replays = 1;
    EXPECT_GT(scorer.Score(b, 0), scorer.Score(a, 0));
    EXPECT_NEAR(scorer.Score(b, 0),
                scorer.Score(a, 0) * config.score_replayed_bonus, 1e-9);
}

TEST(Finder, LaunchesJobsOnRulerSchedule)
{
    ApopheniaConfig config;
    config.min_trace_length = 2;
    config.multi_scale_factor = 10;
    config.batchsize = 80;
    support::InlineExecutor exec;
    TraceFinder finder(config, exec);
    // 80 tokens of a 4-periodic stream.
    for (std::uint64_t i = 1; i <= 80; ++i) {
        finder.Observe(i % 4, i);
    }
    // Sampling points at 10,20,...,80 with slice lengths
    // 10,20,10,40,10,20,10,80.
    EXPECT_EQ(finder.Stats().jobs_launched, 8u);
    const std::vector<std::size_t> expected{10, 20, 10, 40, 10, 20, 10, 80};
    ASSERT_EQ(finder.PendingJobCount(), 8u);
    std::vector<PendingJobInfo> jobs;
    finder.VisitPendingJobs(
        0, [&](const PendingJobInfo& info) { jobs.push_back(info); });
    ASSERT_EQ(jobs.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(jobs[i].id, i);
        EXPECT_EQ(jobs[i].slice_length, expected[i]) << i;
        EXPECT_TRUE(jobs[i].done);
    }
    EXPECT_EQ(finder.Stats().tokens_analyzed, 10u + 20 + 10 + 40 + 10 + 20 +
                                                  10 + 80);
}

TEST(Finder, SliceIsCappedByBatchsize)
{
    ApopheniaConfig config;
    config.min_trace_length = 2;
    config.multi_scale_factor = 10;
    config.batchsize = 40;  // window smaller than the stream
    support::InlineExecutor exec;
    TraceFinder finder(config, exec);
    for (std::uint64_t i = 1; i <= 400; ++i) {
        finder.Observe(i % 4, i);
    }
    finder.VisitPendingJobs(0, [](const PendingJobInfo& job) {
        EXPECT_LE(job.slice_length, 40u);
    });
}

TEST(Finder, BatchedModeAnalyzesOnlyFullBuffers)
{
    ApopheniaConfig config;
    config.min_trace_length = 2;
    config.identifier_algorithm = IdentifierAlgorithm::kBatched;
    config.batchsize = 50;
    support::InlineExecutor exec;
    TraceFinder finder(config, exec);
    for (std::uint64_t i = 1; i <= 149; ++i) {
        finder.Observe(i % 4, i);
    }
    EXPECT_EQ(finder.Stats().jobs_launched, 2u);  // at 50 and 100
    finder.VisitPendingJobs(0, [](const PendingJobInfo& job) {
        EXPECT_EQ(job.slice_length, 50u);
    });
}

TEST(Finder, TinySlicesAreSkipped)
{
    ApopheniaConfig config;
    config.min_trace_length = 20;  // a 10-token slice can't repeat it
    config.multi_scale_factor = 10;
    config.batchsize = 80;
    support::InlineExecutor exec;
    TraceFinder finder(config, exec);
    for (std::uint64_t i = 1; i <= 30; ++i) {
        finder.Observe(i % 4, i);
    }
    // Slices of 10 and 20 are below 2*min_trace_length = 40: skipped.
    EXPECT_EQ(finder.Stats().jobs_launched, 0u);
}

TEST(MineSlice, FindsLoopAndFiltersSingletons)
{
    ApopheniaConfig config;
    config.min_trace_length = 3;
    std::vector<rt::TokenHash> slice;
    for (int i = 0; i < 60; ++i) {
        slice.push_back(i % 6);
    }
    const auto candidates = MineSlice(slice, config);
    ASSERT_FALSE(candidates.empty());
    for (const auto& c : candidates) {
        EXPECT_GE(c.tokens.size(), config.min_trace_length);
        EXPECT_GE(c.occurrences, 2.0);
    }
}

TEST(MineSlice, ChunksLongCandidatesToMaxLength)
{
    ApopheniaConfig config;
    config.min_trace_length = 3;
    config.max_trace_length = 10;
    std::vector<rt::TokenHash> slice;
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 25; ++i) {
            slice.push_back(100 + i);  // 25-token body, twice
        }
    }
    const auto candidates = MineSlice(slice, config);
    ASSERT_FALSE(candidates.empty());
    std::size_t total = 0;
    for (const auto& c : candidates) {
        EXPECT_LE(c.tokens.size(), 10u);
        total += c.tokens.size();
    }
    // 25 = 10 + 10 + 5: all three chunks are viable (5 >= min 3).
    EXPECT_EQ(total, 25u);
}

TEST(MineSlice, DropsChunkTailBelowMinLength)
{
    ApopheniaConfig config;
    config.min_trace_length = 4;
    config.max_trace_length = 8;
    std::vector<rt::TokenHash> slice;
    for (int rep = 0; rep < 2; ++rep) {
        for (int i = 0; i < 11; ++i) {  // 11 = 8 + 3; tail 3 < min 4
            slice.push_back(100 + i);
        }
    }
    const auto candidates = MineSlice(slice, config);
    std::size_t total = 0;
    for (const auto& c : candidates) {
        total += c.tokens.size();
    }
    EXPECT_EQ(total, 8u);
}

}  // namespace
}  // namespace apo::core
