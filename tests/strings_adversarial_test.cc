/**
 * @file
 * Adversarial inputs for the string substrate: highly periodic and
 * self-similar sequences are the classic suffix-array stress cases
 * (maximal LCP values, deep SA-IS recursion) and also the worst cases
 * for repeat mining (everything overlaps everything).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "strings/identifiers.h"
#include "strings/repeats.h"
#include "strings/suffix_array.h"
#include "support/intervals.h"
#include "test_util.h"

namespace apo::strings {
namespace {

using apo::test::Seq;

/** Fibonacci word: the classic worst case for repetition structure. */
Sequence FibonacciWord(std::size_t min_length)
{
    Sequence a{0}, b{1};
    while (a.size() < min_length) {
        Sequence next = a;
        next.insert(next.end(), b.begin(), b.end());
        b = a;
        a = std::move(next);
    }
    a.resize(min_length);
    return a;
}

/** Thue-Morse word: overlap-free (contains no factor xxx). */
Sequence ThueMorse(std::size_t n)
{
    Sequence s(n);
    for (std::size_t i = 0; i < n; ++i) {
        s[i] = static_cast<Symbol>(__builtin_popcountll(i) & 1);
    }
    return s;
}

std::vector<std::size_t> NaiveSuffixArray(const Sequence& s)
{
    std::vector<std::size_t> sa(s.size());
    std::iota(sa.begin(), sa.end(), 0);
    std::sort(sa.begin(), sa.end(), [&](std::size_t a, std::size_t b) {
        return std::lexicographical_compare(s.begin() + a, s.end(),
                                            s.begin() + b, s.end());
    });
    return sa;
}

TEST(Adversarial, FibonacciWordSuffixArray)
{
    const Sequence s = FibonacciWord(800);
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kSais),
              NaiveSuffixArray(s));
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kPrefixDoubling),
              NaiveSuffixArray(s));
}

TEST(Adversarial, ThueMorseSuffixArray)
{
    const Sequence s = ThueMorse(1024);
    EXPECT_EQ(BuildSuffixArray(s, SuffixAlgorithm::kSais),
              NaiveSuffixArray(s));
}

TEST(Adversarial, AllEqualSequence)
{
    const Sequence s(500, 7);
    const auto sa = BuildSuffixArray(s);
    // Suffixes of an all-equal string sort by decreasing start.
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i], s.size() - 1 - i);
    }
    const auto lcp = ComputeLcp(s, sa);
    for (std::size_t i = 0; i < lcp.size(); ++i) {
        EXPECT_EQ(lcp[i], i + 1);
    }
    // Repeats must tile the run without overlapping.
    const auto repeats = FindRepeats(s, {.min_length = 10});
    support::IntervalSet all;
    std::size_t covered = 0;
    for (const auto& r : repeats) {
        for (std::size_t start : r.starts) {
            ASSERT_TRUE(all.InsertIfDisjoint(start, start + r.Length()));
            covered += r.Length();
        }
    }
    EXPECT_GE(covered, s.size() * 9 / 10);
}

TEST(Adversarial, FibonacciWordRepeatsAreValid)
{
    const Sequence s = FibonacciWord(600);
    const auto repeats = FindRepeats(s, {.min_length = 5});
    support::IntervalSet all;
    for (const auto& r : repeats) {
        for (std::size_t start : r.starts) {
            ASSERT_LE(start + r.Length(), s.size());
            EXPECT_TRUE(std::equal(r.tokens.begin(), r.tokens.end(),
                                   s.begin() + start));
            EXPECT_TRUE(all.InsertIfDisjoint(start, start + r.Length()));
        }
    }
    // Fibonacci words are extremely repetitive: coverage must be high.
    EXPECT_GE(TotalCoverage(repeats), s.size() / 2);
}

TEST(Adversarial, ThueMorseHasNoTripleRepeats)
{
    // Overlap-freeness: no factor occurs three times in a row, so the
    // tandem detector must only ever report runs of exactly 2 copies.
    const Sequence s = ThueMorse(512);
    for (const auto& r : FindTandemRepeats(s, 2)) {
        // Consecutive selected copies: count the longest contiguous
        // chain of starts spaced exactly r.Length() apart.
        std::size_t chain = 1, best = 1;
        for (std::size_t k = 1; k < r.starts.size(); ++k) {
            chain = r.starts[k] == r.starts[k - 1] + r.Length()
                        ? chain + 1
                        : 1;
            best = std::max(best, chain);
        }
        EXPECT_LE(best, 2u) << "cube found in the Thue-Morse word?!";
    }
}

TEST(Adversarial, SingleRepeatAtOppositeEnds)
{
    // The repeated content sits at the extreme ends of the buffer —
    // the hardest placement for windowed detection, easy for a full
    // suffix array.
    Sequence s;
    const Sequence motif = Seq("abcdefghij");
    s.insert(s.end(), motif.begin(), motif.end());
    for (int i = 0; i < 500; ++i) {
        s.push_back(1000 + i);  // unique middle
    }
    s.insert(s.end(), motif.begin(), motif.end());
    const auto repeats = FindRepeats(s, {.min_length = 10});
    ASSERT_EQ(repeats.size(), 1u);
    EXPECT_EQ(repeats[0].tokens, motif);
    EXPECT_EQ(repeats[0].starts,
              (std::vector<std::size_t>{0, motif.size() + 500}));
}

TEST(Adversarial, AlternatingTwoSymbols)
{
    // "ababab...": everything overlaps; the overlap case of Algorithm
    // 2 must still tile the string with period-2 pieces.
    Sequence s;
    for (int i = 0; i < 400; ++i) {
        s.push_back(i % 2);
    }
    const auto repeats = FindRepeats(s, {.min_length = 2});
    EXPECT_EQ(TotalCoverage(repeats), s.size());
    for (const auto& r : repeats) {
        EXPECT_EQ(r.Length() % 2, 0u) << "non-period-aligned repeat";
    }
}

TEST(Adversarial, MaxLcpDoesNotOverflowRmq)
{
    // Long shared prefixes stress the LCP range-minimum structure.
    Sequence s(300, 1);
    s[150] = 2;  // one mismatch splits the run
    const auto repeats = FindRepeats(s, {.min_length = 20});
    EXPECT_FALSE(repeats.empty());
    EXPECT_GE(TotalCoverage(repeats), 200u);
}

}  // namespace
}  // namespace apo::strings
