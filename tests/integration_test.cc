/**
 * @file
 * Cross-module integration properties over the whole stack
 * (applications → Apophenia → runtime → simulator):
 *
 *  - end-to-end determinism: identical runs produce bit-identical
 *    operation logs and simulated timings;
 *  - semantic transparency: for every workload and tracing mode, the
 *    dependence graph equals the untraced graph;
 *  - replication over real applications;
 *  - configuration robustness: every identifier/repeats-algorithm
 *    combination produces a correct (if not always fast) stream.
 */
#include <gtest/gtest.h>

#include <memory>

#include "apps/cfd.h"
#include "apps/flexflow.h"
#include "apps/htr.h"
#include "apps/s3d.h"
#include "api/frontend.h"
#include "apps/torchswe.h"
#include "sim/cluster.h"
#include "sim/harness.h"

namespace apo {
namespace {

apps::MachineConfig SmallMachine()
{
    apps::MachineConfig m;
    m.nodes = 2;
    m.gpus_per_node = 2;
    return m;
}

core::ApopheniaConfig SmallConfig()
{
    core::ApopheniaConfig config;
    config.min_trace_length = 10;
    config.batchsize = 1500;
    config.multi_scale_factor = 100;
    return config;
}

template <typename App, typename Options>
std::unique_ptr<rt::Runtime> RunAuto(Options options, std::size_t iters)
{
    auto runtime = std::make_unique<rt::Runtime>();
    core::Apophenia fe(*runtime, SmallConfig());
    api::Frontend& sink = fe;
    App app(options);
    app.Setup(sink);
    for (std::size_t i = 0; i < iters; ++i) {
        app.Iteration(sink, i, false);
    }
    sink.Flush();
    return runtime;
}

template <typename App, typename Options>
std::unique_ptr<rt::Runtime> RunUntraced(Options options,
                                         std::size_t iters)
{
    auto runtime = std::make_unique<rt::Runtime>();
    api::UntracedFrontend sink(*runtime);
    App app(options);
    app.Setup(sink);
    for (std::size_t i = 0; i < iters; ++i) {
        app.Iteration(sink, i, false);
    }
    return runtime;
}

template <typename App, typename Options>
void ExpectGraphTransparency(Options options, std::size_t iters)
{
    const auto traced = RunAuto<App>(options, iters);
    const auto untraced = RunUntraced<App>(options, iters);
    ASSERT_EQ(traced->Log().size(), untraced->Log().size());
    for (std::size_t i = 0; i < traced->Log().size(); ++i) {
        ASSERT_EQ(traced->Log()[i].token, untraced->Log()[i].token)
            << "op " << i;
        ASSERT_EQ(traced->Log()[i].dependences,
                  untraced->Log()[i].dependences)
            << "op " << i;
    }
    EXPECT_GT(traced->Stats().tasks_replayed, 0u);
}

TEST(Integration, GraphTransparencyS3d)
{
    ExpectGraphTransparency<apps::S3dApplication>(
        apps::S3dOptions{.machine = SmallMachine()}, 60);
}

TEST(Integration, GraphTransparencyHtr)
{
    ExpectGraphTransparency<apps::HtrApplication>(
        apps::HtrOptions{.machine = SmallMachine()}, 50);
}

TEST(Integration, GraphTransparencyCfd)
{
    ExpectGraphTransparency<apps::CfdApplication>(
        apps::CfdOptions{.machine = SmallMachine()}, 120);
}

TEST(Integration, GraphTransparencyTorchSwe)
{
    apps::TorchSweOptions options{.machine = SmallMachine()};
    options.allocation_pool_budget = 150;
    ExpectGraphTransparency<apps::TorchSweApplication>(options, 80);
}

TEST(Integration, GraphTransparencyFlexFlow)
{
    ExpectGraphTransparency<apps::FlexFlowApplication>(
        apps::FlexFlowOptions{.machine = SmallMachine()}, 40);
}

TEST(Integration, EndToEndRunsAreDeterministic)
{
    auto a = RunAuto<apps::CfdApplication>(
        apps::CfdOptions{.machine = SmallMachine()}, 100);
    auto b = RunAuto<apps::CfdApplication>(
        apps::CfdOptions{.machine = SmallMachine()}, 100);
    ASSERT_EQ(a->Log().size(), b->Log().size());
    for (std::size_t i = 0; i < a->Log().size(); ++i) {
        ASSERT_EQ(a->Log()[i].token, b->Log()[i].token);
        ASSERT_EQ(a->Log()[i].mode, b->Log()[i].mode);
        ASSERT_EQ(a->Log()[i].trace, b->Log()[i].trace);
    }
    EXPECT_EQ(a->Stats().trace_replays, b->Stats().trace_replays);
}

TEST(Integration, SimulatedTimingIsDeterministic)
{
    auto run = [] {
        apps::S3dOptions options;
        options.machine = SmallMachine();
        apps::S3dApplication app(options);
        sim::ExperimentOptions experiment;
        experiment.machine = options.machine;
        experiment.iterations = 40;
        experiment.mode = sim::TracingMode::kAuto;
        experiment.auto_config = SmallConfig();
        return sim::RunExperiment(app, experiment);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_DOUBLE_EQ(a.iterations_per_second, b.iterations_per_second);
    EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
}

TEST(Integration, ReplicationOverRealApplication)
{
    // Control replication over the S3D skeleton, hand-offs included.
    sim::ClusterOptions options;
    options.coordination.nodes = 3;
    options.coordination.seed = 11;
    options.coordination.mean_latency_tasks = 150.0;
    options.coordination.jitter = 0.8;
    options.config = SmallConfig();
    apps::S3dOptions app_options;
    app_options.machine = SmallMachine();
    // Control replication: the same program runs on every node, so
    // capture its canonical launch stream once...
    rt::Runtime staging;
    api::DirectFrontend staging_sink(staging);
    apps::S3dApplication staging_app(app_options);
    staging_app.Setup(staging_sink);
    for (std::size_t i = 0; i < 50; ++i) {
        staging_app.Iteration(staging_sink, i, false);
    }
    // ...then feed it through every replica in lockstep.
    sim::Cluster group(options);
    for (const auto& op : staging.Log()) {
        group.ExecuteTask(op.launch);
    }
    group.Flush();
    EXPECT_TRUE(group.StreamsIdentical());
    EXPECT_TRUE(group.StreamDigestsAgree());
    EXPECT_GT(group.NodeRuntime(0).Stats().tasks_replayed, 0u);
}

struct ConfigCase {
    core::IdentifierAlgorithm identifier;
    core::RepeatsAlgorithm repeats;
};

class ConfigMatrix : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigMatrix, EveryAlgorithmCombinationIsCorrect)
{
    // Alternative identifiers/algorithms may trace less, but the
    // stream and graph must always be correct.
    const auto [identifier, repeats] = GetParam();
    core::ApopheniaConfig config = SmallConfig();
    config.identifier_algorithm = identifier;
    config.repeats_algorithm = repeats;

    auto runtime = std::make_unique<rt::Runtime>();
    core::Apophenia fe(*runtime, config);
    api::Frontend& sink = fe;
    apps::S3dOptions options;
    options.machine = SmallMachine();
    apps::S3dApplication app(options);
    app.Setup(sink);
    for (std::size_t i = 0; i < 40; ++i) {
        app.Iteration(sink, i, false);
    }
    sink.Flush();

    const auto untraced = RunUntraced<apps::S3dApplication>(options, 40);
    ASSERT_EQ(runtime->Log().size(), untraced->Log().size());
    for (std::size_t i = 0; i < runtime->Log().size(); ++i) {
        ASSERT_EQ(runtime->Log()[i].token, untraced->Log()[i].token);
        ASSERT_EQ(runtime->Log()[i].dependences,
                  untraced->Log()[i].dependences);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigMatrix,
    ::testing::Values(
        ConfigCase{core::IdentifierAlgorithm::kMultiScale,
                   core::RepeatsAlgorithm::kQuickMatchingOfSubstrings},
        ConfigCase{core::IdentifierAlgorithm::kBatched,
                   core::RepeatsAlgorithm::kQuickMatchingOfSubstrings},
        ConfigCase{core::IdentifierAlgorithm::kMultiScale,
                   core::RepeatsAlgorithm::kTandem},
        ConfigCase{core::IdentifierAlgorithm::kMultiScale,
                   core::RepeatsAlgorithm::kLzw},
        ConfigCase{core::IdentifierAlgorithm::kMultiScale,
                   core::RepeatsAlgorithm::kQuadratic}));

}  // namespace
}  // namespace apo
